//! Streaming extension: one-pass, LSH-routed online clustering.
//!
//! The paper closes with: "adapting our algorithm to develop an online
//! streaming clustering framework would be another exciting future research
//! topic". This module is that adaptation. Items arrive one at a time and
//! are never revisited unless a refinement pass is requested:
//!
//! 1. the arriving item is MinHashed and its band buckets are probed for
//!    colliding earlier items, whose clusters form the shortlist (exactly
//!    Algorithm 2's query, but against a *growing* index);
//! 2. the item joins the shortlisted cluster with the smallest matching
//!    dissimilarity to that cluster's (incrementally maintained) mode — or
//!    founds a new cluster when nothing is within `distance_threshold`
//!    (leader-style clustering) or the shortlist is empty;
//! 3. the item is appended to its band buckets carrying its cluster
//!    reference, and the cluster's per-attribute frequency tables (and the
//!    cached mode) are updated in `O(m)`.
//!
//! Because the search space is a shortlist rather than all clusters, the
//! per-item cost is independent of the total cluster count — the streaming
//! analogue of the paper's core claim. [`StreamingMhKModes::refine_pass`]
//! optionally re-runs assignment over everything seen so far, converging
//! toward the batch MH-K-Modes result.

use lshclust_categorical::dissimilarity::matching;
use lshclust_categorical::elements::PresentElements;
use lshclust_categorical::{ClusterId, Schema, ValueId};
use lshclust_minhash::hashfn::{FastMap, FastSet, MixHashFamily};
use lshclust_minhash::signature::SignatureGenerator;
use lshclust_minhash::Banding;

/// Configuration for the streaming clusterer.
#[derive(Clone, Debug)]
pub struct StreamingConfig {
    /// LSH banding for the growing index.
    pub banding: Banding,
    /// Found a new cluster when the best shortlisted mode differs from the
    /// item in more than this many attributes. `n_attrs` (the maximum
    /// distance) means "never found except on empty shortlists".
    pub distance_threshold: u32,
    /// Hard cap on clusters; when reached, items always join the best
    /// shortlisted cluster (or cluster 0 if the shortlist is empty).
    pub max_clusters: Option<usize>,
    /// Seed for the hash family.
    pub seed: u64,
    /// Threads for **batch** work ([`StreamingMhKModes::refine_pass`]);
    /// per-item `insert` is inherently sequential and ignores this. `1`
    /// (and the clamped `0`) keeps the serial Gauss–Seidel refinement;
    /// `> 1` runs a Jacobi pass fanned over this many workers.
    pub threads: usize,
}

impl StreamingConfig {
    /// Defaults: found on anything farther than half the attributes; serial
    /// refinement.
    pub fn new(banding: Banding, n_attrs: usize) -> Self {
        Self {
            banding,
            distance_threshold: (n_attrs as u32) / 2,
            max_clusters: None,
            seed: 0,
            threads: 1,
        }
    }

    /// Sets the batch-refinement thread count (`0` clamps to `1`).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }
}

/// Outcome of inserting one item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The id assigned to the item (insertion order).
    pub item: u32,
    /// The cluster it joined.
    pub cluster: ClusterId,
    /// Whether the item founded a new cluster.
    pub founded_new_cluster: bool,
    /// Size of the shortlist that was searched.
    pub shortlist_len: usize,
}

/// One cluster's incremental state: per-attribute frequency tables plus the
/// cached mode (value and its count).
struct ClusterState {
    freqs: Vec<FastMap<u32, u32>>,
    mode: Vec<ValueId>,
    mode_count: Vec<u32>,
    size: u32,
}

impl ClusterState {
    fn founded_by(row: &[ValueId]) -> Self {
        let m = row.len();
        let mut freqs: Vec<FastMap<u32, u32>> = (0..m).map(|_| FastMap::default()).collect();
        for (a, v) in row.iter().enumerate() {
            freqs[a].insert(v.0, 1);
        }
        Self {
            freqs,
            mode: row.to_vec(),
            mode_count: vec![1; m],
            size: 1,
        }
    }

    /// Adds a member; `O(m)` expected.
    fn add(&mut self, row: &[ValueId]) {
        self.size += 1;
        for (a, &v) in row.iter().enumerate() {
            let count = self.freqs[a].entry(v.0).or_insert(0);
            *count += 1;
            if v == self.mode[a] {
                self.mode_count[a] = *count;
            } else if *count > self.mode_count[a] {
                // Strictly greater: ties keep the incumbent mode, which is
                // deterministic under insertion order.
                self.mode[a] = v;
                self.mode_count[a] = *count;
            }
        }
    }

    /// Removes a member (used by refinement); recomputes the affected
    /// attribute modes by a scan when the cached mode loses its majority.
    fn remove(&mut self, row: &[ValueId]) {
        debug_assert!(self.size > 0);
        self.size -= 1;
        for (a, &v) in row.iter().enumerate() {
            let count = self.freqs[a].get_mut(&v.0).expect("removing unseen value");
            *count -= 1;
            let new_count = *count;
            if new_count == 0 {
                self.freqs[a].remove(&v.0);
            }
            if v == self.mode[a] {
                // The cached mode shrank: rescan this attribute's table.
                // Deterministic tie-break: highest count, then smallest value.
                let best = self.freqs[a]
                    .iter()
                    .map(|(&val, &c)| (c, std::cmp::Reverse(val)))
                    .max()
                    .map(|(c, std::cmp::Reverse(val))| (ValueId(val), c));
                match best {
                    Some((val, c)) => {
                        self.mode[a] = val;
                        self.mode_count[a] = c;
                    }
                    None => {
                        // Cluster emptied on this attribute; keep the stale
                        // mode (empty clusters keep their centroid).
                        self.mode_count[a] = 0;
                    }
                }
            }
        }
    }
}

/// The streaming MH-K-Modes clusterer.
pub struct StreamingMhKModes {
    config: StreamingConfig,
    schema: Schema,
    n_attrs: usize,
    generator: SignatureGenerator<MixHashFamily>,
    /// One bucket map per band (growing).
    buckets: Vec<FastMap<u64, Vec<u32>>>,
    /// Band keys per item, item-major.
    band_keys: Vec<u64>,
    /// Stored rows (needed for refinement and distance updates).
    rows: Vec<ValueId>,
    cluster_of: Vec<ClusterId>,
    clusters: Vec<ClusterState>,
    // reusable scratch
    sig_buf: Vec<u64>,
    key_buf: Vec<u64>,
    seen_items: FastSet<u32>,
    seen_clusters: FastSet<u32>,
    shortlist: Vec<ClusterId>,
}

impl std::fmt::Debug for StreamingMhKModes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingMhKModes")
            .field("n_items", &self.n_items())
            .field("n_clusters", &self.n_clusters())
            .field("banding", &self.config.banding)
            .finish()
    }
}

impl StreamingMhKModes {
    /// Creates an empty streaming clusterer for items under `schema`.
    pub fn new(config: StreamingConfig, schema: Schema) -> Self {
        let family = MixHashFamily::new(config.banding.signature_len(), config.seed);
        let n_bands = config.banding.bands() as usize;
        Self {
            config,
            n_attrs: schema.n_attrs(),
            schema,
            generator: SignatureGenerator::new(family),
            buckets: (0..n_bands).map(|_| FastMap::default()).collect(),
            band_keys: Vec::new(),
            rows: Vec::new(),
            cluster_of: Vec::new(),
            clusters: Vec::new(),
            sig_buf: Vec::new(),
            key_buf: Vec::new(),
            seen_items: FastSet::default(),
            seen_clusters: FastSet::default(),
            shortlist: Vec::new(),
        }
    }

    /// Items inserted so far.
    pub fn n_items(&self) -> usize {
        self.cluster_of.len()
    }

    /// The schema items are interpreted under.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The configuration in use.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// Snapshots the current cluster modes as a `k × n_attrs`
    /// [`Modes`](lshclust_kmodes::modes::Modes) matrix — the hand-off
    /// point to a servable
    /// `lshclust::FittedModel` (clusters discovered so far become frozen
    /// centroids; the stream keeps running independently).
    pub fn snapshot_modes(&self) -> lshclust_kmodes::modes::Modes {
        let mut values = Vec::with_capacity(self.clusters.len() * self.n_attrs);
        for cluster in &self.clusters {
            values.extend_from_slice(&cluster.mode);
        }
        lshclust_kmodes::modes::Modes::from_parts(self.clusters.len(), self.n_attrs, values)
    }

    /// Clusters founded so far.
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Current assignment of every inserted item.
    pub fn assignments(&self) -> &[ClusterId] {
        &self.cluster_of
    }

    /// Current mode of cluster `c`.
    pub fn mode(&self, c: ClusterId) -> &[ValueId] {
        &self.clusters[c.idx()].mode
    }

    /// Current size of cluster `c`.
    pub fn cluster_size(&self, c: ClusterId) -> u32 {
        self.clusters[c.idx()].size
    }

    fn compute_band_keys(&mut self, row: &[ValueId]) {
        self.generator
            .signature_into(PresentElements::new(&self.schema, row), &mut self.sig_buf);
        self.config
            .banding
            .band_keys_into(&self.sig_buf, &mut self.key_buf);
    }

    /// Collects the candidate clusters for the band keys in `key_buf`.
    fn shortlist_from_keys(&mut self) {
        shortlist_for_keys(
            &self.buckets,
            &self.cluster_of,
            &self.key_buf,
            &mut self.seen_items,
            &mut self.seen_clusters,
            &mut self.shortlist,
        );
    }

    fn best_in_shortlist(&self, row: &[ValueId]) -> Option<(ClusterId, u32)> {
        best_for(&self.clusters, row, &self.shortlist)
    }

    /// Inserts one item, returning where it went.
    ///
    /// Panics if the row arity disagrees with the schema.
    pub fn insert(&mut self, row: &[ValueId]) -> InsertOutcome {
        assert_eq!(row.len(), self.n_attrs, "row arity mismatch");
        let item = u32::try_from(self.n_items()).expect("stream exceeds u32 items");
        self.compute_band_keys(row);
        self.shortlist_from_keys();
        let shortlist_len = self.shortlist.len();

        let best = self.best_in_shortlist(row);
        let can_found = self
            .config
            .max_clusters
            .is_none_or(|cap| self.clusters.len() < cap);
        let (cluster, founded) = match best {
            Some((c, d)) if d <= self.config.distance_threshold || !can_found => (c, false),
            Some(_) | None if can_found && !self.clusters.is_empty() => {
                (ClusterId(self.clusters.len() as u32), true)
            }
            None if self.clusters.is_empty() => (ClusterId(0), true),
            Some((c, _)) => (c, false),
            None => (ClusterId(0), false), // cap reached, nothing similar: join cluster 0
        };

        if founded {
            self.clusters.push(ClusterState::founded_by(row));
        } else {
            self.clusters[cluster.idx()].add(row);
        }
        self.cluster_of.push(cluster);
        self.rows.extend_from_slice(row);
        // Append to the growing index.
        for (band, &key) in self.key_buf.iter().enumerate() {
            self.buckets[band].entry(key).or_default().push(item);
        }
        self.band_keys.extend_from_slice(&self.key_buf);

        InsertOutcome {
            item,
            cluster,
            founded_new_cluster: founded,
            shortlist_len,
        }
    }

    fn row_of(&self, item: u32) -> &[ValueId] {
        let s = item as usize * self.n_attrs;
        &self.rows[s..s + self.n_attrs]
    }

    /// One refinement pass over all inserted items: each is re-shortlisted
    /// (using its stored band keys) and moved to the best candidate cluster,
    /// with both clusters' frequency tables updated incrementally. Returns
    /// the number of moves; call until 0 to converge toward the batch result.
    ///
    /// With `config.threads > 1` this dispatches to
    /// [`Self::refine_pass_parallel`] (Jacobi); the serial pass below is
    /// Gauss–Seidel (a move is visible to later items of the same pass).
    pub fn refine_pass(&mut self) -> usize {
        if self.config.threads > 1 {
            return self.refine_pass_parallel(self.config.threads);
        }
        let n_bands = self.config.banding.bands() as usize;
        let mut moves = 0usize;
        for item in 0..self.n_items() as u32 {
            // Reuse the stored band keys (signatures never change).
            self.key_buf.clear();
            let s = item as usize * n_bands;
            self.key_buf
                .extend_from_slice(&self.band_keys[s..s + n_bands]);
            self.shortlist_from_keys();
            let row_start = item as usize * self.n_attrs;
            let row_end = row_start + self.n_attrs;
            let best = {
                let row = &self.rows[row_start..row_end];
                self.best_in_shortlist(row)
            };
            let Some((best_c, _)) = best else { continue };
            let current = self.cluster_of[item as usize];
            if best_c != current {
                let row: Vec<ValueId> = self.row_of(item).to_vec();
                self.clusters[current.idx()].remove(&row);
                self.clusters[best_c.idx()].add(&row);
                self.cluster_of[item as usize] = best_c;
                moves += 1;
            }
        }
        moves
    }

    /// One **Jacobi** refinement pass fanned over `threads` workers: every
    /// item's best candidate cluster is computed against the frozen
    /// start-of-pass state (buckets, cluster references, modes), then the
    /// moves are revalidated against the live modes and applied in item
    /// order with the usual incremental frequency updates. Returns the
    /// number of applied moves, so `while refine_pass() > 0` terminates
    /// exactly as it does on the serial path.
    ///
    /// Candidate decisions depend only on the frozen state and the apply
    /// filter runs sequentially, so the outcome is identical at any thread
    /// count (including 1); it may differ from the Gauss–Seidel
    /// [`Self::refine_pass`] by an iteration of convergence.
    pub fn refine_pass_parallel(&mut self, threads: usize) -> usize {
        let threads = threads.max(1);
        let n = self.n_items();
        let n_bands = self.config.banding.bands() as usize;
        let (buckets, cluster_of) = (&self.buckets, &self.cluster_of);
        let (clusters, band_keys, rows) = (&self.clusters, &self.band_keys, &self.rows);
        let n_attrs = self.n_attrs;
        let targets: Vec<u32> = crate::parallel::chunked_map(
            n,
            threads,
            || (FastSet::default(), FastSet::default(), Vec::new()),
            |item, (seen_items, seen_clusters, shortlist)| {
                let i = item as usize;
                let keys = &band_keys[i * n_bands..(i + 1) * n_bands];
                shortlist_for_keys(
                    buckets,
                    cluster_of,
                    keys,
                    seen_items,
                    seen_clusters,
                    shortlist,
                );
                let row = &rows[i * n_attrs..(i + 1) * n_attrs];
                match best_for(clusters, row, shortlist) {
                    Some((c, _)) => c.0,
                    None => cluster_of[i].0,
                }
            },
        );
        let mut moves = 0usize;
        for (item, &target) in targets.iter().enumerate() {
            let target = ClusterId(target);
            let current = self.cluster_of[item];
            if target == current {
                continue;
            }
            // Revalidate the frozen-state candidate against the *live* modes
            // before applying (same acceptance rule as the serial pass:
            // strictly closer, or equally close with a lower id). Without
            // this, pairs of Jacobi decisions taken against the same frozen
            // state can undo each other forever and `while refine_pass() > 0`
            // would never terminate; with it, every applied move improves
            // the live objective, preserving the serial pass's termination
            // guarantee. Decisions stay deterministic at any thread count:
            // the candidates are thread-count independent and this filter
            // runs sequentially in item order.
            let row: Vec<ValueId> = self.row_of(item as u32).to_vec();
            let d_target = matching(&row, &self.clusters[target.idx()].mode);
            let d_current = matching(&row, &self.clusters[current.idx()].mode);
            if d_target < d_current || (d_target == d_current && target < current) {
                self.clusters[current.idx()].remove(&row);
                self.clusters[target.idx()].add(&row);
                self.cluster_of[item] = target;
                moves += 1;
            }
        }
        moves
    }
}

/// Read-only shortlist query over the streaming index parts: collects the
/// distinct clusters of the distinct items in the probed buckets. Shared by
/// the sequential inserter (through its own scratch fields) and the
/// per-thread workers of [`StreamingMhKModes::refine_pass_parallel`].
fn shortlist_for_keys(
    buckets: &[FastMap<u64, Vec<u32>>],
    cluster_of: &[ClusterId],
    keys: &[u64],
    seen_items: &mut FastSet<u32>,
    seen_clusters: &mut FastSet<u32>,
    out: &mut Vec<ClusterId>,
) {
    out.clear();
    seen_items.clear();
    seen_clusters.clear();
    for (band, key) in keys.iter().enumerate() {
        if let Some(members) = buckets[band].get(key) {
            for &other in members {
                if seen_items.insert(other) {
                    let c = cluster_of[other as usize];
                    if seen_clusters.insert(c.0) {
                        out.push(c);
                    }
                }
            }
        }
    }
}

/// Best shortlisted cluster for `row` (smallest matching dissimilarity to
/// the cluster mode, ties to the lowest cluster id) — the search kernel of
/// both refinement passes and the inserter.
fn best_for(
    clusters: &[ClusterState],
    row: &[ValueId],
    shortlist: &[ClusterId],
) -> Option<(ClusterId, u32)> {
    let mut best: Option<(ClusterId, u32)> = None;
    for &c in shortlist {
        let d = matching(row, &clusters[c.idx()].mode);
        let replace = match best {
            None => true,
            Some((bc, bd)) => d < bd || (d == bd && c < bc),
        };
        if replace {
            best = Some((c, d));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::Dataset;
    use lshclust_datagen::datgen::{generate, DatgenConfig};

    fn config(n_attrs: usize) -> StreamingConfig {
        StreamingConfig::new(Banding::new(16, 2), n_attrs)
    }

    fn rule_dataset() -> Dataset {
        generate(&DatgenConfig::new(200, 10, 20).seed(5))
    }

    #[test]
    fn first_item_founds_cluster_zero() {
        let mut s = StreamingMhKModes::new(config(3), Schema::anonymous(3));
        let out = s.insert(&[ValueId(1), ValueId(2), ValueId(3)]);
        assert_eq!(out.cluster, ClusterId(0));
        assert!(out.founded_new_cluster);
        assert_eq!(out.shortlist_len, 0);
        assert_eq!(s.n_clusters(), 1);
    }

    #[test]
    fn identical_items_share_a_cluster() {
        let mut s = StreamingMhKModes::new(config(3), Schema::anonymous(3));
        let row = [ValueId(1), ValueId(2), ValueId(3)];
        s.insert(&row);
        let out = s.insert(&row);
        assert_eq!(out.cluster, ClusterId(0));
        assert!(!out.founded_new_cluster);
        assert_eq!(s.cluster_size(ClusterId(0)), 2);
    }

    #[test]
    fn dissimilar_items_found_new_clusters() {
        let mut s = StreamingMhKModes::new(config(3), Schema::anonymous(3));
        s.insert(&[ValueId(1), ValueId(2), ValueId(3)]);
        let out = s.insert(&[ValueId(10), ValueId(20), ValueId(30)]);
        assert!(out.founded_new_cluster);
        assert_eq!(s.n_clusters(), 2);
    }

    #[test]
    fn max_clusters_cap_is_enforced() {
        let mut cfg = config(2);
        cfg.max_clusters = Some(2);
        cfg.distance_threshold = 0; // always prefer founding
        let mut s = StreamingMhKModes::new(cfg, Schema::anonymous(2));
        for i in 0..10u32 {
            s.insert(&[ValueId(i * 7), ValueId(i * 13)]);
        }
        assert!(s.n_clusters() <= 2);
        assert_eq!(s.n_items(), 10);
    }

    #[test]
    fn streaming_recovers_rule_clusters() {
        let ds = rule_dataset();
        let mut s = StreamingMhKModes::new(
            StreamingConfig::new(Banding::new(16, 2), ds.n_attrs()),
            ds.schema().clone(),
        );
        for i in 0..ds.n_items() {
            s.insert(ds.row(i));
        }
        // Same-label items should overwhelmingly share clusters.
        let labels = ds.labels().unwrap();
        let pred: Vec<u32> = s.assignments().iter().map(|c| c.0).collect();
        let purity = lshclust_metrics::purity(&pred, labels);
        assert!(purity > 0.8, "streaming purity {purity}");
        // And without a cap, the cluster count should be in the right ballpark
        // (not one-per-item, not a single blob).
        assert!(
            s.n_clusters() >= 10 && s.n_clusters() < 100,
            "{} clusters",
            s.n_clusters()
        );
    }

    #[test]
    fn per_item_shortlist_stays_small() {
        let ds = rule_dataset();
        let mut s = StreamingMhKModes::new(
            StreamingConfig::new(Banding::new(16, 2), ds.n_attrs()),
            ds.schema().clone(),
        );
        let mut total = 0usize;
        for i in 0..ds.n_items() {
            total += s.insert(ds.row(i)).shortlist_len;
        }
        let avg = total as f64 / ds.n_items() as f64;
        assert!(avg < 5.0, "avg streaming shortlist {avg}");
    }

    #[test]
    fn modes_track_majorities_incrementally() {
        let mut s = StreamingMhKModes::new(config(2), Schema::anonymous(2));
        s.insert(&[ValueId(1), ValueId(5)]);
        s.insert(&[ValueId(1), ValueId(6)]);
        s.insert(&[ValueId(1), ValueId(6)]);
        assert_eq!(s.n_clusters(), 1);
        assert_eq!(s.mode(ClusterId(0)), &[ValueId(1), ValueId(6)]);
    }

    #[test]
    fn refine_pass_reaches_fixpoint() {
        let ds = rule_dataset();
        let mut s = StreamingMhKModes::new(
            StreamingConfig::new(Banding::new(16, 2), ds.n_attrs()),
            ds.schema().clone(),
        );
        for i in 0..ds.n_items() {
            s.insert(ds.row(i));
        }
        let mut last = usize::MAX;
        for _ in 0..10 {
            let moves = s.refine_pass();
            assert!(moves <= ds.n_items());
            last = moves;
            if moves == 0 {
                break;
            }
        }
        assert_eq!(last, 0, "refinement did not converge");
        // Cluster sizes still sum to n.
        let total: u32 = (0..s.n_clusters())
            .map(|c| s.cluster_size(ClusterId(c as u32)))
            .sum();
        assert_eq!(total as usize, ds.n_items());
    }

    #[test]
    fn refine_improves_or_maintains_purity() {
        let ds = rule_dataset();
        let labels = ds.labels().unwrap();
        let mut s = StreamingMhKModes::new(
            StreamingConfig::new(Banding::new(8, 2), ds.n_attrs()),
            ds.schema().clone(),
        );
        for i in 0..ds.n_items() {
            s.insert(ds.row(i));
        }
        let before: Vec<u32> = s.assignments().iter().map(|c| c.0).collect();
        let p_before = lshclust_metrics::purity(&before, labels);
        for _ in 0..5 {
            if s.refine_pass() == 0 {
                break;
            }
        }
        let after: Vec<u32> = s.assignments().iter().map(|c| c.0).collect();
        let p_after = lshclust_metrics::purity(&after, labels);
        assert!(
            p_after >= p_before - 0.05,
            "purity degraded: {p_before} -> {p_after}"
        );
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut s = StreamingMhKModes::new(config(3), Schema::anonymous(3));
        s.insert(&[ValueId(1)]);
    }
}
