//! Per-attribute string interning.
//!
//! Categorical comparisons in the hot clustering loops must be integer
//! comparisons, so every attribute owns a [`Dictionary`] mapping category
//! strings (e.g. `"blue"`, `"zoo-1"`) to dense [`ValueId`]s. A [`Schema`]
//! bundles one dictionary per attribute together with attribute names.

use crate::types::{AttrId, ValueId, NOT_PRESENT};
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::collections::HashMap;

/// Interner for one attribute's category values.
///
/// Values are assigned dense ids in first-seen order, so a dictionary built
/// from the same value stream is always identical — important for the
/// workspace-wide determinism policy (DESIGN.md §7).
#[derive(Clone, Debug, Default)]
pub struct Dictionary {
    by_name: HashMap<String, ValueId>,
    names: Vec<String>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its existing or freshly assigned id.
    pub fn intern(&mut self, name: &str) -> ValueId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = ValueId(u32::try_from(self.names.len()).expect("dictionary overflows u32"));
        self.by_name.insert(name.to_owned(), id);
        self.names.push(name.to_owned());
        id
    }

    /// Looks up a value id without interning.
    pub fn get(&self, name: &str) -> Option<ValueId> {
        self.by_name.get(name).copied()
    }

    /// Returns the string for `id`, or `None` for out-of-range or
    /// [`NOT_PRESENT`] ids.
    pub fn name(&self, id: ValueId) -> Option<&str> {
        if id == NOT_PRESENT {
            return None;
        }
        self.names.get(id.idx()).map(String::as_str)
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ValueId(i as u32), n.as_str()))
    }
}

/// Attribute names plus one [`Dictionary`] per attribute.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    attr_names: Vec<String>,
    dictionaries: Vec<Dictionary>,
    /// Per-attribute value that encodes "feature absent", if any.
    absent_values: Vec<Option<ValueId>>,
}

impl Schema {
    /// Creates a schema with the given attribute names and empty dictionaries.
    pub fn new(attr_names: Vec<String>) -> Self {
        let n = attr_names.len();
        Self {
            attr_names,
            dictionaries: vec![Dictionary::new(); n],
            absent_values: vec![None; n],
        }
    }

    /// Creates an anonymous schema with `n` attributes named `a0..a{n-1}`.
    pub fn anonymous(n: usize) -> Self {
        Self::new((0..n).map(|i| format!("a{i}")).collect())
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// Name of attribute `attr`.
    pub fn attr_name(&self, attr: AttrId) -> &str {
        &self.attr_names[attr.idx()]
    }

    /// Immutable access to the dictionary of attribute `attr`.
    pub fn dictionary(&self, attr: AttrId) -> &Dictionary {
        &self.dictionaries[attr.idx()]
    }

    /// Mutable access to the dictionary of attribute `attr`.
    pub fn dictionary_mut(&mut self, attr: AttrId) -> &mut Dictionary {
        &mut self.dictionaries[attr.idx()]
    }

    /// Marks `value` as the "absent" encoding for attribute `attr`.
    ///
    /// Items holding this value (or [`NOT_PRESENT`]) in that column are
    /// skipped by [`crate::PresentElements`], mirroring the paper's filtering
    /// of `No` word-presence indicators before MinHash.
    pub fn set_absent_value(&mut self, attr: AttrId, value: ValueId) {
        self.absent_values[attr.idx()] = Some(value);
    }

    /// The "absent" value for attribute `attr`, if one was registered.
    pub fn absent_value(&self, attr: AttrId) -> Option<ValueId> {
        self.absent_values[attr.idx()]
    }

    /// Whether `value` in column `attr` means "feature absent".
    #[inline]
    pub fn is_absent(&self, attr: AttrId, value: ValueId) -> bool {
        value == NOT_PRESENT || self.absent_values[attr.idx()] == Some(value)
    }

    /// Size of the largest attribute domain.
    pub fn max_domain(&self) -> usize {
        self.dictionaries
            .iter()
            .map(Dictionary::len)
            .max()
            .unwrap_or(0)
    }
}

// A schema serializes as one entry per attribute carrying the name, the
// dictionary's values in id order, and the registered absent value (if any):
// `{"attrs": [{"name": "a0", "values": ["x", "y"], "absent": null}, …]}`.
// Interning the value list back in order reproduces the exact same dense
// ids, so encoded datasets and saved models stay aligned across processes.
impl Serialize for Schema {
    fn to_value(&self) -> Value {
        let attrs = (0..self.n_attrs())
            .map(|a| {
                let attr = AttrId(a as u32);
                let values = self
                    .dictionary(attr)
                    .iter()
                    .map(|(_, name)| Value::String(name.to_owned()))
                    .collect();
                Value::Object(vec![
                    (
                        "name".to_owned(),
                        Value::String(self.attr_name(attr).to_owned()),
                    ),
                    ("values".to_owned(), Value::Array(values)),
                    (
                        "absent".to_owned(),
                        Serialize::to_value(&self.absent_value(attr)),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![("attrs".to_owned(), Value::Array(attrs))])
    }
}

impl Deserialize for Schema {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let attrs = v
            .get("attrs")
            .and_then(Value::as_array)
            .ok_or_else(|| SerdeError::expected("object with `attrs` array", "Schema"))?;
        let mut names = Vec::with_capacity(attrs.len());
        for entry in attrs {
            let name = entry
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| SerdeError::expected("attribute `name` string", "Schema"))?;
            names.push(name.to_owned());
        }
        let mut schema = Schema::new(names);
        for (a, entry) in attrs.iter().enumerate() {
            let attr = AttrId(a as u32);
            let values = entry
                .get("values")
                .and_then(Value::as_array)
                .ok_or_else(|| SerdeError::expected("attribute `values` array", "Schema"))?;
            for (i, value) in values.iter().enumerate() {
                let name = value
                    .as_str()
                    .ok_or_else(|| SerdeError::expected("string value", "Schema"))?;
                // Interning dedups, so a duplicated entry would silently
                // shift every later id away from the serialized ordering —
                // reject the artifact instead.
                let id = schema.dictionary_mut(attr).intern(name);
                if id.idx() != i {
                    return Err(SerdeError(format!(
                        "duplicate value `{name}` in the dictionary of attribute {a}"
                    )));
                }
            }
            let absent: Option<ValueId> = match entry.get("absent") {
                Some(v) => Deserialize::from_value(v)?,
                None => None,
            };
            if let Some(value) = absent {
                if value.idx() >= schema.dictionary(attr).len() && value != NOT_PRESENT {
                    return Err(SerdeError(format!(
                        "absent value {value} out of range for attribute {a}"
                    )));
                }
                schema.set_absent_value(attr, value);
            }
        }
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("blue");
        let b = d.intern("green");
        let a2 = d.intern("blue");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_first_seen_order() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("x"), ValueId(0));
        assert_eq!(d.intern("y"), ValueId(1));
        assert_eq!(d.intern("z"), ValueId(2));
        assert_eq!(d.name(ValueId(1)), Some("y"));
    }

    #[test]
    fn name_of_not_present_is_none() {
        let mut d = Dictionary::new();
        d.intern("x");
        assert_eq!(d.name(NOT_PRESENT), None);
        assert_eq!(d.name(ValueId(99)), None);
    }

    #[test]
    fn get_does_not_intern() {
        let mut d = Dictionary::new();
        assert_eq!(d.get("a"), None);
        d.intern("a");
        assert_eq!(d.get("a"), Some(ValueId(0)));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Dictionary::new();
        d.intern("p");
        d.intern("q");
        let v: Vec<_> = d.iter().map(|(i, n)| (i.0, n.to_owned())).collect();
        assert_eq!(v, vec![(0, "p".to_owned()), (1, "q".to_owned())]);
    }

    #[test]
    fn schema_absent_values() {
        let mut s = Schema::anonymous(2);
        let v = s.dictionary_mut(AttrId(0)).intern("word-0");
        s.set_absent_value(AttrId(0), v);
        assert!(s.is_absent(AttrId(0), v));
        assert!(!s.is_absent(AttrId(1), v));
        assert!(s.is_absent(AttrId(1), NOT_PRESENT));
        assert_eq!(s.absent_value(AttrId(0)), Some(v));
        assert_eq!(s.absent_value(AttrId(1)), None);
    }

    #[test]
    fn anonymous_schema_names() {
        let s = Schema::anonymous(3);
        assert_eq!(s.n_attrs(), 3);
        assert_eq!(s.attr_name(AttrId(2)), "a2");
    }

    #[test]
    fn schema_round_trips_through_value_tree() {
        let mut s = Schema::new(vec!["colour".into(), "word-presence".into()]);
        s.dictionary_mut(AttrId(0)).intern("red");
        s.dictionary_mut(AttrId(0)).intern("blue");
        let no = s.dictionary_mut(AttrId(1)).intern("absent");
        s.dictionary_mut(AttrId(1)).intern("present");
        s.set_absent_value(AttrId(1), no);

        let back = Schema::from_value(&s.to_value()).unwrap();
        assert_eq!(back.n_attrs(), 2);
        assert_eq!(back.attr_name(AttrId(0)), "colour");
        assert_eq!(back.dictionary(AttrId(0)).get("blue"), Some(ValueId(1)));
        assert_eq!(back.absent_value(AttrId(1)), Some(no));
        assert!(back.is_absent(AttrId(1), no));
        // Round-trip is a fixpoint at the value-tree level.
        assert_eq!(back.to_value(), s.to_value());
    }

    #[test]
    fn schema_deserialize_rejects_duplicate_values() {
        let dup = Value::Object(vec![(
            "attrs".to_owned(),
            Value::Array(vec![Value::Object(vec![
                ("name".to_owned(), Value::String("a0".to_owned())),
                (
                    "values".to_owned(),
                    Value::Array(vec![
                        Value::String("red".to_owned()),
                        Value::String("blue".to_owned()),
                        Value::String("red".to_owned()),
                    ]),
                ),
                ("absent".to_owned(), Value::Null),
            ])]),
        )]);
        let err = Schema::from_value(&dup).unwrap_err();
        assert!(err.0.contains("duplicate"), "{err}");
    }

    #[test]
    fn schema_deserialize_rejects_out_of_range_absent() {
        let mut s = Schema::anonymous(1);
        s.dictionary_mut(AttrId(0)).intern("x");
        let mut v = s.to_value();
        if let Value::Object(entries) = &mut v {
            if let Value::Array(attrs) = &mut entries[0].1 {
                if let Value::Object(fields) = &mut attrs[0] {
                    fields[2].1 = Serialize::to_value(&7u32); // absent id 7, domain size 1
                }
            }
        }
        assert!(Schema::from_value(&v).is_err());
    }

    #[test]
    fn max_domain_tracks_largest_dictionary() {
        let mut s = Schema::anonymous(2);
        s.dictionary_mut(AttrId(0)).intern("a");
        s.dictionary_mut(AttrId(1)).intern("a");
        s.dictionary_mut(AttrId(1)).intern("b");
        assert_eq!(s.max_domain(), 2);
    }
}
