//! Mixed-data extension: **MH-K-Prototypes** — LSH-accelerated K-Prototypes.
//!
//! The paper's further work asks for "combinations of both" categorical and
//! numeric data. The framework makes this a composition exercise:
//!
//! * the [`CentroidModel`] is K-Prototypes (mixed distance
//!   `matching + γ·euclidean²`, mode+mean prototypes),
//! * the [`ShortlistProvider`] is the **union** of a MinHash index over the
//!   categorical part and a SimHash index over the numeric part
//!   ([`UnionProvider`]) — an item collides if *either* modality finds it
//!   similar, so the shortlist covers clusters that are close in either
//!   space.
//!
//! The driver is the unchanged [`crate::framework::fit`].

use crate::framework::{self, ActivitySet, CentroidModel, ShortlistProvider, StopPolicy};
use crate::mhkmeans::{SimHashIndex, SimHashProvider};
use crate::mhkmodes::MinHashProvider;
use lshclust_categorical::{ClusterId, ValueId};
use lshclust_kmodes::kprototypes::{MixedDataset, Prototypes};
use lshclust_kmodes::modes::{group_by_cluster, Modes};
use lshclust_kmodes::stats::RunSummary;
use lshclust_minhash::index::LshIndexBuilder;
use lshclust_minhash::Banding;
use std::time::Instant;

/// The K-Prototypes instantiation of [`CentroidModel`].
pub struct KPrototypesModel<'a> {
    data: &'a MixedDataset<'a>,
    prototypes: Prototypes,
    gamma: f64,
}

impl<'a> KPrototypesModel<'a> {
    /// Wraps mixed data with initial prototypes and a mixing weight.
    pub fn new(data: &'a MixedDataset<'a>, prototypes: Prototypes, gamma: f64) -> Self {
        Self {
            data,
            prototypes,
            gamma,
        }
    }

    /// The current prototypes.
    pub fn prototypes(&self) -> &Prototypes {
        &self.prototypes
    }

    /// Consumes the model, returning the prototypes.
    pub fn into_prototypes(self) -> Prototypes {
        self.prototypes
    }

    /// The wrapped dataset (at its own lifetime; see
    /// `KModesModel::dataset_ref`).
    pub(crate) fn data_ref(&self) -> &'a MixedDataset<'a> {
        self.data
    }

    /// Mutable access to the prototypes (mini-batch nudges).
    pub(crate) fn prototypes_mut(&mut self) -> &mut Prototypes {
        &mut self.prototypes
    }
}

impl CentroidModel for KPrototypesModel<'_> {
    type Snapshot = Prototypes;

    fn snapshot_centroids(&self) -> Prototypes {
        self.prototypes.clone()
    }

    fn restore_centroids(&mut self, snapshot: Prototypes) {
        self.prototypes = snapshot;
    }

    fn k(&self) -> usize {
        self.prototypes.k()
    }

    fn n_items(&self) -> usize {
        self.data.n_items()
    }

    fn best_full(&self, item: u32) -> (ClusterId, f64) {
        let mut best = ClusterId(0);
        let mut best_d = f64::INFINITY;
        for c in 0..self.k() {
            let d = self
                .prototypes
                .distance(self.data, item as usize, c, self.gamma);
            if d < best_d {
                best_d = d;
                best = ClusterId(c as u32);
            }
        }
        (best, best_d)
    }

    fn best_among(&self, item: u32, candidates: &[ClusterId]) -> Option<(ClusterId, f64)> {
        let mut best: Option<(ClusterId, f64)> = None;
        for &c in candidates {
            let d = self
                .prototypes
                .distance(self.data, item as usize, c.idx(), self.gamma);
            let replace = match best {
                None => true,
                Some((bc, bd)) => d < bd || (d == bd && c < bc),
            };
            if replace {
                best = Some((c, d));
            }
        }
        best
    }

    fn update_centroids(&mut self, assignments: &[ClusterId]) -> ActivitySet {
        let old = self.prototypes.clone();
        self.prototypes.recompute(self.data, assignments);
        let k = self.k();
        let dim = self.prototypes.dim();
        let mut activity = ActivitySet::none(k);
        for c in 0..k {
            if self.prototypes.modes.mode(c) != old.modes.mode(c)
                || self.prototypes.means[c * dim..(c + 1) * dim]
                    != old.means[c * dim..(c + 1) * dim]
            {
                activity.mark(ClusterId(c as u32));
            }
        }
        activity
    }

    fn update_centroids_parallel(
        &mut self,
        assignments: &[ClusterId],
        threads: usize,
    ) -> ActivitySet {
        if threads <= 1 {
            return self.update_centroids(assignments);
        }
        // Cluster-by-cluster mode + mean recomputation through the same
        // kernels as the serial path (CSR member order) — bit-identical to
        // the serial update at any thread count.
        let k = self.k();
        let dim = self.prototypes.dim();
        let n_attrs = self.prototypes.modes.n_attrs();
        let groups = group_by_cluster(assignments, k);
        let data = self.data;
        let new: Vec<Option<(Vec<ValueId>, Vec<f64>)>> = crate::parallel::chunked_map(
            k,
            threads,
            Vec::new,
            |c, counts: &mut Vec<(ValueId, u32)>| {
                let members = groups.members(c as usize);
                if members.is_empty() {
                    return None; // keep previous prototype
                }
                let mut mode = Vec::with_capacity(n_attrs);
                Modes::mode_of_members(data.categorical, members, counts, &mut mode);
                let mut mean = vec![0.0f64; dim];
                for &i in members {
                    for (s, &x) in mean.iter_mut().zip(data.numeric.row(i as usize)) {
                        *s += x;
                    }
                }
                for s in &mut mean {
                    *s /= members.len() as f64;
                }
                Some((mode, mean))
            },
        );
        let mut activity = ActivitySet::none(k);
        for (c, update) in new.iter().enumerate() {
            let Some((mode, mean)) = update else { continue };
            if self.prototypes.modes.mode(c) != mode.as_slice()
                || self.prototypes.means[c * dim..(c + 1) * dim] != mean[..]
            {
                activity.mark(ClusterId(c as u32));
            }
            self.prototypes.modes.set_mode(ClusterId(c as u32), mode);
            self.prototypes.means[c * dim..(c + 1) * dim].copy_from_slice(mean);
        }
        activity
    }

    fn total_cost(&self, assignments: &[ClusterId]) -> f64 {
        assignments
            .iter()
            .enumerate()
            .map(|(i, &c)| self.prototypes.distance(self.data, i, c.idx(), self.gamma))
            .sum()
    }
}

/// Union of two shortlist providers: candidates from either, deduplicated.
///
/// Both providers receive every `record_assignment` so their cluster
/// references stay in lock-step.
pub struct UnionProvider<A: ShortlistProvider, B: ShortlistProvider> {
    first: A,
    second: B,
    buf: Vec<ClusterId>,
}

impl<A: ShortlistProvider, B: ShortlistProvider> UnionProvider<A, B> {
    /// Combines two providers.
    pub fn new(first: A, second: B) -> Self {
        Self {
            first,
            second,
            buf: Vec::new(),
        }
    }
}

impl<A: ShortlistProvider, B: ShortlistProvider> ShortlistProvider for UnionProvider<A, B> {
    fn shortlist(&mut self, item: u32, out: &mut Vec<ClusterId>) {
        self.first.shortlist(item, out);
        self.second.shortlist(item, &mut self.buf);
        for &c in &self.buf {
            if !out.contains(&c) {
                out.push(c);
            }
        }
    }

    fn record_assignment(&mut self, item: u32, cluster: ClusterId) {
        self.first.record_assignment(item, cluster);
        self.second.record_assignment(item, cluster);
    }
}

/// Per-thread scratch of a [`UnionProvider`]: one scratch per side plus the
/// merge buffer.
pub struct UnionScratch<A, B> {
    first: A,
    second: B,
    buf: Vec<ClusterId>,
}

impl<A, B> crate::parallel::SyncShortlistProvider for UnionProvider<A, B>
where
    A: crate::parallel::SyncShortlistProvider,
    B: crate::parallel::SyncShortlistProvider,
{
    type Scratch = UnionScratch<A::Scratch, B::Scratch>;

    fn make_scratch(&self) -> Self::Scratch {
        UnionScratch {
            first: self.first.make_scratch(),
            second: self.second.make_scratch(),
            buf: Vec::new(),
        }
    }

    fn shortlist_into(&self, item: u32, scratch: &mut Self::Scratch, out: &mut Vec<ClusterId>) {
        self.first.shortlist_into(item, &mut scratch.first, out);
        self.second
            .shortlist_into(item, &mut scratch.second, &mut scratch.buf);
        for &c in &scratch.buf {
            if !out.contains(&c) {
                out.push(c);
            }
        }
    }
}

/// Configuration for MH-K-Prototypes.
#[derive(Clone, Debug)]
pub struct MhKPrototypesConfig {
    /// Number of clusters.
    pub k: usize,
    /// Mixing weight γ.
    pub gamma: f64,
    /// MinHash banding for the categorical part.
    pub banding: Banding,
    /// SimHash bands × rows for the numeric part.
    pub sim_bands: u32,
    /// SimHash bits per band.
    pub sim_rows: u32,
    /// Iteration policy (cap + stop criteria).
    pub stop: StopPolicy,
    /// Seed.
    pub seed: u64,
    /// Assignment-pass threads. `1` (and the clamped `0`) keeps the serial
    /// Gauss–Seidel pass; `> 1` runs the Jacobi parallel engine of
    /// [`crate::parallel`] over the union shortlists.
    pub threads: usize,
    /// Cluster-closure incremental assignment (byte-identical results;
    /// `false` is the escape hatch).
    pub closures: bool,
    /// Interleaved parallel chunk scheduling (identical results; bench axis).
    pub interleaved: bool,
}

impl MhKPrototypesConfig {
    /// Defaults: 20b5r MinHash, 8 bands × 16 bits SimHash (high-rows SimHash
    /// keeps angular wedges narrow; see `bench_index`), 100-iteration cap,
    /// serial assignment.
    pub fn new(k: usize, gamma: f64) -> Self {
        Self {
            k,
            gamma,
            banding: Banding::new(20, 5),
            sim_bands: 8,
            sim_rows: 16,
            stop: StopPolicy::default(),
            seed: 0,
            threads: 1,
            closures: true,
            interleaved: false,
        }
    }

    /// Sets the number of assignment threads (`0` clamps to `1`).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Enables/disables cluster-closure incremental assignment.
    pub fn closures(mut self, yes: bool) -> Self {
        self.closures = yes;
        self
    }

    /// Selects interleaved vs contiguous parallel chunk scheduling.
    pub fn interleaved(mut self, yes: bool) -> Self {
        self.interleaved = yes;
        self
    }
}

/// Result of an MH-K-Prototypes run.
pub struct MhKPrototypesResult {
    /// Final cluster per item.
    pub assignments: Vec<ClusterId>,
    /// Final prototypes.
    pub prototypes: Prototypes,
    /// Instrumentation.
    pub summary: RunSummary,
}

/// Runs LSH-accelerated K-Prototypes on mixed data.
pub fn mh_kprototypes(
    data: &MixedDataset<'_>,
    config: &MhKPrototypesConfig,
) -> MhKPrototypesResult {
    let setup_start = Instant::now();
    let picks = lshclust_kmodes::init::sample_distinct_items(data.n_items(), config.k, config.seed);
    let prototypes = Prototypes::from_items(data, &picks);
    mh_kprototypes_from(data, config, prototypes, setup_start)
}

/// Runs LSH-accelerated K-Prototypes from explicit initial prototypes — the
/// warm-start path used by `lshclust`'s `ClusterSpec::warm_start`.
pub fn mh_kprototypes_from(
    data: &MixedDataset<'_>,
    config: &MhKPrototypesConfig,
    prototypes: Prototypes,
    setup_start: Instant,
) -> MhKPrototypesResult {
    assert_eq!(
        prototypes.k(),
        config.k,
        "initial prototypes disagree with k"
    );
    let mut model = KPrototypesModel::new(data, prototypes, config.gamma);

    // Initial full assignment — fanned over `config.threads`, byte-identical
    // to the serial pass.
    let mut assignments = vec![ClusterId(0); data.n_items()];
    crate::parallel::assign_full_parallel(&model, &mut assignments, config.threads);
    model.update_centroids_parallel(&assignments, config.threads);

    // One index per modality, sharing cluster references through the union;
    // item hashing fans over the threads on both sides.
    let minhash_builder = LshIndexBuilder::new(config.banding).seed(config.seed ^ 0x6d68_6b70);
    let minhash_index = crate::parallel::build_lsh_index_parallel(
        &minhash_builder,
        data.categorical,
        &assignments,
        config.threads,
    );
    let simhash_index = SimHashIndex::build_parallel(
        data.numeric,
        config.sim_bands,
        config.sim_rows,
        config.seed ^ 0x7368_6b70,
        &assignments,
        config.threads,
    );
    let mut provider = UnionProvider::new(
        MinHashProvider::new(minhash_index, config.k, true),
        SimHashProvider::new(simhash_index),
    );
    let setup = setup_start.elapsed();

    let run = if config.threads <= 1 {
        framework::fit(
            &mut model,
            &mut provider,
            assignments,
            setup,
            &config.stop,
            config.closures,
        )
    } else {
        crate::parallel::parallel_fit(
            &mut model,
            &mut provider,
            assignments,
            setup,
            &config.stop,
            config.threads,
            config.closures,
            config.interleaved,
        )
    };
    MhKPrototypesResult {
        assignments: run.assignments,
        prototypes: model.prototypes,
        summary: run.summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::{Dataset, DatasetBuilder};
    use lshclust_kmodes::kmeans::NumericDataset;
    use lshclust_kmodes::kprototypes::{kprototypes, suggest_gamma, KPrototypesConfig};

    /// Groups separated in both modalities.
    fn fixture(groups: usize, per_group: usize) -> (Dataset, NumericDataset) {
        let mut b = DatasetBuilder::anonymous(4);
        let mut numeric = Vec::new();
        for g in 0..groups {
            for i in 0..per_group {
                let cat: Vec<String> = (0..4)
                    .map(|a| {
                        if a == 3 {
                            format!("g{g}n{i}")
                        } else {
                            format!("g{g}a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = cat.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
                let base = g as f64 * 8.0;
                numeric.extend_from_slice(&[base + 0.05 * i as f64, base - 0.05 * i as f64]);
            }
        }
        (b.finish(), NumericDataset::new(2, numeric))
    }

    #[test]
    fn recovers_mixed_blobs() {
        let (cat, num) = fixture(4, 6);
        let data = MixedDataset::new(&cat, &num);
        // Seed 1 spreads the 4 random initial prototypes across all 4
        // groups; k-prototypes has no empty-cluster reseeding, so an init
        // that doubles up inside one group can never recover the partition.
        let mut config = MhKPrototypesConfig::new(4, suggest_gamma(&num));
        config.seed = 1;
        let result = mh_kprototypes(&data, &config);
        assert!(result.summary.converged);
        for g in 0..4 {
            let first = result.assignments[g * 6];
            for i in 0..6 {
                assert_eq!(result.assignments[g * 6 + i], first, "group {g} split");
            }
        }
    }

    #[test]
    fn matches_full_search_kprototypes_on_separated_data() {
        let (cat, num) = fixture(3, 5);
        let data = MixedDataset::new(&cat, &num);
        let gamma = suggest_gamma(&num);
        let full = kprototypes(&data, &KPrototypesConfig::new(3, gamma));
        let accel = mh_kprototypes(&data, &MhKPrototypesConfig::new(3, gamma));
        for i in 0..data.n_items() {
            for j in (i + 1)..data.n_items() {
                assert_eq!(
                    full.assignments[i] == full.assignments[j],
                    accel.assignments[i] == accel.assignments[j],
                    "items {i},{j} co-membership differs"
                );
            }
        }
    }

    #[test]
    fn union_provider_unions_and_dedups() {
        struct Fixed(Vec<ClusterId>);
        impl ShortlistProvider for Fixed {
            fn shortlist(&mut self, _item: u32, out: &mut Vec<ClusterId>) {
                out.clear();
                out.extend_from_slice(&self.0);
            }
            fn record_assignment(&mut self, _item: u32, _cluster: ClusterId) {}
        }
        let mut union = UnionProvider::new(
            Fixed(vec![ClusterId(1), ClusterId(2)]),
            Fixed(vec![ClusterId(2), ClusterId(3)]),
        );
        let mut out = Vec::new();
        union.shortlist(0, &mut out);
        let mut sorted = out.clone();
        sorted.sort();
        assert_eq!(sorted, vec![ClusterId(1), ClusterId(2), ClusterId(3)]);
    }

    #[test]
    fn union_provider_propagates_assignments() {
        struct Recording(Vec<(u32, ClusterId)>);
        impl ShortlistProvider for Recording {
            fn shortlist(&mut self, _item: u32, out: &mut Vec<ClusterId>) {
                out.clear();
            }
            fn record_assignment(&mut self, item: u32, cluster: ClusterId) {
                self.0.push((item, cluster));
            }
        }
        let mut union = UnionProvider::new(Recording(Vec::new()), Recording(Vec::new()));
        union.record_assignment(7, ClusterId(3));
        assert_eq!(union.first.0, vec![(7, ClusterId(3))]);
        assert_eq!(union.second.0, vec![(7, ClusterId(3))]);
    }

    #[test]
    fn shortlist_smaller_than_k() {
        let (cat, num) = fixture(8, 5);
        let data = MixedDataset::new(&cat, &num);
        let result = mh_kprototypes(&data, &MhKPrototypesConfig::new(8, suggest_gamma(&num)));
        let last = result.summary.iterations.last().unwrap();
        assert!(
            last.avg_candidates < 8.0,
            "avg shortlist {}",
            last.avg_candidates
        );
    }

    #[test]
    fn deterministic() {
        let (cat, num) = fixture(3, 4);
        let data = MixedDataset::new(&cat, &num);
        let cfg = MhKPrototypesConfig::new(3, 1.0);
        let a = mh_kprototypes(&data, &cfg);
        let b = mh_kprototypes(&data, &cfg);
        assert_eq!(a.assignments, b.assignments);
    }
}
