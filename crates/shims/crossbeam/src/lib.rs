//! Workspace-local stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided — the one API the workspace uses — and
//! it is implemented directly on `std::thread::scope`, which has offered the
//! same structured-concurrency guarantee since Rust 1.63.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle mirroring `crossbeam::thread::Scope`: `spawn` hands the
    /// closure a scope reference so spawned threads can spawn more.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; it is joined when the scope ends.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which threads borrowing from the environment
    /// can be spawned; all are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking child propagates the panic at join time
    /// (std semantics) instead of surfacing it through the `Err` arm, so the
    /// `Err` variant exists only for signature compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_can_borrow_and_mutate_disjoint_chunks() {
        let mut data = vec![0u64; 8];
        super::thread::scope(|scope| {
            for (i, chunk) in data.chunks_mut(2).enumerate() {
                scope.spawn(move |_| {
                    for slot in chunk {
                        *slot = i as u64 + 1;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(data, vec![1, 1, 2, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
