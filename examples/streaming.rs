//! The further-work extension in action: one-pass streaming clustering over
//! a growing LSH index, configured through the same [`ClusterSpec`] as every
//! batch run. Items arrive one at a time; each is routed by its MinHash
//! collisions to a shortlist of existing clusters, joining the best or
//! founding a new one — per-item cost independent of the cluster count.
//!
//! ```text
//! cargo run --release -p lshclust --example streaming
//! ```

use lshclust::{ClusterSpec, Clusterer, Lsh, StreamOptions};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_metrics::{normalized_mutual_information, purity};

fn main() {
    // A shuffled stream of rule-generated items: 4 000 items from 400
    // latent clusters.
    let config = DatgenConfig::new(4_000, 400, 60).seed(11);
    let dataset = generate(&config);
    let labels = dataset.labels().unwrap().to_vec();
    println!(
        "streaming {} items ({} latent clusters, {} attrs) one at a time...\n",
        dataset.n_items(),
        config.n_clusters,
        config.n_attrs
    );

    // Rule-generated items of the same latent cluster agree on 40–80% of
    // attributes, so two members are at most ~0.6·m apart while members of
    // different clusters sit near m; found a new cluster beyond 0.7·m.
    let spec = ClusterSpec::new(0) // k is discovered by the stream
        .lsh(Lsh::MinHash { bands: 16, rows: 2 })
        .stream(StreamOptions {
            distance_threshold: Some((dataset.n_attrs() as u32) * 7 / 10),
            max_clusters: None,
        });
    let mut clusterer = Clusterer::new(spec)
        .streaming(dataset.schema().clone())
        .unwrap();

    let start = std::time::Instant::now();
    let mut shortlist_total = 0usize;
    for i in 0..dataset.n_items() {
        let outcome = clusterer.insert(dataset.row(i));
        shortlist_total += outcome.shortlist_len;
        if (i + 1) % 1000 == 0 {
            println!(
                "  after {:>5} items: {:>4} clusters, avg shortlist {:.2}",
                i + 1,
                clusterer.n_clusters(),
                shortlist_total as f64 / (i + 1) as f64
            );
        }
    }
    let stream_time = start.elapsed();

    let pred: Vec<u32> = clusterer.assignments().iter().map(|c| c.0).collect();
    println!(
        "\none-pass result: {} clusters in {:.2}s, purity {:.3}, nmi {:.3}",
        clusterer.n_clusters(),
        stream_time.as_secs_f64(),
        purity(&pred, &labels),
        normalized_mutual_information(&pred, &labels)
    );

    // Optional refinement: re-run the (still shortlisted) assignment over
    // everything seen, converging toward the batch MH-K-Modes result.
    let refine_start = std::time::Instant::now();
    for pass in 1..=5 {
        let moves = clusterer.refine_pass();
        println!("refine pass {pass}: {moves} moves");
        if moves == 0 {
            break;
        }
    }
    let pred: Vec<u32> = clusterer.assignments().iter().map(|c| c.0).collect();
    println!(
        "refined result:  {} clusters (+{:.2}s), purity {:.3}, nmi {:.3}",
        clusterer.n_clusters(),
        refine_start.elapsed().as_secs_f64(),
        purity(&pred, &labels),
        normalized_mutual_information(&pred, &labels)
    );
}
