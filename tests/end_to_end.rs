//! Cross-crate end-to-end tests: datgen → K-Modes / MH-K-Modes → metrics.

use lshclust_core::mhkmodes::{paired_run, MhKModes, MhKModesConfig};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_metrics::purity;
use lshclust_minhash::Banding;

fn predictions(assignments: &[lshclust_categorical::ClusterId]) -> Vec<u32> {
    assignments.iter().map(|c| c.0).collect()
}

#[test]
fn mh_kmodes_recovers_rule_clusters_with_high_purity() {
    let config = DatgenConfig::new(600, 60, 40).seed(1);
    let dataset = generate(&config);
    let labels = dataset.labels().unwrap().to_vec();
    let result = MhKModes::new(
        MhKModesConfig::new(60, Banding::new(20, 5))
            .seed(1)
            .max_iterations(30),
    )
    .fit(&dataset);
    let p = purity(&predictions(&result.assignments), &labels);
    // Rule-generated clusters are extremely separable; random init costs some
    // purity but the bulk must be recovered.
    assert!(p > 0.7, "purity {p}");
}

#[test]
fn paired_run_speedup_and_quality() {
    let dataset = generate(&DatgenConfig::new(900, 150, 60).seed(3));
    let labels = dataset.labels().unwrap().to_vec();
    let (baseline, mh) = paired_run(&dataset, 150, Banding::new(20, 5), 3, 30);

    // Purity comparable (within a few points, paper Fig. 8).
    let bp = purity(&predictions(&baseline.assignments), &labels);
    let mp = purity(&predictions(&mh.assignments), &labels);
    assert!(bp - mp < 0.1, "baseline purity {bp} vs MH {mp}");

    // The shortlist is orders of magnitude below k (paper Fig. 2b).
    let avg = mh.summary.iterations.last().unwrap().avg_candidates;
    assert!(avg < 15.0, "avg shortlist {avg} not << k=150");

    // MH converges in no more iterations than the cap and actually stops.
    assert!(mh.summary.converged);
}

#[test]
fn mh_kmodes_total_cost_decreases_monotonically_until_stop() {
    let dataset = generate(&DatgenConfig::new(400, 40, 30).seed(5));
    let result = MhKModes::new(
        MhKModesConfig::new(40, Banding::new(10, 2))
            .seed(5)
            .max_iterations(30),
    )
    .fit(&dataset);
    let costs: Vec<u64> = result.summary.iterations.iter().map(|s| s.cost).collect();
    // Up to the stopping iteration the cost must not increase (the driver
    // stops as soon as it would).
    for w in costs.windows(2) {
        assert!(w[1] <= w[0], "cost increased mid-run: {costs:?}");
    }
}

#[test]
fn all_paper_bandings_run_to_convergence() {
    let dataset = generate(&DatgenConfig::new(300, 30, 50).seed(9));
    for (b, r) in [(1u32, 1u32), (20, 2), (20, 5), (50, 5)] {
        let result = MhKModes::new(
            MhKModesConfig::new(30, Banding::new(b, r))
                .seed(9)
                .max_iterations(40),
        )
        .fit(&dataset);
        assert!(
            result.summary.converged,
            "{b}b{r}r failed to converge in 40 iterations"
        );
        // Every iteration's shortlist average stays within [0, k].
        for s in &result.summary.iterations {
            assert!(s.avg_candidates >= 0.0 && s.avg_candidates <= 30.0);
        }
    }
}

#[test]
fn empty_clusters_are_tolerated() {
    // k close to n forces many empty/singleton clusters through the run.
    let dataset = generate(&DatgenConfig::new(80, 40, 20).seed(2));
    let result = MhKModes::new(
        MhKModesConfig::new(70, Banding::new(8, 2))
            .seed(2)
            .max_iterations(20),
    )
    .fit(&dataset);
    assert_eq!(result.assignments.len(), 80);
    assert!(result.modes.k() == 70);
}

#[test]
fn parallel_threads_match_serial_quality() {
    let dataset = generate(&DatgenConfig::new(500, 50, 40).seed(13));
    let labels = dataset.labels().unwrap().to_vec();
    let serial = MhKModes::new(
        MhKModesConfig::new(50, Banding::new(16, 3))
            .seed(13)
            .max_iterations(30),
    )
    .fit(&dataset);
    let parallel = MhKModes::new(
        MhKModesConfig::new(50, Banding::new(16, 3))
            .seed(13)
            .max_iterations(30)
            .threads(4),
    )
    .fit(&dataset);
    let sp = purity(&predictions(&serial.assignments), &labels);
    let pp = purity(&predictions(&parallel.assignments), &labels);
    assert!((sp - pp).abs() < 0.1, "serial purity {sp} vs parallel {pp}");
}
