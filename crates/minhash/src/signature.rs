//! MinHash signature generation — Algorithm 1 (`SIGGEN`) of the paper.
//!
//! A signature is a vector of `n = b·r` minima: entry `i` is the minimum of
//! hash function `h_i` over the item's *present* element keys. Two items'
//! signatures agree at position `i` with probability equal to their Jaccard
//! similarity, which [`estimate_jaccard`] exploits.

use crate::hashfn::HashFamily;
use lshclust_categorical::{Dataset, PresentElements};

/// Generates MinHash signatures with a fixed hash family.
#[derive(Clone, Debug)]
pub struct SignatureGenerator<F: HashFamily> {
    family: F,
}

impl<F: HashFamily> SignatureGenerator<F> {
    /// Wraps a hash family. The family's length is the signature length.
    pub fn new(family: F) -> Self {
        Self { family }
    }

    /// Signature length `n` (= number of hash functions).
    pub fn signature_len(&self) -> usize {
        self.family.len()
    }

    /// Computes the signature of an element-key iterator into `out`
    /// (Algorithm 1). `out` is overwritten and resized to `n`.
    ///
    /// An empty element set (an item with no present features) yields the
    /// all-`u64::MAX` signature — such items collide only with each other,
    /// which is the sensible degenerate behaviour.
    pub fn signature_into<I: IntoIterator<Item = u64>>(&self, elements: I, out: &mut Vec<u64>) {
        let n = self.family.len();
        out.clear();
        out.resize(n, u64::MAX);
        // Loop order follows Algorithm 1: for each element, for each hash
        // function, keep the minimum.
        for e in elements {
            for (i, slot) in out.iter_mut().enumerate() {
                let h = self.family.eval(i, e);
                if h < *slot {
                    *slot = h;
                }
            }
        }
    }

    /// Allocating convenience wrapper over [`Self::signature_into`].
    pub fn signature<I: IntoIterator<Item = u64>>(&self, elements: I) -> Vec<u64> {
        let mut out = Vec::new();
        self.signature_into(elements, &mut out);
        out
    }

    /// Computes signatures for every item of a dataset, flattened row-major
    /// into one buffer (`n_items × n` values).
    ///
    /// Present-feature filtering (Algorithm 2 lines 2–4) is applied via
    /// [`PresentElements`].
    pub fn dataset_signatures(&self, dataset: &Dataset) -> SignatureMatrix {
        let n = self.family.len();
        let mut data = Vec::with_capacity(dataset.n_items() * n);
        let mut row = Vec::with_capacity(n);
        for item in 0..dataset.n_items() {
            self.signature_into(PresentElements::of_item(dataset, item), &mut row);
            data.extend_from_slice(&row);
        }
        SignatureMatrix {
            signature_len: n,
            data,
        }
    }
}

/// Row-major matrix of per-item signatures.
#[derive(Clone, Debug)]
pub struct SignatureMatrix {
    signature_len: usize,
    data: Vec<u64>,
}

impl SignatureMatrix {
    /// Signature length `n`.
    pub fn signature_len(&self) -> usize {
        self.signature_len
    }

    /// Number of item signatures stored.
    pub fn n_items(&self) -> usize {
        self.data.len().checked_div(self.signature_len).unwrap_or(0)
    }

    /// Signature of item `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        let s = i * self.signature_len;
        &self.data[s..s + self.signature_len]
    }
}

/// Estimates Jaccard similarity as the fraction of agreeing signature
/// positions.
///
/// The estimator is unbiased with standard error `O(1/√n)`.
pub fn estimate_jaccard(sig_a: &[u64], sig_b: &[u64]) -> f64 {
    assert_eq!(
        sig_a.len(),
        sig_b.len(),
        "signatures must have equal length"
    );
    if sig_a.is_empty() {
        return 0.0;
    }
    let agree = sig_a
        .iter()
        .zip(sig_b.iter())
        .filter(|(a, b)| a == b)
        .count();
    agree as f64 / sig_a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashfn::MixHashFamily;
    use lshclust_categorical::DatasetBuilder;

    fn generator(n: usize) -> SignatureGenerator<MixHashFamily> {
        SignatureGenerator::new(MixHashFamily::new(n, 42))
    }

    #[test]
    fn identical_sets_have_identical_signatures() {
        let g = generator(16);
        let a = g.signature([1u64, 2, 3]);
        let b = g.signature([3u64, 2, 1]); // order must not matter
        assert_eq!(a, b);
    }

    #[test]
    fn disjoint_sets_rarely_agree() {
        let g = generator(64);
        let a = g.signature(0u64..8);
        let b = g.signature(100u64..108);
        let est = estimate_jaccard(&a, &b);
        assert!(est < 0.1, "disjoint sets estimated at {est}");
    }

    #[test]
    fn empty_set_signature_is_all_max() {
        let g = generator(4);
        assert_eq!(g.signature(std::iter::empty()), vec![u64::MAX; 4]);
    }

    #[test]
    fn signature_len_matches_family() {
        let g = generator(7);
        assert_eq!(g.signature_len(), 7);
        assert_eq!(g.signature([5u64]).len(), 7);
    }

    #[test]
    fn singleton_signature_is_elementwise_hash() {
        let fam = MixHashFamily::new(3, 9);
        let g = SignatureGenerator::new(fam.clone());
        let sig = g.signature([77u64]);
        for (i, &s) in sig.iter().enumerate() {
            assert_eq!(s, fam.eval(i, 77));
        }
    }

    #[test]
    fn estimator_tracks_true_jaccard() {
        // Sets with known overlap: |∩| = 50, |∪| = 150 → s = 1/3.
        let g = generator(512);
        let a = g.signature(0u64..100);
        let b = g.signature(50u64..150);
        let est = estimate_jaccard(&a, &b);
        assert!(
            (est - 1.0 / 3.0).abs() < 0.08,
            "estimate {est} far from 1/3"
        );
    }

    #[test]
    fn signature_into_reuses_buffer() {
        let g = generator(8);
        let mut buf = vec![0u64; 100];
        g.signature_into([1u64, 2], &mut buf);
        assert_eq!(buf.len(), 8);
        let first = buf.clone();
        g.signature_into([1u64, 2], &mut buf);
        assert_eq!(buf, first);
    }

    #[test]
    fn dataset_signatures_align_with_manual() {
        let mut b = DatasetBuilder::anonymous(2);
        b.push_str_row(&["x", "y"], None).unwrap();
        b.push_str_row(&["x", "z"], None).unwrap();
        let ds = b.finish();
        let g = generator(10);
        let m = g.dataset_signatures(&ds);
        assert_eq!(m.n_items(), 2);
        assert_eq!(m.signature_len(), 10);
        let manual = g.signature(PresentElements::of_item(&ds, 1));
        assert_eq!(m.row(1), manual.as_slice());
    }

    #[test]
    fn estimate_jaccard_of_identical() {
        let g = generator(32);
        let s = g.signature(10u64..30);
        assert_eq!(estimate_jaccard(&s, &s), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn estimate_jaccard_rejects_mismatched_lengths() {
        let _ = estimate_jaccard(&[1], &[1, 2]);
    }

    #[test]
    fn estimate_jaccard_empty_is_zero() {
        assert_eq!(estimate_jaccard(&[], &[]), 0.0);
    }
}
