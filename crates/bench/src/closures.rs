//! Cluster-closure experiment: what incremental re-assignment saves,
//! pass by pass.
//!
//! The active-set engine (`ClusterSpec::closures`, default on) keeps an
//! item's assignment without re-scoring whenever its cached candidate
//! shortlist touches no cluster that changed in the previous pass — provably
//! the same answer full re-evaluation would return (see
//! `docs/ARCHITECTURE.md` § Incremental assignment). This experiment runs
//! each batch family twice through the facade — closures on and closures off
//! — on identical specs and records, per iteration, the assign wall-time of
//! both engines, how many items the closure run skipped, and how many
//! clusters were still active. The artifact (`BENCH_closures.json`) is the
//! evidence for the claim in the docs: the re-evaluated fraction collapses
//! after the first passes as centroids settle.
//!
//! Every family also runs the **identity guard**: assignments, per-iteration
//! moves / cost / candidate volume / active clusters, and convergence must
//! be byte-identical between the two engines. A divergence flips
//! `identical` to `false` in the report and makes the `bench_closures`
//! binary exit non-zero — the benchmark doubles as an end-to-end regression
//! check on the closure engine's soundness.

use crate::env::BenchEnv;
use lshclust::{ClusterRun, ClusterSpec, Clusterer, Lsh};
use lshclust_categorical::Dataset;
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::kmeans::NumericDataset;
use lshclust_kmodes::kprototypes::MixedDataset;
use std::path::Path;

/// Settings of a closure-savings run.
#[derive(Clone, Debug)]
pub struct ClosuresSettings {
    /// Shrinks the workload for CI smoke runs.
    pub quick: bool,
    /// Assignment threads for every fit (closures compose with the Jacobi
    /// engine; 1 exercises the serial pass).
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ClosuresSettings {
    fn default() -> Self {
        Self {
            quick: false,
            threads: 4,
            seed: 42,
        }
    }
}

/// One iteration of a family, both engines side by side.
#[derive(Clone, Debug)]
pub struct ClosureIter {
    /// Iteration number (1-based, matching `IterationStats::iteration`).
    pub iteration: usize,
    /// Assign wall-time of the closures-on pass, milliseconds.
    pub on_ms: f64,
    /// Assign wall-time of the closures-off (exhaustive) pass, milliseconds.
    pub off_ms: f64,
    /// Items the closure engine kept without re-evaluation this pass.
    pub skipped_items: usize,
    /// `skipped_items / n_items` — the fraction of the pass skipped.
    pub skip_ratio: f64,
    /// Clusters still active entering this pass (both engines record the
    /// same value; the exhaustive engine just ignores it).
    pub active_clusters: usize,
    /// Items that changed cluster (identical across engines by design).
    pub moves: usize,
    /// Objective cost after the pass (identical across engines by design).
    pub cost: u64,
}

serde::impl_serde_struct!(ClosureIter {
    iteration,
    on_ms,
    off_ms,
    skipped_items,
    skip_ratio,
    active_clusters,
    moves,
    cost
});

/// The closures-on vs closures-off comparison for one family.
#[derive(Clone, Debug)]
pub struct FamilyClosures {
    /// `"categorical"`, `"numeric"` or `"mixed"`.
    pub family: String,
    /// The LSH scheme exercised.
    pub lsh: String,
    /// Items fitted.
    pub n_items: usize,
    /// Iterations both runs executed.
    pub iterations: usize,
    /// Summed assign time of the closures-on run, seconds.
    pub on_assign_s: f64,
    /// Summed assign time of the closures-off run, seconds.
    pub off_assign_s: f64,
    /// `off_assign_s / on_assign_s` — what skipping bought.
    pub assign_speedup: f64,
    /// Total items skipped across all passes.
    pub skipped_total: usize,
    /// `skipped_total / (n_items × iterations)` — overall skipped fraction.
    pub skip_ratio_overall: f64,
    /// The identity guard: whether the two runs were byte-identical
    /// (assignments, per-iteration moves / cost / candidate volume / active
    /// clusters, convergence).
    pub identical: bool,
    /// The per-iteration series.
    pub series: Vec<ClosureIter>,
}

serde::impl_serde_struct!(FamilyClosures {
    family,
    lsh,
    n_items,
    iterations,
    on_assign_s,
    off_assign_s,
    assign_speedup,
    skipped_total,
    skip_ratio_overall,
    identical,
    series
});

/// The full `BENCH_closures.json` payload.
#[derive(Clone, Debug)]
pub struct ClosuresReport {
    /// Experiment marker.
    pub experiment: String,
    /// Host context; no axis is swept — `threads` records the fixed count.
    pub env: BenchEnv,
    /// Per-family comparisons.
    pub families: Vec<FamilyClosures>,
    /// Conjunction of every family's identity guard.
    pub identical: bool,
}

serde::impl_serde_struct!(ClosuresReport {
    experiment,
    env,
    families,
    identical
});

/// True iff the two runs are byte-identical on every surface the closure
/// engine promises to preserve (wall-clock and the skip counter itself are
/// the only legitimate differences).
fn runs_identical(on: &ClusterRun, off: &ClusterRun) -> bool {
    let trajectory = |run: &ClusterRun| -> Vec<(usize, usize, u64, u64, usize)> {
        run.summary
            .iterations
            .iter()
            .map(|s| {
                (
                    s.iteration,
                    s.moves,
                    s.cost,
                    s.avg_candidates.to_bits(),
                    s.active_clusters,
                )
            })
            .collect()
    };
    on.assignments == off.assignments
        && on.summary.converged == off.summary.converged
        && trajectory(on) == trajectory(off)
        && off.summary.iterations.iter().all(|s| s.skipped_items == 0)
}

fn compare(family: &str, lsh_name: &str, on: ClusterRun, off: ClusterRun) -> FamilyClosures {
    let n_items = on.assignments.len();
    let identical = runs_identical(&on, &off);
    let series: Vec<ClosureIter> = on
        .summary
        .iterations
        .iter()
        .zip(&off.summary.iterations)
        .map(|(a, b)| ClosureIter {
            iteration: a.iteration,
            on_ms: a.duration.as_secs_f64() * 1e3,
            off_ms: b.duration.as_secs_f64() * 1e3,
            skipped_items: a.skipped_items,
            skip_ratio: a.skipped_items as f64 / n_items.max(1) as f64,
            active_clusters: a.active_clusters,
            moves: a.moves,
            cost: a.cost,
        })
        .collect();
    let on_assign_s: f64 = series.iter().map(|s| s.on_ms).sum::<f64>() / 1e3;
    let off_assign_s: f64 = series.iter().map(|s| s.off_ms).sum::<f64>() / 1e3;
    let skipped_total: usize = series.iter().map(|s| s.skipped_items).sum();
    let iterations = series.len();
    FamilyClosures {
        family: family.to_owned(),
        lsh: lsh_name.to_owned(),
        n_items,
        iterations,
        on_assign_s,
        off_assign_s,
        assign_speedup: if on_assign_s > 0.0 {
            off_assign_s / on_assign_s
        } else {
            1.0
        },
        skipped_total,
        skip_ratio_overall: skipped_total as f64 / (n_items.max(1) * iterations.max(1)) as f64,
        identical,
        series,
    }
}

fn numeric_blobs(labels: &[u32], dim: usize) -> NumericDataset {
    let data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..dim).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 40));
                (h % 100) as f64 + ((i * 13 + d) as f64 * 0.37).sin() * 0.1
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

/// Runs the full experiment and returns the report.
pub fn run(settings: &ClosuresSettings) -> ClosuresReport {
    let (n_items, n_clusters, n_attrs, dim) = if settings.quick {
        (3_000, 40, 16, 8)
    } else {
        (20_000, 120, 32, 16)
    };
    let seed = settings.seed;
    let dataset: Dataset = generate(&DatgenConfig::new(n_items, n_clusters, n_attrs).seed(seed));
    let labels: Vec<u32> = dataset.labels().expect("datgen labels").to_vec();
    let numeric = numeric_blobs(&labels, dim);
    let mixed = MixedDataset::new(&dataset, &numeric);
    let max_iter = 25;

    let spec_base = |lsh: Lsh, closures: bool| {
        ClusterSpec::new(n_clusters)
            .lsh(lsh)
            .seed(seed)
            .threads(settings.threads)
            .closures(closures)
            .max_iterations(max_iter)
    };
    let minhash = Lsh::MinHash { bands: 20, rows: 5 };
    let simhash = Lsh::SimHash { bands: 8, rows: 16 };
    let union = Lsh::Union {
        bands: 20,
        rows: 5,
        sim_bands: 8,
        sim_rows: 16,
    };

    let mut families = Vec::new();

    eprintln!("# closures: categorical (MinHash 20b5r, k={n_clusters}, n={n_items})");
    let on = Clusterer::new(spec_base(minhash, true))
        .fit(&dataset)
        .expect("categorical fit");
    let off = Clusterer::new(spec_base(minhash, false))
        .fit(&dataset)
        .expect("categorical fit");
    families.push(compare("categorical", "MinHash 20b5r", on, off));

    eprintln!("# closures: numeric (SimHash 8b16r)");
    let on = Clusterer::new(spec_base(simhash, true))
        .fit(&numeric)
        .expect("numeric fit");
    let off = Clusterer::new(spec_base(simhash, false))
        .fit(&numeric)
        .expect("numeric fit");
    families.push(compare("numeric", "SimHash 8b16r", on, off));

    eprintln!("# closures: mixed (MinHash ∪ SimHash)");
    let on = Clusterer::new(spec_base(union, true))
        .fit(&mixed)
        .expect("mixed fit");
    let off = Clusterer::new(spec_base(union, false))
        .fit(&mixed)
        .expect("mixed fit");
    families.push(compare("mixed", "Union 20b5r + 8b16r", on, off));

    let identical = families.iter().all(|f| f.identical);
    ClosuresReport {
        experiment: "cluster-closures".into(),
        env: BenchEnv::capture(settings.quick, seed).threads(&[settings.threads]),
        families,
        identical,
    }
}

impl ClosuresReport {
    /// Writes the report as pretty JSON to `path`.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        crate::env::write_report(self, path)
    }

    /// Renders an aligned text summary (one table per family).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cluster closures  ({}, identity guard: {})",
            self.env.banner(),
            if self.identical { "ok" } else { "DIVERGED" }
        );
        for family in &self.families {
            let _ = writeln!(
                out,
                "\n[{}] {}  (n={}, {:.2}x assign speedup, {:.0}% skipped overall{})",
                family.family,
                family.lsh,
                family.n_items,
                family.assign_speedup,
                family.skip_ratio_overall * 100.0,
                if family.identical { "" } else { ", DIVERGED" }
            );
            let _ = writeln!(
                out,
                "{:>6}  {:>9}  {:>9}  {:>9}  {:>7}  {:>7}  {:>7}",
                "iter", "on (ms)", "off (ms)", "skipped", "skip %", "active", "moves"
            );
            for s in &family.series {
                let _ = writeln!(
                    out,
                    "{:>6}  {:>9.3}  {:>9.3}  {:>9}  {:>6.1}%  {:>7}  {:>7}",
                    s.iteration,
                    s.on_ms,
                    s.off_ms,
                    s.skipped_items,
                    s.skip_ratio * 100.0,
                    s.active_clusters,
                    s.moves
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_skips_work_and_stays_identical() {
        let report = run(&ClosuresSettings {
            quick: true,
            threads: 2,
            seed: 7,
        });
        assert!(report.identical, "closure engine diverged");
        assert_eq!(report.families.len(), 3);
        for family in &report.families {
            assert!(
                family.skipped_total > 0,
                "{}: closures never skipped",
                family.family
            );
            assert!(family.iterations >= 2, "{}: one-pass fit", family.family);
            // The whole point: the re-evaluated fraction collapses after the
            // early passes, so the last recorded pass skips more than the
            // first.
            let first = family.series.first().unwrap();
            let last = family.series.last().unwrap();
            assert!(
                last.skip_ratio >= first.skip_ratio,
                "{}: skip ratio fell ({:.2} -> {:.2})",
                family.family,
                first.skip_ratio,
                last.skip_ratio
            );
        }
        let json = serde_json::to_string(&report).unwrap();
        let back: ClosuresReport = serde_json::from_str(&json).unwrap();
        assert!(back.identical);
        assert_eq!(back.families.len(), 3);
        assert!(report.render().contains("identity guard: ok"));
    }
}
