//! Serving-throughput experiment: what micro-batch coalescing buys a
//! [`lshclust::ModelServer`] under many concurrent single-row callers, for
//! every modality — the numbers behind `BENCH_serve.json`.
//!
//! The contrast is one-row-per-call serving (`max_batch = 1`, zero flush
//! latency: every request pays its own queue pop, scratch allocation, and
//! wake-up) versus coalesced serving (requests merge into shortlist batches
//! during a sub-millisecond flush window and share one scratch per worker
//! thread). Callers keep a small **pipeline window** of in-flight tickets,
//! as a real service client would, so the queue actually has something to
//! coalesce.
//!
//! The measurement is facade-faithful: models come out of `Clusterer::fit`
//! and requests go through the exact `submit_*`/`wait` API a user gets.

use crate::env::BenchEnv;
use lshclust::serve::{ModelServer, ServerConfig};
use lshclust::{ClusterSpec, Clusterer, FittedModel, Lsh};
use lshclust_categorical::{Dataset, ValueId};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::kmeans::NumericDataset;
use lshclust_kmodes::kprototypes::MixedDataset;
use std::collections::VecDeque;
use std::path::Path;
use std::time::{Duration, Instant};

/// Settings of a serving-throughput run.
#[derive(Clone, Debug)]
pub struct ServeSettings {
    /// Shrinks the workload for CI smoke runs.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Worker-pool sizes to sweep.
    pub workers: Vec<usize>,
    /// Concurrent caller threads.
    pub callers: usize,
    /// Requests each caller submits.
    pub requests_per_caller: usize,
}

impl Default for ServeSettings {
    fn default() -> Self {
        Self {
            quick: false,
            seed: 42,
            workers: vec![1, 2],
            callers: 4,
            requests_per_caller: 2_000,
        }
    }
}

/// One (modality × workers × coalescing-mode) measurement.
#[derive(Clone, Debug)]
pub struct ServeRun {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Whether micro-batch coalescing was on (`max_batch` 64, 200µs flush)
    /// or off (`max_batch` 1, zero flush — one row per call).
    pub coalesced: bool,
    /// Whether the coalescing window was load-adaptive
    /// ([`ServerConfig::adaptive_flush`]) rather than fixed at 200µs.
    pub adaptive: bool,
    /// Total requests served.
    pub requests: usize,
    /// Wall-clock seconds for the whole request set.
    pub secs: f64,
    /// Requests per second.
    pub rps: f64,
    /// This run's `rps` over the one-row-per-call run at the same worker
    /// count (1.0 for the single runs themselves).
    pub speedup_vs_single: f64,
    /// Median request latency, microseconds (submit → resolved, under the
    /// caller's pipeline window).
    pub p50_us: f64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile (tail) request latency, microseconds.
    pub p99_us: f64,
}

serde::impl_serde_struct!(ServeRun {
    workers,
    coalesced,
    adaptive,
    requests,
    secs,
    rps,
    speedup_vs_single,
    p50_us,
    p95_us,
    p99_us
});

/// All serving runs for one modality.
#[derive(Clone, Debug)]
pub struct FamilyServe {
    /// `"categorical"`, `"numeric"` or `"mixed"`.
    pub family: String,
    /// The LSH scheme behind the served model's centroid index.
    pub lsh: String,
    /// Measurements, coalesced and single per swept worker count.
    pub runs: Vec<ServeRun>,
}

serde::impl_serde_struct!(FamilyServe { family, lsh, runs });

/// The full `BENCH_serve.json` payload.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Experiment marker.
    pub experiment: String,
    /// Host context and sweep axes (`workers` is the swept axis here).
    pub env: BenchEnv,
    /// Items in each training workload.
    pub n_items: usize,
    /// Clusters per model.
    pub n_clusters: usize,
    /// Concurrent caller threads.
    pub callers: usize,
    /// Requests per caller.
    pub requests_per_caller: usize,
    /// In-flight tickets each caller pipelines.
    pub pipeline_window: usize,
    /// Per-modality serving series.
    pub families: Vec<FamilyServe>,
}

serde::impl_serde_struct!(ServeReport {
    experiment,
    env,
    n_items,
    n_clusters,
    callers,
    requests_per_caller,
    pipeline_window,
    families
});

/// In-flight tickets each caller keeps open before waiting on the oldest.
const PIPELINE_WINDOW: usize = 32;

/// One request's payload, cloned per submission from the query set.
#[derive(Clone)]
enum Query {
    Row(Vec<ValueId>),
    Point(Vec<f64>),
    Mixed(Vec<ValueId>, Vec<f64>),
}

/// Per-request latency percentiles (microseconds) of one measurement.
struct Tail {
    p50: f64,
    p95: f64,
    p99: f64,
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)] as f64
}

/// Drives `callers` threads through `requests_per_caller` submissions each
/// (pipelined), returns wall-clock seconds plus per-request latency
/// percentiles (submit → resolved, measured at the caller). Panics on any
/// serving error — the bench sizes its queue so load shedding cannot
/// trigger.
fn measure(
    model: &FittedModel,
    config: ServerConfig,
    callers: usize,
    requests_per_caller: usize,
    queries: &[Query],
) -> (f64, Tail) {
    let server = ModelServer::start(model.clone(), config);
    let latencies = std::sync::Mutex::new(Vec::with_capacity(callers * requests_per_caller));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for caller in 0..callers {
            let server = &server;
            let latencies = &latencies;
            scope.spawn(move || {
                let mut local: Vec<u64> = Vec::with_capacity(requests_per_caller);
                let mut pending = VecDeque::with_capacity(PIPELINE_WINDOW);
                let mut resolve = |pending: &mut VecDeque<(Instant, lshclust::PredictTicket)>| {
                    let (submitted, ticket) = pending.pop_front().expect("non-empty");
                    ticket.wait().expect("bench requests are well-formed");
                    local.push(submitted.elapsed().as_micros() as u64);
                };
                for i in 0..requests_per_caller {
                    let query = &queries[(caller + i * callers) % queries.len()];
                    let ticket = match query.clone() {
                        Query::Row(row) => server.submit_row(row),
                        Query::Point(point) => server.submit_point(point),
                        Query::Mixed(row, point) => server.submit_mixed(row, point),
                    }
                    .expect("bench queue sized above the pipeline load");
                    pending.push_back((Instant::now(), ticket));
                    if pending.len() >= PIPELINE_WINDOW {
                        resolve(&mut pending);
                    }
                }
                while !pending.is_empty() {
                    resolve(&mut pending);
                }
                latencies.lock().expect("latency lock").extend(local);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    server.shutdown();
    let mut us = latencies.into_inner().expect("latency lock");
    us.sort_unstable();
    let tail = Tail {
        p50: percentile(&us, 50.0),
        p95: percentile(&us, 95.0),
        p99: percentile(&us, 99.0),
    };
    (secs, tail)
}

/// Sweeps one-row-per-call vs fixed-window vs adaptive-window coalescing at
/// every worker count. The hot-key cache is disabled throughout so the
/// numbers isolate batching policy, not memoization.
fn sweep(model: &FittedModel, settings: &ServeSettings, queries: &[Query]) -> Vec<ServeRun> {
    let total = settings.callers * settings.requests_per_caller;
    // Queue bound: the whole pipelined in-flight load plus slack, so the
    // bench measures throughput, not load shedding.
    let depth = (settings.callers * PIPELINE_WINDOW * 2).max(256);
    let mut runs = Vec::new();
    for &workers in &settings.workers {
        let base = ServerConfig::default()
            .workers(workers)
            .queue_depth(depth)
            .hot_keys(0);
        let modes = [
            // (coalesced, adaptive, config)
            (
                false,
                false,
                base.max_batch(1)
                    .flush_latency(Duration::ZERO)
                    .adaptive_flush(false),
            ),
            (
                true,
                false,
                base.max_batch(64)
                    .flush_latency(Duration::from_micros(200))
                    .adaptive_flush(false),
            ),
            (
                true,
                true,
                base.max_batch(64)
                    .flush_latency(Duration::from_micros(200))
                    .adaptive_flush(true),
            ),
        ];
        let mut single_rps = 0.0;
        for (coalesced, adaptive, config) in modes {
            let (secs, tail) = measure(
                model,
                config,
                settings.callers,
                settings.requests_per_caller,
                queries,
            );
            let rps = total as f64 / secs.max(1e-9);
            if !coalesced {
                single_rps = rps;
            }
            runs.push(ServeRun {
                workers,
                coalesced,
                adaptive,
                requests: total,
                secs,
                rps,
                speedup_vs_single: if coalesced {
                    rps / single_rps.max(1e-9)
                } else {
                    1.0
                },
                p50_us: tail.p50,
                p95_us: tail.p95,
                p99_us: tail.p99,
            });
        }
    }
    runs
}

fn numeric_blobs(labels: &[u32], dim: usize) -> NumericDataset {
    let data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..dim).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 40));
                (h % 100) as f64 + ((i * 13 + d) as f64 * 0.37).sin() * 0.1
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

/// Runs the full experiment and returns the report.
pub fn run(settings: &ServeSettings) -> ServeReport {
    let (n_items, n_clusters, n_attrs, dim, requests_per_caller) = if settings.quick {
        (2_000, 40, 12, 8, settings.requests_per_caller.min(600))
    } else {
        (10_000, 100, 24, 12, settings.requests_per_caller)
    };
    let settings = ServeSettings {
        requests_per_caller,
        ..settings.clone()
    };
    let seed = settings.seed;
    let dataset: Dataset = generate(&DatgenConfig::new(n_items, n_clusters, n_attrs).seed(seed));
    let labels: Vec<u32> = dataset.labels().expect("datgen labels").to_vec();
    let numeric = numeric_blobs(&labels, dim);
    let mixed = MixedDataset::new(&dataset, &numeric);
    let max_iter = 10;
    // The query set: a slice of training items (served one row at a time).
    let n_queries = n_items.min(2_000);

    let mut families = Vec::new();

    eprintln!("# serve: categorical (MinHash 20b5r, k={n_clusters}, n={n_items})");
    let run_cat = Clusterer::new(
        ClusterSpec::new(n_clusters)
            .lsh(Lsh::MinHash { bands: 20, rows: 5 })
            .seed(seed)
            .max_iterations(max_iter),
    )
    .fit(&dataset)
    .expect("categorical fit");
    let queries: Vec<Query> = (0..n_queries)
        .map(|i| Query::Row(dataset.row(i).to_vec()))
        .collect();
    families.push(FamilyServe {
        family: "categorical".into(),
        lsh: "MinHash 20b5r".into(),
        runs: sweep(&run_cat.model, &settings, &queries),
    });

    eprintln!("# serve: numeric (SimHash 8b16r)");
    let run_num = Clusterer::new(
        ClusterSpec::new(n_clusters)
            .lsh(Lsh::SimHash { bands: 8, rows: 16 })
            .seed(seed)
            .max_iterations(max_iter),
    )
    .fit(&numeric)
    .expect("numeric fit");
    let queries: Vec<Query> = (0..n_queries)
        .map(|i| Query::Point(numeric.row(i).to_vec()))
        .collect();
    families.push(FamilyServe {
        family: "numeric".into(),
        lsh: "SimHash 8b16r".into(),
        runs: sweep(&run_num.model, &settings, &queries),
    });

    eprintln!("# serve: mixed (MinHash ∪ SimHash)");
    let run_mixed = Clusterer::new(
        ClusterSpec::new(n_clusters)
            .lsh(Lsh::Union {
                bands: 20,
                rows: 5,
                sim_bands: 8,
                sim_rows: 16,
            })
            .seed(seed)
            .max_iterations(max_iter),
    )
    .fit(&mixed)
    .expect("mixed fit");
    let queries: Vec<Query> = (0..n_queries)
        .map(|i| Query::Mixed(dataset.row(i).to_vec(), numeric.row(i).to_vec()))
        .collect();
    families.push(FamilyServe {
        family: "mixed".into(),
        lsh: "Union 20b5r + 8b16r".into(),
        runs: sweep(&run_mixed.model, &settings, &queries),
    });

    ServeReport {
        experiment: "serve-throughput".into(),
        env: BenchEnv::capture(settings.quick, seed).workers(&settings.workers),
        n_items,
        n_clusters,
        callers: settings.callers,
        requests_per_caller: settings.requests_per_caller,
        pipeline_window: PIPELINE_WINDOW,
        families,
    }
}

impl ServeReport {
    /// Writes the report as pretty JSON to `path`.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        crate::env::write_report(self, path)
    }

    /// Renders an aligned text summary (one table per modality).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serving throughput  ({}, {} callers x {} reqs, window {})",
            self.env.banner(),
            self.callers,
            self.requests_per_caller,
            self.pipeline_window
        );
        for family in &self.families {
            let _ = writeln!(out, "\n[{}] {}", family.family, family.lsh);
            let _ = writeln!(
                out,
                "{:>8}  {:>10}  {:>10}  {:>12}  {:>10}  {:>9}  {:>9}  {:>9}",
                "workers", "mode", "secs", "req/s", "speedup", "p50us", "p95us", "p99us"
            );
            for r in &family.runs {
                let mode = match (r.coalesced, r.adaptive) {
                    (false, _) => "single",
                    (true, false) => "fixed",
                    (true, true) => "adaptive",
                };
                let _ = writeln!(
                    out,
                    "{:>8}  {:>10}  {:>10.3}  {:>12.0}  {:>9.2}x  {:>9.0}  {:>9.0}  {:>9.0}",
                    r.workers,
                    mode,
                    r.secs,
                    r.rps,
                    r.speedup_vs_single,
                    r.p50_us,
                    r.p95_us,
                    r.p99_us
                );
            }
        }
        out
    }
}
