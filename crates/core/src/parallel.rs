//! The provider-agnostic parallel assignment engine (crossbeam scoped
//! threads).
//!
//! The paper's implementation is single-threaded ("our implementation was
//! single threaded and thus only used one of the available twelve cores");
//! this module exists to show the shortlist's gains compose with thread-level
//! parallelism, for **every** algorithm family. A family plugs in by
//! implementing [`SyncShortlistProvider`] — a read-only per-thread view of
//! its LSH index — and reusing the same [`parallel_fit`] entry point; the
//! MinHash, SimHash and union providers all do.
//!
//! Semantics differ slightly from the serial driver: the serial pass is
//! Gauss–Seidel (an item's move is visible to later items *within* the same
//! pass via the cluster references), whereas the parallel pass is Jacobi
//! (all shortlists are computed against the references as of the start of
//! the pass, then moves are applied at once). Both converge on the paper's
//! workloads; convergence behaviour may differ by an iteration or two.
//! Because each item's Jacobi decision depends only on the frozen start-of-
//! pass state — and the centroid update recomputes cluster by cluster — the
//! fit output is **bit-identical at any thread count > 1**.
//!
//! Iteration accounting and stop logic are *not* duplicated here: both the
//! serial and the parallel path run through `framework::drive`.

use crate::framework::{
    self, AcceleratedRun, AssignOutcome, CentroidModel, ShortlistProvider, StopPolicy,
};
use lshclust_categorical::ClusterId;

/// A shortlist provider whose index can be probed from many threads at once:
/// shortlist queries are **read-only** (`&self`) and all mutable query state
/// lives in a per-thread [`Self::Scratch`].
///
/// Implementations must return exactly the candidates the serial
/// [`ShortlistProvider::shortlist`] would, so the Jacobi pass differs from
/// the Gauss–Seidel pass only in *when* reference updates become visible.
pub trait SyncShortlistProvider: ShortlistProvider + Sync {
    /// Per-thread query scratch (dedup stamps, hashing buffers, …).
    type Scratch: Send;

    /// Creates one scratch; the engine calls this once per worker thread.
    fn make_scratch(&self) -> Self::Scratch;

    /// Read-only shortlist query for `item` into `out` (cleared first).
    fn shortlist_into(&self, item: u32, scratch: &mut Self::Scratch, out: &mut Vec<ClusterId>);
}

/// Like [`crate::framework::fit`], but each assignment pass is a Jacobi pass
/// fanned over `threads` scoped threads, and centroid updates go through
/// [`CentroidModel::update_centroids_parallel`]. Works with any
/// [`SyncShortlistProvider`] — MinHash, SimHash, or the mixed-data union.
///
/// `threads` is clamped to at least 1; with 1 thread the pass is still
/// Jacobi (computed inline, no spawning), so results at any `threads >= 1`
/// through this entry point are identical.
pub fn parallel_fit<M, P>(
    model: &mut M,
    provider: &mut P,
    assignments: Vec<ClusterId>,
    setup: std::time::Duration,
    config: &StopPolicy,
    threads: usize,
) -> AcceleratedRun
where
    M: CentroidModel + Sync,
    P: SyncShortlistProvider,
{
    let threads = threads.max(1);
    framework::drive(
        model,
        assignments,
        setup,
        config,
        |model, assignments| {
            let (new_assignments, shortlist_total) =
                jacobi_assign(model, &*provider, assignments, threads);
            let mut moves = 0usize;
            for (item, (&old, &new)) in assignments.iter().zip(&new_assignments).enumerate() {
                if old != new {
                    moves += 1;
                    provider.record_assignment(item as u32, new);
                }
            }
            *assignments = new_assignments;
            AssignOutcome {
                moves,
                shortlist_total,
            }
        },
        |model, assignments| model.update_centroids_parallel(assignments, threads),
    )
}

/// One Jacobi-style pass: shortlists and best-cluster searches run in
/// parallel against the frozen start-of-pass index state (through
/// [`chunked_map`], one provider scratch per worker); returns the new
/// assignment vector and the summed shortlist sizes. Items whose shortlist
/// comes back empty keep their current assignment.
///
/// The per-item result depends only on the frozen state, so the output is
/// independent of the thread count (and of the chunking).
pub fn jacobi_assign<M, P>(
    model: &M,
    provider: &P,
    assignments: &[ClusterId],
    threads: usize,
) -> (Vec<ClusterId>, usize)
where
    M: CentroidModel + Sync,
    P: SyncShortlistProvider,
{
    let per_item: Vec<(u32, u32)> = chunked_map(
        assignments.len(),
        threads,
        || (provider.make_scratch(), Vec::new()),
        |item, (scratch, shortlist)| {
            provider.shortlist_into(item, scratch, shortlist);
            let chosen = match model.best_among(item, shortlist) {
                Some((c, _)) => c,
                None => assignments[item as usize],
            };
            // Per-item shortlists are at most k clusters, so u32 suffices.
            (chosen.0, shortlist.len() as u32)
        },
    );
    let shortlist_total = per_item.iter().map(|&(_, len)| len as usize).sum();
    let new_assignments = per_item.into_iter().map(|(c, _)| ClusterId(c)).collect();
    (new_assignments, shortlist_total)
}

/// Fans an item-indexed map over `threads` crossbeam scoped threads, with
/// one `scratch` (built by `init`) per thread — the batched-assignment
/// primitive shared by the fit-time parallel pass, the parallel centroid
/// update (mapped over *clusters*), and the serving-time
/// `FittedModel::predict` path in `lshclust`.
///
/// Returns `f(0), f(1), …, f(n-1)` in item order. With `threads <= 1` the
/// map runs inline on the calling thread, spawning nothing. The output never
/// depends on the thread count: each slot is computed independently and
/// written in place.
pub fn chunked_map<T, S, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send + Clone + Default,
    I: Fn() -> S + Sync,
    F: Fn(u32, &mut S) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        let mut scratch = init();
        return (0..n as u32).map(|item| f(item, &mut scratch)).collect();
    }
    let chunk = n.div_ceil(threads).max(1);
    let mut out = vec![T::default(); n];
    crossbeam::thread::scope(|scope| {
        for (tid, slice) in out.chunks_mut(chunk).enumerate() {
            let start = tid * chunk;
            let (init, f) = (&init, &f);
            scope.spawn(move |_| {
                let mut scratch = init();
                for (offset, slot) in slice.iter_mut().enumerate() {
                    *slot = f((start + offset) as u32, &mut scratch);
                }
            });
        }
    })
    .expect("chunked_map worker panicked");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mhkmodes::{MhKModes, MhKModesConfig};
    use lshclust_categorical::{Dataset, DatasetBuilder};
    use lshclust_minhash::Banding;

    fn blob_dataset(groups: usize, per_group: usize, n_attrs: usize) -> Dataset {
        let mut b = DatasetBuilder::anonymous(n_attrs);
        for g in 0..groups {
            for i in 0..per_group {
                let row: Vec<String> = (0..n_attrs)
                    .map(|a| {
                        if a == n_attrs - 1 {
                            format!("g{g}-n{i}")
                        } else {
                            format!("g{g}-a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn parallel_matches_serial_partition() {
        let ds = blob_dataset(4, 6, 8);
        let serial = MhKModes::new(MhKModesConfig::new(4, Banding::new(16, 2)).seed(3)).fit(&ds);
        let parallel = MhKModes::new(
            MhKModesConfig::new(4, Banding::new(16, 2))
                .seed(3)
                .threads(4),
        )
        .fit(&ds);
        // Co-membership must agree on clearly separated data.
        for i in 0..ds.n_items() {
            for j in (i + 1)..ds.n_items() {
                assert_eq!(
                    serial.assignments[i] == serial.assignments[j],
                    parallel.assignments[i] == parallel.assignments[j],
                    "items {i},{j}"
                );
            }
        }
    }

    #[test]
    fn parallel_with_one_thread_matches_framework_results() {
        let ds = blob_dataset(3, 5, 8);
        let a = MhKModes::new(MhKModesConfig::new(3, Banding::new(12, 2)).seed(1)).fit(&ds);
        let b = MhKModes::new(
            MhKModesConfig::new(3, Banding::new(12, 2))
                .seed(1)
                .threads(2),
        )
        .fit(&ds);
        // Jacobi vs Gauss–Seidel may differ mid-run but the final partitions
        // on separated blobs must coincide.
        for i in 0..ds.n_items() {
            for j in (i + 1)..ds.n_items() {
                assert_eq!(
                    a.assignments[i] == a.assignments[j],
                    b.assignments[i] == b.assignments[j],
                );
            }
        }
    }

    #[test]
    fn thread_count_larger_than_items_is_fine() {
        let ds = blob_dataset(2, 3, 5);
        let result = MhKModes::new(
            MhKModesConfig::new(2, Banding::new(8, 1))
                .seed(2)
                .threads(64),
        )
        .fit(&ds);
        assert_eq!(result.assignments.len(), 6);
    }

    #[test]
    fn parallel_converges() {
        let ds = blob_dataset(5, 4, 10);
        let result = MhKModes::new(
            MhKModesConfig::new(5, Banding::new(10, 2))
                .seed(4)
                .threads(3),
        )
        .fit(&ds);
        assert!(result.summary.converged);
        assert_eq!(result.summary.iterations.last().unwrap().moves, 0);
    }

    #[test]
    fn fit_output_is_identical_at_any_parallel_thread_count() {
        let ds = blob_dataset(6, 5, 10);
        let run = |threads: usize| {
            MhKModes::new(
                MhKModesConfig::new(6, Banding::new(12, 2))
                    .seed(9)
                    .threads(threads),
            )
            .fit(&ds)
        };
        let two = run(2);
        for threads in [3, 4, 8, 64] {
            let other = run(threads);
            assert_eq!(two.assignments, other.assignments, "threads={threads}");
            assert_eq!(two.modes, other.modes, "threads={threads}");
        }
    }

    // ---- chunked_map edge cases -------------------------------------------

    #[test]
    fn chunked_map_empty_input() {
        let out: Vec<u64> = chunked_map(0, 4, || (), |i, _| u64::from(i));
        assert!(out.is_empty());
    }

    #[test]
    fn chunked_map_fewer_items_than_threads() {
        let out: Vec<u64> = chunked_map(3, 16, || (), |i, _| u64::from(i) * 10);
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn chunked_map_preserves_item_order() {
        for threads in [1usize, 2, 3, 7, 64] {
            let out: Vec<u64> = chunked_map(1000, threads, || (), |i, _| u64::from(i) * 3 + 1);
            let expected: Vec<u64> = (0..1000u64).map(|i| i * 3 + 1).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn chunked_map_scratch_is_isolated_per_thread() {
        // Each worker counts its own calls into its scratch; a slot records
        // the scratch value *at its call*, so within each chunk the recorded
        // sequence must be 1, 2, 3, … regardless of what other threads do.
        let threads = 4usize;
        let n = 64usize;
        let out: Vec<u64> = chunked_map(
            n,
            threads,
            || 0u64,
            |_, calls| {
                *calls += 1;
                *calls
            },
        );
        let chunk = n.div_ceil(threads);
        for (slice_idx, slice) in out.chunks(chunk).enumerate() {
            for (offset, &v) in slice.iter().enumerate() {
                assert_eq!(v, offset as u64 + 1, "chunk {slice_idx} offset {offset}");
            }
        }
    }
}
