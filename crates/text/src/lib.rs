//! The text-to-categorical pipeline of §IV-B.
//!
//! The paper clusters Yahoo! Answers questions by (1) extracting "meaningful
//! words" per topic with TF-IDF, (2) keeping words whose score exceeds a
//! threshold (0.7 and 0.3 in the experiments) as the vocabulary, and
//! (3) representing each question as a binary word-presence feature vector,
//! with the feature name folded into the value (`zoo-0`/`zoo-1`) so that
//! MinHash — which sees a *set* of attribute–value elements — can filter the
//! absent side out.
//!
//! Pipeline stages:
//!
//! * [`tokenize()`] — lowercasing, punctuation-stripping whitespace tokeniser,
//! * [`tfidf`] — per-topic term scoring (`tf · log10(N/df)`, Eq. 7),
//! * [`vocab`] — threshold selection into an ordered [`vocab::Vocabulary`],
//! * [`vectorize()`] — questions → [`lshclust_categorical::Dataset`] rows with
//!   a registered absent value per attribute.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tfidf;
pub mod tokenize;
pub mod vectorize;
pub mod vocab;

pub use tfidf::{TfIdf, TopicScores};
pub use tokenize::tokenize;
pub use vectorize::vectorize;
pub use vocab::Vocabulary;
