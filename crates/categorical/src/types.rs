//! Small index newtypes shared across the workspace.
//!
//! Everything is deliberately a `u32` wrapper: the paper's largest dataset is
//! 250 000 items × 400 attributes with a 40 000-value domain, all comfortably
//! inside `u32`, and halving index width keeps the hot assignment loop's
//! working set small (see the type-size advice in the Rust perf guide).

use std::fmt;

/// Index of an item (row) in a [`crate::Dataset`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ItemId(pub u32);

/// Index of an attribute (column) in a [`crate::Dataset`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct AttrId(pub u32);

/// Dictionary-encoded categorical value within one attribute's domain.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ValueId(pub u32);

/// Index of a cluster (centroid).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ClusterId(pub u32);

/// Sentinel [`ValueId`] meaning "this feature is not present in this item".
///
/// The text pipeline encodes word absence with this value so that the MinHash
/// element iterator can skip it (the paper filters absent features before
/// signature generation — Algorithm 2 lines 2–4). `u32::MAX` can never be a
/// legitimate dictionary code because dictionaries grow from zero.
pub const NOT_PRESENT: ValueId = ValueId(u32::MAX);

macro_rules! impl_idx {
    ($t:ty) => {
        impl $t {
            /// Widen to `usize` for slice indexing.
            #[inline(always)]
            pub fn idx(self) -> usize {
                self.0 as usize
            }
        }
        impl From<u32> for $t {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
        impl From<usize> for $t {
            #[inline]
            fn from(v: usize) -> Self {
                debug_assert!(v <= u32::MAX as usize, "index overflows u32");
                Self(v as u32)
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

impl_idx!(ItemId);
impl_idx!(AttrId);
impl_idx!(ValueId);
impl_idx!(ClusterId);

// The index newtypes serialize as their plain inner number so JSON stays
// flat (`"values": [0, 3, 4294967295]`, not an object per cell).
macro_rules! impl_serde_idx {
    ($($t:ident),+) => {$(
        impl serde::Serialize for $t {
            fn to_value(&self) -> serde::Value {
                serde::Serialize::to_value(&self.0)
            }
        }
        impl serde::Deserialize for $t {
            fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
                <u32 as serde::Deserialize>::from_value(v).map($t)
            }
        }
    )+};
}

impl_serde_idx!(ItemId, AttrId, ValueId, ClusterId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_round_trips() {
        assert_eq!(ItemId::from(7usize).idx(), 7);
        assert_eq!(AttrId::from(3u32).0, 3);
        assert_eq!(ValueId::from(0usize), ValueId(0));
        assert_eq!(ClusterId(9).to_string(), "9");
    }

    #[test]
    fn not_present_is_max() {
        assert_eq!(NOT_PRESENT.0, u32::MAX);
        assert_ne!(NOT_PRESENT, ValueId(0));
    }

    #[test]
    fn ordering_follows_inner_value() {
        assert!(ClusterId(1) < ClusterId(2));
        assert!(ItemId(0) < ItemId(10));
    }
}
