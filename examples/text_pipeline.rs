//! The §IV-B real-data flow end to end: a Yahoo!-Answers-like corpus is
//! generated, TF-IDF selects the vocabulary, questions become sparse binary
//! categorical items, and the unified facade clusters them back into topics —
//! exact baseline and MH-K-Modes from the same [`ClusterSpec`] shape.
//!
//! ```text
//! cargo run --release -p lshclust --example text_pipeline
//! ```

use lshclust::{ClusterSpec, Clusterer, Lsh};
use lshclust_datagen::corpus::{CorpusConfig, SyntheticCorpus};
use lshclust_metrics::{normalized_mutual_information, purity};
use lshclust_text::{vectorize, TfIdf, Vocabulary};

fn main() {
    // ~300 topics x 50 questions (the paper: 2 916 topics x up to 100).
    // The framework pays off when k is large — with few clusters the index
    // build cost outweighs the shortlist savings (see §I of the paper).
    let seed = 7;
    let corpus = SyntheticCorpus::generate(&CorpusConfig::new(300, 50).seed(seed));
    println!(
        "corpus: {} questions over {} topics ({:.1}% mislabelled by 'users')",
        corpus.len(),
        corpus.n_topics,
        corpus.observed_mislabel_rate() * 100.0
    );

    // TF-IDF over topic-documents; the paper's threshold 0.7 assumes 2 916
    // topics (max idf log10(2916) ≈ 3.46), so rescale it to our topic count
    // to keep the same selectivity.
    let mut tfidf = TfIdf::new(corpus.n_topics);
    for (text, topic) in corpus.labelled_texts() {
        tfidf.add_document(topic, text);
    }
    let threshold = 0.7 * (corpus.n_topics as f64).log10() / 2916f64.log10();
    let vocab = Vocabulary::select(&tfidf, threshold, 10_000);
    println!(
        "vocabulary: {} words selected at TF-IDF threshold {threshold:.2} (paper 0.7, rescaled)",
        vocab.len()
    );
    println!("  sample: {:?}", vocab.iter().take(5).collect::<Vec<_>>());

    let dataset = vectorize(&vocab, corpus.labelled_texts());
    let avg_present: f64 = (0..dataset.n_items())
        .map(|i| dataset.present_count(i) as f64)
        .sum::<f64>()
        / dataset.n_items() as f64;
    println!(
        "dataset: {} items x {} attrs, avg {:.1} present words per question",
        dataset.n_items(),
        dataset.n_attrs(),
        avg_present
    );

    let labels = dataset.labels().unwrap().to_vec();
    let k = corpus.n_topics;

    println!("\nK-Modes (full search) ...");
    let spec = ClusterSpec::new(k).seed(seed).max_iterations(20);
    let baseline = Clusterer::new(spec).fit(&dataset).unwrap();
    println!(
        "  {} iters, {:.2}s, purity {:.3}, nmi {:.3}",
        baseline.summary.n_iterations(),
        baseline.summary.total_time().as_secs_f64(),
        purity(&baseline.labels(), &labels),
        normalized_mutual_information(&baseline.labels(), &labels)
    );

    // Fig. 9 uses 1 band x 1 row: one hash, eliminating only clusters with
    // no similarity at all — cheap and surprisingly effective on sparse text.
    println!("MH-K-Modes 1b1r ...");
    let spec = ClusterSpec::new(k)
        .lsh(Lsh::MinHash { bands: 1, rows: 1 })
        .seed(seed)
        .max_iterations(20);
    let mh = Clusterer::new(spec).fit(&dataset).unwrap();
    println!(
        "  {} iters, {:.2}s, purity {:.3}, nmi {:.3}, avg shortlist {:.1} of {k}",
        mh.summary.n_iterations(),
        mh.summary.total_time().as_secs_f64(),
        purity(&mh.labels(), &labels),
        normalized_mutual_information(&mh.labels(), &labels),
        mh.summary
            .iterations
            .last()
            .map_or(0.0, |s| s.avg_candidates),
    );

    let speedup =
        baseline.summary.total_time().as_secs_f64() / mh.summary.total_time().as_secs_f64();
    println!("\nspeedup: {speedup:.2}x (paper Fig. 9d: ~2x at full scale)");
}
