//! The persistence subsystem, end to end: the v2 flat binary envelope
//! round-trips every modality byte-identically and loads without
//! re-hashing; committed v1 JSON fixtures keep loading (back-compat);
//! hostile bytes — truncations, bit flips, wrong magic, oversized length
//! fields — come back as typed [`ModelError`]s, never panics; the
//! content-addressed [`ArtifactStore`] hits on identical refits, detects
//! corrupt entries instead of serving them, and GC keeps newest-first; a
//! failed reload never swaps the served generation.

use lshclust::{
    ArtifactStore, ClusterSpec, Clusterer, DatasetBuilder, FittedModel, Lsh, MixedDataset,
    ModelError, ModelHandle, NumericDataset, MODEL_VERSION, MODEL_VERSION_V2,
};
use lshclust_categorical::Dataset;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// Fixtures: deterministic blobs in each modality (shared with serving.rs).
// ---------------------------------------------------------------------------

fn cat_blobs(groups: usize, per_group: usize, n_attrs: usize) -> Dataset {
    let mut b = DatasetBuilder::anonymous(n_attrs);
    for g in 0..groups {
        for i in 0..per_group {
            let row: Vec<String> = (0..n_attrs)
                .map(|a| {
                    if a == n_attrs - 1 {
                        format!("g{g}-noise{i}")
                    } else {
                        format!("g{g}-a{a}")
                    }
                })
                .collect();
            let refs: Vec<&str> = row.iter().map(String::as_str).collect();
            b.push_str_row(&refs, Some(g as u32)).unwrap();
        }
    }
    b.finish()
}

fn num_blobs(groups: usize, per_group: usize) -> NumericDataset {
    let mut data = Vec::new();
    for g in 0..groups {
        let angle = g as f64 / groups as f64 * std::f64::consts::TAU;
        let (cx, cy) = (10.0 * angle.cos(), 10.0 * angle.sin());
        for i in 0..per_group {
            let jx = (i as f64 * 0.37).sin() * 0.2;
            let jy = (i as f64 * 0.71).cos() * 0.2;
            data.extend_from_slice(&[cx + jx, cy + jy]);
        }
    }
    NumericDataset::new(2, data)
}

/// The three pinned fixture models. Each is fully deterministic — same
/// blobs, same spec, same seed — so a fresh fit reproduces the committed
/// envelope's behaviour exactly.
fn fixture_models() -> Vec<(&'static str, FittedModel)> {
    let cat = Clusterer::new(
        ClusterSpec::new(4)
            .lsh(Lsh::MinHash { bands: 16, rows: 2 })
            .seed(3),
    )
    .fit(&cat_blobs(4, 6, 8))
    .unwrap()
    .model;
    let num = Clusterer::new(
        ClusterSpec::new(4)
            .lsh(Lsh::SimHash { bands: 10, rows: 3 })
            .seed(1),
    )
    .fit(&num_blobs(4, 8))
    .unwrap()
    .model;
    let cat_ds = cat_blobs(4, 8, 6);
    let num_ds = num_blobs(4, 8);
    let mixed = Clusterer::new(
        ClusterSpec::new(4)
            .lsh(Lsh::Union {
                bands: 16,
                rows: 2,
                sim_bands: 10,
                sim_rows: 3,
            })
            .seed(5),
    )
    .fit(&MixedDataset::new(&cat_ds, &num_ds))
    .unwrap()
    .model;
    vec![("categorical", cat), ("numeric", num), ("mixed", mixed)]
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(format!("model-{name}.v1.json"))
}

/// A scratch directory unique per test invocation.
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lshclust-persistence-{}-{tag}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------------
// Back-compat: committed v1 JSON envelopes still load and predict
// byte-identically to a fresh deterministic fit.
//
// Regenerate the fixtures (after a *deliberate, versioned* format change)
// with: LSHCLUST_REGEN_FIXTURES=1 cargo test -p lshclust-integration \
//       --test persistence fixtures
// ---------------------------------------------------------------------------

#[test]
fn fixtures_v1_envelopes_still_load_and_predict_identically() {
    let regen = std::env::var_os("LSHCLUST_REGEN_FIXTURES").is_some();
    for (name, fresh) in fixture_models() {
        let path = fixture_path(name);
        if regen {
            fresh.save(&path).unwrap();
            eprintln!("regenerated {}", path.display());
        }
        let pinned = FittedModel::load(&path)
            .unwrap_or_else(|e| panic!("committed v1 fixture {name} must keep loading: {e}"));

        // The pinned envelope and a fresh fit serve identical answers.
        match name {
            "categorical" => {
                let ds = cat_blobs(4, 6, 8);
                assert_eq!(pinned.predict(&ds).unwrap(), fresh.predict(&ds).unwrap());
            }
            "numeric" => {
                let ds = num_blobs(4, 8);
                assert_eq!(pinned.predict(&ds).unwrap(), fresh.predict(&ds).unwrap());
            }
            "mixed" => {
                let cat_ds = cat_blobs(4, 8, 6);
                let num_ds = num_blobs(4, 8);
                let ds = MixedDataset::new(&cat_ds, &num_ds);
                assert_eq!(pinned.predict(&ds).unwrap(), fresh.predict(&ds).unwrap());
            }
            _ => unreachable!(),
        }
        // And the fixture re-serializes byte-identically: the committed
        // bytes *are* the model's canonical v1 form.
        assert_eq!(
            pinned.to_json(),
            std::fs::read_to_string(&path).unwrap(),
            "{name}: v1 fixture no longer round-trips byte-identically"
        );
    }
}

#[test]
fn save_default_is_pinned_to_v1_json() {
    let (_, model) = fixture_models().swap_remove(1);
    let dir = scratch("default");
    let v1 = dir.join("m.json");
    let v2 = dir.join("m.bin");
    model.save(&v1).unwrap();
    model.save_v2(&v2).unwrap();

    let v1_bytes = std::fs::read(&v1).unwrap();
    let v2_bytes = std::fs::read(&v2).unwrap();
    assert_eq!(v1_bytes.first(), Some(&b'{'), "save() stays v1 JSON");
    assert!(
        v2_bytes.starts_with(b"LSHM2BIN"),
        "save_v2() is the binary envelope"
    );
    assert_eq!(FittedModel::sniff_version(&v1_bytes), Some(MODEL_VERSION));
    assert_eq!(
        FittedModel::sniff_version(&v2_bytes),
        Some(MODEL_VERSION_V2)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// v2 round trip: every modality, bytes stable, predictions identical to
// the v1 path, single sniffing load entry point.
// ---------------------------------------------------------------------------

#[test]
fn v2_round_trips_every_modality_byte_identically() {
    for (name, model) in fixture_models() {
        let bytes = model.to_bytes();
        let back = FittedModel::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{name}: v2 decode failed: {e}"));
        assert_eq!(back.to_bytes(), bytes, "{name}: v2 re-encode changed bytes");
        assert_eq!(
            back.to_json(),
            model.to_json(),
            "{name}: v2 trip changed the model"
        );
        assert_eq!(back.has_index(), model.has_index(), "{name}");
    }
}

#[test]
fn v2_and_v1_loads_predict_identically() {
    let dir = scratch("predict");
    for (name, model) in fixture_models() {
        let v1 = dir.join(format!("{name}.json"));
        let v2 = dir.join(format!("{name}.bin"));
        model.save(&v1).unwrap();
        model.save_v2(&v2).unwrap();
        let from_v1 = FittedModel::load(&v1).unwrap();
        let from_v2 = FittedModel::load(&v2).unwrap();
        match name {
            "categorical" => {
                let ds = cat_blobs(4, 6, 8);
                assert_eq!(from_v1.predict(&ds).unwrap(), from_v2.predict(&ds).unwrap());
            }
            "numeric" => {
                let ds = num_blobs(4, 8);
                assert_eq!(from_v1.predict(&ds).unwrap(), from_v2.predict(&ds).unwrap());
            }
            "mixed" => {
                let cat_ds = cat_blobs(4, 8, 6);
                let num_ds = num_blobs(4, 8);
                let ds = MixedDataset::new(&cat_ds, &num_ds);
                assert_eq!(from_v1.predict(&ds).unwrap(), from_v2.predict(&ds).unwrap());
            }
            _ => unreachable!(),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exact_baseline_models_round_trip_through_v2_without_an_index() {
    let run = Clusterer::new(ClusterSpec::new(3).seed(7))
        .fit(&cat_blobs(3, 5, 6))
        .unwrap();
    assert!(!run.model.has_index());
    let back = FittedModel::from_bytes(&run.model.to_bytes()).unwrap();
    assert!(!back.has_index(), "Lsh::None stays index-free through v2");
    let ds = cat_blobs(3, 5, 6);
    assert_eq!(back.predict(&ds).unwrap(), run.assignments);
}

// ---------------------------------------------------------------------------
// Robustness: hostile bytes are typed errors, never panics and never
// attacker-sized allocations.
// ---------------------------------------------------------------------------

#[test]
fn every_truncation_of_a_v2_envelope_is_a_typed_error() {
    for (name, model) in fixture_models() {
        let bytes = model.to_bytes();
        for cut in 0..bytes.len() {
            match FittedModel::from_bytes(&bytes[..cut]) {
                Ok(_) => panic!("{name}: truncation at {cut}/{} decoded", bytes.len()),
                Err(ModelError::Corrupt(_) | ModelError::Envelope(_) | ModelError::Json(_)) => {}
                Err(other) => panic!("{name}: unexpected error class at {cut}: {other}"),
            }
        }
    }
}

#[test]
fn every_single_byte_flip_is_handled_without_panicking() {
    let (_, model) = fixture_models().swap_remove(1);
    let bytes = model.to_bytes();
    for i in 0..bytes.len() {
        for bit in [0x01u8, 0x80] {
            let mut evil = bytes.clone();
            evil[i] ^= bit;
            // Some flips land in float payloads and still decode — that is
            // fine; the property is "typed result, no panic, no blow-up".
            let _ = FittedModel::from_bytes(&evil);
        }
    }
}

#[test]
fn wrong_magic_and_garbage_bytes_are_typed_errors() {
    let (_, model) = fixture_models().swap_remove(1);
    let mut wrong_magic = model.to_bytes();
    wrong_magic[..8].copy_from_slice(b"NOTMAGIC");
    // No magic → the sniffing path falls through to JSON and fails there.
    assert!(matches!(
        FittedModel::from_bytes(&wrong_magic),
        Err(ModelError::Json(_))
    ));
    // Non-UTF-8, non-envelope bytes.
    assert!(matches!(
        FittedModel::from_bytes(&[0xff, 0xfe, 0xfd, 0xfc]),
        Err(ModelError::Json(_))
    ));
    // Future envelope version is a version error, not a parse crash.
    let mut future = model.to_bytes();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        FittedModel::from_bytes(&future),
        Err(ModelError::Envelope(_))
    ));
}

#[test]
fn oversized_section_lengths_are_rejected_before_allocation() {
    let (_, model) = fixture_models().swap_remove(1);
    let bytes = model.to_bytes();
    // Corrupt every section-table length field (offset 16 + 24*i + 16) to
    // claim an exabyte payload; decode must reject on the length check —
    // if it tried to allocate first, this test would OOM, not fail.
    let n_sections = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    for i in 0..n_sections {
        let at = 16 + 24 * i + 16;
        let mut evil = bytes.clone();
        evil[at..at + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(
            matches!(FittedModel::from_bytes(&evil), Err(ModelError::Corrupt(_))),
            "section {i}: oversized length must be Corrupt"
        );
    }
}

// ---------------------------------------------------------------------------
// ArtifactStore: hit on identical refits, refit on corruption, GC, verify.
// ---------------------------------------------------------------------------

#[test]
fn fit_or_get_hits_on_identical_spec_and_dataset_only() {
    let dir = scratch("store-hit");
    let store = ArtifactStore::open(&dir).unwrap();
    let data = num_blobs(4, 8);
    let spec = ClusterSpec::new(4)
        .lsh(Lsh::SimHash { bands: 10, rows: 3 })
        .seed(1);

    let first = store.fit_or_get(&spec, &data).unwrap();
    assert!(!first.hit, "fresh store cannot hit");
    assert!(first.run.is_some(), "a miss carries the full ClusterRun");

    let second = store.fit_or_get(&spec, &data).unwrap();
    assert!(second.hit, "identical (spec, dataset) must hit");
    assert!(second.run.is_none(), "a hit skips the fit entirely");
    assert_eq!(
        first.model.to_bytes(),
        second.model.to_bytes(),
        "hit must return the byte-identical model"
    );

    // Different seed → different args hash → miss.
    let reseeded = store.fit_or_get(&spec.clone().seed(2), &data).unwrap();
    assert!(!reseeded.hit);
    // Different dataset → different content hash → miss.
    let other = num_blobs(4, 9);
    assert!(!store.fit_or_get(&spec, &other).unwrap().hit);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_store_entries_are_detected_and_refit_not_served() {
    let dir = scratch("store-corrupt");
    let store = ArtifactStore::open(&dir).unwrap();
    let data = num_blobs(3, 6);
    let spec = ClusterSpec::new(3)
        .lsh(Lsh::SimHash { bands: 8, rows: 2 })
        .seed(9);
    let first = store.fit_or_get(&spec, &data).unwrap();
    assert!(!first.hit);

    // Flip a byte in the middle of the stored entry's payload.
    let entries = store.entries().unwrap();
    assert_eq!(entries.len(), 1);
    let path = entries[0].path.clone();
    let mut raw = std::fs::read(&path).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x40;
    std::fs::write(&path, raw).unwrap();

    // verify() reports it; fit_or_get refits instead of serving it.
    let report = store.verify().unwrap();
    assert_eq!(report.ok, 0);
    assert_eq!(report.corrupt, vec![path]);

    let healed = store.fit_or_get(&spec, &data).unwrap();
    assert!(!healed.hit, "a corrupt entry must be refit, not served");
    assert_eq!(healed.model.to_bytes(), first.model.to_bytes());
    assert_eq!(store.verify().unwrap().ok, 1, "the refit heals the entry");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gc_keeps_newest_entries_within_the_byte_budget() {
    let dir = scratch("store-gc");
    let store = ArtifactStore::open(&dir).unwrap();
    let data = num_blobs(3, 6);
    // Three entries, oldest → newest by distinct seeds.
    for seed in [1u64, 2, 3] {
        let spec = ClusterSpec::new(3)
            .lsh(Lsh::SimHash { bands: 8, rows: 2 })
            .seed(seed);
        store.fit_or_get(&spec, &data).unwrap();
        // Distinct mtimes even on coarse filesystem clocks.
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let entries = store.entries().unwrap();
    assert_eq!(entries.len(), 3);
    let total: u64 = entries.iter().map(|e| e.bytes).sum();
    let largest = entries.iter().map(|e| e.bytes).max().unwrap();

    let report = store.gc(total).unwrap();
    assert_eq!(
        (report.kept, report.evicted),
        (3, 0),
        "under budget keeps all"
    );

    let report = store.gc(largest).unwrap();
    assert_eq!(report.kept, 1);
    assert_eq!(report.evicted, 2);
    assert!(report.reclaimed_bytes > 0);

    // The survivor is the newest entry (seed 3).
    let left = store.entries().unwrap();
    assert_eq!(left.len(), 1);
    let newest_mtime = left[0].modified;
    assert!(entries.iter().all(|e| e.modified <= newest_mtime));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Serving: a failed v2 reload never swaps the generation.
// ---------------------------------------------------------------------------

#[test]
fn failed_reload_never_swaps_generation_or_model() {
    let dir = scratch("reload");
    let models = fixture_models();
    let numeric = &models[1].1;
    let handle = ModelHandle::new(numeric.clone());
    let gen0 = handle.generation();
    let ds = num_blobs(4, 8);
    let before = handle.model().predict(&ds).unwrap();

    // Corrupt v2 bytes: typed error, no bump, same answers.
    let mut evil = numeric.to_bytes();
    let len = evil.len();
    evil.truncate(len / 2);
    assert!(handle.reload_from_bytes(&evil).is_err());
    assert_eq!(handle.generation(), gen0, "failed reload must not bump");
    assert_eq!(handle.model().predict(&ds).unwrap(), before);

    // Missing path: same story.
    assert!(handle.reload_from_path(dir.join("nope.bin")).is_err());
    assert_eq!(handle.generation(), gen0);

    // A good v2 artifact on disk *does* swap.
    let good = dir.join("good.bin");
    numeric.save_v2(&good).unwrap();
    let gen1 = handle.reload_from_path(&good).unwrap();
    assert!(gen1 > gen0);
    assert_eq!(handle.model().predict(&ds).unwrap(), before);
    let _ = std::fs::remove_dir_all(&dir);
}
