//! Workspace-local stand-in for `proptest`.
//!
//! Provides the slice of the proptest API the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, range strategies,
//! `prop::collection::vec`, [`ProptestConfig`], and the `prop_assert*` /
//! `prop_assume!` macros. Inputs are drawn from a deterministic RNG seeded by
//! the test name, so failures reproduce run-to-run. **No shrinking**: a
//! failing case reports its case number and message as-is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// The RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the deterministic generator for a named test.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Uniform draw from a half-open integer/float range.
    pub fn sample<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.0.random_range(range)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draws one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated inputs through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Anything usable as the size argument of [`vec()`]: an exact length
        /// or a half-open range of lengths.
        pub trait SizeRange {
            /// Draws a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for std::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.sample(self.clone())
            }
        }

        /// The strategy returned by [`vec()`].
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A strategy for vectors whose elements come from `element` and
        /// whose length comes from `len` (a `usize` or `Range<usize>`).
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!` — try another case.
    Reject(String),
}

/// Runs the case closure under `config`, panicking on the first failure.
/// Called by the expansion of [`proptest!`].
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::for_test(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.cases.saturating_mul(16),
                    "{name}: too many rejected cases ({rejected}); weaken prop_assume!"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{name}: property failed on case {} of {}: {msg}",
                    passed + 1,
                    config.cases
                )
            }
        }
    }
}

/// Everything a property-test module imports.
pub mod prelude {
    pub use super::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };

    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default())
            $(#[$meta])* fn $name($($arg in $strategy),+) $body $($rest)*);
    };

    // `#[test]` arrives inside the captured attributes and is re-emitted
    // with them, so the generated zero-argument fn stays a test.
    (@tests ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        $crate::prop_assert!($left == $right, $($fmt)+)
    };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_owned()));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_respect_the_range(v in prop::collection::vec(0u8..10, 3..7usize)) {
            prop_assert!(v.len() >= 3 && v.len() < 7, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn prop_map_applies(x in (0u32..5).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0);
            prop_assert!(x < 10);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::for_test("t");
        let mut b = super::TestRng::for_test("t");
        for _ in 0..32 {
            assert_eq!(a.sample(0u64..1_000_000), b.sample(0u64..1_000_000));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        super::run_cases("failing", &ProptestConfig::with_cases(8), |rng| {
            let x: u32 = rng.sample(0u32..100);
            crate::prop_assert!(x < 1, "x was {x}");
            Ok(())
        });
    }
}
