//! Per-topic TF-IDF scoring (§IV-B1).
//!
//! The paper scores words *per topic*: all questions of a topic form one
//! document, term frequency is computed within that topic-document, and the
//! inverse document frequency (Eq. 7: `idf(t) = log(N / n_t)`) penalises
//! words appearing in many topics. Words scoring above a threshold in *any*
//! topic enter the clustering vocabulary.
//!
//! Term frequency is max-normalised (`tf = count / max_count_in_topic`) so
//! scores are comparable across topics of different sizes and thresholds like
//! the paper's 0.7 / 0.3 are meaningful.

use crate::tokenize::tokenize;
use std::collections::HashMap;

/// Per-topic token counts and the cross-topic document frequencies.
#[derive(Debug, Default)]
pub struct TfIdf {
    /// token → per-topic count, keyed by topic id.
    topic_counts: Vec<HashMap<String, u32>>,
    /// token → number of topics containing it.
    doc_freq: HashMap<String, u32>,
}

/// TF-IDF scores of one topic.
#[derive(Debug, Clone)]
pub struct TopicScores {
    /// Topic id.
    pub topic: u32,
    /// `(token, score)` pairs sorted by descending score (ties: token order).
    pub scores: Vec<(String, f64)>,
}

impl TfIdf {
    /// Creates an accumulator for `n_topics` topics.
    pub fn new(n_topics: usize) -> Self {
        Self {
            topic_counts: vec![HashMap::new(); n_topics],
            doc_freq: HashMap::new(),
        }
    }

    /// Number of topics.
    pub fn n_topics(&self) -> usize {
        self.topic_counts.len()
    }

    /// Adds one question's text to its topic's document.
    pub fn add_document(&mut self, topic: u32, text: &str) {
        let counts = &mut self.topic_counts[topic as usize];
        for token in tokenize(text) {
            match counts.get_mut(&token) {
                Some(c) => *c += 1,
                None => {
                    // First occurrence in this topic: bump document frequency.
                    *self.doc_freq.entry(token.clone()).or_insert(0) += 1;
                    counts.insert(token, 1);
                }
            }
        }
    }

    /// Inverse document frequency of `token`: `log10(N / n_t)` (Eq. 7).
    /// Unknown tokens get the maximum idf (`df` treated as 1).
    pub fn idf(&self, token: &str) -> f64 {
        let n = self.n_topics() as f64;
        let df = f64::from(self.doc_freq.get(token).copied().unwrap_or(1).max(1));
        (n / df).log10()
    }

    /// Scores all tokens of `topic`, keeping at most `max_words` of the
    /// highest-scoring ones (the paper uses "up to 10000 words from each
    /// topic").
    pub fn topic_scores(&self, topic: u32, max_words: usize) -> TopicScores {
        let counts = &self.topic_counts[topic as usize];
        let max_count = counts.values().copied().max().unwrap_or(0);
        let mut scores: Vec<(String, f64)> = counts
            .iter()
            .map(|(token, &c)| {
                let tf = if max_count == 0 {
                    0.0
                } else {
                    f64::from(c) / f64::from(max_count)
                };
                (token.clone(), tf * self.idf(token))
            })
            .collect();
        scores.sort_by(|(ta, sa), (tb, sb)| sb.partial_cmp(sa).unwrap().then_with(|| ta.cmp(tb)));
        scores.truncate(max_words);
        TopicScores { topic, scores }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(corpus: &[(u32, &str)], n_topics: usize) -> TfIdf {
        let mut t = TfIdf::new(n_topics);
        for &(topic, text) in corpus {
            t.add_document(topic, text);
        }
        t
    }

    #[test]
    fn idf_penalises_ubiquitous_words() {
        let t = build(
            &[
                (0, "the zoo animal"),
                (1, "the stock market"),
                (2, "the guitar chord"),
            ],
            3,
        );
        assert!(t.idf("the") < t.idf("zoo"));
        assert_eq!(t.idf("the"), 0.0); // df = N → log10(1) = 0
        assert!((t.idf("zoo") - (3.0f64).log10()).abs() < 1e-12);
    }

    #[test]
    fn topic_scores_rank_topic_words_first() {
        let t = build(
            &[
                (0, "zoo zoo zoologist the a of"),
                (1, "market stock stock the a of"),
            ],
            2,
        );
        let scores = t.topic_scores(0, 100);
        assert_eq!(scores.topic, 0);
        let top: Vec<&str> = scores
            .scores
            .iter()
            .take(2)
            .map(|(w, _)| w.as_str())
            .collect();
        assert!(top.contains(&"zoo"));
        assert!(top.contains(&"zoologist"));
        // Shared stop-words score zero.
        let the_score = scores.scores.iter().find(|(w, _)| w == "the").unwrap().1;
        assert_eq!(the_score, 0.0);
    }

    #[test]
    fn max_words_truncates() {
        let t = build(&[(0, "a b c d e f g h")], 1);
        assert_eq!(t.topic_scores(0, 3).scores.len(), 3);
    }

    #[test]
    fn scores_are_sorted_descending() {
        let t = build(&[(0, "x x x y y z"), (1, "unrelated words here")], 2);
        let s = t.topic_scores(0, 10);
        for w in s.scores.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empty_topic_scores_empty() {
        let t = TfIdf::new(2);
        assert!(t.topic_scores(1, 10).scores.is_empty());
    }

    #[test]
    fn document_frequency_counts_topics_not_occurrences() {
        let t = build(&[(0, "zoo zoo zoo"), (1, "zoo")], 2);
        // "zoo" appears in both topics → df = 2 → idf = log10(1) = 0.
        assert_eq!(t.idf("zoo"), 0.0);
    }

    #[test]
    fn unknown_token_gets_max_idf() {
        let t = build(&[(0, "a"), (1, "b")], 2);
        assert!((t.idf("never-seen") - (2.0f64).log10()).abs() < 1e-12);
    }

    #[test]
    fn tf_is_max_normalised() {
        let t = build(&[(0, "zoo zoo lion"), (1, "other")], 2);
        let s = t.topic_scores(0, 10);
        let zoo = s.scores.iter().find(|(w, _)| w == "zoo").unwrap().1;
        let lion = s.scores.iter().find(|(w, _)| w == "lion").unwrap().1;
        // tf(zoo)=1, tf(lion)=0.5, same idf.
        assert!((zoo - 2.0 * lion).abs() < 1e-12);
    }
}
