//! Integration of the §IV-B text pipeline: corpus → TF-IDF → vocabulary →
//! binary items → clustering, across the datagen, text, core and metrics
//! crates.

use lshclust_core::mhkmodes::{MhKModes, MhKModesConfig};
use lshclust_datagen::corpus::{CorpusConfig, SyntheticCorpus};
use lshclust_kmodes::{KModes, KModesConfig};
use lshclust_metrics::purity;
use lshclust_minhash::Banding;
use lshclust_text::{vectorize, TfIdf, Vocabulary};

/// TF-IDF scores are bounded by `log10(n_topics)`; the paper's absolute
/// thresholds assume 2 916 topics, so tests at small topic counts rescale
/// them (same rule as `lshclust-bench::textexp::scaled_threshold`).
fn scaled_threshold(paper_threshold: f64, n_topics: usize) -> f64 {
    paper_threshold * (n_topics as f64).log10() / 2916f64.log10()
}

fn pipeline(
    n_topics: usize,
    per_topic: usize,
    threshold: f64,
    seed: u64,
) -> (lshclust_categorical::Dataset, usize) {
    let corpus = SyntheticCorpus::generate(&CorpusConfig::new(n_topics, per_topic).seed(seed));
    let mut tfidf = TfIdf::new(corpus.n_topics);
    for (text, topic) in corpus.labelled_texts() {
        tfidf.add_document(topic, text);
    }
    let vocab = Vocabulary::select(&tfidf, scaled_threshold(threshold, n_topics), 10_000);
    (vectorize(&vocab, corpus.labelled_texts()), corpus.n_topics)
}

#[test]
fn tfidf_vocabulary_is_dominated_by_topic_keywords() {
    let corpus = SyntheticCorpus::generate(&CorpusConfig::new(12, 60).seed(1));
    let mut tfidf = TfIdf::new(corpus.n_topics);
    for (text, topic) in corpus.labelled_texts() {
        tfidf.add_document(topic, text);
    }
    let vocab = Vocabulary::select(&tfidf, scaled_threshold(0.7, 12), 10_000);
    assert!(!vocab.is_empty());
    let keyword_like = vocab
        .iter()
        .filter(|w| w.starts_with('t') && w.contains('k'))
        .count();
    assert!(
        keyword_like * 10 >= vocab.len() * 8,
        "only {keyword_like}/{} vocabulary words look like topic keywords",
        vocab.len()
    );
}

#[test]
fn clustering_text_recovers_topics_better_than_chance() {
    let (dataset, k) = pipeline(15, 40, 0.7, 2);
    let labels = dataset.labels().unwrap().to_vec();
    let result = MhKModes::new(
        MhKModesConfig::new(k, Banding::new(1, 1))
            .seed(2)
            .max_iterations(20),
    )
    .fit(&dataset);
    let pred: Vec<u32> = result.assignments.iter().map(|c| c.0).collect();
    let p = purity(&pred, &labels);
    // Chance purity ~ 1/k plus majority slack; topic keywords make the
    // problem much easier than that.
    assert!(p > 0.3, "purity {p} barely above chance");
}

#[test]
fn mh_and_baseline_have_comparable_purity_on_text() {
    let (dataset, k) = pipeline(10, 50, 0.7, 3);
    let labels = dataset.labels().unwrap().to_vec();
    let baseline = KModes::new(KModesConfig::new(k).seed(3).max_iterations(20)).fit(&dataset);
    let mh = MhKModes::new(
        MhKModesConfig::new(k, Banding::new(1, 1))
            .seed(3)
            .max_iterations(20),
    )
    .fit(&dataset);
    let bp: Vec<u32> = baseline.assignments.iter().map(|c| c.0).collect();
    let mp: Vec<u32> = mh.assignments.iter().map(|c| c.0).collect();
    let (b, m) = (purity(&bp, &labels), purity(&mp, &labels));
    assert!(b - m < 0.12, "baseline {b} vs MH {m}");
}

#[test]
fn lower_threshold_means_more_attributes_and_items_still_cluster() {
    let (hi, _) = pipeline(8, 30, 0.7, 4);
    let (lo, k) = pipeline(8, 30, 0.3, 4);
    assert!(lo.n_attrs() >= hi.n_attrs(), "0.3 vocab not larger");
    // Fig. 10 setting: 10-iteration cap still produces a usable clustering.
    let result = MhKModes::new(
        MhKModesConfig::new(k, Banding::new(20, 5))
            .seed(4)
            .max_iterations(10),
    )
    .fit(&lo);
    assert!(result.summary.n_iterations() <= 10);
}

#[test]
fn mislabelled_questions_cap_achievable_purity() {
    // With 30% mislabels even a perfect clustering of the *text* cannot
    // exceed ~70% purity against recorded labels — the paper's explanation
    // for its low absolute purity, reproduced synthetically.
    let corpus = SyntheticCorpus::generate(&CorpusConfig::new(8, 60).mislabel_rate(0.3).seed(5));
    // At 30% mislabels over just 8 topics, keyword leakage flattens idf and
    // TF-IDF selection is not meaningful; vectorise over all tokens instead
    // (the purity ceiling, not the vocabulary, is under test here).
    let all_tokens = corpus
        .questions
        .iter()
        .flat_map(|q| q.text.split(' ').map(String::from))
        .collect::<std::collections::BTreeSet<_>>();
    let vocab = Vocabulary::from_words(all_tokens);
    let dataset = vectorize(&vocab, corpus.labelled_texts());
    // Cluster by *true* topic (the oracle clustering).
    let oracle: Vec<u32> = corpus.questions.iter().map(|q| q.true_topic).collect();
    let recorded: Vec<u32> = corpus.questions.iter().map(|q| q.topic).collect();
    let oracle_purity = purity(&oracle, &recorded);
    assert!(
        oracle_purity < 0.85,
        "oracle purity {oracle_purity} unexpectedly high despite 30% mislabels"
    );
    assert!(dataset.n_items() == corpus.len());
}

#[test]
fn sparse_items_have_few_present_elements() {
    let (dataset, _) = pipeline(10, 40, 0.7, 6);
    let avg: f64 = (0..dataset.n_items())
        .map(|i| dataset.present_count(i) as f64)
        .sum::<f64>()
        / dataset.n_items() as f64;
    assert!(
        avg < dataset.n_attrs() as f64 * 0.5,
        "items not sparse: avg {avg} of {} attrs present",
        dataset.n_attrs()
    );
}
