//! Question → categorical item conversion (§IV-B).
//!
//! Each vocabulary word becomes one attribute whose domain is
//! `{"<word>-0", "<word>-1"}` — the paper's name-augmented binary indicators
//! ("the value for the feature 'zoo' will become either 'zoo-0' or 'zoo-1'").
//! The `-0` value is registered as the attribute's *absent* value so that
//! [`lshclust_categorical::PresentElements`] filters it before MinHash
//! (Algorithm 2 lines 2–4): shared negatives carry no similarity information.

use crate::tokenize::tokenize;
use crate::vocab::Vocabulary;
use lshclust_categorical::{AttrId, Dataset, DatasetBuilder, ValueId};

/// Converts labelled texts into a binary-presence categorical dataset.
///
/// Attributes follow the vocabulary order; rows follow input order; labels
/// carry the recorded topics.
pub fn vectorize<'a, I>(vocab: &Vocabulary, labelled_texts: I) -> Dataset
where
    I: IntoIterator<Item = (&'a str, u32)>,
{
    assert!(
        !vocab.is_empty(),
        "cannot vectorise with an empty vocabulary"
    );
    let n_attrs = vocab.len();
    let mut builder = DatasetBuilder::new(vocab.iter().map(String::from).collect::<Vec<_>>());
    // Pre-intern "<word>-0"/"<word>-1" per attribute, registering absence.
    let mut absent = Vec::with_capacity(n_attrs);
    let mut present = Vec::with_capacity(n_attrs);
    for a in 0..n_attrs as u32 {
        let word = vocab.word(a).to_owned();
        let dict = builder.schema_mut().dictionary_mut(AttrId(a));
        let v0 = dict.intern(&format!("{word}-0"));
        let v1 = dict.intern(&format!("{word}-1"));
        builder.schema_mut().set_absent_value(AttrId(a), v0);
        absent.push(v0);
        present.push(v1);
    }

    let mut row: Vec<ValueId> = Vec::with_capacity(n_attrs);
    for (text, topic) in labelled_texts {
        row.clear();
        row.extend_from_slice(&absent);
        for token in tokenize(text) {
            if let Some(a) = vocab.position(&token) {
                row[a as usize] = present[a as usize];
            }
        }
        builder
            .push_encoded_row(&row, Some(topic))
            .expect("row arity fixed by vocabulary");
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::PresentElements;

    fn vocab() -> Vocabulary {
        Vocabulary::from_words(["zoo", "stock", "guitar"].into_iter().map(String::from))
    }

    fn sample() -> Dataset {
        vectorize(
            &vocab(),
            [
                ("i love the zoo and the zoo loves me", 0u32),
                ("stock market stock tips", 1),
                ("guitar and zoo", 2),
                ("nothing relevant here", 0),
            ],
        )
    }

    #[test]
    fn shape_and_labels() {
        let ds = sample();
        assert_eq!(ds.n_items(), 4);
        assert_eq!(ds.n_attrs(), 3);
        assert_eq!(ds.labels(), Some(&[0, 1, 2, 0][..]));
    }

    #[test]
    fn presence_is_encoded_with_augmented_names() {
        let ds = sample();
        assert_eq!(ds.decode_row(0), vec!["zoo-1", "stock-0", "guitar-0"]);
        assert_eq!(ds.decode_row(2), vec!["zoo-1", "stock-0", "guitar-1"]);
    }

    #[test]
    fn absent_values_are_filtered_from_minhash_elements() {
        let ds = sample();
        // Row 3 has no vocabulary word: zero present elements.
        assert_eq!(PresentElements::of_item(&ds, 3).count(), 0);
        // Row 0 has exactly one present element (zoo).
        assert_eq!(PresentElements::of_item(&ds, 0).count(), 1);
        // Row 2 has two (zoo, guitar).
        assert_eq!(PresentElements::of_item(&ds, 2).count(), 2);
    }

    #[test]
    fn repeated_words_count_once() {
        let ds = sample();
        // "zoo" twice in row 0 still yields a single presence flag.
        assert_eq!(ds.present_count(0), 1);
    }

    #[test]
    fn tokenisation_applies_before_matching() {
        let ds = vectorize(&vocab(), [("ZOO!", 0u32)]);
        assert_eq!(ds.decode_row(0)[0], "zoo-1");
    }

    #[test]
    fn shared_absence_is_not_similarity() {
        use lshclust_categorical::dissimilarity::jaccard;
        let ds = sample();
        // Rows 1 and 3 share only absences → Jaccard 0 over present elements.
        let sim = jaccard(ds.schema(), ds.row(1), ds.row(3));
        assert_eq!(sim, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty vocabulary")]
    fn empty_vocabulary_rejected() {
        let _ = vectorize(&Vocabulary::default(), [("text", 0u32)]);
    }

    #[test]
    fn matching_distance_counts_flag_disagreements() {
        use lshclust_categorical::dissimilarity::matching;
        let ds = sample();
        // Row 0 {zoo} vs row 2 {zoo, guitar}: differ on guitar only.
        assert_eq!(matching(ds.row(0), ds.row(2)), 1);
        // Row 0 {zoo} vs row 1 {stock}: differ on zoo and stock.
        assert_eq!(matching(ds.row(0), ds.row(1)), 2);
    }
}
