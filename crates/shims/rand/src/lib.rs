//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! (small) slice of the `rand` API the workspace actually uses, with fully
//! deterministic behaviour: [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64, so every seed maps to one reproducible stream on every
//! platform — exactly the property the workspace's determinism policy needs.
//!
//! Surface provided: `SeedableRng::seed_from_u64`, `Rng::{next_u64, fill}`,
//! and `RngExt::random_range` over integer and `f64` ranges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable construction (the only entry point the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw generator interface.
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with independent uniform 64-bit values.
    fn fill(&mut self, dest: &mut [u64]) {
        for slot in dest {
            *slot = self.next_u64();
        }
    }
}

/// Range sampling extensions (blanket-implemented for every [`Rng`]).
pub trait RngExt: Rng {
    /// Samples uniformly from `range`. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: Rng> RngExt for T {}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = hi as u128 - lo as u128 + 1;
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                ((self.start as i128) + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

/// Uniform draw from `[0, span)` by widening multiply (Lemire reduction,
/// without the rejection step — the bias is < 2⁻⁶⁴·span, irrelevant here).
#[inline]
fn uniform_u64<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — deterministic, fast, and good
    /// enough statistically for initialisation sampling and hash seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_writes_every_slot() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = vec![0u64; 64];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&x| x != 0));
        let distinct: std::collections::HashSet<_> = buf.iter().collect();
        assert!(distinct.len() > 60, "values should be essentially unique");
    }
}
