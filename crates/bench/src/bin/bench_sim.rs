//! `bench_sim` — the similarity-workloads experiment behind
//! `BENCH_sim.json`.
//!
//! ```text
//! bench_sim [--quick] [--seed N] [--threads N] [--out FILE]
//!
//!   --quick       CI-sized workload (seconds instead of minutes)
//!   --seed N      master seed (default 42)
//!   --threads N   verification threads for every join (default 4)
//!   --out FILE    where to write the JSON report (default BENCH_sim.json)
//! ```
//!
//! Measures candidate-pair volume and verify wall-time against the
//! brute-force all-pairs join, plus recall against the exact result, per
//! modality and size. Exits non-zero if any measured recall falls below the
//! committed floor (`lshclust_bench::sim::RECALL_FLOOR`), so CI can run it
//! as a shortlist-quality regression gate, not just a benchmark.

use lshclust_bench::sim::{run, SimSettings, RECALL_FLOOR};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench_sim [--quick] [--seed N] [--threads N] [--out FILE]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut settings = SimSettings::default();
    let mut out = "BENCH_sim.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => settings.quick = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => settings.seed = s,
                None => return usage(),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) if t > 0 => settings.threads = t,
                _ => return usage(),
            },
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = run(&settings);
    print!("{}", report.render());
    if let Err(e) = report.write_json(&out) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {out}");
    if report.min_recall < RECALL_FLOOR {
        eprintln!(
            "error: recall gate tripped — measured {:.4} under the committed floor {RECALL_FLOOR}",
            report.min_recall
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
