//! Mini-batch quickstart: **fit on sampled batches → save → predict a
//! held-out batch**.
//!
//! `Fit::MiniBatch` trades full passes for sampled steps: each step assigns
//! a small batch against the current centroids — shortlisted through an LSH
//! index over the centroids, refreshed as they drift — and nudges only the
//! touched clusters. Fit cost scales with `batch × steps` instead of
//! `n × iterations`, and the result is a servable `FittedModel` like any
//! other run.
//!
//! ```text
//! cargo run --release -p lshclust --example minibatch
//! ```

use lshclust::{ClusterSpec, Clusterer, Dataset, Fit, FittedModel, Lsh};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_metrics::purity;

fn main() {
    // --- data: hold every 7th row out of training --------------------------
    let config = DatgenConfig::new(4_000, 100, 30).seed(21);
    let full = generate(&config);
    let schema = full.schema().clone();
    let mut train_values = Vec::new();
    let mut held_values = Vec::new();
    let mut held_labels = Vec::new();
    for (i, &label) in full.labels().unwrap().iter().enumerate() {
        if i % 7 == 0 {
            held_values.extend_from_slice(full.row(i));
            held_labels.push(label);
        } else {
            train_values.extend_from_slice(full.row(i));
        }
    }
    let train = Dataset::from_parts(schema.clone(), train_values, None);
    let held_out = Dataset::from_parts(schema, held_values, None);
    println!(
        "training on {} items, holding out {} ({} rule clusters)",
        train.n_items(),
        held_out.n_items(),
        config.n_clusters
    );

    // --- mini-batch fit ----------------------------------------------------
    // 40 steps x 256 items touch ~10k samples instead of 25 full passes
    // over 3.4k items; the MinHash centroid index (refreshed every 8 steps)
    // keeps each batch assignment to a shortlist instead of all k=100.
    let spec = ClusterSpec::new(config.n_clusters)
        .lsh(Lsh::MinHash { bands: 8, rows: 2 })
        .seed(21)
        .fit(Fit::MiniBatch {
            batch_size: 256,
            n_steps: 40,
            refresh_every: 8,
        });
    let run = Clusterer::new(spec).fit(&train).unwrap();
    let steps = &run.summary.iterations[..run.summary.iterations.len() - 1];
    println!(
        "  {} steps, mean {:.1} centroids searched per batch item (k = {})",
        steps.len(),
        steps.iter().map(|s| s.avg_candidates).sum::<f64>() / steps.len() as f64,
        config.n_clusters
    );

    // --- save → load -------------------------------------------------------
    let path = std::env::temp_dir().join("lshclust-minibatch-example.json");
    run.model.save(&path).unwrap();
    let model = FittedModel::load(&path).unwrap();
    println!(
        "saved + reloaded model ({} clusters, fit discipline {})",
        model.k(),
        model.spec().fit.name()
    );

    // --- predict the held-out batch ----------------------------------------
    let assigned = model.predict(&held_out).unwrap();
    let assigned_labels: Vec<u32> = assigned.iter().map(|c| c.0).collect();
    println!(
        "held-out purity {:.3} over {} items",
        purity(&assigned_labels, &held_labels),
        assigned.len()
    );
    let _ = std::fs::remove_file(&path);
}
