//! The algorithm-agnostic acceleration framework.
//!
//! The paper presents its idea as "a general framework to accelerate existing
//! clustering algorithms … applied to a set of centroid-based clustering
//! algorithms that assign an object to the most similar cluster". This module
//! is that framework, reduced to two traits and one driver:
//!
//! * a [`CentroidModel`] owns the centroids and knows how to (a) find the
//!   best centroid for an item among a candidate set, and (b) refresh the
//!   centroids from assignments;
//! * a [`ShortlistProvider`] owns the LSH index and knows how to (a) produce
//!   the candidate-cluster shortlist for an item and (b) record assignment
//!   changes (Algorithm 2's cluster-reference update);
//! * [`fit`] alternates shortlisted assignment passes with centroid updates
//!   until convergence, instrumenting every pass.
//!
//! `MH-K-Modes` is `fit` applied to a K-Modes model and a MinHash provider;
//! the K-Means/SimHash extension reuses the identical driver, demonstrating
//! the framework's generality.

use lshclust_categorical::ClusterId;
use lshclust_kmodes::stats::{IterationStats, RunSummary};
use std::time::Instant;

/// A centroid-based clustering algorithm, abstracted to what the framework
/// needs. Distances are surfaced as `f64` so categorical (integer mismatch
/// counts) and numeric (squared Euclidean) models fit the same interface.
pub trait CentroidModel {
    /// Owned copy of the centroid state. The driver snapshots it before each
    /// pass so a cost-increasing final pass can be rolled back (the paper's
    /// "cost has minimised" criterion keeps the *minimising* state).
    type Snapshot;

    /// Number of clusters `k`.
    fn k(&self) -> usize;

    /// Number of items.
    fn n_items(&self) -> usize;

    /// Full search: the best cluster for `item` over all `k` centroids.
    fn best_full(&self, item: u32) -> (ClusterId, f64);

    /// Restricted search over `candidates`; `None` iff the slice is empty.
    fn best_among(&self, item: u32, candidates: &[ClusterId]) -> Option<(ClusterId, f64)>;

    /// Recomputes all centroids from `assignments`.
    fn update_centroids(&mut self, assignments: &[ClusterId]);

    /// Like [`Self::update_centroids`], but free to fan the recomputation
    /// over `threads` workers. Implementations must stay **deterministic**:
    /// the result may not depend on the thread count (the per-family models
    /// recompute cluster-by-cluster, which is bit-identical to the serial
    /// update at any thread count). The default delegates to the serial
    /// update.
    fn update_centroids_parallel(&mut self, assignments: &[ClusterId], threads: usize) {
        let _ = threads;
        self.update_centroids(assignments);
    }

    /// Captures the current centroid state for [`Self::restore_centroids`].
    fn snapshot_centroids(&self) -> Self::Snapshot;

    /// Restores a state captured by [`Self::snapshot_centroids`].
    fn restore_centroids(&mut self, snapshot: Self::Snapshot);

    /// Total cost of `assignments` under the current centroids.
    fn total_cost(&self, assignments: &[ClusterId]) -> f64;
}

/// The cluster search-space reducer (the LSH index of the paper).
pub trait ShortlistProvider {
    /// Writes the candidate clusters for `item` into `out` (cleared first).
    ///
    /// Implementations should include the item's *current* cluster whenever
    /// the item is indexed (self-collision) — the framework falls back to
    /// "stay put" if the shortlist comes back empty.
    fn shortlist(&mut self, item: u32, out: &mut Vec<ClusterId>);

    /// Records that `item` is now assigned to `cluster` (Algorithm 2's
    /// reference update, performed after every move).
    fn record_assignment(&mut self, item: u32, cluster: ClusterId);
}

/// Convergence controls for [`fit`] — the single iteration policy shared by
/// every algorithm family (the per-config `max_iterations` fields this
/// replaces now live here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StopPolicy {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Stop when an iteration makes no moves.
    pub stop_on_no_moves: bool,
    /// Stop when the cost fails to decrease (the paper's "cost has
    /// minimised" criterion). Shortlisted assignment is not guaranteed
    /// monotone, so this also guards against oscillation.
    pub stop_on_cost_increase: bool,
}

impl Default for StopPolicy {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            stop_on_no_moves: true,
            stop_on_cost_increase: true,
        }
    }
}

impl StopPolicy {
    /// The default policy with an explicit iteration cap — the common case.
    pub fn max_iterations(n: usize) -> Self {
        Self {
            max_iterations: n,
            ..Self::default()
        }
    }
}

serde::impl_serde_struct!(StopPolicy {
    max_iterations,
    stop_on_no_moves,
    stop_on_cost_increase
});

/// What one assignment pass did — returned by [`assign_once`] and
/// [`assign_full`] so callers can drive their own convergence logic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AssignOutcome {
    /// Items that changed cluster during the pass.
    pub moves: usize,
    /// Summed shortlist sizes over all items (for `avg_candidates`; equals
    /// `n × k` for a full-search pass).
    pub shortlist_total: usize,
}

/// One **shortlisted assignment pass** (Algorithm 2's modified assignment
/// step, extracted from the [`fit`] loop so serving paths can reuse it):
/// each item is shortlisted, searched among its candidates, and moved —
/// with the provider's cluster reference updated — when a better cluster is
/// found. Items with an empty shortlist keep their current assignment.
///
/// The pass is Gauss–Seidel: a move is visible to later items of the same
/// pass through the provider's cluster references.
pub fn assign_once<M: CentroidModel, P: ShortlistProvider>(
    model: &M,
    provider: &mut P,
    assignments: &mut [ClusterId],
) -> AssignOutcome {
    assert_eq!(
        assignments.len(),
        model.n_items(),
        "one starting assignment per item"
    );
    let mut outcome = AssignOutcome::default();
    let mut shortlist = Vec::new();
    for item in 0..assignments.len() as u32 {
        provider.shortlist(item, &mut shortlist);
        outcome.shortlist_total += shortlist.len();
        let current = assignments[item as usize];
        let chosen = match model.best_among(item, &shortlist) {
            Some((c, _)) => c,
            // Empty shortlist (only possible when self-collision is
            // disabled): keep the current assignment.
            None => current,
        };
        if chosen != current {
            assignments[item as usize] = chosen;
            outcome.moves += 1;
            provider.record_assignment(item, chosen);
        }
    }
    outcome
}

/// One **full-search assignment pass** over all `k` centroids — the
/// baseline step every family shares, and the initial pass of every
/// accelerated run (the paper's step 2).
pub fn assign_full<M: CentroidModel>(model: &M, assignments: &mut [ClusterId]) -> AssignOutcome {
    assert_eq!(
        assignments.len(),
        model.n_items(),
        "one starting assignment per item"
    );
    let mut moves = 0usize;
    for (item, slot) in assignments.iter_mut().enumerate() {
        let (c, _) = model.best_full(item as u32);
        if c != *slot {
            moves += 1;
            *slot = c;
        }
    }
    AssignOutcome {
        moves,
        shortlist_total: assignments.len() * model.k(),
    }
}

/// Outcome of an accelerated run.
#[derive(Clone, Debug)]
pub struct AcceleratedRun {
    /// Final cluster per item.
    pub assignments: Vec<ClusterId>,
    /// Instrumentation (per-iteration time, moves, avg shortlist, cost).
    pub summary: RunSummary,
}

/// Drives shortlisted assignment / centroid update rounds to convergence.
///
/// `assignments` supplies the starting state (for MH-K-Modes, the result of
/// the initial full assignment pass); `setup` is the time already spent
/// producing it (initial assignment + index build), carried into the summary
/// so total-time comparisons include it, as the paper requires.
pub fn fit<M: CentroidModel, P: ShortlistProvider>(
    model: &mut M,
    provider: &mut P,
    assignments: Vec<ClusterId>,
    setup: std::time::Duration,
    config: &StopPolicy,
) -> AcceleratedRun {
    drive(
        model,
        assignments,
        setup,
        config,
        |model, assignments| assign_once(model, provider, assignments),
        |model, assignments| model.update_centroids(assignments),
    )
}

/// The **one** iteration driver every fit path shares — serial
/// (Gauss–Seidel, through [`fit`]) and parallel (Jacobi, through
/// [`crate::parallel::parallel_fit`]) differ only in the `pass` and `update`
/// strategies they plug in; iteration accounting and stop logic live here.
///
/// Stop criteria:
/// * `stop_on_no_moves` — a pass moved nothing; the state is a fixpoint.
/// * `stop_on_cost_increase` — the paper's "cost has minimised" criterion.
///   A pass whose cost comes back **strictly worse** than the previous
///   iteration is rolled back (assignments and centroids), so the run always
///   returns the minimising state. The offending pass stays in the
///   instrumentation record (its time was really spent, and the exact
///   baselines record their stopping pass the same way), so after a
///   rollback `RunSummary::final_cost` — the *last recorded pass* — is the
///   undone cost; `RunSummary::best_cost` carries the returned state's.
///
/// Both stops report `converged: true`; only exhausting `max_iterations`
/// reports `false`.
pub(crate) fn drive<M: CentroidModel>(
    model: &mut M,
    mut assignments: Vec<ClusterId>,
    setup: std::time::Duration,
    config: &StopPolicy,
    mut pass: impl FnMut(&M, &mut Vec<ClusterId>) -> AssignOutcome,
    mut update: impl FnMut(&mut M, &[ClusterId]),
) -> AcceleratedRun {
    assert_eq!(
        assignments.len(),
        model.n_items(),
        "one starting assignment per item"
    );
    let n = model.n_items();
    let mut iterations = Vec::new();
    let mut converged = false;
    let mut prev_cost = f64::INFINITY;
    // Pre-pass state for cost-increase rollback. The assignment buffer is
    // allocated once and refilled per iteration (`clone_from` reuses its
    // capacity); the centroid snapshot is the only per-iteration clone, and
    // it is O(k·m) against the pass's O(n·m·shortlist).
    let mut prev_assignments: Vec<ClusterId> = Vec::new();
    let mut prev_centroids: Option<M::Snapshot> = None;
    for iteration in 1..=config.max_iterations {
        let t = Instant::now();
        if config.stop_on_cost_increase {
            prev_assignments.clone_from(&assignments);
            prev_centroids = Some(model.snapshot_centroids());
        }
        let outcome = pass(model, &mut assignments);
        let moves = outcome.moves;
        update(model, &assignments);
        let cost = model.total_cost(&assignments);
        iterations.push(IterationStats {
            iteration,
            duration: t.elapsed(),
            moves,
            avg_candidates: if n == 0 {
                0.0
            } else {
                outcome.shortlist_total as f64 / n as f64
            },
            cost: cost as u64,
        });
        if config.stop_on_no_moves && moves == 0 {
            converged = true;
            break;
        }
        if config.stop_on_cost_increase && cost >= prev_cost {
            if cost > prev_cost {
                // The final pass made things strictly worse: restore the
                // previous pass's assignments and centroids so the returned
                // cost is the minimum over the recorded iterations.
                std::mem::swap(&mut assignments, &mut prev_assignments);
                model.restore_centroids(
                    prev_centroids
                        .take()
                        .expect("rollback state exists when the criterion is armed"),
                );
            }
            converged = true;
            break;
        }
        prev_cost = cost;
    }
    AcceleratedRun {
        assignments,
        summary: RunSummary {
            iterations,
            converged,
            setup,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A 1-D toy model: items and centroids are integers, distance is |a−b|.
    /// Centroid update moves each centroid to the rounded mean of its items.
    struct LineModel {
        items: Vec<i64>,
        centroids: Vec<i64>,
    }

    impl CentroidModel for LineModel {
        type Snapshot = Vec<i64>;
        fn snapshot_centroids(&self) -> Vec<i64> {
            self.centroids.clone()
        }
        fn restore_centroids(&mut self, snapshot: Vec<i64>) {
            self.centroids = snapshot;
        }
        fn k(&self) -> usize {
            self.centroids.len()
        }
        fn n_items(&self) -> usize {
            self.items.len()
        }
        fn best_full(&self, item: u32) -> (ClusterId, f64) {
            let x = self.items[item as usize];
            let (c, d) = self
                .centroids
                .iter()
                .enumerate()
                .map(|(c, &v)| (c, (x - v).abs()))
                .min_by_key(|&(c, d)| (d, c))
                .unwrap();
            (ClusterId(c as u32), d as f64)
        }
        fn best_among(&self, item: u32, candidates: &[ClusterId]) -> Option<(ClusterId, f64)> {
            let x = self.items[item as usize];
            candidates
                .iter()
                .map(|&c| (c, (x - self.centroids[c.idx()]).abs()))
                .min_by_key(|&(c, d)| (d, c))
                .map(|(c, d)| (c, d as f64))
        }
        fn update_centroids(&mut self, assignments: &[ClusterId]) {
            let k = self.k();
            let mut sums = vec![0i64; k];
            let mut counts = vec![0i64; k];
            for (i, &c) in assignments.iter().enumerate() {
                sums[c.idx()] += self.items[i];
                counts[c.idx()] += 1;
            }
            for c in 0..k {
                if counts[c] > 0 {
                    self.centroids[c] = sums[c] / counts[c];
                }
            }
        }
        fn total_cost(&self, assignments: &[ClusterId]) -> f64 {
            assignments
                .iter()
                .enumerate()
                .map(|(i, &c)| (self.items[i] - self.centroids[c.idx()]).abs() as f64)
                .sum()
        }
    }

    /// A provider that always offers every cluster (degenerate but exact).
    struct FullProvider {
        k: usize,
    }

    impl ShortlistProvider for FullProvider {
        fn shortlist(&mut self, _item: u32, out: &mut Vec<ClusterId>) {
            out.clear();
            out.extend((0..self.k as u32).map(ClusterId));
        }
        fn record_assignment(&mut self, _item: u32, _cluster: ClusterId) {}
    }

    /// A provider that only ever offers the item's current cluster — the
    /// pathological lower bound (no exploration at all).
    struct FrozenProvider {
        current: Vec<ClusterId>,
    }

    impl ShortlistProvider for FrozenProvider {
        fn shortlist(&mut self, item: u32, out: &mut Vec<ClusterId>) {
            out.clear();
            out.push(self.current[item as usize]);
        }
        fn record_assignment(&mut self, item: u32, cluster: ClusterId) {
            self.current[item as usize] = cluster;
        }
    }

    fn line_model() -> LineModel {
        LineModel {
            items: vec![0, 1, 2, 100, 101, 102],
            centroids: vec![2, 100],
        }
    }

    #[test]
    fn full_provider_reaches_exact_clustering() {
        let mut model = line_model();
        let mut provider = FullProvider { k: 2 };
        let start = vec![ClusterId(0); 6];
        let run = fit(
            &mut model,
            &mut provider,
            start,
            Duration::ZERO,
            &StopPolicy::default(),
        );
        assert!(run.summary.converged);
        assert_eq!(run.assignments[..3], [ClusterId(0); 3]);
        assert_eq!(run.assignments[3..], [ClusterId(1); 3]);
        assert_eq!(model.centroids, vec![1, 101]);
    }

    #[test]
    fn frozen_provider_never_moves_anything() {
        let mut model = line_model();
        let start = vec![ClusterId(0); 6];
        let mut provider = FrozenProvider {
            current: start.clone(),
        };
        let run = fit(
            &mut model,
            &mut provider,
            start.clone(),
            Duration::ZERO,
            &StopPolicy::default(),
        );
        assert_eq!(run.assignments, start);
        assert_eq!(run.summary.n_iterations(), 1); // 0 moves → immediate stop
        assert!(run.summary.converged);
    }

    #[test]
    fn avg_candidates_is_recorded() {
        let mut model = line_model();
        let mut provider = FullProvider { k: 2 };
        let run = fit(
            &mut model,
            &mut provider,
            vec![ClusterId(0); 6],
            Duration::ZERO,
            &StopPolicy::default(),
        );
        for s in &run.summary.iterations {
            assert_eq!(s.avg_candidates, 2.0);
        }
    }

    #[test]
    fn iteration_cap_respected() {
        let mut model = line_model();
        let mut provider = FullProvider { k: 2 };
        let cfg = StopPolicy::max_iterations(1);
        let run = fit(
            &mut model,
            &mut provider,
            vec![ClusterId(0); 6],
            Duration::ZERO,
            &cfg,
        );
        assert_eq!(run.summary.n_iterations(), 1);
        assert!(!run.summary.converged);
    }

    #[test]
    fn setup_time_propagates_to_summary() {
        let mut model = line_model();
        let mut provider = FullProvider { k: 2 };
        let setup = Duration::from_millis(123);
        let run = fit(
            &mut model,
            &mut provider,
            vec![ClusterId(0); 6],
            setup,
            &StopPolicy::default(),
        );
        assert!(run.summary.total_time() >= setup);
        assert_eq!(run.summary.setup, setup);
    }

    #[test]
    fn empty_shortlist_keeps_current_assignment() {
        struct EmptyProvider;
        impl ShortlistProvider for EmptyProvider {
            fn shortlist(&mut self, _item: u32, out: &mut Vec<ClusterId>) {
                out.clear();
            }
            fn record_assignment(&mut self, _item: u32, _cluster: ClusterId) {}
        }
        let mut model = line_model();
        let start: Vec<ClusterId> = vec![ClusterId(1); 6];
        let run = fit(
            &mut model,
            &mut EmptyProvider,
            start.clone(),
            Duration::ZERO,
            &StopPolicy::default(),
        );
        assert_eq!(run.assignments, start);
    }

    #[test]
    fn record_assignment_sees_every_move() {
        struct CountingProvider {
            k: usize,
            records: usize,
        }
        impl ShortlistProvider for CountingProvider {
            fn shortlist(&mut self, _item: u32, out: &mut Vec<ClusterId>) {
                out.clear();
                out.extend((0..self.k as u32).map(ClusterId));
            }
            fn record_assignment(&mut self, _item: u32, _cluster: ClusterId) {
                self.records += 1;
            }
        }
        let mut model = line_model();
        let mut provider = CountingProvider { k: 2, records: 0 };
        let run = fit(
            &mut model,
            &mut provider,
            vec![ClusterId(0); 6],
            Duration::ZERO,
            &StopPolicy::default(),
        );
        let total_moves: usize = run.summary.iterations.iter().map(|s| s.moves).sum();
        assert_eq!(provider.records, total_moves);
        assert!(total_moves >= 3); // the three far items had to move
    }

    #[test]
    fn assign_full_finds_per_item_optimum() {
        let model = line_model();
        let mut assignments = vec![ClusterId(0); 6];
        let outcome = assign_full(&model, &mut assignments);
        assert_eq!(outcome.moves, 3); // the three items near centroid 100
        assert_eq!(outcome.shortlist_total, 6 * 2);
        for item in 0..6u32 {
            assert_eq!(assignments[item as usize], model.best_full(item).0);
        }
        // A second pass is a fixpoint.
        assert_eq!(assign_full(&model, &mut assignments).moves, 0);
    }

    #[test]
    fn assign_once_with_saturating_provider_matches_assign_full() {
        let model = line_model();
        let mut provider = FullProvider { k: 2 };
        let mut shortlisted = vec![ClusterId(0); 6];
        let pass = assign_once(&model, &mut provider, &mut shortlisted);
        let mut full = vec![ClusterId(0); 6];
        assign_full(&model, &mut full);
        assert_eq!(shortlisted, full);
        assert_eq!(pass.shortlist_total, 6 * 2);
    }

    #[test]
    fn assign_once_empty_shortlist_keeps_assignment() {
        struct EmptyProvider;
        impl ShortlistProvider for EmptyProvider {
            fn shortlist(&mut self, _item: u32, out: &mut Vec<ClusterId>) {
                out.clear();
            }
            fn record_assignment(&mut self, _item: u32, _cluster: ClusterId) {}
        }
        let model = line_model();
        let mut assignments = vec![ClusterId(1); 6];
        let pass = assign_once(&model, &mut EmptyProvider, &mut assignments);
        assert_eq!(pass.moves, 0);
        assert_eq!(assignments, vec![ClusterId(1); 6]);
    }

    /// A scripted model whose cost dips and then rises: pass 1 → cost 10,
    /// pass 2 → cost 5, pass 3 → cost 8. The driver must stop at pass 3 and
    /// hand back pass 2's state (cost 5 = the minimum over iterations).
    struct ScriptedModel {
        /// Scripted (assignment-for-item-0, cost) per pass, consumed in order.
        script: std::cell::RefCell<Vec<(u32, f64)>>,
        /// Cost of the current centroid state.
        current_cost: std::cell::Cell<f64>,
    }

    impl CentroidModel for ScriptedModel {
        type Snapshot = f64;
        fn snapshot_centroids(&self) -> f64 {
            self.current_cost.get()
        }
        fn restore_centroids(&mut self, snapshot: f64) {
            self.current_cost.set(snapshot);
        }
        fn k(&self) -> usize {
            4
        }
        fn n_items(&self) -> usize {
            1
        }
        fn best_full(&self, _item: u32) -> (ClusterId, f64) {
            let (c, d) = self.script.borrow_mut().remove(0);
            (ClusterId(c), d)
        }
        fn best_among(&self, item: u32, _candidates: &[ClusterId]) -> Option<(ClusterId, f64)> {
            Some(self.best_full(item))
        }
        fn update_centroids(&mut self, _assignments: &[ClusterId]) {}
        fn total_cost(&self, assignments: &[ClusterId]) -> f64 {
            // The scripted cost was stashed by the pass via the assignment.
            let _ = assignments;
            self.current_cost.get()
        }
    }

    #[test]
    fn cost_increase_rolls_back_to_the_minimising_pass() {
        let mut model = ScriptedModel {
            script: std::cell::RefCell::new(vec![(1, 10.0), (2, 5.0), (3, 8.0)]),
            current_cost: std::cell::Cell::new(f64::INFINITY),
        };
        let run = drive(
            &mut model,
            vec![ClusterId(0)],
            Duration::ZERO,
            &StopPolicy::default(),
            |model, assignments| {
                let (c, d) = model.best_full(0);
                let moved = assignments[0] != c;
                assignments[0] = c;
                model.current_cost.set(d);
                AssignOutcome {
                    moves: usize::from(moved),
                    shortlist_total: 4,
                }
            },
            |_, _| {},
        );
        assert!(run.summary.converged);
        assert_eq!(run.summary.n_iterations(), 3, "worse pass stays recorded");
        // State rolled back to the pass-2 minimum.
        assert_eq!(run.assignments, vec![ClusterId(2)]);
        assert_eq!(model.current_cost.get(), 5.0);
        let min_cost = run.summary.iterations.iter().map(|s| s.cost).min().unwrap();
        assert_eq!(
            model.total_cost(&run.assignments) as u64,
            min_cost,
            "returned cost must be the minimum over recorded iterations"
        );
    }

    #[test]
    fn equal_cost_stop_keeps_the_latest_state_without_rollback() {
        // cost 10 → cost 10: stop (no strict improvement), but the second
        // state is not worse, so it is kept.
        let mut model = ScriptedModel {
            script: std::cell::RefCell::new(vec![(1, 10.0), (2, 10.0)]),
            current_cost: std::cell::Cell::new(f64::INFINITY),
        };
        let run = drive(
            &mut model,
            vec![ClusterId(0)],
            Duration::ZERO,
            &StopPolicy::default(),
            |model, assignments| {
                let (c, d) = model.best_full(0);
                let moved = assignments[0] != c;
                assignments[0] = c;
                model.current_cost.set(d);
                AssignOutcome {
                    moves: usize::from(moved),
                    shortlist_total: 4,
                }
            },
            |_, _| {},
        );
        assert!(run.summary.converged);
        assert_eq!(run.assignments, vec![ClusterId(2)]);
    }

    #[test]
    #[should_panic(expected = "one starting assignment per item")]
    fn fit_validates_assignment_length() {
        let mut model = line_model();
        let mut provider = FullProvider { k: 2 };
        let _ = fit(
            &mut model,
            &mut provider,
            vec![],
            Duration::ZERO,
            &StopPolicy::default(),
        );
    }
}
