//! Normalised mutual information (arithmetic-mean normalisation).
//!
//! `NMI = 2·I(P; T) / (H(P) + H(T))` with natural-log entropies. Supplement
//! to the paper's purity metric: unlike purity it does not trivially reward
//! many small clusters.

use crate::contingency::Contingency;

/// Computes NMI between predictions and labels. Returns 1.0 when both
/// partitions are identical-up-to-relabelling, and 0.0 when independent (or
/// when either partition is constant, by convention).
pub fn normalized_mutual_information(predicted: &[u32], truth: &[u32]) -> f64 {
    if predicted.is_empty() {
        return 0.0;
    }
    let table = Contingency::new(predicted, truth);
    let n = table.n() as f64;

    let h_pred = entropy(table.cluster_totals().map(|(_, c)| c), n);
    let h_true = entropy(table.class_totals().map(|(_, c)| c), n);
    if h_pred == 0.0 || h_true == 0.0 {
        // A constant partition carries no information.
        return 0.0;
    }

    let cluster_totals: std::collections::HashMap<u32, u64> = table.cluster_totals().collect();
    let class_totals: std::collections::HashMap<u32, u64> = table.class_totals().collect();
    let mut mi = 0.0;
    for (p, t, c) in table.cells() {
        let pij = c as f64 / n;
        let pi = cluster_totals[&p] as f64 / n;
        let pj = class_totals[&t] as f64 / n;
        mi += pij * (pij / (pi * pj)).ln();
    }
    (2.0 * mi / (h_pred + h_true)).clamp(0.0, 1.0)
}

fn entropy<I: Iterator<Item = u64>>(counts: I, n: f64) -> f64 {
    counts
        .map(|c| {
            let p = c as f64 / n;
            if p > 0.0 {
                -p * p.ln()
            } else {
                0.0
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let p = [0, 0, 1, 1, 2, 2];
        assert!((normalized_mutual_information(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabelled_partitions_score_one() {
        let p = [0, 0, 1, 1];
        let t = [7, 7, 3, 3];
        assert!((normalized_mutual_information(&p, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_partition_scores_zero() {
        assert_eq!(normalized_mutual_information(&[0, 0, 0], &[0, 1, 2]), 0.0);
        assert_eq!(normalized_mutual_information(&[0, 1, 2], &[5, 5, 5]), 0.0);
    }

    #[test]
    fn independent_partitions_score_near_zero() {
        // Balanced 2×2 independence.
        let p = [0, 0, 1, 1, 0, 0, 1, 1];
        let t = [0, 1, 0, 1, 0, 1, 0, 1];
        let nmi = normalized_mutual_information(&p, &t);
        assert!(nmi < 1e-9, "nmi {nmi}");
    }

    #[test]
    fn partial_agreement_is_between_zero_and_one() {
        let p = [0, 0, 0, 1, 1, 1];
        let t = [0, 0, 1, 1, 1, 0];
        let nmi = normalized_mutual_information(&p, &t);
        assert!(nmi > 0.0 && nmi < 1.0, "nmi {nmi}");
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(normalized_mutual_information(&[], &[]), 0.0);
    }

    #[test]
    fn finer_clustering_keeps_full_information() {
        // Splitting each true class into two clusters: MI equals H(T), and
        // NMI = 2·H(T)/(H(P)+H(T)) < 1 — penalised, unlike purity.
        let p = [0, 1, 2, 3];
        let t = [0, 0, 1, 1];
        let nmi = normalized_mutual_information(&p, &t);
        assert!(nmi > 0.5 && nmi < 1.0, "nmi {nmi}");
    }
}
