//! External clustering-quality metrics.
//!
//! The paper evaluates with **cluster purity** (Figs. 8, 9e); this crate also
//! provides normalised mutual information and the adjusted Rand index for the
//! extended analyses in EXPERIMENTS.md. All metrics compare a predicted
//! cluster id per item against a ground-truth class per item and are
//! algorithm-agnostic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ari;
pub mod contingency;
pub mod nmi;
pub mod purity;

pub use ari::adjusted_rand_index;
pub use contingency::Contingency;
pub use nmi::normalized_mutual_information;
pub use purity::purity;
