//! Mini-batch fit discipline: facade wiring, determinism across thread
//! counts, shortlisted-vs-full cost parity, spec round trips, and the
//! serve/warm-start contract.

use lshclust::{ClusterSpec, Clusterer, Fit, FittedModel, Lsh, MixedDataset, NumericDataset};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::kmeans::sq_euclidean;
use lshclust_metrics::purity;

fn categorical_fixture() -> lshclust::Dataset {
    generate(&DatgenConfig::new(600, 20, 12).seed(31))
}

fn numeric_fixture(labels: &[u32], dim: usize) -> NumericDataset {
    let data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..dim).map(move |d| {
                f64::from(l) * 9.0 + f64::from(d as u32) + ((i * 11 + d) as f64 * 0.43).sin() * 0.2
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

fn mini(batch_size: usize, n_steps: usize) -> Fit {
    Fit::MiniBatch {
        batch_size,
        n_steps,
        refresh_every: 4,
    }
}

// ---- determinism: equal seed + any thread count → byte-identical fits -----

#[test]
fn categorical_minibatch_is_byte_identical_across_threads() {
    let dataset = categorical_fixture();
    let run_at = |threads: usize| {
        Clusterer::new(
            ClusterSpec::new(20)
                .lsh(Lsh::MinHash { bands: 8, rows: 2 })
                .seed(7)
                .threads(threads)
                .fit(mini(64, 25)),
        )
        .fit(&dataset)
        .expect("categorical mini-batch fit")
    };
    let serial = run_at(1);
    for threads in [2, 4] {
        let parallel = run_at(threads);
        assert_eq!(
            serial.assignments, parallel.assignments,
            "threads={threads}"
        );
        assert_eq!(
            serial.centroids.modes(),
            parallel.centroids.modes(),
            "threads={threads}: modes must be byte-identical"
        );
    }
}

#[test]
fn numeric_minibatch_is_byte_identical_across_threads() {
    let dataset = categorical_fixture();
    let numeric = numeric_fixture(dataset.labels().unwrap(), 6);
    let run_at = |threads: usize| {
        Clusterer::new(
            ClusterSpec::new(20)
                .lsh(Lsh::SimHash { bands: 4, rows: 8 })
                .seed(3)
                .threads(threads)
                .fit(mini(64, 25)),
        )
        .fit(&numeric)
        .expect("numeric mini-batch fit")
    };
    let serial = run_at(1);
    for threads in [2, 4] {
        let parallel = run_at(threads);
        assert_eq!(serial.assignments, parallel.assignments);
        // Float means, compared bitwise: the Jacobi-within-batch step plus
        // serial absorb order makes the nudge sequence thread-independent.
        assert_eq!(serial.centroids.means(), parallel.centroids.means());
    }
}

#[test]
fn mixed_minibatch_is_byte_identical_across_threads() {
    let dataset = categorical_fixture();
    let numeric = numeric_fixture(dataset.labels().unwrap(), 4);
    let mixed = MixedDataset::new(&dataset, &numeric);
    let run_at = |threads: usize| {
        Clusterer::new(
            ClusterSpec::new(20)
                .lsh(Lsh::Union {
                    bands: 8,
                    rows: 2,
                    sim_bands: 4,
                    sim_rows: 8,
                })
                .seed(5)
                .threads(threads)
                .fit(mini(48, 20)),
        )
        .fit(&mixed)
        .expect("mixed mini-batch fit")
    };
    let serial = run_at(1);
    for threads in [2, 4] {
        let parallel = run_at(threads);
        assert_eq!(serial.assignments, parallel.assignments);
        let a = serial.centroids.prototypes().unwrap();
        let b = parallel.centroids.prototypes().unwrap();
        assert_eq!(a.modes, b.modes);
        assert_eq!(a.means, b.means);
    }
}

// ---- shortlisted vs full-search parity ------------------------------------

#[test]
fn shortlisted_minibatch_cost_parity_with_full_search() {
    // Identical batches (same seed, same sampling stream) — the shortlist
    // only restricts which centroids each batch item may join, so the final
    // cost must stay within a modest factor of the full-search run, and
    // quality must not collapse.
    let dataset = categorical_fixture();
    let labels = dataset.labels().unwrap().to_vec();
    let spec = ClusterSpec::new(20).seed(11).fit(mini(96, 30));
    let full = Clusterer::new(spec.clone()).fit(&dataset).unwrap();
    let shortlisted = Clusterer::new(spec.lsh(Lsh::MinHash { bands: 8, rows: 2 }))
        .fit(&dataset)
        .unwrap();
    let cost =
        |run: &lshclust::ClusterRun| run.summary.iterations.last().expect("final pass").cost as f64;
    let (fc, sc) = (cost(&full), cost(&shortlisted));
    assert!(
        sc <= fc * 1.25,
        "shortlisted cost {sc} vs full-search {fc}: parity bound exceeded"
    );
    let (fp, sp) = (
        purity(&full.labels(), &labels),
        purity(&shortlisted.labels(), &labels),
    );
    assert!(sp > fp - 0.1, "shortlisted purity {sp} vs full {fp}");
}

#[test]
fn minibatch_steps_search_fewer_centroids_than_k() {
    let dataset = categorical_fixture();
    let run = Clusterer::new(
        ClusterSpec::new(20)
            .lsh(Lsh::MinHash { bands: 8, rows: 2 })
            .seed(2)
            .fit(mini(64, 20)),
    )
    .fit(&dataset)
    .unwrap();
    let steps = &run.summary.iterations[..run.summary.iterations.len() - 1];
    assert_eq!(steps.len(), 20, "one instrumentation row per step");
    let mean = steps.iter().map(|s| s.avg_candidates).sum::<f64>() / steps.len() as f64;
    assert!(mean < 20.0, "mean searched centroids {mean} not below k");
}

// ---- spec wiring ----------------------------------------------------------

#[test]
fn minibatch_spec_round_trips_and_legacy_json_defaults_to_full() {
    let spec = ClusterSpec::new(50)
        .lsh(Lsh::MinHash { bands: 20, rows: 5 })
        .seed(13)
        .threads(4)
        .fit(Fit::MiniBatch {
            batch_size: 128,
            n_steps: 40,
            refresh_every: 6,
        });
    let json = serde_json::to_string_pretty(&spec).unwrap();
    let back: ClusterSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back, spec);

    // A spec JSON predating the `fit` field still parses, as Full.
    let legacy = r#"{
        "k": 3, "lsh": "None", "init": "RandomItems", "seed": 1,
        "query_mode": "ScanBuckets", "include_self": true, "threads": 1,
        "stop": {"max_iterations": 10, "stop_on_no_moves": true, "stop_on_cost_increase": true},
        "gamma": null, "stream": {"distance_threshold": null, "max_clusters": null}
    }"#;
    let parsed: ClusterSpec = serde_json::from_str(legacy).unwrap();
    assert_eq!(parsed.fit, Fit::Full);
}

#[test]
fn streaming_rejects_the_minibatch_discipline() {
    let dataset = categorical_fixture();
    let err = Clusterer::new(
        ClusterSpec::new(0)
            .lsh(Lsh::MinHash { bands: 8, rows: 2 })
            .fit(mini(32, 5)),
    )
    .streaming(dataset.schema().clone())
    .unwrap_err();
    assert!(
        err.to_string().contains("MiniBatch") && err.to_string().contains("streaming"),
        "got: {err}"
    );
}

#[test]
fn minibatch_rejects_mismatched_lsh_schemes() {
    let dataset = categorical_fixture();
    let numeric = numeric_fixture(dataset.labels().unwrap(), 4);
    // SimHash on categorical and MinHash on numeric stay errors under
    // mini-batch, exactly as under Full.
    let err = Clusterer::new(
        ClusterSpec::new(5)
            .lsh(Lsh::SimHash { bands: 4, rows: 8 })
            .fit(mini(32, 5)),
    )
    .fit(&dataset)
    .unwrap_err();
    assert!(err.to_string().contains("SimHash"));
    let err = Clusterer::new(
        ClusterSpec::new(5)
            .lsh(Lsh::MinHash { bands: 8, rows: 2 })
            .fit(mini(32, 5)),
    )
    .fit(&numeric)
    .unwrap_err();
    assert!(err.to_string().contains("MinHash"));
}

// ---- serving and warm starts ----------------------------------------------

#[test]
fn minibatch_model_round_trips_and_serves() {
    let dataset = categorical_fixture();
    let run = Clusterer::new(
        ClusterSpec::new(20)
            .lsh(Lsh::MinHash { bands: 8, rows: 2 })
            .seed(17)
            .fit(mini(64, 25)),
    )
    .fit(&dataset)
    .unwrap();

    // The envelope round-trips byte-for-byte, `fit` included.
    let json = run.model.to_json();
    assert!(
        json.contains("MiniBatch"),
        "spec.fit persists in the envelope"
    );
    let model = FittedModel::from_json(&json).unwrap();
    assert_eq!(model.to_json(), json);
    assert_eq!(model.spec().fit, run.model.spec().fit);

    // A reloaded model answers every training query identically to the
    // in-memory one.
    assert_eq!(
        model.predict(&dataset).unwrap(),
        run.model.predict(&dataset).unwrap()
    );
}

#[test]
fn minibatch_fit_is_warm_startable_and_warm_starts_others() {
    let dataset = categorical_fixture();
    let mini_spec = ClusterSpec::new(20)
        .lsh(Lsh::MinHash { bands: 8, rows: 2 })
        .seed(23)
        .fit(mini(64, 20));
    let mini_run = Clusterer::new(mini_spec.clone()).fit(&dataset).unwrap();

    // Mini-batch model → Full refit: resumes from the nudged modes.
    let full_refit = ClusterSpec::new(20)
        .lsh(Lsh::MinHash { bands: 8, rows: 2 })
        .seed(23)
        .warm_start(&mini_run.model)
        .fit(&dataset)
        .unwrap();
    assert!(full_refit.summary.converged);

    // Full model → mini-batch refit: the discipline composes the other way
    // too, and k mismatches still error.
    let full_run = Clusterer::new(
        ClusterSpec::new(20)
            .lsh(Lsh::MinHash { bands: 8, rows: 2 })
            .seed(23),
    )
    .fit(&dataset)
    .unwrap();
    let mini_refit = mini_spec.clone().warm_start(&full_run.model).fit(&dataset);
    assert!(mini_refit.is_ok());
    let mismatch = ClusterSpec::new(21)
        .lsh(Lsh::MinHash { bands: 8, rows: 2 })
        .fit(mini(64, 10))
        .warm_start(&full_run.model)
        .fit(&dataset);
    assert!(mismatch.is_err(), "k mismatch must stay a typed error");
}

#[test]
fn numeric_minibatch_serves_its_own_centroids() {
    let dataset = categorical_fixture();
    let numeric = numeric_fixture(dataset.labels().unwrap(), 5);
    let run = Clusterer::new(
        ClusterSpec::new(20)
            .lsh(Lsh::SimHash { bands: 4, rows: 8 })
            .seed(29)
            .fit(mini(64, 25)),
    )
    .fit(&numeric)
    .unwrap();
    // Final assignments came from one full pass under the final centroids,
    // so every served point must land at least as close as its recorded
    // cluster (predict shortlists but falls back to full search).
    let (dim, means) = run.centroids.means().unwrap();
    let model = FittedModel::from_json(&run.model.to_json()).unwrap();
    for i in (0..numeric.n_items()).step_by(17) {
        let point = numeric.row(i);
        let served = model.predict_point(point).unwrap();
        let served_d = sq_euclidean(point, &means[served.idx() * dim..(served.idx() + 1) * dim]);
        let recorded = run.assignments[i];
        let recorded_d = sq_euclidean(
            point,
            &means[recorded.idx() * dim..(recorded.idx() + 1) * dim],
        );
        assert!(
            served_d <= recorded_d + 1e-9,
            "item {i}: served {served_d} vs recorded {recorded_d}"
        );
    }
}
