//! Integration test of the §III-C error bound: measured shortlist miss rates
//! must respect the analytic bound across banding regimes and dataset shapes.

use lshclust_categorical::ClusterId;
use lshclust_core::error_bound::audit;
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::init::{initial_modes, InitMethod};
use lshclust_minhash::index::LshIndexBuilder;
use lshclust_minhash::probability::error_bound;
use lshclust_minhash::Banding;

fn setup(
    n: usize,
    k: usize,
    m: usize,
    seed: u64,
) -> (
    lshclust_categorical::Dataset,
    Vec<ClusterId>,
    lshclust_kmodes::Modes,
) {
    let dataset = generate(&DatgenConfig::new(n, k, m).seed(seed).balanced(true));
    let assignments: Vec<ClusterId> = dataset
        .labels()
        .unwrap()
        .iter()
        .map(|&l| ClusterId(l))
        .collect();
    let mut modes = initial_modes(&dataset, k, InitMethod::RandomItems, seed);
    modes.recompute(&dataset, &assignments);
    (dataset, assignments, modes)
}

#[test]
fn measured_miss_rate_respects_mean_bound() {
    let (dataset, assignments, modes) = setup(600, 30, 40, 17);
    for (b, r) in [(1u32, 1u32), (20, 2), (20, 5), (50, 5)] {
        let index = LshIndexBuilder::new(Banding::new(b, r))
            .seed(17)
            .build(&dataset, &assignments);
        let report = audit(&dataset, &modes, &index, &assignments);
        assert!(
            report.miss_rate <= report.mean_analytic_bound + 0.02,
            "{b}b{r}r: measured {} vs bound {}",
            report.miss_rate,
            report.mean_analytic_bound
        );
    }
}

#[test]
fn generous_banding_never_misses_on_balanced_clusters() {
    let (dataset, assignments, modes) = setup(400, 20, 30, 23);
    let index = LshIndexBuilder::new(Banding::new(100, 1))
        .seed(23)
        .build(&dataset, &assignments);
    let report = audit(&dataset, &modes, &index, &assignments);
    assert_eq!(report.misses, 0, "{report:?}");
}

#[test]
fn bound_tightens_with_more_bands() {
    // Purely analytic monotonicity at the paper's worked-example scale.
    let with_10 = error_bound(100, 1, 10, 20);
    let with_25 = error_bound(100, 1, 25, 20);
    let with_100 = error_bound(100, 1, 100, 20);
    assert!(with_25 < with_10);
    assert!(with_100 < with_25);
    // And the worked example itself.
    assert!((with_25 - 0.0805).abs() < 0.01);
}

#[test]
fn miss_rate_increases_with_stricter_banding() {
    let (dataset, assignments, modes) = setup(500, 25, 30, 29);
    let loose = audit(
        &dataset,
        &modes,
        &LshIndexBuilder::new(Banding::new(50, 1))
            .seed(29)
            .build(&dataset, &assignments),
        &assignments,
    );
    let strict = audit(
        &dataset,
        &modes,
        &LshIndexBuilder::new(Banding::new(2, 10))
            .seed(29)
            .build(&dataset, &assignments),
        &assignments,
    );
    assert!(
        strict.miss_rate >= loose.miss_rate,
        "strict {} < loose {}",
        strict.miss_rate,
        loose.miss_rate
    );
    // Stricter banding also shrinks the shortlist.
    assert!(strict.avg_shortlist <= loose.avg_shortlist);
}

#[test]
fn audit_avg_shortlist_matches_run_observations() {
    use lshclust_core::mhkmodes::{MhKModes, MhKModesConfig};
    let (dataset, _, _) = setup(300, 15, 25, 31);
    let banding = Banding::new(10, 2);
    let result =
        MhKModes::new(MhKModesConfig::new(15, banding).seed(31).max_iterations(20)).fit(&dataset);
    // The run's observed average shortlist (over moves and reference updates)
    // must stay within [1, k].
    for s in &result.summary.iterations {
        assert!(s.avg_candidates >= 1.0 && s.avg_candidates <= 15.0);
    }
}
