//! Shard-scaling experiment: what partitioned fitting costs and buys, per
//! algorithm family — the numbers behind `BENCH_shard.json`.
//!
//! Sharded fitting exists for *capacity*, not speed: each shard holds only
//! its item range plus that range's slice of the LSH index, so the peak
//! per-process working set shrinks by `1/S` while the result stays
//! byte-identical to the unsharded fit. This experiment fits one synthetic
//! workload per family (categorical / numeric / mixed) through the facade
//! at each swept shard count and records fit wall-time alongside
//! [`ShardPlan::peak_shard_items`] — the capacity axis — plus an
//! `identical_to_unsharded` guard asserting the whole point of the design.
//!
//! All runs here use the in-process transport; the multi-process NDJSON
//! path adds per-pass serialization cost but computes the same bytes (CI
//! smokes it through the `cluster` CLI).

use crate::env::BenchEnv;
use lshclust::{ClusterSpec, Clusterer, Lsh};
use lshclust_categorical::Dataset;
use lshclust_core::shard::ShardPlan;
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::kmeans::NumericDataset;
use lshclust_kmodes::kprototypes::MixedDataset;
use std::path::Path;

/// Settings of a shard-scaling run.
#[derive(Clone, Debug)]
pub struct ShardSettings {
    /// Shrinks the workload for CI smoke runs.
    pub quick: bool,
    /// Shard counts to sweep (1 = the unsharded reference path).
    pub shards: Vec<usize>,
    /// Fit threads, fixed across the sweep (sharding is a capacity axis;
    /// threads stay the speed axis).
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ShardSettings {
    fn default() -> Self {
        Self {
            quick: false,
            shards: vec![1, 2, 4],
            threads: 2,
            seed: 42,
        }
    }
}

/// One (family × shard count) measurement.
#[derive(Clone, Debug)]
pub struct ShardRun {
    /// Shard count of this run (1 = the unsharded reference path).
    pub shards: usize,
    /// Items the largest shard owns — the peak per-process working set the
    /// partition buys down (equals `n_items` at 1 shard).
    pub peak_shard_items: usize,
    /// Shortlisted iterations executed.
    pub iterations: usize,
    /// Setup time (initial full pass + index build), seconds.
    pub setup_s: f64,
    /// Total fit wall-clock (setup + iterations), seconds.
    pub total_s: f64,
    /// Cost of the returned clustering.
    pub cost: u64,
    /// Whether assignments match the 1-shard run byte for byte — the
    /// sharded path's core guarantee, asserted per measurement.
    pub identical_to_unsharded: bool,
}

serde::impl_serde_struct!(ShardRun {
    shards,
    peak_shard_items,
    iterations,
    setup_s,
    total_s,
    cost,
    identical_to_unsharded
});

/// All shard counts for one family.
#[derive(Clone, Debug)]
pub struct FamilyShards {
    /// `"categorical"`, `"numeric"` or `"mixed"`.
    pub family: String,
    /// The LSH scheme exercised.
    pub lsh: String,
    /// Measurements, one per swept shard count.
    pub runs: Vec<ShardRun>,
}

serde::impl_serde_struct!(FamilyShards { family, lsh, runs });

/// Workload shape shared by the report.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Items per family workload.
    pub n_items: usize,
    /// Clusters.
    pub n_clusters: usize,
    /// Categorical attributes.
    pub n_attrs: usize,
    /// Numeric dimensions.
    pub dim: usize,
}

serde::impl_serde_struct!(Workload {
    n_items,
    n_clusters,
    n_attrs,
    dim
});

/// The full `BENCH_shard.json` payload.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Experiment marker.
    pub experiment: String,
    /// Host context and sweep axes (`shards` is the swept axis here).
    pub env: BenchEnv,
    /// Fit threads, fixed across the sweep.
    pub threads: usize,
    /// Workload shape.
    pub workload: Workload,
    /// Per-family scaling series.
    pub families: Vec<FamilyShards>,
}

serde::impl_serde_struct!(ShardReport {
    experiment,
    env,
    threads,
    workload,
    families
});

fn numeric_blobs(labels: &[u32], dim: usize) -> NumericDataset {
    let data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..dim).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 40));
                (h % 100) as f64 + ((i * 13 + d) as f64 * 0.37).sin() * 0.1
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

/// Fits at every shard count and digests each run against the first
/// (1-shard) run's assignments.
fn sweep<F: FnMut(usize) -> lshclust::ClusterRun>(
    n_items: usize,
    shard_counts: &[usize],
    mut fit: F,
) -> Vec<ShardRun> {
    let mut reference: Option<Vec<lshclust::ClusterId>> = None;
    let mut runs = Vec::new();
    for &shards in shard_counts {
        let run = fit(shards);
        let identical = match &reference {
            Some(r) => *r == run.assignments,
            None => {
                reference = Some(run.assignments.clone());
                true
            }
        };
        runs.push(ShardRun {
            shards,
            peak_shard_items: ShardPlan::new(n_items, shards).peak_shard_items(),
            iterations: run.summary.n_iterations(),
            setup_s: run.summary.setup.as_secs_f64(),
            total_s: run.summary.total_time().as_secs_f64(),
            cost: run.summary.best_cost().unwrap_or(0),
            identical_to_unsharded: identical,
        });
    }
    runs
}

/// Runs the full experiment and returns the report.
pub fn run(settings: &ShardSettings) -> ShardReport {
    let (n_items, n_clusters, n_attrs, dim) = if settings.quick {
        (3_000, 50, 20, 8)
    } else {
        (20_000, 200, 40, 16)
    };
    let seed = settings.seed;
    let threads = settings.threads;
    let dataset: Dataset = generate(&DatgenConfig::new(n_items, n_clusters, n_attrs).seed(seed));
    let labels: Vec<u32> = dataset.labels().expect("datgen labels").to_vec();
    let numeric = numeric_blobs(&labels, dim);
    let mixed = MixedDataset::new(&dataset, &numeric);
    let max_iter = 25;

    let mut families = Vec::new();

    eprintln!("# shards: categorical (MinHash 20b5r, k={n_clusters}, n={n_items})");
    let runs = sweep(n_items, &settings.shards, |s| {
        let spec = ClusterSpec::new(n_clusters)
            .lsh(Lsh::MinHash { bands: 20, rows: 5 })
            .seed(seed)
            .threads(threads)
            .shards(s)
            .max_iterations(max_iter);
        Clusterer::new(spec).fit(&dataset).expect("categorical fit")
    });
    families.push(FamilyShards {
        family: "categorical".into(),
        lsh: "MinHash 20b5r".into(),
        runs,
    });

    eprintln!("# shards: numeric (SimHash 8b16r)");
    let runs = sweep(n_items, &settings.shards, |s| {
        let spec = ClusterSpec::new(n_clusters)
            .lsh(Lsh::SimHash { bands: 8, rows: 16 })
            .seed(seed)
            .threads(threads)
            .shards(s)
            .max_iterations(max_iter);
        Clusterer::new(spec).fit(&numeric).expect("numeric fit")
    });
    families.push(FamilyShards {
        family: "numeric".into(),
        lsh: "SimHash 8b16r".into(),
        runs,
    });

    eprintln!("# shards: mixed (MinHash ∪ SimHash)");
    let runs = sweep(n_items, &settings.shards, |s| {
        let spec = ClusterSpec::new(n_clusters)
            .lsh(Lsh::Union {
                bands: 20,
                rows: 5,
                sim_bands: 8,
                sim_rows: 16,
            })
            .seed(seed)
            .threads(threads)
            .shards(s)
            .max_iterations(max_iter);
        Clusterer::new(spec).fit(&mixed).expect("mixed fit")
    });
    families.push(FamilyShards {
        family: "mixed".into(),
        lsh: "Union 20b5r + 8b16r".into(),
        runs,
    });

    ShardReport {
        experiment: "shard-scaling".into(),
        env: BenchEnv::capture(settings.quick, seed).shards(&settings.shards),
        threads,
        workload: Workload {
            n_items,
            n_clusters,
            n_attrs,
            dim,
        },
        families,
    }
}

impl ShardReport {
    /// Writes the report as pretty JSON to `path`.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        crate::env::write_report(self, path)
    }

    /// Renders an aligned text summary (one table per family).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "shard scaling  ({}, threads={}, n={}, k={})",
            self.env.banner(),
            self.threads,
            self.workload.n_items,
            self.workload.n_clusters
        );
        for family in &self.families {
            let _ = writeln!(out, "\n[{}] {}", family.family, family.lsh);
            let _ = writeln!(
                out,
                "{:>8}  {:>12}  {:>6}  {:>9}  {:>9}  {:>11}  {:>10}",
                "shards", "peak items", "iters", "setup (s)", "total (s)", "cost", "identical"
            );
            for r in &family.runs {
                let _ = writeln!(
                    out,
                    "{:>8}  {:>12}  {:>6}  {:>9.3}  {:>9.3}  {:>11}  {:>10}",
                    r.shards,
                    r.peak_shard_items,
                    r.iterations,
                    r.setup_s,
                    r.total_s,
                    r.cost,
                    if r.identical_to_unsharded {
                        "yes"
                    } else {
                        "NO"
                    }
                );
            }
        }
        out
    }
}
