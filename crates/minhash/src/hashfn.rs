//! Seeded hash families and a fast `HashMap` hasher.
//!
//! The paper simulates random row permutations with hash functions
//! (§III-A2: "the random permutations of the matrix can be simulated by the
//! use of n randomly chosen hash functions"). We provide two families:
//!
//! * [`MixHashFamily`] — a strong 64-bit finalising mixer (splitmix64-style)
//!   applied to `x ^ seed_i`. Cheap to construct, one multiply chain per
//!   evaluation; the default.
//! * [`TabulationHashFamily`] — classic 8×256-entry tabulation hashing, which
//!   is 3-independent and gives provably good MinHash behaviour, at ~16 KiB of
//!   tables per function. Kept for the hash-family ablation bench.
//!
//! Bucket tables use [`FastMap`]/[`FastSet`], `std` hash containers with the
//! multiplicative [`FxHasher64`] (the perf-guide "alternative hashers" advice,
//! implemented here instead of pulling a dependency).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A family of `n` seeded hash functions `u64 → u64`.
///
/// `eval(i, x)` must be deterministic in `(seed, i, x)` so that signatures are
/// reproducible across runs and processes.
pub trait HashFamily {
    /// Number of functions in the family.
    fn len(&self) -> usize;

    /// Whether the family is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates function `i` on element key `x`.
    fn eval(&self, i: usize, x: u64) -> u64;
}

/// splitmix64 finaliser: a full-avalanche 64-bit mixer.
#[inline(always)]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixer-based family: `h_i(x) = mix64(x ^ s_i)` with independent random
/// 64-bit seeds `s_i`.
#[derive(Clone, Debug)]
pub struct MixHashFamily {
    seeds: Vec<u64>,
}

impl MixHashFamily {
    /// Creates `n` functions derived deterministically from `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d69_7868_6173_6866); // "mixhashf"
        let seeds = (0..n).map(|_| rng.next_u64()).collect();
        Self { seeds }
    }
}

impl HashFamily for MixHashFamily {
    #[inline]
    fn len(&self) -> usize {
        self.seeds.len()
    }

    #[inline(always)]
    fn eval(&self, i: usize, x: u64) -> u64 {
        mix64(x ^ self.seeds[i])
    }
}

/// Tabulation hashing over the 8 bytes of the key: `h(x) = ⊕_j T_j[byte_j(x)]`.
#[derive(Clone)]
pub struct TabulationHashFamily {
    /// `n` functions × 8 byte-positions × 256 entries, flattened.
    tables: Vec<u64>,
}

impl std::fmt::Debug for TabulationHashFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TabulationHashFamily")
            .field("n", &(self.tables.len() / (8 * 256)))
            .finish()
    }
}

impl TabulationHashFamily {
    /// Creates `n` tabulation functions derived deterministically from `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7461_6275_6c61_7465); // "tabulate"
        let mut tables = vec![0u64; n * 8 * 256];
        rng.fill(tables.as_mut_slice());
        Self { tables }
    }
}

impl HashFamily for TabulationHashFamily {
    #[inline]
    fn len(&self) -> usize {
        self.tables.len() / (8 * 256)
    }

    #[inline]
    fn eval(&self, i: usize, x: u64) -> u64 {
        let base = i * 8 * 256;
        let t = &self.tables[base..base + 8 * 256];
        let mut h = 0u64;
        for (j, chunk) in t.chunks_exact(256).enumerate() {
            let byte = ((x >> (8 * j)) & 0xff) as usize;
            h ^= chunk[byte];
        }
        h
    }
}

/// Fx-style multiplicative hasher: very fast for the integer keys used by the
/// bucket tables. Not HashDoS-resistant — fine for internal indices.
#[derive(Default)]
pub struct FxHasher64 {
    state: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.state = (self.state.rotate_left(5) ^ u64::from(i)).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.state = (self.state.rotate_left(5) ^ u64::from(i)).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state.rotate_left(5) ^ i).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher64`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher64>>;
/// `HashSet` keyed with [`FxHasher64`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher64>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_avalanches() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = mix64(0x1234_5678);
        let b = mix64(0x1234_5679);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "only {flipped} bits flipped");
    }

    #[test]
    fn mix_family_is_deterministic() {
        let f1 = MixHashFamily::new(4, 42);
        let f2 = MixHashFamily::new(4, 42);
        for i in 0..4 {
            assert_eq!(f1.eval(i, 999), f2.eval(i, 999));
        }
    }

    #[test]
    fn mix_family_differs_across_seeds_and_indices() {
        let f1 = MixHashFamily::new(2, 1);
        let f2 = MixHashFamily::new(2, 2);
        assert_ne!(f1.eval(0, 7), f2.eval(0, 7));
        assert_ne!(f1.eval(0, 7), f1.eval(1, 7));
    }

    #[test]
    fn tabulation_is_deterministic_and_nontrivial() {
        let f = TabulationHashFamily::new(3, 9);
        let g = TabulationHashFamily::new(3, 9);
        assert_eq!(f.len(), 3);
        assert_eq!(f.eval(2, 12345), g.eval(2, 12345));
        assert_ne!(f.eval(0, 1), f.eval(0, 2));
    }

    #[test]
    fn tabulation_zero_key_hits_zero_bytes() {
        let f = TabulationHashFamily::new(1, 3);
        // h(0) = xor of the eight T_j[0] entries — defined, not zero in general.
        let _ = f.eval(0, 0);
    }

    /// Empirical uniformity check: min-hash ranks should be near-uniform.
    #[test]
    fn family_minimum_is_unbiased() {
        let f = MixHashFamily::new(64, 7);
        // Over 64 functions, each of 8 elements should "win" (be the min)
        // roughly 64/8 = 8 times.
        let elements: Vec<u64> = (0..8).map(|i| 1000 + i * 17).collect();
        let mut wins = [0usize; 8];
        for i in 0..f.len() {
            let (argmin, _) = elements
                .iter()
                .enumerate()
                .map(|(j, &e)| (j, f.eval(i, e)))
                .min_by_key(|&(_, h)| h)
                .unwrap();
            wins[argmin] += 1;
        }
        // Loose bound: no element should win more than half the time.
        assert!(wins.iter().all(|&w| w <= 32), "biased wins: {wins:?}");
    }

    #[test]
    fn fx_hasher_spreads_u64_keys() {
        let build = BuildHasherDefault::<FxHasher64>::default();
        let mut set = HashSet::new();
        for k in 0u64..1000 {
            let mut h = std::hash::BuildHasher::build_hasher(&build);
            h.write_u64(k);
            set.insert(h.finish());
        }
        assert_eq!(set.len(), 1000, "fx hasher collided on sequential keys");
    }

    #[test]
    fn fast_map_works_as_hashmap() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        m.insert(10, 1);
        m.insert(20, 2);
        assert_eq!(m.get(&10), Some(&1));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn empty_families() {
        assert!(MixHashFamily::new(0, 0).is_empty());
        assert!(TabulationHashFamily::new(0, 0).is_empty());
    }
}
