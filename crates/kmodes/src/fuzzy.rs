//! Fuzzy K-Modes (Huang & Ng 1999 — the paper's reference \[21\], the same
//! work it cites for the formal K-Modes definition).
//!
//! Instead of hard assignments, each item carries a membership degree
//! `w_il ∈ [0, 1]` to every cluster with `Σ_l w_il = 1`, controlled by the
//! fuzziness exponent `α > 1`:
//!
//! * membership update: `w_il = 1 / Σ_h (d(X_i, Q_l) / d(X_i, Q_h))^{1/(α−1)}`
//!   (items at distance 0 from a mode get crisp membership there);
//! * mode update: `q_lj = argmax_c Σ_{i : x_ij = c} w_il^α` — the
//!   membership-weighted majority value;
//! * objective: `P(W, Q) = Σ_l Σ_i w_il^α · d(X_i, Q_l)`, non-increasing
//!   under both updates.
//!
//! As `α → 1⁺` the algorithm approaches crisp K-Modes. Provided as a
//! baseline-family member; the LSH framework applies to its *crisp
//! decoding* but not to the membership update itself (every `w_il` touches
//! every cluster), which is exactly why the paper targets crisp
//! centroid-based algorithms.

use crate::init::{initial_modes, InitMethod};
use crate::modes::Modes;
use lshclust_categorical::dissimilarity::matching;
use lshclust_categorical::{ClusterId, Dataset, ValueId};
use std::collections::HashMap;
use std::time::Instant;

/// Configuration for fuzzy K-Modes.
#[derive(Clone, Debug)]
pub struct FuzzyKModesConfig {
    /// Number of clusters.
    pub k: usize,
    /// Fuzziness exponent `α > 1` (typical: 1.1–2.0).
    pub alpha: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Stop when the cost improves by less than this fraction.
    pub tolerance: f64,
    /// Initialisation method.
    pub init: InitMethod,
    /// Seed.
    pub seed: u64,
}

impl FuzzyKModesConfig {
    /// Defaults: α = 1.5, 100 iterations, 1e-6 relative tolerance.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            alpha: 1.5,
            max_iterations: 100,
            tolerance: 1e-6,
            init: InitMethod::RandomItems,
            seed: 0,
        }
    }

    /// Sets the fuzziness exponent (must be > 1).
    pub fn alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 1.0, "alpha must exceed 1");
        self.alpha = alpha;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the iteration cap.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }
}

/// Result of a fuzzy K-Modes run.
#[derive(Clone, Debug)]
pub struct FuzzyKModesResult {
    /// `n × k` membership matrix, row-major.
    pub memberships: Vec<f64>,
    /// Final modes.
    pub modes: Modes,
    /// Crisp decoding: argmax membership per item (ties to lowest id).
    pub assignments: Vec<ClusterId>,
    /// Iterations executed.
    pub n_iterations: usize,
    /// Whether the tolerance was reached before the cap.
    pub converged: bool,
    /// Final fuzzy objective.
    pub cost: f64,
    /// Wall-clock time.
    pub elapsed: std::time::Duration,
}

impl FuzzyKModesResult {
    /// Membership row of `item`.
    pub fn membership(&self, item: usize) -> &[f64] {
        let k = self.modes.k();
        &self.memberships[item * k..(item + 1) * k]
    }
}

/// Runs fuzzy K-Modes.
pub fn fuzzy_kmodes(dataset: &Dataset, config: &FuzzyKModesConfig) -> FuzzyKModesResult {
    assert!(config.alpha > 1.0, "alpha must exceed 1");
    assert!(config.k > 0 && config.k <= dataset.n_items());
    let start = Instant::now();
    let (n, m, k) = (dataset.n_items(), dataset.n_attrs(), config.k);
    let mut modes = initial_modes(dataset, k, config.init, config.seed);
    let mut memberships = vec![0.0f64; n * k];
    let exponent = 1.0 / (config.alpha - 1.0);

    let mut prev_cost = f64::INFINITY;
    let mut converged = false;
    let mut n_iterations = 0;
    let mut distances = vec![0.0f64; k];
    for _ in 0..config.max_iterations {
        n_iterations += 1;
        // --- membership update -----------------------------------------
        for i in 0..n {
            let row = dataset.row(i);
            let mut zero_at = None;
            for (c, slot) in distances.iter_mut().enumerate() {
                let d = f64::from(matching(row, modes.mode(c)));
                if d == 0.0 && zero_at.is_none() {
                    zero_at = Some(c);
                }
                *slot = d;
            }
            let w = &mut memberships[i * k..(i + 1) * k];
            if let Some(c0) = zero_at {
                // Crisp membership on exact mode matches.
                w.fill(0.0);
                w[c0] = 1.0;
                continue;
            }
            // w_il ∝ d_il^{-1/(α-1)}, normalised.
            let mut total = 0.0;
            for (slot, &d) in w.iter_mut().zip(distances.iter()) {
                let v = d.powf(-exponent);
                *slot = v;
                total += v;
            }
            for slot in w.iter_mut() {
                *slot /= total;
            }
        }
        // --- mode update -------------------------------------------------
        // Weighted majority per (cluster, attribute); ties to smallest value.
        let mut weights: Vec<HashMap<u32, f64>> = vec![HashMap::new(); k * m];
        for i in 0..n {
            let row = dataset.row(i);
            let w = &memberships[i * k..(i + 1) * k];
            for (c, &wic) in w.iter().enumerate() {
                if wic == 0.0 {
                    continue;
                }
                let wa = wic.powf(config.alpha);
                for (a, &v) in row.iter().enumerate() {
                    *weights[c * m + a].entry(v.0).or_insert(0.0) += wa;
                }
            }
        }
        let mut new_mode = vec![ValueId(0); m];
        for c in 0..k {
            let mut any = false;
            for a in 0..m {
                let table = &weights[c * m + a];
                if let Some((&val, _)) = table
                    .iter()
                    .max_by(|(va, wa), (vb, wb)| wa.partial_cmp(wb).unwrap().then(vb.cmp(va)))
                {
                    new_mode[a] = ValueId(val);
                    any = true;
                } else {
                    new_mode[a] = modes.mode(c)[a];
                }
            }
            if any {
                modes.set_mode(ClusterId(c as u32), &new_mode);
            }
        }
        // --- cost & convergence -------------------------------------------
        let mut cost = 0.0;
        for i in 0..n {
            let row = dataset.row(i);
            let w = &memberships[i * k..(i + 1) * k];
            for (c, &wic) in w.iter().enumerate() {
                if wic > 0.0 {
                    cost += wic.powf(config.alpha) * f64::from(matching(row, modes.mode(c)));
                }
            }
        }
        if prev_cost.is_finite()
            && (prev_cost - cost).abs() <= config.tolerance * prev_cost.max(1.0)
        {
            converged = true;
            prev_cost = cost;
            break;
        }
        prev_cost = cost;
    }

    // Crisp decoding.
    let assignments = (0..n)
        .map(|i| {
            let w = &memberships[i * k..(i + 1) * k];
            let mut best = 0usize;
            for (c, &x) in w.iter().enumerate() {
                if x > w[best] {
                    best = c;
                }
            }
            ClusterId(best as u32)
        })
        .collect();

    FuzzyKModesResult {
        memberships,
        modes,
        assignments,
        n_iterations,
        converged,
        cost: prev_cost,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;

    fn blob_dataset(groups: usize, per_group: usize, n_attrs: usize) -> Dataset {
        let mut b = DatasetBuilder::anonymous(n_attrs);
        for g in 0..groups {
            for i in 0..per_group {
                let row: Vec<String> = (0..n_attrs)
                    .map(|a| {
                        if a == 0 {
                            format!("g{g}n{i}")
                        } else {
                            format!("g{g}a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn memberships_are_a_distribution() {
        let ds = blob_dataset(3, 6, 5);
        let result = fuzzy_kmodes(&ds, &FuzzyKModesConfig::new(3).seed(1));
        for i in 0..ds.n_items() {
            let row = result.membership(i);
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "item {i} memberships sum to {sum}"
            );
            assert!(row.iter().all(|&w| (0.0..=1.0 + 1e-12).contains(&w)));
        }
    }

    #[test]
    fn crisp_decoding_separates_blobs() {
        let ds = blob_dataset(3, 8, 6);
        // Cao init spreads the centres across blobs deterministically;
        // random init can seed two modes in one blob and stick there (fuzzy
        // updates are more local-optimum-prone than crisp ones).
        let mut config = FuzzyKModesConfig::new(3).seed(2);
        config.init = InitMethod::Cao;
        let result = fuzzy_kmodes(&ds, &config);
        for g in 0..3 {
            let first = result.assignments[g * 8];
            for i in 0..8 {
                assert_eq!(result.assignments[g * 8 + i], first, "blob {g} split");
            }
        }
        assert!(result.converged);
    }

    #[test]
    fn exact_mode_match_gets_crisp_membership() {
        let ds = blob_dataset(2, 4, 4);
        let result = fuzzy_kmodes(&ds, &FuzzyKModesConfig::new(2).seed(3));
        // Random-item init: the picked items match a mode exactly at first;
        // after convergence at least the items equal to a mode stay crisp.
        for i in 0..ds.n_items() {
            for c in 0..2 {
                if ds.row(i) == result.modes.mode(c) {
                    assert_eq!(result.membership(i)[c], 1.0);
                }
            }
        }
    }

    #[test]
    fn lower_alpha_is_crisper() {
        let ds = blob_dataset(2, 6, 5);
        let soft = fuzzy_kmodes(&ds, &FuzzyKModesConfig::new(2).alpha(3.0).seed(4));
        let crisp = fuzzy_kmodes(&ds, &FuzzyKModesConfig::new(2).alpha(1.1).seed(4));
        let entropy = |r: &FuzzyKModesResult| -> f64 {
            (0..ds.n_items())
                .map(|i| {
                    r.membership(i)
                        .iter()
                        .filter(|&&w| w > 0.0)
                        .map(|&w| -w * w.ln())
                        .sum::<f64>()
                })
                .sum()
        };
        assert!(
            entropy(&crisp) <= entropy(&soft) + 1e-9,
            "alpha 1.1 entropy {} > alpha 3.0 entropy {}",
            entropy(&crisp),
            entropy(&soft)
        );
    }

    #[test]
    fn cost_is_finite_and_nonnegative() {
        let ds = blob_dataset(4, 5, 6);
        let result = fuzzy_kmodes(&ds, &FuzzyKModesConfig::new(4).seed(5));
        assert!(result.cost.is_finite());
        assert!(result.cost >= 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = blob_dataset(3, 5, 4);
        let a = fuzzy_kmodes(&ds, &FuzzyKModesConfig::new(3).seed(6));
        let b = fuzzy_kmodes(&ds, &FuzzyKModesConfig::new(3).seed(6));
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.memberships, b.memberships);
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn alpha_validated() {
        let _ = FuzzyKModesConfig::new(2).alpha(1.0);
    }
}
