//! Dictionary-encoded categorical datasets and the dissimilarity measures used
//! by K-Modes and MinHash.
//!
//! This crate is the data substrate beneath the whole `lshclust` workspace.
//! It provides:
//!
//! * [`Dataset`] — a dense, row-major matrix of dictionary-encoded categorical
//!   values with an optional ground-truth label column,
//! * [`Schema`] / [`Dictionary`] — per-attribute string interning so that
//!   values compare as `u32`s rather than strings,
//! * [`dissimilarity`] — the simple matching dissimilarity of Eq. 1–2 of the
//!   paper and the Jaccard similarity of Eq. 6,
//! * [`elements`] — the "present feature value" set view of an item that
//!   MinHash consumes (Algorithm 2, lines 2–4 filter out absent features),
//! * [`io`] — a small CSV reader/writer for interoperability.
//!
//! # Example
//!
//! ```
//! use lshclust_categorical::{DatasetBuilder, dissimilarity::matching};
//!
//! let mut b = DatasetBuilder::new(vec!["colour".into(), "shape".into()]);
//! b.push_str_row(&["red", "square"], None).unwrap();
//! b.push_str_row(&["red", "circle"], None).unwrap();
//! let ds = b.finish();
//!
//! assert_eq!(ds.n_items(), 2);
//! assert_eq!(matching(ds.row(0), ds.row(1)), 1); // shapes differ
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod dictionary;
pub mod dissimilarity;
pub mod elements;
pub mod io;
pub mod types;

pub use dataset::{Dataset, DatasetBuilder};
pub use dictionary::{Dictionary, Schema};
pub use elements::{element_key, split_element_key, PresentElements};
pub use types::{AttrId, ClusterId, ItemId, ValueId, NOT_PRESENT};
