//! The further-work extension: LSH-accelerated **K-Means** for numeric data.
//!
//! The paper closes by proposing to extend the framework "to work with not
//! only categorical data, but numeric data". This module does exactly that by
//! swapping the two pluggable pieces of [`crate::framework`]:
//!
//! * the [`CentroidModel`] becomes K-Means (squared-Euclidean distances,
//!   mean centroids) over a [`NumericDataset`],
//! * the [`ShortlistProvider`] becomes a [`SimHashIndex`] — random-hyperplane
//!   LSH, whose collision probability is monotone in cosine similarity.
//!
//! The driver, instrumentation, and convergence logic are *identical* to
//! MH-K-Modes, which is the point: the framework is algorithm-agnostic.

use crate::framework::{self, ActivitySet, CentroidModel, ShortlistProvider, StopPolicy};
use lshclust_categorical::ClusterId;
use lshclust_kmodes::kmeans::{kmeans_initial_centroids, sq_euclidean, KMeansInit, NumericDataset};
use lshclust_kmodes::modes::group_by_cluster;
use lshclust_kmodes::stats::RunSummary;
use lshclust_minhash::hashfn::{FastMap, FastSet};
use lshclust_minhash::simhash::SimHash;
use std::time::Instant;

/// The K-Means instantiation of [`CentroidModel`].
pub struct KMeansModel<'a> {
    data: &'a NumericDataset,
    centroids: Vec<f64>,
    k: usize,
}

impl<'a> KMeansModel<'a> {
    /// Wraps a dataset and initial centroids (`k × dim`, row-major).
    pub fn new(data: &'a NumericDataset, centroids: Vec<f64>, k: usize) -> Self {
        assert_eq!(centroids.len(), k * data.dim());
        Self { data, centroids, k }
    }

    /// The current centroids.
    pub fn centroids(&self) -> &[f64] {
        &self.centroids
    }

    /// The wrapped dataset (at its own lifetime; see
    /// `KModesModel::dataset_ref`).
    pub(crate) fn data_ref(&self) -> &'a NumericDataset {
        self.data
    }

    /// Mutable access to the centroid matrix (mini-batch nudges).
    pub(crate) fn centroids_mut(&mut self) -> &mut [f64] {
        &mut self.centroids
    }

    #[inline]
    fn centroid(&self, c: usize) -> &[f64] {
        &self.centroids[c * self.data.dim()..(c + 1) * self.data.dim()]
    }
}

impl CentroidModel for KMeansModel<'_> {
    type Snapshot = Vec<f64>;

    fn snapshot_centroids(&self) -> Vec<f64> {
        self.centroids.clone()
    }

    fn restore_centroids(&mut self, snapshot: Vec<f64>) {
        self.centroids = snapshot;
    }

    fn k(&self) -> usize {
        self.k
    }

    fn n_items(&self) -> usize {
        self.data.n_items()
    }

    fn best_full(&self, item: u32) -> (ClusterId, f64) {
        let row = self.data.row(item as usize);
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for c in 0..self.k {
            let d = sq_euclidean(row, self.centroid(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        (ClusterId(best as u32), best_d)
    }

    fn best_among(&self, item: u32, candidates: &[ClusterId]) -> Option<(ClusterId, f64)> {
        let row = self.data.row(item as usize);
        let mut best: Option<(ClusterId, f64)> = None;
        for &c in candidates {
            let d = sq_euclidean(row, self.centroid(c.idx()));
            let replace = match best {
                None => true,
                Some((bc, bd)) => d < bd || (d == bd && c < bc),
            };
            if replace {
                best = Some((c, d));
            }
        }
        best
    }

    fn update_centroids(&mut self, assignments: &[ClusterId]) -> ActivitySet {
        let dim = self.data.dim();
        let mut sums = vec![0.0f64; self.k * dim];
        let mut counts = vec![0u32; self.k];
        for (i, &c) in assignments.iter().enumerate() {
            counts[c.idx()] += 1;
            for (s, &x) in sums[c.idx() * dim..(c.idx() + 1) * dim]
                .iter_mut()
                .zip(self.data.row(i))
            {
                *s += x;
            }
        }
        let mut activity = ActivitySet::none(self.k);
        for c in 0..self.k {
            if counts[c] == 0 {
                continue; // empty cluster keeps its centroid
            }
            for d in 0..dim {
                let new = sums[c * dim + d] / f64::from(counts[c]);
                // Bit-level comparison: the activity set must flag any change
                // the distance kernel could observe (±0.0 compares equal but
                // behaves identically in arithmetic, so `!=` suffices).
                if self.centroids[c * dim + d] != new {
                    activity.mark(ClusterId(c as u32));
                }
                self.centroids[c * dim + d] = new;
            }
        }
        activity
    }

    fn update_centroids_parallel(
        &mut self,
        assignments: &[ClusterId],
        threads: usize,
    ) -> ActivitySet {
        if threads <= 1 {
            return self.update_centroids(assignments);
        }
        // Cluster-by-cluster means. Each cluster's member sums accumulate in
        // ascending item order — the same addition sequence per accumulator
        // as the serial item-order loop — so the result is bit-identical to
        // the serial update at any thread count.
        let dim = self.data.dim();
        let k = self.k;
        let groups = group_by_cluster(assignments, k);
        let data = self.data;
        let new_means: Vec<Option<Vec<f64>>> = crate::parallel::chunked_map(
            k,
            threads,
            || (),
            |c, _| {
                let members = groups.members(c as usize);
                if members.is_empty() {
                    return None; // empty cluster keeps its centroid
                }
                let mut sum = vec![0.0f64; dim];
                for &i in members {
                    for (s, &x) in sum.iter_mut().zip(data.row(i as usize)) {
                        *s += x;
                    }
                }
                for s in &mut sum {
                    *s /= members.len() as f64;
                }
                Some(sum)
            },
        );
        let mut activity = ActivitySet::none(k);
        for (c, mean) in new_means.iter().enumerate() {
            if let Some(mean) = mean {
                if self.centroids[c * dim..(c + 1) * dim] != mean[..] {
                    activity.mark(ClusterId(c as u32));
                }
                self.centroids[c * dim..(c + 1) * dim].copy_from_slice(mean);
            }
        }
        activity
    }

    fn total_cost(&self, assignments: &[ClusterId]) -> f64 {
        assignments
            .iter()
            .enumerate()
            .map(|(i, &c)| sq_euclidean(self.data.row(i), self.centroid(c.idx())))
            .sum()
    }
}

/// SimHash LSH index over numeric items, with per-item cluster references —
/// the numeric twin of `lshclust_minhash::LshIndex`.
///
/// The hyperplane family and the centring vector are retained so unseen
/// query vectors can be hashed into the same bucket universe
/// ([`Self::shortlist_for_vector`], the serving path of `lshclust`'s
/// `FittedModel`).
#[derive(Clone)]
pub struct SimHashIndex {
    /// `n_items × bands` band keys, item-major.
    band_keys: Vec<u64>,
    buckets: Vec<FastMap<u64, Vec<u32>>>,
    cluster_of: Vec<ClusterId>,
    bands: u32,
    rows: u32,
    /// The hyperplane family used at build time (needed to hash queries).
    sim: SimHash,
    /// The mean vector subtracted before hashing (see [`Self::build`]).
    mean: Vec<f64>,
}

impl SimHashIndex {
    /// Hashes every vector with `n_bits = bands × rows` hyperplanes and
    /// buckets the band keys.
    ///
    /// Vectors are **mean-centred** before hashing: random-hyperplane LSH
    /// discriminates by *angle from the origin*, and un-centred data (e.g.
    /// all-positive features) collapses into a narrow cone where everything
    /// collides. Centring puts the hyperplane pencil through the data
    /// centroid, spreading angles over the full sphere.
    pub fn build(
        data: &NumericDataset,
        bands: u32,
        rows: u32,
        seed: u64,
        initial: &[ClusterId],
    ) -> Self {
        Self::build_parallel(data, bands, rows, seed, initial, 1)
    }

    /// Like [`Self::build`], with the per-item hashing (centring, signature,
    /// band keys) fanned over `threads` workers. The centring mean is summed
    /// serially (float addition order matters) and the bucket fill walks
    /// items in ascending order, so the result is **byte-identical** to the
    /// serial build at any thread count.
    pub fn build_parallel(
        data: &NumericDataset,
        bands: u32,
        rows: u32,
        seed: u64,
        initial: &[ClusterId],
        threads: usize,
    ) -> Self {
        assert_eq!(initial.len(), data.n_items());
        let (band_keys, mean) = Self::hash_band_keys(data, bands, rows, seed, threads);
        Self::from_band_keys(data.dim(), bands, rows, seed, mean, band_keys, initial)
    }

    /// The hashing half of [`Self::build_parallel`] on its own: the serial
    /// centring mean over **all** items (float addition order matters) and
    /// every item's band keys, item-major (`n_items × bands`), fanned over
    /// `threads` workers. Feeding the buffer back through
    /// [`Self::from_band_keys`] is byte-identical to [`Self::build`]; the
    /// shard coordinator (`crate::shard`) uses the same buffer to deal each
    /// shard its items' keys, so every shard hashes against the **global**
    /// mean.
    pub fn hash_band_keys(
        data: &NumericDataset,
        bands: u32,
        rows: u32,
        seed: u64,
        threads: usize,
    ) -> (Vec<u64>, Vec<f64>) {
        let n_bits = bands as usize * rows as usize;
        let dim = data.dim();
        let sim = SimHash::new(n_bits, dim, seed);
        let n = data.n_items();
        let mut mean = vec![0.0f64; dim];
        for item in 0..n {
            for (m, &x) in mean.iter_mut().zip(data.row(item)) {
                *m += x;
            }
        }
        if n > 0 {
            for m in &mut mean {
                *m /= n as f64;
            }
        }
        // Per-item hashing fills the flat item-major key buffer directly —
        // one contiguous slice per worker, no per-item allocation — through
        // the shared chunking scaffold (inline at `threads <= 1`).
        let n_bands = bands as usize;
        let mut band_keys = vec![0u64; n * n_bands];
        crate::parallel::fill_chunks(&mut band_keys, n, n_bands, threads, |start, slice| {
            let mut centred = vec![0.0f64; dim];
            let mut sig = Vec::new();
            let mut keys = Vec::new();
            for (offset, out) in slice.chunks_mut(n_bands).enumerate() {
                for ((c, &x), m) in centred.iter_mut().zip(data.row(start + offset)).zip(&mean) {
                    *c = x - m;
                }
                sim.signature_into(&centred, &mut sig);
                sim.band_keys_into(&sig, bands, rows, &mut keys);
                out.copy_from_slice(&keys);
            }
        });
        (band_keys, mean)
    }

    /// Builds the index from **precomputed** band keys and centring mean —
    /// the bucket fill of [`Self::build_parallel`] on its own. Because the
    /// fill walks items in ascending order either way, the resulting index
    /// is byte-identical to a full build over the same vectors. Shard
    /// workers use this to own a local index over only their items' keys.
    pub fn from_band_keys(
        dim: usize,
        bands: u32,
        rows: u32,
        seed: u64,
        mean: Vec<f64>,
        band_keys: Vec<u64>,
        initial: &[ClusterId],
    ) -> Self {
        let n_bands = (bands as usize).max(1);
        assert!(
            band_keys.len().is_multiple_of(n_bands),
            "band-key buffer is not item-major n_items × bands"
        );
        let n = band_keys.len() / n_bands;
        assert_eq!(initial.len(), n, "one initial cluster per item required");
        let sim = SimHash::new(bands as usize * rows as usize, dim, seed);
        let n_bands = bands as usize;
        // Bucket fill stays serial in item order (byte-identical index).
        let mut buckets: Vec<FastMap<u64, Vec<u32>>> =
            (0..n_bands).map(|_| FastMap::default()).collect();
        for item in 0..n {
            for (band, bucket) in buckets.iter_mut().enumerate() {
                let key = band_keys[item * n_bands + band];
                bucket.entry(key).or_default().push(item as u32);
            }
        }
        Self {
            band_keys,
            buckets,
            cluster_of: initial.to_vec(),
            bands,
            rows,
            sim,
            mean,
        }
    }

    /// The flat item-major band-key buffer (`n_items × bands`) the index was
    /// built from. Together with [`Self::mean`] this is the index's
    /// serialized form: [`Self::from_band_keys`] refills the buckets from it
    /// byte-identically without redoing a single hyperplane projection — the
    /// copy-instead-of-hash load path of `lshclust`'s v2 binary model
    /// envelope.
    pub fn band_keys(&self) -> &[u64] {
        &self.band_keys
    }

    /// The centring mean subtracted before hashing (see [`Self::build`]).
    /// Persisted alongside [`Self::band_keys`] so a reloaded index centres
    /// queries exactly as the original did.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Current cluster reference of `item`.
    pub fn cluster_of(&self, item: u32) -> ClusterId {
        self.cluster_of[item as usize]
    }

    /// O(1) cluster-reference update.
    pub fn set_cluster(&mut self, item: u32, cluster: ClusterId) {
        self.cluster_of[item as usize] = cluster;
    }

    /// Overwrites all cluster references at once (used by shard workers
    /// after a fresh local assignment pass).
    pub fn set_all_clusters(&mut self, clusters: &[ClusterId]) {
        assert_eq!(clusters.len(), self.cluster_of.len());
        self.cluster_of.copy_from_slice(clusters);
    }

    /// Calls `f` once per bucket: `(band, band key, member item ids)`.
    /// Members appear in ascending item order; the bucket order within a
    /// band is unspecified. The raw view shard workers digest into per-key
    /// cluster sets (`crate::shard`).
    pub fn for_each_bucket<F: FnMut(usize, u64, &[u32])>(&self, mut f: F) {
        for (band, map) in self.buckets.iter().enumerate() {
            for (&key, members) in map {
                f(band, key, members);
            }
        }
    }

    /// Collects the distinct clusters of items colliding with `item`.
    pub fn shortlist_into(&self, item: u32, out: &mut Vec<ClusterId>, seen: &mut FastSet<u32>) {
        let b = self.bands as usize;
        let keys = &self.band_keys[item as usize * b..(item as usize + 1) * b];
        self.shortlist_for_keys(keys, out, seen);
    }

    /// Collects the distinct clusters of indexed items colliding with an
    /// **unseen vector**: the vector is centred with the index's stored mean,
    /// hashed by the same hyperplane family, and its band buckets are probed.
    /// This is the serving-time query of a centroid index.
    ///
    /// Allocating convenience wrapper; batch callers should hold a
    /// [`VectorQueryScratch`] and use [`Self::shortlist_for_vector_with`].
    pub fn shortlist_for_vector(
        &self,
        v: &[f64],
        out: &mut Vec<ClusterId>,
        seen: &mut FastSet<u32>,
    ) {
        let mut scratch = VectorQueryScratch::default();
        self.shortlist_for_vector_with(v, &mut scratch, out, seen);
    }

    /// [`Self::shortlist_for_vector`] with reused hashing buffers — the
    /// allocation-free form of the serving hot path.
    pub fn shortlist_for_vector_with(
        &self,
        v: &[f64],
        scratch: &mut VectorQueryScratch,
        out: &mut Vec<ClusterId>,
        seen: &mut FastSet<u32>,
    ) {
        scratch.centred.clear();
        scratch
            .centred
            .extend(v.iter().zip(&self.mean).map(|(x, m)| x - m));
        self.sim.signature_into(&scratch.centred, &mut scratch.sig);
        self.sim
            .band_keys_into(&scratch.sig, self.bands, self.rows, &mut scratch.keys);
        self.shortlist_for_keys(&scratch.keys, out, seen);
    }

    fn shortlist_for_keys(&self, keys: &[u64], out: &mut Vec<ClusterId>, seen: &mut FastSet<u32>) {
        out.clear();
        seen.clear();
        for (band, key) in keys.iter().enumerate() {
            if let Some(members) = self.buckets[band].get(key) {
                for &other in members {
                    let c = self.cluster_of[other as usize];
                    if seen.insert(c.0) {
                        out.push(c);
                    }
                }
            }
        }
    }
}

/// Reusable hashing buffers for [`SimHashIndex::shortlist_for_vector_with`].
#[derive(Default)]
pub struct VectorQueryScratch {
    centred: Vec<f64>,
    sig: Vec<u64>,
    keys: Vec<u64>,
}

/// [`ShortlistProvider`] wrapper around [`SimHashIndex`].
pub struct SimHashProvider {
    index: SimHashIndex,
    seen: FastSet<u32>,
}

impl SimHashProvider {
    /// Wraps a built index.
    pub fn new(index: SimHashIndex) -> Self {
        Self {
            index,
            seen: FastSet::default(),
        }
    }
}

impl ShortlistProvider for SimHashProvider {
    fn shortlist(&mut self, item: u32, out: &mut Vec<ClusterId>) {
        // `shortlist_into` clears `out` itself, so the candidates land in the
        // caller's buffer directly — no intermediate copy.
        self.index.shortlist_into(item, out, &mut self.seen);
    }

    fn record_assignment(&mut self, item: u32, cluster: ClusterId) {
        self.index.set_cluster(item, cluster);
    }
}

impl crate::parallel::SyncShortlistProvider for SimHashProvider {
    type Scratch = FastSet<u32>;

    fn make_scratch(&self) -> FastSet<u32> {
        FastSet::default()
    }

    fn shortlist_into(&self, item: u32, seen: &mut FastSet<u32>, out: &mut Vec<ClusterId>) {
        self.index.shortlist_into(item, out, seen);
    }
}

/// Configuration for MH-K-Means.
#[derive(Clone, Debug)]
pub struct MhKMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// SimHash bands.
    pub bands: u32,
    /// Bits per band.
    pub rows: u32,
    /// Iteration policy (cap + stop criteria).
    pub stop: StopPolicy,
    /// Seeding strategy.
    pub init: KMeansInit,
    /// RNG seed (centroids and hyperplanes).
    pub seed: u64,
    /// Assignment-pass threads. `1` (and the clamped `0`) keeps the serial
    /// Gauss–Seidel pass; `> 1` runs the Jacobi parallel engine of
    /// [`crate::parallel`].
    pub threads: usize,
    /// Cluster-closure incremental assignment (byte-identical results;
    /// `false` is the escape hatch).
    pub closures: bool,
    /// Interleaved parallel chunk scheduling (identical results; bench axis).
    pub interleaved: bool,
}

impl MhKMeansConfig {
    /// Defaults: 100-iteration cap, random-item init, serial assignment.
    pub fn new(k: usize, bands: u32, rows: u32) -> Self {
        Self {
            k,
            bands,
            rows,
            stop: StopPolicy::default(),
            init: KMeansInit::RandomItems,
            seed: 0,
            threads: 1,
            closures: true,
            interleaved: false,
        }
    }

    /// Sets the number of assignment threads (`0` clamps to `1`).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Enables/disables cluster-closure incremental assignment.
    pub fn closures(mut self, yes: bool) -> Self {
        self.closures = yes;
        self
    }

    /// Selects interleaved vs contiguous parallel chunk scheduling.
    pub fn interleaved(mut self, yes: bool) -> Self {
        self.interleaved = yes;
        self
    }
}

/// Result of an MH-K-Means run.
#[derive(Clone, Debug)]
pub struct MhKMeansResult {
    /// Final cluster per item.
    pub assignments: Vec<ClusterId>,
    /// Final centroids (`k × dim`).
    pub centroids: Vec<f64>,
    /// Instrumentation.
    pub summary: RunSummary,
}

/// Runs LSH-accelerated K-Means.
pub fn mh_kmeans(data: &NumericDataset, config: &MhKMeansConfig) -> MhKMeansResult {
    let setup_start = Instant::now();
    let centroids = kmeans_initial_centroids(data, config.k, config.init, config.seed);
    mh_kmeans_from(data, config, centroids, setup_start)
}

/// Runs LSH-accelerated K-Means from explicit initial centroids (`k × dim`,
/// row-major) — the warm-start path used by `lshclust`'s
/// `ClusterSpec::warm_start`. `setup_start` should be the instant
/// initialisation began so setup time is complete.
pub fn mh_kmeans_from(
    data: &NumericDataset,
    config: &MhKMeansConfig,
    centroids: Vec<f64>,
    setup_start: Instant,
) -> MhKMeansResult {
    let mut model = KMeansModel::new(data, centroids, config.k);
    // Initial full assignment, mirroring MH-K-Modes step 2 — fanned over
    // `config.threads` like the index hashing below (both byte-identical to
    // their serial forms).
    let mut assignments = vec![ClusterId(0); data.n_items()];
    crate::parallel::assign_full_parallel(&model, &mut assignments, config.threads);
    model.update_centroids_parallel(&assignments, config.threads);
    let index = SimHashIndex::build_parallel(
        data,
        config.bands,
        config.rows,
        config.seed,
        &assignments,
        config.threads,
    );
    let mut provider = SimHashProvider::new(index);
    let setup = setup_start.elapsed();
    let run = if config.threads <= 1 {
        framework::fit(
            &mut model,
            &mut provider,
            assignments,
            setup,
            &config.stop,
            config.closures,
        )
    } else {
        crate::parallel::parallel_fit(
            &mut model,
            &mut provider,
            assignments,
            setup,
            &config.stop,
            config.threads,
            config.closures,
            config.interleaved,
        )
    };
    MhKMeansResult {
        assignments: run.assignments,
        centroids: model.centroids.clone(),
        summary: run.summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `groups` Gaussian-ish blobs on a circle of radius 10.
    fn blob_data(groups: usize, per_group: usize) -> NumericDataset {
        let mut data = Vec::new();
        for g in 0..groups {
            let angle = g as f64 / groups as f64 * std::f64::consts::TAU;
            let (cx, cy) = (10.0 * angle.cos(), 10.0 * angle.sin());
            for i in 0..per_group {
                // Small deterministic jitter.
                let jx = (i as f64 * 0.37).sin() * 0.3;
                let jy = (i as f64 * 0.71).cos() * 0.3;
                data.extend_from_slice(&[cx + jx, cy + jy]);
            }
        }
        NumericDataset::new(2, data)
    }

    #[test]
    fn recovers_blobs() {
        let data = blob_data(4, 8);
        let cfg = MhKMeansConfig::new(4, 12, 3);
        let result = mh_kmeans(&data, &cfg);
        assert!(result.summary.converged);
        for g in 0..4 {
            let first = result.assignments[g * 8];
            for i in 0..8 {
                assert_eq!(result.assignments[g * 8 + i], first, "blob {g} split");
            }
        }
    }

    #[test]
    fn shortlist_below_k() {
        let data = blob_data(6, 6);
        let cfg = MhKMeansConfig::new(6, 8, 4);
        let result = mh_kmeans(&data, &cfg);
        let last = result.summary.iterations.last().unwrap();
        assert!(last.avg_candidates < 6.0, "avg {}", last.avg_candidates);
    }

    #[test]
    fn deterministic() {
        let data = blob_data(3, 5);
        let cfg = MhKMeansConfig::new(3, 8, 2);
        let a = mh_kmeans(&data, &cfg);
        let b = mh_kmeans(&data, &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn simhash_index_cluster_refs() {
        let data = blob_data(2, 3);
        let initial: Vec<ClusterId> = (0..6).map(|i| ClusterId(i / 3)).collect();
        let mut index = SimHashIndex::build(&data, 4, 2, 0, &initial);
        assert_eq!(index.cluster_of(4), ClusterId(1));
        index.set_cluster(4, ClusterId(0));
        assert_eq!(index.cluster_of(4), ClusterId(0));
    }

    #[test]
    fn shortlist_contains_own_cluster() {
        let data = blob_data(2, 4);
        let initial: Vec<ClusterId> = (0..8).map(|i| ClusterId(i / 4)).collect();
        let index = SimHashIndex::build(&data, 6, 2, 1, &initial);
        let mut out = Vec::new();
        let mut seen = FastSet::default();
        for item in 0..8u32 {
            index.shortlist_into(item, &mut out, &mut seen);
            assert!(
                out.contains(&index.cluster_of(item)),
                "item {item}: {out:?}"
            );
        }
    }

    #[test]
    fn kmeans_model_full_vs_among_consistency() {
        let data = blob_data(3, 4);
        let centroids = kmeans_initial_centroids(&data, 3, KMeansInit::RandomItems, 5);
        let model = KMeansModel::new(&data, centroids, 3);
        let all: Vec<ClusterId> = (0..3).map(ClusterId).collect();
        for item in 0..12u32 {
            let full = model.best_full(item);
            let among = model.best_among(item, &all).unwrap();
            assert_eq!(full.0, among.0);
            assert!((full.1 - among.1).abs() < 1e-12);
        }
    }

    #[test]
    fn inertia_comparable_to_exact_kmeans() {
        use lshclust_kmodes::kmeans::{kmeans, KMeansConfig};
        let data = blob_data(4, 10);
        let exact = kmeans(&data, &KMeansConfig::new(4));
        let accel = mh_kmeans(&data, &MhKMeansConfig::new(4, 16, 2));
        let accel_inertia = {
            let model = KMeansModel::new(&data, accel.centroids.clone(), 4);
            model.total_cost(&accel.assignments)
        };
        // Allow slack: different init draw order; blobs are so separated
        // both should land near the optimum.
        assert!(
            accel_inertia <= exact.inertia * 1.5 + 1.0,
            "accelerated inertia {accel_inertia} vs exact {}",
            exact.inertia
        );
    }
}
