//! Similarity workloads through the facade: `Sim::dedup` / `Sim::join` must
//! emit **exactly** the brute-force pair set at or under the threshold —
//! precision 1.0 holds by construction (every emitted pair is exact-verified),
//! and recall 1.0 is pinned here with generous banding (`rows = 1`, many
//! bands) on small fixtures — for all three modalities and at every thread
//! count. `Sim::hierarchy` must be byte-deterministic at any thread count and
//! agree with the exhaustive `Lsh::None` search on small `k`.
//!
//! The proptest shim replays fixed deterministic seeds, so a green run here
//! is stable, not a sampling accident.

use lshclust::{
    ClusterSpec, Clusterer, FittedModel, Lsh, MixedDataset, NumericDataset, Sim, SimSpec,
};
use lshclust_categorical::Dataset;
use lshclust_datagen::datgen::{generate, DatgenConfig};
use proptest::prelude::*;

/// Small clustered categorical data: 40 rows, 5 planted groups, 8 attrs.
fn categorical_fixture(seed: u64) -> Dataset {
    generate(&DatgenConfig::new(40, 5, 8).seed(seed))
}

/// Numeric blobs keyed off the categorical labels (same shape as the
/// closures suite): rows with the same label land within ~0.2 per axis.
fn numeric_blobs(labels: &[u32], dim: usize) -> NumericDataset {
    let data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..dim).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 40));
                (h % 100) as f64 + ((i * 13 + d) as f64 * 0.37).sin() * 0.1
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

/// Generous banding: one row per band means any pair sharing a single
/// minhash collides, so on 8-attribute rows with matching distance ≤ 3 the
/// miss probability is (3/8)^24 — recall 1.0 on these fixtures.
const GENEROUS_MINHASH: Lsh = Lsh::MinHash { bands: 24, rows: 1 };
const GENEROUS_SIMHASH: Lsh = Lsh::SimHash { bands: 16, rows: 1 };
const GENEROUS_UNION: Lsh = Lsh::Union {
    bands: 24,
    rows: 1,
    sim_bands: 16,
    sim_rows: 1,
};

/// Join output must equal the brute-force ground truth (same threshold, cap,
/// and tie-order) and dedup must emit the same pair set in `(a, b)` order.
fn assert_matches_brute_force<D: lshclust::SimInput + ?Sized>(
    spec: SimSpec,
    data: &D,
    label: &str,
) {
    let sim = Sim::new(spec);
    let exact = sim.join_exact(data);
    let join = sim.join(data).unwrap();
    assert_eq!(join.pairs, exact.pairs, "{label}: join vs brute force");
    assert_eq!(join.matched, exact.matched, "{label}: matched count");
    assert_eq!(join.capped, exact.capped, "{label}: capped flag");
    for p in &join.pairs {
        assert!(p.a < p.b, "{label}: pair ordering");
        assert!(
            p.distance <= sim.spec().threshold,
            "{label}: emitted pair above threshold (precision violated)"
        );
    }

    let dedup = sim.dedup(data).unwrap();
    let mut by_id = exact.pairs.clone();
    by_id.sort_by_key(|x| (x.a, x.b));
    assert_eq!(dedup.pairs, by_id, "{label}: dedup vs brute force");
    // The representative map must be consistent with the pair set: every
    // duplicate points at a smaller id, singletons point at themselves.
    for (i, &rep) in dedup.representative.iter().enumerate() {
        assert!(rep as usize <= i, "{label}: representative above item");
        if rep as usize == i {
            continue;
        }
        assert_eq!(
            dedup.representative[rep as usize], rep,
            "{label}: representative is not a root"
        );
    }
    assert_eq!(
        dedup.n_duplicates,
        dedup
            .representative
            .iter()
            .enumerate()
            .filter(|(i, &r)| r as usize != *i)
            .count(),
        "{label}: duplicate count"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Categorical dedup/join equal brute force at every thread count.
    #[test]
    fn categorical_pairs_match_brute_force(seed in 0u64..32) {
        let data = categorical_fixture(seed);
        for threads in [1usize, 2, 4] {
            let spec = SimSpec::new(3.0)
                .lsh(GENEROUS_MINHASH)
                .seed(seed)
                .threads(threads);
            assert_matches_brute_force(spec, &data, &format!("categorical t={threads}"));
        }
    }

    /// Numeric dedup/join equal brute force at every thread count.
    #[test]
    fn numeric_pairs_match_brute_force(seed in 0u64..32) {
        let labels = categorical_fixture(seed).labels().unwrap().to_vec();
        let data = numeric_blobs(&labels, 4);
        for threads in [1usize, 2, 4] {
            let spec = SimSpec::new(1.0)
                .lsh(GENEROUS_SIMHASH)
                .seed(seed)
                .threads(threads);
            assert_matches_brute_force(spec, &data, &format!("numeric t={threads}"));
        }
    }

    /// Mixed dedup/join equal brute force at every thread count.
    #[test]
    fn mixed_pairs_match_brute_force(seed in 0u64..32) {
        let cats = categorical_fixture(seed);
        let labels = cats.labels().unwrap().to_vec();
        let nums = numeric_blobs(&labels, 4);
        let data = MixedDataset::new(&cats, &nums);
        for threads in [1usize, 2, 4] {
            let spec = SimSpec::new(4.0)
                .lsh(GENEROUS_UNION)
                .seed(seed)
                .threads(threads);
            assert_matches_brute_force(spec, &data, &format!("mixed t={threads}"));
        }
    }
}

/// Reports are byte-identical at any thread count — not merely "the same
/// pairs", the whole report including candidate volume.
#[test]
fn join_reports_are_thread_invariant() {
    let cats = categorical_fixture(17);
    let spec = |threads| {
        SimSpec::new(3.0)
            .lsh(GENEROUS_MINHASH)
            .seed(17)
            .threads(threads)
            .max_pairs(10)
    };
    let base = Sim::new(spec(1)).join(&cats).unwrap();
    for threads in [2usize, 4] {
        let got = Sim::new(spec(threads)).join(&cats).unwrap();
        assert_eq!(got, base, "join t={threads} differs from t=1");
    }
    let base = Sim::new(spec(1)).dedup(&cats).unwrap();
    for threads in [2usize, 4] {
        let got = Sim::new(spec(threads)).dedup(&cats).unwrap();
        assert_eq!(got, base, "dedup t={threads} differs from t=1");
    }
}

fn numeric_model(k: usize, seed: u64) -> FittedModel {
    let labels = categorical_fixture(seed).labels().unwrap().to_vec();
    let data = numeric_blobs(&labels, 4);
    let spec = ClusterSpec::new(k)
        .lsh(Lsh::SimHash { bands: 8, rows: 2 })
        .seed(seed);
    Clusterer::new(spec).fit(&data).unwrap().model
}

fn categorical_model(k: usize, seed: u64) -> FittedModel {
    let data = categorical_fixture(seed);
    let spec = ClusterSpec::new(k)
        .lsh(Lsh::MinHash { bands: 12, rows: 2 })
        .seed(seed);
    Clusterer::new(spec).fit(&data).unwrap().model
}

/// Hierarchy is byte-deterministic at any thread count, and with generous
/// banding the shortlisted merges equal the exhaustive `Lsh::None` search on
/// small `k` (the shortlist nominates every near pair, so the running
/// minimum is the true minimum at each step).
#[test]
fn hierarchy_is_thread_invariant_and_matches_full_search() {
    let model = numeric_model(6, 23);
    let shortlisted = |threads| {
        SimSpec::new(0.0)
            .lsh(GENEROUS_SIMHASH)
            .seed(23)
            .threads(threads)
    };
    let base = Sim::new(shortlisted(1)).hierarchy(&model).unwrap();
    assert_eq!(base.k, 6);
    assert_eq!(base.merges.len(), 5, "k - 1 merges");
    for (m, merge) in base.merges.iter().enumerate() {
        assert!(merge.a < merge.b, "merge {m}: node order");
        assert!(
            (merge.b as usize) < 6 + m,
            "merge {m}: references a node created later"
        );
        assert!(merge.height >= 0.0, "merge {m}: negative height");
    }
    for threads in [2usize, 4] {
        let got = Sim::new(shortlisted(threads)).hierarchy(&model).unwrap();
        assert_eq!(got, base, "hierarchy t={threads} differs from t=1");
    }
    let full = Sim::new(SimSpec::new(0.0).lsh(Lsh::None).seed(23).threads(2))
        .hierarchy(&model)
        .unwrap();
    assert_eq!(full.fallback_steps, 0, "Lsh::None never counts fallbacks");
    assert_eq!(
        base.merges, full.merges,
        "shortlisted merges diverge from full search"
    );
}

/// Same guarantees for a categorical (k-modes) model under MinHash.
#[test]
fn categorical_hierarchy_matches_full_search() {
    let model = categorical_model(5, 29);
    let base = Sim::new(SimSpec::new(0.0).lsh(GENEROUS_MINHASH).seed(29).threads(1))
        .hierarchy(&model)
        .unwrap();
    let threaded = Sim::new(SimSpec::new(0.0).lsh(GENEROUS_MINHASH).seed(29).threads(4))
        .hierarchy(&model)
        .unwrap();
    assert_eq!(threaded, base, "hierarchy threads changed the dendrogram");
    let full = Sim::new(SimSpec::new(0.0).lsh(Lsh::None).seed(29))
        .hierarchy(&model)
        .unwrap();
    assert_eq!(base.merges, full.merges, "shortlisted vs full search");
    assert_eq!(base.merges.len(), 4);
}

/// The dendrogram survives both serialization paths end to end.
#[test]
fn dendrogram_round_trips_from_a_fitted_model() {
    let model = numeric_model(4, 31);
    let dendro = Sim::new(SimSpec::new(0.0).lsh(Lsh::None))
        .hierarchy(&model)
        .unwrap();
    let back = lshclust::Dendrogram::from_bytes(&dendro.to_bytes()).unwrap();
    assert_eq!(back, dendro, "binary envelope round trip");
    let json = serde_json::to_string(&dendro).unwrap();
    let back: lshclust::Dendrogram = serde_json::from_str(&json).unwrap();
    assert_eq!(back, dendro, "JSON round trip");
}
