#!/usr/bin/env python3
"""Offline markdown link checker for the CI `link-check` job.

Verifies, for every markdown file passed on the command line:

  * relative links point at files (or directories) that exist in the repo,
  * fragment links (`file.md#anchor`, `#anchor`) name a heading that is
    actually present in the target file, using GitHub's slug rules.

External links (http/https/mailto) are intentionally not fetched — CI must
stay deterministic and offline-friendly; rot in outbound links is a review
concern, not a build gate.

Exit status: 0 when every link resolves, 1 otherwise (one line per broken
link).
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE = re.compile(r"!\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.lower().replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    body = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(m.group(1)) for m in HEADING.finditer(body)}


def check_file(md: Path, repo_root: Path) -> list[str]:
    errors = []
    body = CODE_FENCE.sub("", md.read_text(encoding="utf-8"))
    targets = [m.group(1) for m in LINK.finditer(body)]
    targets += [m.group(1) for m in IMAGE.finditer(body)]
    for target in targets:
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = md if not path_part else (md.parent / path_part).resolve()
        if path_part and not resolved.exists():
            errors.append(f"{md}: broken link `{target}` (no such file)")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                errors.append(f"{md}: broken anchor `{target}`")
    _ = repo_root
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    repo_root = Path.cwd()
    errors = []
    checked = 0
    for name in argv:
        md = Path(name)
        if not md.exists():
            errors.append(f"{md}: file listed for checking does not exist")
            continue
        checked += 1
        errors.extend(check_file(md, repo_root))
    for line in errors:
        print(line, file=sys.stderr)
    print(f"checked {checked} files: {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
