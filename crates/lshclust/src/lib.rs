//! **lshclust** — the unified front door to the whole workspace.
//!
//! The paper presents LSH-shortlisted assignment as a *general framework*
//! over centroid-based clustering. This crate makes that generality real at
//! the API level: one [`ClusterSpec`] describes any run — `k`, the LSH scheme
//! ([`Lsh`]), initialisation, seed, query mode, threading, and a
//! [`StopPolicy`] — one [`Clusterer`] dispatches it over the input modality
//! (categorical [`Dataset`], numeric [`NumericDataset`], mixed
//! [`MixedDataset`], or a streaming inserter), and one [`ClusterRun`] carries
//! every result (assignments, centroid views, [`RunSummary`], index stats).
//!
//! All spec and summary types serialize to JSON through `serde_json`, so
//! configurations and run reports round-trip for the bench harness and any
//! future service layer.
//!
//! # Train / serve split
//!
//! Every run also owns a [`FittedModel`] — frozen centroids plus an LSH
//! index built *over the centroids* — so a fit is not a terminal report but
//! a servable artifact: [`FittedModel::predict`] assigns unseen batches
//! (multi-threaded, shortlist-accelerated, full-search fallback),
//! [`FittedModel::save`]/[`FittedModel::load`] round-trip the model through
//! versioned envelopes (v1 JSON by default; [`FittedModel::save_v2`] writes
//! the flat binary envelope whose load path copies the index instead of
//! re-hashing it), [`ArtifactStore`] caches fitted models content-addressed
//! by `(spec, dataset)` so identical refits are cache hits, and
//! [`ClusterSpec::warm_start`] resumes a refit from served centroids instead
//! of re-initialising:
//!
//! ```
//! use lshclust::{ClusterSpec, Clusterer, Lsh, NumericDataset};
//!
//! let data = NumericDataset::new(1, vec![0.0, 0.1, 0.2, 9.0, 9.1, 9.2]);
//! let spec = ClusterSpec::new(2).lsh(Lsh::SimHash { bands: 8, rows: 2 });
//! let run = Clusterer::new(spec.clone()).fit(&data).unwrap();
//!
//! // Serve: persist, reload, answer queries; training batch reproduces
//! // the converged run's assignments.
//! let model = lshclust::FittedModel::from_json(&run.model.to_json()).unwrap();
//! assert_eq!(model.predict(&data).unwrap(), run.assignments);
//! assert_eq!(model.predict_point(&[8.9]).unwrap(), run.assignments[3]);
//!
//! // Warm start: the refit resumes from the served centroids.
//! let refit = spec.warm_start(&model).fit(&data).unwrap();
//! assert_eq!(refit.assignments, run.assignments);
//! ```
//!
//! # Categorical (MH-K-Modes)
//!
//! ```
//! use lshclust::{ClusterSpec, Clusterer, DatasetBuilder, Lsh};
//!
//! let mut b = DatasetBuilder::anonymous(3);
//! for row in [["a", "b", "c"], ["a", "b", "d"], ["a", "b", "e"],
//!             ["x", "y", "z"], ["x", "y", "w"], ["x", "y", "v"]] {
//!     b.push_str_row(&row, None).unwrap();
//! }
//! let dataset = b.finish();
//!
//! let spec = ClusterSpec::new(2).lsh(Lsh::MinHash { bands: 8, rows: 2 }).seed(1);
//! let run = Clusterer::new(spec).fit(&dataset).unwrap();
//! assert_eq!(run.assignments[0], run.assignments[1]);
//! assert_ne!(run.assignments[0], run.assignments[3]);
//! ```
//!
//! # Numeric (SimHash-accelerated K-Means)
//!
//! ```
//! use lshclust::{ClusterSpec, Clusterer, Lsh, NumericDataset};
//!
//! let data = NumericDataset::new(1, vec![0.0, 0.1, 0.2, 9.0, 9.1, 9.2]);
//! let spec = ClusterSpec::new(2).lsh(Lsh::SimHash { bands: 8, rows: 2 });
//! let run = Clusterer::new(spec).fit(&data).unwrap();
//! assert_eq!(run.assignments.len(), 6);
//! ```
//!
//! # Exact baselines
//!
//! [`Lsh::None`] runs the full-search baseline of the same family — same
//! seed, same initial centroids — so accelerated and exact runs compare
//! apples to apples:
//!
//! ```
//! use lshclust::{ClusterSpec, Clusterer, DatasetBuilder};
//!
//! let mut b = DatasetBuilder::anonymous(2);
//! for row in [["a", "b"], ["a", "c"], ["x", "y"], ["x", "z"]] {
//!     b.push_str_row(&row, None).unwrap();
//! }
//! let dataset = b.finish();
//! let run = Clusterer::new(ClusterSpec::new(2).seed(7)).fit(&dataset).unwrap();
//! assert!(run.summary.converged);
//! ```
//!
//! # Specs round-trip as JSON
//!
//! ```
//! use lshclust::{ClusterSpec, Lsh};
//!
//! let spec = ClusterSpec::new(100).lsh(Lsh::MinHash { bands: 20, rows: 5 }).seed(42);
//! let json = serde_json::to_string(&spec).unwrap();
//! let back: ClusterSpec = serde_json::from_str(&json).unwrap();
//! assert_eq!(back, spec);
//! ```
//!
//! # Mini-batch fits
//!
//! [`Fit::MiniBatch`] switches from full passes to Sculley-style sampled
//! steps — shortlisted through an LSH index over the *centroids* when the
//! spec carries a scheme — with byte-identical results at any thread count:
//!
//! ```
//! use lshclust::{ClusterSpec, Clusterer, Fit, Lsh, NumericDataset};
//!
//! let data = NumericDataset::new(1, vec![0.0, 0.1, 0.2, 9.0, 9.1, 9.2]);
//! let spec = ClusterSpec::new(2)
//!     .lsh(Lsh::SimHash { bands: 4, rows: 4 })
//!     .fit(Fit::MiniBatch { batch_size: 4, n_steps: 20, refresh_every: 5 });
//! let run = Clusterer::new(spec).fit(&data).unwrap();
//! assert_eq!(run.assignments.len(), 6);
//! ```
//!
//! The per-algorithm configs in `lshclust-core` / `lshclust-kmodes`
//! (`MhKModesConfig`, `KModesConfig`, `MhKMeansConfig`, …) remain available
//! as thin internals that this facade lowers onto, but new code should start
//! here. The workspace-level picture — crate graph, data flow, the
//! fit-discipline matrix, and the model envelope schema — is documented in
//! `docs/ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
mod clusterer;
mod envelope;
mod model;
mod run;
pub mod serve;
pub mod shard;
pub mod sim;
mod spec;

pub use artifact::{ArtifactError, ArtifactKey, ArtifactStore, CachedFit};
pub use clusterer::{Clusterer, Input};
pub use model::{
    FittedModel, ModelError, PredictInput, MODEL_FORMAT, MODEL_VERSION, MODEL_VERSION_V2,
};
pub use run::{Centroids, ClusterRun, RunReport};
pub use serve::proto::ProtoEngine;
pub use serve::socket::{SocketOptions, SocketReport, SocketServer};
pub use serve::{
    HotKeyStats, ModelHandle, ModelServer, PredictTicket, Prediction, ServeError, ServerConfig,
    TicketStats,
};
pub use sim::{DedupReport, Dendrogram, JoinReport, Merge, PairRecord, Sim, SimInput, SimSpec};
pub use spec::{ClusterSpec, Fit, Init, Lsh, Query, SpecError, StreamOptions};

// The one iteration policy shared by every family.
pub use lshclust_core::framework::StopPolicy;

// Streaming front door (configured through `Clusterer::streaming`).
pub use lshclust_core::streaming::{InsertOutcome, StreamingMhKModes};

// Data substrate re-exports so `use lshclust::*` is a complete toolkit.
pub use lshclust_categorical::{ClusterId, Dataset, DatasetBuilder, Schema, ValueId};
pub use lshclust_kmodes::kmeans::NumericDataset;
pub use lshclust_kmodes::kprototypes::{suggest_gamma, MixedDataset};
pub use lshclust_kmodes::stats::{IterationStats, RunSummary};
pub use lshclust_minhash::index::IndexStats;
