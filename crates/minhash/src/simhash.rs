//! SimHash — random-hyperplane LSH for cosine similarity on numeric vectors.
//!
//! The paper's further-work section proposes extending the framework "to work
//! with not only categorical data, but numeric data". This module supplies
//! the LSH family that makes that extension concrete: each hash bit is the
//! sign of a dot product with a random hyperplane, and
//! `P[bit_a = bit_b] = 1 − θ(a,b)/π` (Goemans–Williamson). Bits are packed
//! into `r`-bit band keys so the same [`crate::banding`] machinery and the
//! same `1 − (1 − s^r)^b` analysis apply, with `s = 1 − θ/π`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A family of random hyperplanes for SimHash signatures.
#[derive(Clone, Debug)]
pub struct SimHash {
    /// `n_bits × dim` hyperplane normals, row-major.
    planes: Vec<f64>,
    dim: usize,
    n_bits: usize,
}

impl SimHash {
    /// Creates `n_bits` random hyperplanes in `dim` dimensions.
    ///
    /// Components are sampled uniformly from [-1, 1); for sign-of-dot-product
    /// hashing the component distribution only needs to be symmetric around
    /// zero, and uniform sampling avoids a Gaussian dependency.
    pub fn new(n_bits: usize, dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x73_69_6d_68_61_73_68); // "simhash"
        let planes = (0..n_bits * dim)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        Self {
            planes,
            dim,
            n_bits,
        }
    }

    /// Number of signature bits.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Computes the bit signature of `v` (little-endian bit packing into
    /// `u64` words).
    pub fn signature(&self, v: &[f64]) -> Vec<u64> {
        let mut bits = Vec::new();
        self.signature_into(v, &mut bits);
        bits
    }

    /// [`Self::signature`] into a reused buffer (cleared and resized) — the
    /// allocation-free form the serving hot path uses.
    pub fn signature_into(&self, v: &[f64], out: &mut Vec<u64>) {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let n_words = self.n_bits.div_ceil(64);
        out.clear();
        out.resize(n_words, 0);
        for (i, plane) in self.planes.chunks_exact(self.dim).enumerate() {
            let dot: f64 = plane.iter().zip(v.iter()).map(|(p, x)| p * x).sum();
            if dot >= 0.0 {
                out[i / 64] |= 1u64 << (i % 64);
            }
        }
    }

    /// Fraction of agreeing bits between two signatures — estimates
    /// `1 − θ/π`.
    pub fn agreement(&self, a: &[u64], b: &[u64]) -> f64 {
        assert_eq!(a.len(), b.len());
        let mut agree = 0u32;
        let mut total = 0u32;
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            let bits_here = (self.n_bits - i * 64).min(64) as u32;
            let mask = if bits_here == 64 {
                u64::MAX
            } else {
                (1u64 << bits_here) - 1
            };
            agree += (!(x ^ y) & mask).count_ones();
            total += bits_here;
        }
        f64::from(agree) / f64::from(total)
    }

    /// Splits the bit signature into `bands` keys of `rows` bits each for
    /// LSH banding. Requires `bands × rows ≤ n_bits`.
    pub fn band_keys(&self, signature: &[u64], bands: u32, rows: u32) -> Vec<u64> {
        let mut keys = Vec::new();
        self.band_keys_into(signature, bands, rows, &mut keys);
        keys
    }

    /// [`Self::band_keys`] into a reused buffer (cleared first).
    pub fn band_keys_into(&self, signature: &[u64], bands: u32, rows: u32, keys: &mut Vec<u64>) {
        let needed = bands as usize * rows as usize;
        assert!(
            needed <= self.n_bits,
            "banding needs {needed} bits, have {}",
            self.n_bits
        );
        keys.clear();
        keys.reserve(bands as usize);
        for band in 0..bands {
            let mut key = 0u64;
            for row in 0..rows {
                let bit_idx = (band * rows + row) as usize;
                let bit = (signature[bit_idx / 64] >> (bit_idx % 64)) & 1;
                key = (key << 1) | bit;
            }
            // Fold in the band index for per-band bucket universes.
            keys.push(crate::hashfn::mix64(key ^ (u64::from(band) << 48)));
        }
    }
}

/// Estimated cosine similarity from a bit-agreement fraction:
/// `cos(π · (1 − agreement))`.
pub fn cosine_from_agreement(agreement: f64) -> f64 {
    (std::f64::consts::PI * (1.0 - agreement)).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosine(a: &[f64], b: &[f64]) -> f64 {
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        dot / (na * nb)
    }

    #[test]
    fn identical_vectors_agree_fully() {
        let sh = SimHash::new(128, 8, 1);
        let v: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
        let s = sh.signature(&v);
        assert_eq!(sh.agreement(&s, &s), 1.0);
    }

    #[test]
    fn opposite_vectors_agree_never() {
        let sh = SimHash::new(128, 4, 2);
        let v = vec![1.0, -2.0, 3.0, 0.5];
        let neg: Vec<f64> = v.iter().map(|x| -x).collect();
        let a = sh.signature(&v);
        let b = sh.signature(&neg);
        // Sign flips exactly unless a dot product is exactly 0 (measure zero).
        assert!(sh.agreement(&a, &b) < 0.05);
    }

    #[test]
    fn agreement_tracks_angle() {
        let sh = SimHash::new(2048, 3, 3);
        let a = vec![1.0, 0.0, 0.0];
        let b = vec![1.0, 1.0, 0.0]; // 45° apart
        let sa = sh.signature(&a);
        let sb = sh.signature(&b);
        let est = sh.agreement(&sa, &sb);
        let expected = 1.0 - (std::f64::consts::FRAC_PI_4 / std::f64::consts::PI);
        assert!((est - expected).abs() < 0.05, "est {est} vs {expected}");
        // And the cosine recovered from agreement is near the true cosine.
        let cos_est = cosine_from_agreement(est);
        assert!((cos_est - cosine(&a, &b)).abs() < 0.1);
    }

    #[test]
    fn scaling_invariance() {
        let sh = SimHash::new(256, 4, 4);
        let v = vec![0.5, -1.0, 2.0, 0.1];
        let w: Vec<f64> = v.iter().map(|x| x * 37.0).collect();
        assert_eq!(sh.signature(&v), sh.signature(&w));
    }

    #[test]
    fn determinism_across_instances() {
        let a = SimHash::new(64, 5, 99);
        let b = SimHash::new(64, 5, 99);
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(a.signature(&v), b.signature(&v));
    }

    #[test]
    fn band_keys_shape_and_determinism() {
        let sh = SimHash::new(64, 3, 5);
        let s = sh.signature(&[1.0, 2.0, -1.0]);
        let k = sh.band_keys(&s, 8, 4);
        assert_eq!(k.len(), 8);
        assert_eq!(k, sh.band_keys(&s, 8, 4));
    }

    #[test]
    #[should_panic(expected = "banding needs")]
    fn band_keys_rejects_oversubscription() {
        let sh = SimHash::new(16, 2, 0);
        let s = sh.signature(&[1.0, 1.0]);
        let _ = sh.band_keys(&s, 8, 4); // 32 bits needed, 16 available
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn signature_rejects_wrong_dim() {
        let sh = SimHash::new(8, 3, 0);
        let _ = sh.signature(&[1.0]);
    }

    #[test]
    fn close_vectors_share_band_keys() {
        let sh = SimHash::new(64, 4, 6);
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![1.01, 2.0, 3.0, 4.02];
        let ka = sh.band_keys(&sh.signature(&a), 16, 4);
        let kb = sh.band_keys(&sh.signature(&b), 16, 4);
        let shared = ka.iter().filter(|k| kb.contains(k)).count();
        assert!(
            shared >= 12,
            "only {shared}/16 bands shared for near-identical vectors"
        );
    }
}
