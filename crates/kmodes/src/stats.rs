//! Per-iteration instrumentation shared by the baseline and the accelerated
//! algorithm — exactly the series the paper plots (time per iteration,
//! moves, average number of clusters searched).

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::time::Duration;

/// Measurements of one clustering iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct IterationStats {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Wall-clock time of the iteration (assignment + mode update).
    pub duration: Duration,
    /// Items that changed cluster this iteration (Figs. 2c, 3d, 4b, 9c, 10d).
    pub moves: usize,
    /// Mean number of candidate clusters searched per item (Figs. 2b, 3c,
    /// 4a, 5b, 9b, 10c). Equals `k` for the full-search baseline.
    pub avg_candidates: f64,
    /// Objective `P(W, Q)` after the iteration.
    pub cost: u64,
    /// Items whose re-evaluation was skipped by the cluster-closure active
    /// set (their cached shortlist touched no active cluster, so their
    /// assignment provably could not change). `0` for full-search baselines,
    /// closure-disabled runs, and summaries recorded before the counter
    /// existed.
    pub skipped_items: usize,
    /// Clusters considered *active* going into this iteration's assignment
    /// pass (centroid changed, or an endpoint of a move, in the previous
    /// iteration). Equals `k` on the first iteration and `0` in summaries
    /// recorded before the counter existed.
    pub active_clusters: usize,
}

// Hand-written (not `impl_serde_struct!`) for one reason: the late-added
// closure counters (`skipped_items`, `active_clusters`) must default to 0
// when absent, so every summary JSON written before they existed — saved
// model envelopes included — still parses.
impl Serialize for IterationStats {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("iteration".to_owned(), self.iteration.to_value()),
            ("duration".to_owned(), self.duration.to_value()),
            ("moves".to_owned(), self.moves.to_value()),
            ("avg_candidates".to_owned(), self.avg_candidates.to_value()),
            ("cost".to_owned(), self.cost.to_value()),
            ("skipped_items".to_owned(), self.skipped_items.to_value()),
            (
                "active_clusters".to_owned(),
                self.active_clusters.to_value(),
            ),
        ])
    }
}

impl Deserialize for IterationStats {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| SerdeError::expected("object", "IterationStats"))?;
        let optional = |key: &str| -> Result<usize, SerdeError> {
            match entries.iter().find(|(k, _)| k == key) {
                Some((_, value)) => usize::from_value(value)
                    .map_err(|e| SerdeError(format!("field `{key}` of IterationStats: {}", e.0))),
                None => Ok(0), // pre-closure summary JSON
            }
        };
        Ok(Self {
            iteration: serde::field(entries, "iteration", "IterationStats")?,
            duration: serde::field(entries, "duration", "IterationStats")?,
            moves: serde::field(entries, "moves", "IterationStats")?,
            avg_candidates: serde::field(entries, "avg_candidates", "IterationStats")?,
            cost: serde::field(entries, "cost", "IterationStats")?,
            skipped_items: optional("skipped_items")?,
            active_clusters: optional("active_clusters")?,
        })
    }
}

/// Summary of a finished clustering run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary {
    /// Per-iteration measurements in order.
    pub iterations: Vec<IterationStats>,
    /// Whether the run stopped because no item moved (vs hitting the cap or
    /// a cost increase).
    pub converged: bool,
    /// One-off setup time before the first iteration (for MH-K-Modes this is
    /// the initial assignment pass plus index construction; the paper counts
    /// it in the total, Fig. 7).
    pub setup: Duration,
}

serde::impl_serde_struct!(RunSummary {
    iterations,
    converged,
    setup
});

impl RunSummary {
    /// Number of iterations executed.
    pub fn n_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// Total wall-clock time including setup (the paper's Fig. 7/9d/10b).
    pub fn total_time(&self) -> Duration {
        self.setup + self.iterations.iter().map(|s| s.duration).sum::<Duration>()
    }

    /// Cost of the **last recorded pass**, or `None` before any iteration
    /// ran. When a run stopped because the final pass made the cost
    /// strictly worse, that pass stays in the record but its state was
    /// rolled back — the returned assignments/centroids then carry
    /// [`Self::best_cost`], not this value.
    pub fn final_cost(&self) -> Option<u64> {
        self.iterations.last().map(|s| s.cost)
    }

    /// Minimum cost over the recorded iterations. When the driver runs with
    /// cost-increase rollback armed (`stop_on_cost_increase`, the default),
    /// this is the cost of the state the run returned, and it equals
    /// [`Self::final_cost`] unless the stopping pass was rolled back. With
    /// that criterion disabled the trajectory may oscillate below the final
    /// state, and the returned state's cost is [`Self::final_cost`].
    pub fn best_cost(&self) -> Option<u64> {
        self.iterations.iter().map(|s| s.cost).min()
    }

    /// Mean per-iteration duration.
    pub fn mean_iteration_time(&self) -> Duration {
        if self.iterations.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.iterations.iter().map(|s| s.duration).sum();
        total / self.iterations.len() as u32
    }

    /// Total items skipped by the cluster-closure active set across all
    /// iterations (`0` for runs without closures or pre-closure summaries).
    pub fn total_skipped(&self) -> usize {
        self.iterations.iter().map(|s| s.skipped_items).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iter(i: usize, ms: u64, moves: usize, cost: u64) -> IterationStats {
        IterationStats {
            iteration: i,
            duration: Duration::from_millis(ms),
            moves,
            avg_candidates: 10.0,
            cost,
            skipped_items: 0,
            active_clusters: 0,
        }
    }

    #[test]
    fn totals_include_setup() {
        let run = RunSummary {
            iterations: vec![iter(1, 100, 5, 50), iter(2, 80, 0, 40)],
            converged: true,
            setup: Duration::from_millis(20),
        };
        assert_eq!(run.n_iterations(), 2);
        assert_eq!(run.total_time(), Duration::from_millis(200));
        assert_eq!(run.final_cost(), Some(40));
        assert_eq!(run.mean_iteration_time(), Duration::from_millis(90));
    }

    #[test]
    fn empty_run() {
        let run = RunSummary {
            iterations: vec![],
            converged: false,
            setup: Duration::ZERO,
        };
        assert_eq!(run.total_time(), Duration::ZERO);
        assert_eq!(run.final_cost(), None);
        assert_eq!(run.best_cost(), None);
        assert_eq!(run.mean_iteration_time(), Duration::ZERO);
    }

    #[test]
    fn iteration_stats_round_trip_with_closure_counters() {
        let mut s = iter(3, 12, 7, 99);
        s.skipped_items = 41;
        s.active_clusters = 5;
        let json = serde_json::to_string(&s).unwrap();
        let back: IterationStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn legacy_iteration_stats_json_parses_with_zero_closure_counters() {
        // Summaries (and model envelopes embedding them) serialized before
        // the closure counters existed must keep loading; the missing fields
        // default to 0 instead of erroring.
        let mut s = iter(2, 5, 3, 77);
        s.skipped_items = 9;
        s.active_clusters = 4;
        let json = serde_json::to_string(&s).unwrap();
        let legacy = json.replace(",\"skipped_items\":9,\"active_clusters\":4", "");
        assert!(
            !legacy.contains("skipped_items") && !legacy.contains("active_clusters"),
            "surgery failed: {legacy}"
        );
        let back: IterationStats = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.skipped_items, 0);
        assert_eq!(back.active_clusters, 0);
        assert_eq!(back.iteration, 2);
        assert_eq!(back.cost, 77);

        let summary = RunSummary {
            iterations: vec![back],
            converged: true,
            setup: Duration::ZERO,
        };
        assert_eq!(summary.total_skipped(), 0);
    }

    #[test]
    fn total_skipped_sums_iterations() {
        let mut a = iter(1, 10, 5, 50);
        a.skipped_items = 10;
        let mut b = iter(2, 10, 0, 40);
        b.skipped_items = 32;
        let run = RunSummary {
            iterations: vec![a, b],
            converged: true,
            setup: Duration::ZERO,
        };
        assert_eq!(run.total_skipped(), 42);
    }

    #[test]
    fn best_cost_diverges_from_final_cost_on_a_rolled_back_stop() {
        // Trajectory 50 → 40 → 45: the driver rolled the last pass back, so
        // the returned state carries 40 while the record's last entry is 45.
        let run = RunSummary {
            iterations: vec![iter(1, 10, 5, 50), iter(2, 10, 3, 40), iter(3, 10, 2, 45)],
            converged: true,
            setup: Duration::ZERO,
        };
        assert_eq!(run.final_cost(), Some(45));
        assert_eq!(run.best_cost(), Some(40));
    }
}
