//! Serving-throughput experiment: what micro-batch coalescing buys a
//! [`lshclust::ModelServer`] under many concurrent single-row callers, for
//! every modality — the numbers behind `BENCH_serve.json`.
//!
//! The contrast is one-row-per-call serving (`max_batch = 1`, zero flush
//! latency: every request pays its own queue pop, scratch allocation, and
//! wake-up) versus coalesced serving (requests merge into shortlist batches
//! during a sub-millisecond flush window and share one scratch per worker
//! thread). Callers keep a small **pipeline window** of in-flight tickets,
//! as a real service client would, so the queue actually has something to
//! coalesce.
//!
//! The measurement is facade-faithful: models come out of `Clusterer::fit`
//! and requests go through the exact `submit_*`/`wait` API a user gets.

use crate::env::BenchEnv;
use lshclust::serve::{ModelServer, ServerConfig};
use lshclust::{ClusterSpec, Clusterer, FittedModel, Lsh};
use lshclust_categorical::{Dataset, ValueId};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::kmeans::NumericDataset;
use lshclust_kmodes::kprototypes::MixedDataset;
use std::collections::VecDeque;
use std::path::Path;
use std::time::{Duration, Instant};

/// Settings of a serving-throughput run.
#[derive(Clone, Debug)]
pub struct ServeSettings {
    /// Shrinks the workload for CI smoke runs.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Worker-pool sizes to sweep.
    pub workers: Vec<usize>,
    /// Concurrent caller threads.
    pub callers: usize,
    /// Requests each caller submits.
    pub requests_per_caller: usize,
}

impl Default for ServeSettings {
    fn default() -> Self {
        Self {
            quick: false,
            seed: 42,
            workers: vec![1, 2],
            callers: 4,
            requests_per_caller: 2_000,
        }
    }
}

/// One (modality × workers × coalescing) measurement.
#[derive(Clone, Debug)]
pub struct ServeRun {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Whether micro-batch coalescing was on (`max_batch` 64, 200µs flush)
    /// or off (`max_batch` 1, zero flush — one row per call).
    pub coalesced: bool,
    /// Total requests served.
    pub requests: usize,
    /// Wall-clock seconds for the whole request set.
    pub secs: f64,
    /// Requests per second.
    pub rps: f64,
    /// This run's `rps` over the one-row-per-call run at the same worker
    /// count (1.0 for the single runs themselves).
    pub speedup_vs_single: f64,
}

serde::impl_serde_struct!(ServeRun {
    workers,
    coalesced,
    requests,
    secs,
    rps,
    speedup_vs_single
});

/// All serving runs for one modality.
#[derive(Clone, Debug)]
pub struct FamilyServe {
    /// `"categorical"`, `"numeric"` or `"mixed"`.
    pub family: String,
    /// The LSH scheme behind the served model's centroid index.
    pub lsh: String,
    /// Measurements, coalesced and single per swept worker count.
    pub runs: Vec<ServeRun>,
}

serde::impl_serde_struct!(FamilyServe { family, lsh, runs });

/// The full `BENCH_serve.json` payload.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Experiment marker.
    pub experiment: String,
    /// Host context and sweep axes (`workers` is the swept axis here).
    pub env: BenchEnv,
    /// Items in each training workload.
    pub n_items: usize,
    /// Clusters per model.
    pub n_clusters: usize,
    /// Concurrent caller threads.
    pub callers: usize,
    /// Requests per caller.
    pub requests_per_caller: usize,
    /// In-flight tickets each caller pipelines.
    pub pipeline_window: usize,
    /// Per-modality serving series.
    pub families: Vec<FamilyServe>,
}

serde::impl_serde_struct!(ServeReport {
    experiment,
    env,
    n_items,
    n_clusters,
    callers,
    requests_per_caller,
    pipeline_window,
    families
});

/// In-flight tickets each caller keeps open before waiting on the oldest.
const PIPELINE_WINDOW: usize = 32;

/// One request's payload, cloned per submission from the query set.
#[derive(Clone)]
enum Query {
    Row(Vec<ValueId>),
    Point(Vec<f64>),
    Mixed(Vec<ValueId>, Vec<f64>),
}

/// Drives `callers` threads through `requests_per_caller` submissions each
/// (pipelined), returns wall-clock seconds. Panics on any serving error —
/// the bench sizes its queue so load shedding cannot trigger.
fn measure(
    model: &FittedModel,
    config: ServerConfig,
    callers: usize,
    requests_per_caller: usize,
    queries: &[Query],
) -> f64 {
    let server = ModelServer::start(model.clone(), config);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for caller in 0..callers {
            let server = &server;
            scope.spawn(move || {
                let mut pending = VecDeque::with_capacity(PIPELINE_WINDOW);
                for i in 0..requests_per_caller {
                    let query = &queries[(caller + i * callers) % queries.len()];
                    let ticket = match query.clone() {
                        Query::Row(row) => server.submit_row(row),
                        Query::Point(point) => server.submit_point(point),
                        Query::Mixed(row, point) => server.submit_mixed(row, point),
                    }
                    .expect("bench queue sized above the pipeline load");
                    pending.push_back(ticket);
                    if pending.len() >= PIPELINE_WINDOW {
                        let served = pending.pop_front().expect("non-empty");
                        served.wait().expect("bench requests are well-formed");
                    }
                }
                for ticket in pending {
                    ticket.wait().expect("bench requests are well-formed");
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    server.shutdown();
    secs
}

/// Sweeps coalesced vs one-row-per-call at every worker count.
fn sweep(model: &FittedModel, settings: &ServeSettings, queries: &[Query]) -> Vec<ServeRun> {
    let total = settings.callers * settings.requests_per_caller;
    // Queue bound: the whole pipelined in-flight load plus slack, so the
    // bench measures throughput, not load shedding.
    let depth = (settings.callers * PIPELINE_WINDOW * 2).max(256);
    let mut runs = Vec::new();
    for &workers in &settings.workers {
        let single = ServerConfig::default()
            .workers(workers)
            .max_batch(1)
            .flush_latency(Duration::ZERO)
            .queue_depth(depth);
        let coalesced = ServerConfig::default()
            .workers(workers)
            .max_batch(64)
            .flush_latency(Duration::from_micros(200))
            .queue_depth(depth);
        let single_secs = measure(
            model,
            single,
            settings.callers,
            settings.requests_per_caller,
            queries,
        );
        let coalesced_secs = measure(
            model,
            coalesced,
            settings.callers,
            settings.requests_per_caller,
            queries,
        );
        let single_rps = total as f64 / single_secs.max(1e-9);
        let coalesced_rps = total as f64 / coalesced_secs.max(1e-9);
        runs.push(ServeRun {
            workers,
            coalesced: false,
            requests: total,
            secs: single_secs,
            rps: single_rps,
            speedup_vs_single: 1.0,
        });
        runs.push(ServeRun {
            workers,
            coalesced: true,
            requests: total,
            secs: coalesced_secs,
            rps: coalesced_rps,
            speedup_vs_single: coalesced_rps / single_rps.max(1e-9),
        });
    }
    runs
}

fn numeric_blobs(labels: &[u32], dim: usize) -> NumericDataset {
    let data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..dim).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 40));
                (h % 100) as f64 + ((i * 13 + d) as f64 * 0.37).sin() * 0.1
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

/// Runs the full experiment and returns the report.
pub fn run(settings: &ServeSettings) -> ServeReport {
    let (n_items, n_clusters, n_attrs, dim, requests_per_caller) = if settings.quick {
        (2_000, 40, 12, 8, settings.requests_per_caller.min(600))
    } else {
        (10_000, 100, 24, 12, settings.requests_per_caller)
    };
    let settings = ServeSettings {
        requests_per_caller,
        ..settings.clone()
    };
    let seed = settings.seed;
    let dataset: Dataset = generate(&DatgenConfig::new(n_items, n_clusters, n_attrs).seed(seed));
    let labels: Vec<u32> = dataset.labels().expect("datgen labels").to_vec();
    let numeric = numeric_blobs(&labels, dim);
    let mixed = MixedDataset::new(&dataset, &numeric);
    let max_iter = 10;
    // The query set: a slice of training items (served one row at a time).
    let n_queries = n_items.min(2_000);

    let mut families = Vec::new();

    eprintln!("# serve: categorical (MinHash 20b5r, k={n_clusters}, n={n_items})");
    let run_cat = Clusterer::new(
        ClusterSpec::new(n_clusters)
            .lsh(Lsh::MinHash { bands: 20, rows: 5 })
            .seed(seed)
            .max_iterations(max_iter),
    )
    .fit(&dataset)
    .expect("categorical fit");
    let queries: Vec<Query> = (0..n_queries)
        .map(|i| Query::Row(dataset.row(i).to_vec()))
        .collect();
    families.push(FamilyServe {
        family: "categorical".into(),
        lsh: "MinHash 20b5r".into(),
        runs: sweep(&run_cat.model, &settings, &queries),
    });

    eprintln!("# serve: numeric (SimHash 8b16r)");
    let run_num = Clusterer::new(
        ClusterSpec::new(n_clusters)
            .lsh(Lsh::SimHash { bands: 8, rows: 16 })
            .seed(seed)
            .max_iterations(max_iter),
    )
    .fit(&numeric)
    .expect("numeric fit");
    let queries: Vec<Query> = (0..n_queries)
        .map(|i| Query::Point(numeric.row(i).to_vec()))
        .collect();
    families.push(FamilyServe {
        family: "numeric".into(),
        lsh: "SimHash 8b16r".into(),
        runs: sweep(&run_num.model, &settings, &queries),
    });

    eprintln!("# serve: mixed (MinHash ∪ SimHash)");
    let run_mixed = Clusterer::new(
        ClusterSpec::new(n_clusters)
            .lsh(Lsh::Union {
                bands: 20,
                rows: 5,
                sim_bands: 8,
                sim_rows: 16,
            })
            .seed(seed)
            .max_iterations(max_iter),
    )
    .fit(&mixed)
    .expect("mixed fit");
    let queries: Vec<Query> = (0..n_queries)
        .map(|i| Query::Mixed(dataset.row(i).to_vec(), numeric.row(i).to_vec()))
        .collect();
    families.push(FamilyServe {
        family: "mixed".into(),
        lsh: "Union 20b5r + 8b16r".into(),
        runs: sweep(&run_mixed.model, &settings, &queries),
    });

    ServeReport {
        experiment: "serve-throughput".into(),
        env: BenchEnv::capture(settings.quick, seed).workers(&settings.workers),
        n_items,
        n_clusters,
        callers: settings.callers,
        requests_per_caller: settings.requests_per_caller,
        pipeline_window: PIPELINE_WINDOW,
        families,
    }
}

impl ServeReport {
    /// Writes the report as pretty JSON to `path`.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        crate::env::write_report(self, path)
    }

    /// Renders an aligned text summary (one table per modality).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serving throughput  ({}, {} callers x {} reqs, window {})",
            self.env.banner(),
            self.callers,
            self.requests_per_caller,
            self.pipeline_window
        );
        for family in &self.families {
            let _ = writeln!(out, "\n[{}] {}", family.family, family.lsh);
            let _ = writeln!(
                out,
                "{:>8}  {:>10}  {:>10}  {:>12}  {:>10}",
                "workers", "coalesced", "secs", "req/s", "speedup"
            );
            for r in &family.runs {
                let _ = writeln!(
                    out,
                    "{:>8}  {:>10}  {:>10.3}  {:>12.0}  {:>9.2}x",
                    r.workers,
                    if r.coalesced { "yes" } else { "no" },
                    r.secs,
                    r.rps,
                    r.speedup_vs_single
                );
            }
        }
        out
    }
}
