//! The parallel assignment engine, exercised through the facade for every
//! algorithm family: `ClusterSpec::threads(T)` with `T > 1` must actually
//! parallelize (shared Jacobi engine), produce **byte-identical** output at
//! any thread count > 1, leave the `threads = 1` legacy Gauss–Seidel path
//! untouched, and land on costs comparable to the serial run.

use lshclust::{ClusterSpec, Clusterer, Lsh, NumericDataset, StreamOptions};
use lshclust_categorical::{ClusterId, Dataset};
use lshclust_core::mhkmodes::{MhKModes, MhKModesConfig};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::kprototypes::MixedDataset;
use lshclust_minhash::Banding;
use proptest::prelude::*;

fn categorical_fixture(seed: u64) -> Dataset {
    generate(&DatgenConfig::new(240, 24, 16).seed(seed))
}

fn numeric_blobs(labels: &[u32], dim: usize) -> NumericDataset {
    let data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..dim).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 40));
                (h % 100) as f64 + ((i * 13 + d) as f64 * 0.37).sin() * 0.1
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

fn spec_for(lsh: Lsh, seed: u64, threads: usize) -> ClusterSpec {
    ClusterSpec::new(24)
        .lsh(lsh)
        .seed(seed)
        .threads(threads)
        .max_iterations(30)
}

const MINHASH: Lsh = Lsh::MinHash { bands: 12, rows: 2 };
const SIMHASH: Lsh = Lsh::SimHash { bands: 8, rows: 12 };
const UNION: Lsh = Lsh::Union {
    bands: 12,
    rows: 2,
    sim_bands: 8,
    sim_rows: 12,
};

// ---------------------------------------------------------------------------
// Jacobi determinism: byte-identical output at every thread count > 1.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Categorical family: fits at threads ∈ {2, 4, 8} are byte-identical.
    #[test]
    fn categorical_fit_identical_across_thread_counts(seed in 0u64..64) {
        let dataset = categorical_fixture(seed);
        let reference = Clusterer::new(spec_for(MINHASH, seed, 2)).fit(&dataset).unwrap();
        for threads in [4usize, 8] {
            let other = Clusterer::new(spec_for(MINHASH, seed, threads)).fit(&dataset).unwrap();
            prop_assert_eq!(&reference.assignments, &other.assignments);
            prop_assert_eq!(reference.centroids.modes(), other.centroids.modes());
            prop_assert_eq!(reference.summary.final_cost(), other.summary.final_cost());
        }
    }

    /// Numeric family (SimHash K-Means): byte-identical across thread
    /// counts — including the float mean centroids.
    #[test]
    fn numeric_fit_identical_across_thread_counts(seed in 0u64..64) {
        let dataset = categorical_fixture(seed);
        let labels = dataset.labels().unwrap().to_vec();
        let numeric = numeric_blobs(&labels, 6);
        let reference = Clusterer::new(spec_for(SIMHASH, seed, 2)).fit(&numeric).unwrap();
        for threads in [4usize, 8] {
            let other = Clusterer::new(spec_for(SIMHASH, seed, threads)).fit(&numeric).unwrap();
            prop_assert_eq!(&reference.assignments, &other.assignments);
            // Bit-exact float centroids: the parallel update must not
            // reassociate the member sums.
            prop_assert_eq!(reference.centroids.means(), other.centroids.means());
        }
    }

    /// Mixed family (union provider): byte-identical across thread counts.
    #[test]
    fn mixed_fit_identical_across_thread_counts(seed in 0u64..64) {
        let dataset = categorical_fixture(seed);
        let labels = dataset.labels().unwrap().to_vec();
        let numeric = numeric_blobs(&labels, 6);
        let mixed = MixedDataset::new(&dataset, &numeric);
        let reference = Clusterer::new(spec_for(UNION, seed, 2)).fit(&mixed).unwrap();
        for threads in [4usize, 8] {
            let other = Clusterer::new(spec_for(UNION, seed, threads)).fit(&mixed).unwrap();
            prop_assert_eq!(&reference.assignments, &other.assignments);
            prop_assert_eq!(
                reference.centroids.prototypes().map(|p| (p.modes.clone(), p.means.clone())),
                other.centroids.prototypes().map(|p| (p.modes.clone(), p.means.clone()))
            );
        }
    }

    /// Streaming batch refinement: the Jacobi refine pass moves the same
    /// items to the same clusters at any thread count.
    #[test]
    fn streaming_refine_identical_across_thread_counts(seed in 0u64..64) {
        let dataset = categorical_fixture(seed);
        let run_refined = |threads: usize| {
            let spec = ClusterSpec::new(1)
                .lsh(Lsh::MinHash { bands: 16, rows: 2 })
                .seed(seed)
                .threads(threads)
                .stream(StreamOptions { distance_threshold: None, max_clusters: Some(40) });
            let mut stream = Clusterer::new(spec)
                .streaming(dataset.schema().clone())
                .unwrap();
            for i in 0..dataset.n_items() {
                stream.insert(dataset.row(i));
            }
            let mut move_counts = Vec::new();
            for _ in 0..4 {
                let moves = stream.refine_pass();
                move_counts.push(moves);
                if moves == 0 {
                    break;
                }
            }
            (stream.assignments().to_vec(), move_counts)
        };
        let reference = run_refined(2);
        for threads in [4usize, 8] {
            prop_assert_eq!(&reference, &run_refined(threads));
        }
    }

    /// Parallel-vs-serial parity: Jacobi (threads = 2) and Gauss–Seidel
    /// (threads = 1) may differ by an iteration of convergence, but the
    /// final costs must be close (within 10% on this workload) and the
    /// serial path must remain exactly the legacy single-threaded result.
    #[test]
    fn parallel_final_cost_is_close_to_serial(seed in 0u64..64) {
        let dataset = categorical_fixture(seed);
        let serial = Clusterer::new(spec_for(MINHASH, seed, 1)).fit(&dataset).unwrap();
        let parallel = Clusterer::new(spec_for(MINHASH, seed, 2)).fit(&dataset).unwrap();
        let (sc, pc) = (
            serial.summary.final_cost().unwrap() as f64,
            parallel.summary.final_cost().unwrap() as f64,
        );
        prop_assert!(
            (sc - pc).abs() <= 0.10 * sc.max(1.0),
            "serial cost {sc} vs parallel cost {pc}"
        );
    }
}

// ---------------------------------------------------------------------------
// The threads = 1 path is the untouched legacy serial loop.
// ---------------------------------------------------------------------------

/// Pinned: a facade run at `threads = 1` is byte-identical to the legacy
/// serial `MhKModes` estimator (the Gauss–Seidel pass, not the Jacobi one).
#[test]
fn serial_path_is_byte_identical_to_legacy() {
    let dataset = categorical_fixture(77);
    let facade = Clusterer::new(spec_for(MINHASH, 77, 1))
        .fit(&dataset)
        .unwrap();
    let legacy = MhKModes::new(
        MhKModesConfig::new(24, Banding::new(12, 2))
            .seed(77)
            .max_iterations(30),
    )
    .fit(&dataset);
    assert_eq!(facade.assignments, legacy.assignments);
    assert_eq!(facade.summary.final_cost(), legacy.summary.final_cost());
    assert_eq!(facade.summary.n_iterations(), legacy.summary.n_iterations());
}

// ---------------------------------------------------------------------------
// Spec-boundary thread normalisation (threads = 0 is "serial", not a panic).
// ---------------------------------------------------------------------------

#[test]
fn spec_builder_clamps_zero_threads_to_serial() {
    assert_eq!(ClusterSpec::new(3).threads(0).threads, 1);
    assert_eq!(ClusterSpec::new(3).threads(1).threads, 1);
    assert_eq!(ClusterSpec::new(3).threads(7).threads, 7);
}

#[test]
fn mh_config_builder_clamps_zero_threads_to_serial() {
    let config = MhKModesConfig::new(2, Banding::new(4, 1)).threads(0);
    assert_eq!(config.threads, 1);
}

#[test]
fn zero_threads_via_struct_literal_still_fits_serially() {
    // Bypassing the builder (struct literal, or a JSON spec with
    // `"threads": 0`) must not trip any assert downstream: the dispatch
    // layer normalises to the serial path.
    let dataset = categorical_fixture(5);
    let config = MhKModesConfig {
        threads: 0,
        ..MhKModesConfig::new(24, Banding::new(12, 2)).seed(5)
    };
    let zero = MhKModes::new(config).fit(&dataset);
    let one = MhKModes::new(
        MhKModesConfig::new(24, Banding::new(12, 2))
            .seed(5)
            .threads(1),
    )
    .fit(&dataset);
    assert_eq!(zero.assignments, one.assignments);
}

#[test]
fn zero_threads_in_a_json_spec_fits_and_normalises() {
    let dataset = categorical_fixture(9);
    let json = serde_json::to_string(&spec_for(MINHASH, 9, 1)).unwrap();
    let zeroed = json.replace("\"threads\":1", "\"threads\":0");
    assert_ne!(json, zeroed, "replacement must have applied");
    let spec: ClusterSpec = serde_json::from_str(&zeroed).unwrap();
    assert_eq!(spec.threads, 0, "deserialization preserves the raw value");
    let run = Clusterer::new(spec).fit(&dataset).unwrap();
    let reference = Clusterer::new(spec_for(MINHASH, 9, 1))
        .fit(&dataset)
        .unwrap();
    assert_eq!(run.assignments, reference.assignments);
}

// ---------------------------------------------------------------------------
// The engine really is shared: families converge under it.
// ---------------------------------------------------------------------------

/// Every family fits under `threads = 4` and converges to a sane partition
/// (the shared-engine smoke check of the acceptance criteria).
#[test]
fn every_family_parallelizes_through_the_shared_engine() {
    let dataset = categorical_fixture(3);
    let labels = dataset.labels().unwrap().to_vec();
    let numeric = numeric_blobs(&labels, 6);
    let mixed = MixedDataset::new(&dataset, &numeric);

    let categorical = Clusterer::new(spec_for(MINHASH, 3, 4))
        .fit(&dataset)
        .unwrap();
    assert_eq!(categorical.assignments.len(), dataset.n_items());
    assert!(categorical.summary.n_iterations() >= 1);

    let numeric_run = Clusterer::new(spec_for(SIMHASH, 3, 4))
        .fit(&numeric)
        .unwrap();
    assert_eq!(numeric_run.assignments.len(), numeric.n_items());

    let mixed_run = Clusterer::new(spec_for(UNION, 3, 4)).fit(&mixed).unwrap();
    assert_eq!(mixed_run.assignments.len(), mixed.n_items());

    // All assignments in range.
    for run in [&categorical, &numeric_run, &mixed_run] {
        assert!(run.assignments.iter().all(|c| c.idx() < 24));
    }

    // Streaming: parallel refinement reaches a fixpoint.
    let spec = ClusterSpec::new(1)
        .lsh(Lsh::MinHash { bands: 16, rows: 2 })
        .seed(3)
        .threads(4);
    let mut stream = Clusterer::new(spec)
        .streaming(dataset.schema().clone())
        .unwrap();
    for i in 0..dataset.n_items() {
        stream.insert(dataset.row(i));
    }
    let mut last = usize::MAX;
    for _ in 0..10 {
        last = stream.refine_pass();
        if last == 0 {
            break;
        }
    }
    assert_eq!(last, 0, "parallel refinement did not converge");
    let total: u32 = (0..stream.n_clusters())
        .map(|c| stream.cluster_size(ClusterId(c as u32)))
        .sum();
    assert_eq!(total as usize, dataset.n_items());
}
