//! Property-based tests (proptest) on cross-crate invariants.

use lshclust_categorical::dissimilarity::{jaccard, matching, matching_bounded};
use lshclust_categorical::{ClusterId, Dataset, Schema, ValueId};
use lshclust_kmodes::modes::{group_by_cluster, Modes};
use lshclust_metrics::{adjusted_rand_index, normalized_mutual_information, purity};
use lshclust_minhash::probability::{candidate_probability, cluster_hit_probability};
use lshclust_minhash::signature::{estimate_jaccard, SignatureGenerator};
use lshclust_minhash::{Banding, MixHashFamily};
use proptest::prelude::*;

fn row_strategy(m: usize, domain: u32) -> impl Strategy<Value = Vec<ValueId>> {
    prop::collection::vec((0..domain).prop_map(ValueId), m)
}

proptest! {
    /// The matching dissimilarity is a metric on fixed-arity rows.
    #[test]
    fn matching_is_a_metric(
        x in row_strategy(12, 6),
        y in row_strategy(12, 6),
        z in row_strategy(12, 6),
    ) {
        prop_assert_eq!(matching(&x, &x), 0);
        prop_assert_eq!(matching(&x, &y), matching(&y, &x));
        prop_assert!(matching(&x, &z) <= matching(&x, &y) + matching(&y, &z));
        prop_assert!(matching(&x, &y) <= 12);
    }

    /// The bounded kernel agrees with the exact kernel wherever it answers.
    #[test]
    fn bounded_matching_is_consistent(
        x in row_strategy(40, 4),
        y in row_strategy(40, 4),
        bound in 0u32..45,
    ) {
        let exact = matching(&x, &y);
        match matching_bounded(&x, &y, bound) {
            Some(d) => {
                prop_assert_eq!(d, exact);
                prop_assert!(d < bound);
            }
            None => prop_assert!(exact >= bound),
        }
    }

    /// Jaccard similarity is symmetric and within [0, 1].
    #[test]
    fn jaccard_is_symmetric_and_bounded(
        x in row_strategy(10, 5),
        y in row_strategy(10, 5),
    ) {
        let schema = Schema::anonymous(10);
        let a = jaccard(&schema, &x, &y);
        let b = jaccard(&schema, &y, &x);
        prop_assert!((a - b).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!((jaccard(&schema, &x, &x) - 1.0).abs() < 1e-12);
    }

    /// MinHash signature agreement estimates Jaccard within sampling error.
    #[test]
    fn minhash_estimates_jaccard(
        seed in 0u64..1000,
        shared in 1usize..30,
        only_x in 0usize..30,
        only_y in 0usize..30,
    ) {
        let x: Vec<u64> = (0..(shared + only_x) as u64).collect();
        let y: Vec<u64> = (0..shared as u64)
            .chain(10_000..(10_000 + only_y as u64))
            .collect();
        let truth = shared as f64 / (shared + only_x + only_y) as f64;
        let generator = SignatureGenerator::new(MixHashFamily::new(256, seed));
        let est = estimate_jaccard(
            &generator.signature(x.iter().copied()),
            &generator.signature(y.iter().copied()),
        );
        // 256 hashes → σ ≈ √(s(1−s)/256) ≤ 0.032; allow 5σ.
        prop_assert!((est - truth).abs() < 0.16, "est {} truth {}", est, truth);
    }

    /// The S-curve is a probability, monotone in s and in b.
    #[test]
    fn candidate_probability_is_monotone(
        s1 in 0.0f64..1.0,
        s2 in 0.0f64..1.0,
        rows in 1u32..8,
        bands in 1u32..64,
    ) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let p_lo = candidate_probability(lo, rows, bands);
        let p_hi = candidate_probability(hi, rows, bands);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!(p_lo <= p_hi + 1e-12);
        // More bands never hurt.
        prop_assert!(p_hi <= candidate_probability(hi, rows, bands + 1) + 1e-12);
        // Cluster-hit dominates pairwise.
        prop_assert!(cluster_hit_probability(hi, rows, bands, 3) >= p_hi - 1e-12);
    }

    /// Mode recomputation never increases the clustering cost.
    #[test]
    fn mode_update_is_non_increasing(
        values in prop::collection::vec((0u32..4).prop_map(ValueId), 60),
        assignment_bits in prop::collection::vec(0u32..3, 20),
    ) {
        let dataset = Dataset::from_parts(Schema::anonymous(3), values, None);
        let assignments: Vec<ClusterId> =
            assignment_bits.iter().map(|&b| ClusterId(b)).collect();
        let mut modes = Modes::from_items(&dataset, &[0, 1, 2]);
        let before = lshclust_kmodes::cost::total_cost(&dataset, &modes, &assignments);
        modes.recompute(&dataset, &assignments);
        let after = lshclust_kmodes::cost::total_cost(&dataset, &modes, &assignments);
        prop_assert!(after <= before);
    }

    /// Grouping by cluster partitions the items exactly.
    #[test]
    fn grouping_is_a_partition(assignment_bits in prop::collection::vec(0u32..7, 1..100)) {
        let assignments: Vec<ClusterId> =
            assignment_bits.iter().map(|&b| ClusterId(b)).collect();
        let groups = group_by_cluster(&assignments, 7);
        let mut seen = vec![false; assignments.len()];
        for c in 0..7 {
            for &item in groups.members(c) {
                prop_assert_eq!(assignments[item as usize], ClusterId(c as u32));
                prop_assert!(!seen[item as usize], "item listed twice");
                seen[item as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Metrics agree on their extremes: a perfect clustering scores 1 across
    /// purity, NMI and ARI (for non-degenerate label sets).
    #[test]
    fn metrics_agree_on_perfect_clusterings(labels in prop::collection::vec(0u32..4, 8..50)) {
        prop_assume!(labels.iter().collect::<std::collections::HashSet<_>>().len() >= 2);
        let p = purity(&labels, &labels);
        let nmi = normalized_mutual_information(&labels, &labels);
        let ari = adjusted_rand_index(&labels, &labels);
        prop_assert!((p - 1.0).abs() < 1e-12);
        prop_assert!((nmi - 1.0).abs() < 1e-9);
        prop_assert!((ari - 1.0).abs() < 1e-9);
    }

    /// Band keys are a pure function of the banded signature rows: equal
    /// bands collide, and (with overwhelming probability) unequal bands
    /// do not.
    #[test]
    fn band_keys_partition_signatures(
        sig_a in prop::collection::vec(0u64..1000, 12),
        sig_b in prop::collection::vec(0u64..1000, 12),
    ) {
        let banding = Banding::new(4, 3);
        let ka = banding.band_keys(&sig_a);
        let kb = banding.band_keys(&sig_b);
        for band in 0..4usize {
            let rows_equal = sig_a[band * 3..(band + 1) * 3] == sig_b[band * 3..(band + 1) * 3];
            if rows_equal {
                prop_assert_eq!(ka[band], kb[band]);
            } else {
                // 64-bit keys: collision probability ~2^-64.
                prop_assert_ne!(ka[band], kb[band]);
            }
        }
    }
}
