//! **lshclust-core** — the primary contribution of McConville et al. (ICDE
//! 2016): a general framework that accelerates centroid-based clustering by
//! using a locality-sensitive-hashing index over the *items* to shortlist
//! candidate *clusters* during the assignment step.
//!
//! # Layers
//!
//! * [`framework`] — the algorithm-agnostic core: a [`CentroidModel`] (any
//!   clusterer that assigns an item to its most similar centroid) plus a
//!   [`ShortlistProvider`] (any index that can turn an item into a small set
//!   of candidate clusters) are driven to convergence by [`framework::fit`].
//! * [`mhkmodes`] — the paper's instantiation **MH-K-Modes**: K-Modes +
//!   MinHash banding (Algorithm 2), including the initial full assignment
//!   pass, index construction, per-iteration instrumentation and the O(1)
//!   cluster-reference maintenance.
//! * [`mhkmeans`] / [`mhkprototypes`] / [`streaming`] — the further-work
//!   extensions: K-Means + SimHash for numeric data, K-Prototypes with a
//!   MinHash∪SimHash union index for mixed data, and a one-pass streaming
//!   clusterer over a growing index.
//! * [`error_bound`] — empirical verification of the §III-C error bound:
//!   measures how often the shortlist actually misses the true best cluster.
//! * [`parallel`] — an opt-in crossbeam-based parallel assignment pass (the
//!   paper's implementation is single-threaded; this shows the framework's
//!   gains are orthogonal to thread-level parallelism).
//! * [`minibatch`] — Sculley-style mini-batch fitting composed with the
//!   shortlist: sampled batches are assigned through a periodically
//!   refreshed LSH index over the *centroids*, for all three modalities
//!   (the facade's `Fit::MiniBatch` discipline).
//! * [`sim`] — the similarity-workloads candidate core: bucket-collision
//!   candidate pairs over the same flat band-key buffers, exact-verified by
//!   the modality's distance kernel (dedup / self-join in `lshclust::sim`).
//!
//! # Quickstart
//!
//! **Start with the `lshclust` facade crate** — one `ClusterSpec`, one
//! `Clusterer`, one `ClusterRun` across all four algorithm families:
//!
//! ```text
//! use lshclust::{ClusterSpec, Clusterer, Lsh};
//!
//! let spec = ClusterSpec::new(2).lsh(Lsh::MinHash { bands: 8, rows: 2 }).seed(1);
//! let run = Clusterer::new(spec).fit(&dataset)?;
//! ```
//!
//! The per-algorithm configs below (`MhKModesConfig`, `MhKMeansConfig`,
//! `MhKPrototypesConfig`) are the thin internals the facade lowers onto.
//! They remain public for controlled experiments that need capabilities the
//! facade deliberately does not expose (e.g. `fit_from` with explicitly
//! shared initial modes, as the bench harness uses), but new code should go
//! through the facade; expect these types to narrow over time.
//!
//! ```
//! use lshclust_categorical::DatasetBuilder;
//! use lshclust_core::mhkmodes::{MhKModes, MhKModesConfig};
//! use lshclust_minhash::Banding;
//!
//! // Six items, two obvious groups — driven through the internal layer.
//! let mut b = DatasetBuilder::anonymous(3);
//! for row in [["a", "b", "c"], ["a", "b", "d"], ["a", "b", "e"],
//!             ["x", "y", "z"], ["x", "y", "w"], ["x", "y", "v"]] {
//!     b.push_str_row(&row, None).unwrap();
//! }
//! let dataset = b.finish();
//!
//! let config = MhKModesConfig::new(2, Banding::new(8, 2)).seed(1);
//! let result = MhKModes::new(config).fit(&dataset);
//! assert_eq!(result.assignments[0], result.assignments[1]);
//! assert_ne!(result.assignments[0], result.assignments[3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canopy;
pub mod error_bound;
pub mod framework;
pub mod mhkmeans;
pub mod mhkmodes;
pub mod mhkprototypes;
pub mod minibatch;
pub mod parallel;
pub mod shard;
pub mod sim;
pub mod streaming;

pub use framework::{
    assign_full, assign_once, AcceleratedRun, AssignOutcome, CentroidModel, ShortlistProvider,
    StopPolicy,
};
pub use mhkmodes::{MhKModes, MhKModesConfig, MhKModesResult};
