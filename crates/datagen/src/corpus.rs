//! Synthetic Yahoo!-Answers-like corpus.
//!
//! The paper's real-data experiments (§IV-B) use the Yahoo! Answers Webscope
//! L6 dataset — questions labelled with one of 2 916 fine-grained,
//! user-chosen topics. That corpus is proprietary, so this module generates a
//! statistically analogous one (the substitution is recorded in DESIGN.md §2):
//!
//! * each topic owns a small keyword vocabulary (`t{topic}k{rank}`) sampled
//!   with Zipfian frequencies — the "zoologist/zoo" words TF-IDF should keep;
//! * all topics share a large Zipfian background vocabulary (`w{rank}`) — the
//!   stop-word mass TF-IDF should discard;
//! * a configurable fraction of questions is *mislabelled* (text drawn from
//!   the true topic, label pointing elsewhere), modelling the user-editable
//!   topic assignments the paper blames for its low absolute purity.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One synthetic question.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Question {
    /// Space-separated tokens (already lowercased).
    pub text: String,
    /// The *recorded* topic label (possibly a mislabel).
    pub topic: u32,
    /// The topic whose vocabulary generated the text.
    pub true_topic: u32,
}

/// Corpus generation parameters.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Number of topics (paper: 2 916).
    pub n_topics: usize,
    /// Questions generated per topic (paper: up to 100).
    pub questions_per_topic: usize,
    /// Keyword vocabulary size per topic.
    pub keywords_per_topic: usize,
    /// Shared background vocabulary size.
    pub background_vocab: usize,
    /// Question length range (tokens), inclusive.
    pub words_per_question: (usize, usize),
    /// Probability that a token is drawn from the topic's keywords rather
    /// than the background vocabulary.
    pub keyword_frac: f64,
    /// Probability that a question's recorded topic is wrong.
    pub mislabel_rate: f64,
    /// Zipf exponent for both vocabularies.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CorpusConfig {
    /// Defaults scaled for laptop runs; experiments set topic counts.
    pub fn new(n_topics: usize, questions_per_topic: usize) -> Self {
        Self {
            n_topics,
            questions_per_topic,
            keywords_per_topic: 12,
            background_vocab: 2_000,
            words_per_question: (8, 25),
            keyword_frac: 0.35,
            mislabel_rate: 0.05,
            zipf_exponent: 1.05,
            seed: 0,
        }
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the mislabel rate.
    pub fn mislabel_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.mislabel_rate = rate;
        self
    }
}

/// A generated corpus.
#[derive(Clone, Debug)]
pub struct SyntheticCorpus {
    /// The questions, grouped by true topic in generation order.
    pub questions: Vec<Question>,
    /// Number of topics.
    pub n_topics: usize,
}

impl SyntheticCorpus {
    /// Generates a corpus from `config`.
    pub fn generate(config: &CorpusConfig) -> Self {
        assert!(config.n_topics > 0 && config.questions_per_topic > 0);
        assert!(config.keywords_per_topic > 0 && config.background_vocab > 0);
        let (lo, hi) = config.words_per_question;
        assert!(0 < lo && lo <= hi, "bad words_per_question range");
        assert!((0.0..=1.0).contains(&config.keyword_frac));

        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0063_6f72_7075_7300); // "corpus"
        let keyword_zipf = Zipf::new(config.keywords_per_topic, config.zipf_exponent);
        let background_zipf = Zipf::new(config.background_vocab, config.zipf_exponent);

        let mut questions = Vec::with_capacity(config.n_topics * config.questions_per_topic);
        let mut text = String::new();
        for topic in 0..config.n_topics as u32 {
            for _ in 0..config.questions_per_topic {
                let len = rng.random_range(lo..=hi);
                text.clear();
                for t in 0..len {
                    if t > 0 {
                        text.push(' ');
                    }
                    if rng.random_range(0.0..1.0) < config.keyword_frac {
                        let rank = keyword_zipf.sample(&mut rng);
                        text.push_str(&format!("t{topic}k{rank}"));
                    } else {
                        let rank = background_zipf.sample(&mut rng);
                        text.push_str(&format!("w{rank}"));
                    }
                }
                let recorded =
                    if config.n_topics > 1 && rng.random_range(0.0..1.0) < config.mislabel_rate {
                        // Uniform wrong topic.
                        let mut other = rng.random_range(0..config.n_topics as u32 - 1);
                        if other >= topic {
                            other += 1;
                        }
                        other
                    } else {
                        topic
                    };
                questions.push(Question {
                    text: text.clone(),
                    topic: recorded,
                    true_topic: topic,
                });
            }
        }
        Self {
            questions,
            n_topics: config.n_topics,
        }
    }

    /// Total question count.
    pub fn len(&self) -> usize {
        self.questions.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.questions.is_empty()
    }

    /// Iterates `(text, recorded_topic)` pairs — the exact input shape of the
    /// TF-IDF pipeline.
    pub fn labelled_texts(&self) -> impl Iterator<Item = (&str, u32)> {
        self.questions.iter().map(|q| (q.text.as_str(), q.topic))
    }

    /// Fraction of questions whose recorded topic is wrong.
    pub fn observed_mislabel_rate(&self) -> f64 {
        if self.questions.is_empty() {
            return 0.0;
        }
        let wrong = self
            .questions
            .iter()
            .filter(|q| q.topic != q.true_topic)
            .count();
        wrong as f64 / self.questions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticCorpus {
        SyntheticCorpus::generate(&CorpusConfig::new(10, 20).seed(1))
    }

    #[test]
    fn corpus_shape() {
        let c = small();
        assert_eq!(c.len(), 200);
        assert_eq!(c.n_topics, 10);
        assert!(!c.is_empty());
    }

    #[test]
    fn question_lengths_in_range() {
        let c = small();
        for q in &c.questions {
            let n = q.text.split(' ').count();
            assert!((8..=25).contains(&n), "length {n}");
        }
    }

    #[test]
    fn topics_in_range() {
        let c = small();
        for q in &c.questions {
            assert!(q.topic < 10);
            assert!(q.true_topic < 10);
        }
    }

    #[test]
    fn keywords_belong_to_true_topic() {
        let c = small();
        for q in &c.questions {
            for token in q.text.split(' ') {
                if let Some(rest) = token.strip_prefix('t') {
                    // Keyword tokens look like t{topic}k{rank}.
                    if let Some((topic_str, _)) = rest.split_once('k') {
                        assert_eq!(
                            topic_str.parse::<u32>().unwrap(),
                            q.true_topic,
                            "keyword {token} leaked across topics"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn questions_contain_some_keywords() {
        let c = small();
        let with_kw = c
            .questions
            .iter()
            .filter(|q| q.text.split(' ').any(|t| t.starts_with('t')))
            .count();
        // keyword_frac 0.35 over ≥8 tokens: nearly every question has one.
        assert!(
            with_kw > c.len() * 9 / 10,
            "only {with_kw}/{} have keywords",
            c.len()
        );
    }

    #[test]
    fn mislabel_rate_close_to_config() {
        let c = SyntheticCorpus::generate(&CorpusConfig::new(20, 100).mislabel_rate(0.2).seed(3));
        let observed = c.observed_mislabel_rate();
        assert!((observed - 0.2).abs() < 0.05, "observed {observed}");
        // Mislabelled questions keep their true topic's text.
        for q in &c.questions {
            if q.topic != q.true_topic {
                assert!(q.text.split(' ').all(|t| {
                    !t.starts_with('t')
                        || t.strip_prefix('t')
                            .and_then(|r| r.split_once('k'))
                            .map(|(tp, _)| tp.parse::<u32>().unwrap() == q.true_topic)
                            .unwrap_or(true)
                }));
            }
        }
    }

    #[test]
    fn zero_mislabel_rate_is_exact() {
        let c = SyntheticCorpus::generate(&CorpusConfig::new(5, 30).mislabel_rate(0.0).seed(2));
        assert_eq!(c.observed_mislabel_rate(), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticCorpus::generate(&CorpusConfig::new(4, 10).seed(9));
        let b = SyntheticCorpus::generate(&CorpusConfig::new(4, 10).seed(9));
        assert_eq!(a.questions, b.questions);
    }

    #[test]
    fn labelled_texts_align() {
        let c = small();
        let pairs: Vec<_> = c.labelled_texts().collect();
        assert_eq!(pairs.len(), c.len());
        assert_eq!(pairs[0].0, c.questions[0].text);
        assert_eq!(pairs[0].1, c.questions[0].topic);
    }
}
