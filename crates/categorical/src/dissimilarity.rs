//! Dissimilarity and similarity measures between categorical items.
//!
//! * [`matching`] is the K-Modes simple matching dissimilarity of Eq. 1–2:
//!   the count of attributes on which two items disagree.
//! * [`jaccard`] is Eq. 6 over the items' *present element sets*
//!   (attribute–value pairs), the quantity MinHash approximates.
//! * [`matching_bounded`] is an early-exit variant for the assignment hot
//!   loop: once the running mismatch count reaches the best distance found so
//!   far the comparison can stop.

use crate::dictionary::Schema;
use crate::types::{AttrId, ValueId};

/// Simple matching dissimilarity `d(X, Y) = Σ_j δ(x_j, y_j)` (paper Eq. 1–2).
///
/// Both slices must have the same length (one value per attribute).
#[inline]
pub fn matching(x: &[ValueId], y: &[ValueId]) -> u32 {
    debug_assert_eq!(x.len(), y.len());
    let mut d = 0u32;
    // Paired iteration lets LLVM drop the bounds checks and vectorise.
    for (&a, &b) in x.iter().zip(y.iter()) {
        d += u32::from(a != b);
    }
    d
}

/// [`matching`] with an early exit once the distance reaches `bound`.
///
/// Returns `None` if `d(x, y) >= bound`, otherwise `Some(d)`. In the
/// assignment step the bound is the best distance seen so far, which skips
/// most of the per-attribute work for clearly-worse centroids — an
/// optimisation the paper's framework is *orthogonal* to (it reduces how many
/// centroids are compared, this reduces the cost of one comparison).
#[inline]
pub fn matching_bounded(x: &[ValueId], y: &[ValueId], bound: u32) -> Option<u32> {
    debug_assert_eq!(x.len(), y.len());
    let mut d = 0u32;
    // Chunked scan: check the bound every 16 attributes instead of every one,
    // keeping the inner loop branch-light.
    const CHUNK: usize = 16;
    let mut xi = x.chunks_exact(CHUNK);
    let mut yi = y.chunks_exact(CHUNK);
    for (cx, cy) in (&mut xi).zip(&mut yi) {
        for (&a, &b) in cx.iter().zip(cy.iter()) {
            d += u32::from(a != b);
        }
        if d >= bound {
            return None;
        }
    }
    for (&a, &b) in xi.remainder().iter().zip(yi.remainder().iter()) {
        d += u32::from(a != b);
    }
    if d >= bound {
        None
    } else {
        Some(d)
    }
}

/// Jaccard similarity `|X ∩ Y| / |X ∪ Y|` (paper Eq. 6) over present
/// attribute–value pairs.
///
/// Because both items are aligned on the same attributes, an element
/// `(attr, value)` is shared iff both items hold the identical *present*
/// value in that column; absent cells contribute to neither set.
pub fn jaccard(schema: &Schema, x: &[ValueId], y: &[ValueId]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut intersection = 0usize;
    let mut union = 0usize;
    for (a, (&vx, &vy)) in x.iter().zip(y.iter()).enumerate() {
        let attr = AttrId(a as u32);
        let px = !schema.is_absent(attr, vx);
        let py = !schema.is_absent(attr, vy);
        match (px, py) {
            (true, true) => {
                union += if vx == vy { 1 } else { 2 };
                intersection += usize::from(vx == vy);
            }
            (true, false) | (false, true) => union += 1,
            (false, false) => {}
        }
    }
    if union == 0 {
        // Two fully-absent items: conventionally identical.
        1.0
    } else {
        intersection as f64 / union as f64
    }
}

/// The paper's §III-C lower bound on the Jaccard similarity of an item and
/// *some* member of its best cluster: if they share at least one of `m`
/// attribute values, `s ≥ 1 / (2m − 1)`.
#[inline]
pub fn jaccard_lower_bound(n_attrs: usize) -> f64 {
    assert!(n_attrs > 0);
    1.0 / (2.0 * n_attrs as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Schema;
    use crate::types::NOT_PRESENT;

    fn v(xs: &[u32]) -> Vec<ValueId> {
        xs.iter().map(|&x| ValueId(x)).collect()
    }

    #[test]
    fn matching_counts_mismatches() {
        assert_eq!(matching(&v(&[1, 2, 3]), &v(&[1, 9, 3])), 1);
        assert_eq!(matching(&v(&[1, 2, 3]), &v(&[1, 2, 3])), 0);
        assert_eq!(matching(&v(&[1, 2, 3]), &v(&[4, 5, 6])), 3);
    }

    #[test]
    fn matching_empty_rows() {
        assert_eq!(matching(&[], &[]), 0);
    }

    #[test]
    fn bounded_agrees_with_exact_below_bound() {
        let x = v(&(0..100).collect::<Vec<_>>());
        let mut y = x.clone();
        for i in (0..100).step_by(7) {
            y[i] = ValueId(1000 + i as u32);
        }
        let exact = matching(&x, &y);
        assert_eq!(matching_bounded(&x, &y, exact + 1), Some(exact));
        assert_eq!(matching_bounded(&x, &y, exact), None);
        assert_eq!(matching_bounded(&x, &y, 1), None);
    }

    #[test]
    fn bounded_zero_bound_always_none() {
        let x = v(&[1, 2]);
        assert_eq!(matching_bounded(&x, &x, 0), None);
    }

    #[test]
    fn bounded_handles_short_rows() {
        // Shorter than one chunk: remainder path only.
        let x = v(&[1, 2, 3]);
        let y = v(&[1, 9, 3]);
        assert_eq!(matching_bounded(&x, &y, 10), Some(1));
    }

    #[test]
    fn jaccard_identical_items() {
        let s = Schema::anonymous(3);
        let x = v(&[1, 2, 3]);
        assert!((jaccard(&s, &x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_disjoint_items() {
        let s = Schema::anonymous(2);
        assert_eq!(jaccard(&s, &v(&[1, 2]), &v(&[3, 4])), 0.0);
    }

    #[test]
    fn jaccard_half_overlap() {
        let s = Schema::anonymous(2);
        // Shared element + one mismatch pair: |∩|=1, |∪|=3.
        let got = jaccard(&s, &v(&[7, 1]), &v(&[7, 2]));
        assert!((got - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_skips_absent_cells() {
        let mut s = Schema::anonymous(3);
        let no = s.dictionary_mut(AttrId(1)).intern("w-0");
        s.set_absent_value(AttrId(1), no);
        // Column 1 absent in both items: contributes nothing.
        let x = vec![ValueId(5), no, ValueId(9)];
        let y = vec![ValueId(5), no, ValueId(9)];
        assert_eq!(jaccard(&s, &x, &y), 1.0);
        // Absent vs present counts only in the union.
        let z = vec![ValueId(5), ValueId(3), ValueId(9)];
        let got = jaccard(&s, &x, &z);
        assert!((got - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_not_present_sentinel() {
        let s = Schema::anonymous(2);
        let x = vec![ValueId(1), NOT_PRESENT];
        let y = vec![ValueId(1), NOT_PRESENT];
        assert_eq!(jaccard(&s, &x, &y), 1.0);
    }

    #[test]
    fn jaccard_all_absent_convention() {
        let s = Schema::anonymous(2);
        let x = vec![NOT_PRESENT, NOT_PRESENT];
        assert_eq!(jaccard(&s, &x, &x), 1.0);
    }

    #[test]
    fn lower_bound_matches_paper_example() {
        // m = 100 → s ≥ 1/199 (paper §III-C).
        assert!((jaccard_lower_bound(100) - 1.0 / 199.0).abs() < 1e-15);
    }

    #[test]
    fn lower_bound_is_attained() {
        // Two items over m attributes sharing exactly one value have
        // similarity exactly 1/(2m-1).
        let m = 10;
        let s = Schema::anonymous(m);
        let x: Vec<ValueId> = (0..m as u32).map(ValueId).collect();
        let mut y: Vec<ValueId> = (100..100 + m as u32).map(ValueId).collect();
        y[0] = x[0];
        let sim = jaccard(&s, &x, &y);
        assert!((sim - jaccard_lower_bound(m)).abs() < 1e-12);
    }
}
