//! Full-search centroid-based clustering baselines: **K-Modes** (categorical,
//! the algorithm the paper accelerates) and **K-Means** (numeric, for the
//! further-work extension).
//!
//! The K-Modes implementation follows §III-A1 of the paper:
//!
//! 1. select `k` initial modes ([`init`]),
//! 2. assign every item to the cluster with the smallest matching
//!    dissimilarity ([`assign`]),
//! 3. recompute each cluster's mode — the per-attribute most frequent
//!    category among its members ([`modes`]),
//! 4. repeat 2–3 until no item moves, the cost stops improving, or an
//!    iteration cap is hit ([`kmodes`]).
//!
//! Everything here performs the *full* `k`-way search per item; the
//! `lshclust-core` crate layers the paper's LSH shortlist on top of the same
//! primitives, so any speed difference between the two is attributable to the
//! shortlist alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod cost;
pub mod fuzzy;
pub mod init;
pub mod kmeans;
pub mod kmodes;
pub mod kprototypes;
pub mod minibatch;
pub mod modes;
pub mod stats;

pub use init::InitMethod;
pub use kmodes::{KModes, KModesConfig, KModesResult, UpdateRule};
pub use modes::Modes;
pub use stats::IterationStats;
