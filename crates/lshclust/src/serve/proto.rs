//! The NDJSON serving protocol, transport-agnostic.
//!
//! One request per line, one response per line, in request order:
//!
//! ```text
//! → {"predict": {"row": ["a","b"]}, "id": 1}
//! ← {"id": 1, "ok": {"cluster": 0, "generation": 0}}
//! → {"predict": {"point": [0.5]}, "deadline_ms": 5}
//! ← {"ok": {"cluster": 1, "generation": 0}}          (or {"err": "request deadline passed …"})
//! → {"reload": "model.bin", "id": "r1"}
//! ← {"id": "r1", "ok": {"reloaded": true, "generation": 1}}
//! → {"stats": true}
//! ← {"ok": {"generation": 1, "queue": 0, …, "cache_hits": 42, …}}
//! → {"shutdown": true}
//! ← {"ok": {"shutdown": true}}
//! ```
//!
//! The same [`ProtoEngine`] drives both fronts: the single-client stdin
//! daemon (`cluster serve`) and every connection of the socket transport
//! ([`super::socket`]). Keeping it here — instead of inside the CLI — is
//! what lets the fault-injection tests speak the real protocol against a
//! real in-process server.
//!
//! Deadline field semantics (`deadline_ms`, top level, next to `id`):
//! **absent** → the server's [`ServerConfig::default_deadline`]; **`0`** →
//! explicitly unbounded (pinned by test); **`n`** → `n` milliseconds from
//! submission. Legacy clients that never send the field keep working
//! unchanged.
//!
//! `{"shutdown": true}` stops the whole server, so fronts exposed to
//! untrusted peers can refuse it ([`ProtoEngine::allow_shutdown`]): the
//! request then answers with `err` and serving continues. The CLI keeps
//! shutdown enabled for stdin, Unix sockets, and loopback TCP, and
//! requires `--allow-remote-shutdown` for anything else.

use super::{ModelServer, PredictTicket, ServeError, ServerConfig};
use crate::model::FittedModel;
use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Renders `v` as one NDJSON line (no trailing newline).
fn json_line(v: Value) -> String {
    struct OutValue(Value);
    impl serde::Serialize for OutValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    serde_json::to_string(&OutValue(v)).expect("response serializes")
}

/// Renders a success response: `{"id": …, "ok": {fields…}}` (the `id` is
/// echoed only when the request carried one).
pub fn ok_response(id: Option<&Value>, fields: Vec<(String, Value)>) -> String {
    let mut entries = Vec::new();
    if let Some(id) = id {
        entries.push(("id".to_owned(), id.clone()));
    }
    entries.push(("ok".to_owned(), Value::Object(fields)));
    json_line(Value::Object(entries))
}

/// Renders a failure response: `{"id": …, "err": "message"}`.
pub fn err_response(id: Option<&Value>, message: &str) -> String {
    let mut entries = Vec::new();
    if let Some(id) = id {
        entries.push(("id".to_owned(), id.clone()));
    }
    entries.push(("err".to_owned(), Value::String(message.to_owned())));
    json_line(Value::Object(entries))
}

fn parse_str_row(v: &Value) -> Result<Vec<String>, String> {
    v.as_array()
        .ok_or("`row` must be an array of strings")?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_owned)
                .ok_or_else(|| "`row` must be an array of strings".to_owned())
        })
        .collect()
}

fn parse_point(v: &Value) -> Result<Vec<f64>, String> {
    v.as_array()
        .ok_or("`point` must be an array of numbers")?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| "`point` must be an array of numbers".to_owned())
        })
        .collect()
}

/// A parsed `deadline_ms` field (see the [module docs](self) for the
/// wire-level semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadlineSpec {
    /// Field absent: use [`ServerConfig::default_deadline`].
    Default,
    /// `deadline_ms: 0`: explicitly unbounded, overriding any default.
    Unbounded,
    /// `deadline_ms: n` (n > 0): expire `n` milliseconds after submission.
    After(Duration),
}

impl DeadlineSpec {
    /// Reads the top-level `deadline_ms` field of a request line.
    pub fn parse(request: &Value) -> Result<Self, String> {
        match request.get("deadline_ms") {
            None => Ok(DeadlineSpec::Default),
            Some(v) => match v.as_u64() {
                Some(0) => Ok(DeadlineSpec::Unbounded),
                Some(ms) => Ok(DeadlineSpec::After(Duration::from_millis(ms))),
                None => Err("`deadline_ms` must be a non-negative integer".to_owned()),
            },
        }
    }

    /// The concrete per-request deadline under `config`.
    pub fn resolve(self, config: &ServerConfig) -> Option<Duration> {
        match self {
            DeadlineSpec::Default => config.default_deadline,
            DeadlineSpec::Unbounded => None,
            DeadlineSpec::After(d) => Some(d),
        }
    }
}

/// Retries a submission while the queue is full. A protocol front has one
/// producer per connection — blocking it *is* the backpressure: piped batch
/// input larger than `queue_depth` gets served in full instead of being
/// load-shed with thousands of `QueueFull` errors (load shedding is for
/// many independent callers; a pipe should just slow down).
pub fn submit_with_backpressure(
    mut submit: impl FnMut() -> Result<PredictTicket, ServeError>,
) -> Result<PredictTicket, String> {
    loop {
        match submit() {
            Ok(ticket) => return Ok(ticket),
            Err(ServeError::QueueFull) => {
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// Submits one `predict` payload; string rows — categorical and the
/// categorical part of mixed requests — go through the server's serve-time
/// encoding, so hot reloads apply to requests already queued.
pub fn submit_predict(
    server: &ModelServer,
    predict: &Value,
    deadline: Option<Duration>,
) -> Result<PredictTicket, String> {
    match (predict.get("row"), predict.get("point")) {
        (Some(row), None) => {
            let row = parse_str_row(row)?;
            submit_with_backpressure(|| {
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                server.submit_str_row_deadline(&refs, deadline)
            })
        }
        (None, Some(point)) => {
            let point = parse_point(point)?;
            submit_with_backpressure(|| server.submit_point_deadline(point.clone(), deadline))
        }
        (Some(row), Some(point)) => {
            let row = parse_str_row(row)?;
            let point = parse_point(point)?;
            // Serve-time encoding (like the row-only path): the categorical
            // part is interpreted under the schema of the model snapshot
            // that answers, so a reload can never mix schemas.
            submit_with_backpressure(|| {
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                server.submit_str_mixed_deadline(&refs, point.clone(), deadline)
            })
        }
        (None, None) => Err("predict needs `row` (strings) and/or `point` (numbers)".to_owned()),
    }
}

/// One ordered reply slot: either a ticket still being served or an
/// already-rendered control line. Writer loops render these FIFO so
/// responses leave in request order even though workers finish out of
/// order.
pub enum Outgoing {
    /// A pending prediction; render with [`render_reply`].
    Ticket {
        /// The request's `id`, echoed into the response.
        id: Option<Value>,
        /// The waitable half of the submitted request.
        ticket: PredictTicket,
    },
    /// A response that is already a complete line.
    Line(String),
}

/// Resolves one [`Outgoing`] into its response line. Ticket waits are
/// bounded by `wait_cap` ([`PredictTicket::wait_deadline`]) so a wedged
/// worker pool turns into an error response instead of a writer blocked
/// forever — the satellite fix this PR ships. Deadline-skipped requests
/// render as `err` lines like any other serve failure.
pub fn render_reply(out: Outgoing, wait_cap: Duration) -> String {
    match out {
        Outgoing::Ticket { id, ticket } => match ticket.wait_deadline(wait_cap) {
            Some(Ok(p)) => ok_response(
                id.as_ref(),
                vec![
                    ("cluster".to_owned(), serde_json::to_value(&p.cluster.0)),
                    ("generation".to_owned(), serde_json::to_value(&p.generation)),
                ],
            ),
            Some(Err(e)) => err_response(id.as_ref(), &e.to_string()),
            None => err_response(
                id.as_ref(),
                &format!(
                    "no reply within {}ms (serving stalled)",
                    wait_cap.as_millis()
                ),
            ),
        },
        Outgoing::Line(line) => line,
    }
}

/// What a protocol line asks the front to do next.
pub enum LineOutcome {
    /// Enqueue this reply and keep reading.
    Reply(Outgoing),
    /// Enqueue this reply, then begin shutdown (a `{"shutdown": true}`
    /// request).
    Shutdown(Outgoing),
    /// Nothing to do (blank line).
    Ignore,
}

/// The transport-agnostic request handler: parses one NDJSON line and turns
/// it into an ordered reply. Clone-cheap (`Arc` inside); the socket
/// transport hands one to every connection.
#[derive(Clone)]
pub struct ProtoEngine {
    server: Arc<ModelServer>,
    /// Operator `--threads` override, re-applied on every reload so the
    /// artifact's own `spec.threads` can't silently take over.
    threads_override: Option<usize>,
    /// Whether `{"shutdown": true}` is honored on this front. `true` for
    /// trusted fronts (stdin, Unix socket, loopback TCP); the CLI sets
    /// `false` for non-loopback TCP listeners unless the operator passes
    /// `--allow-remote-shutdown`, so exposing `--listen` to a network
    /// does not hand every peer an unauthenticated kill switch.
    allow_shutdown: bool,
    /// Push an unsolicited `{"stats": {…}}` line after every N predict
    /// requests (`0` = off, the default). Fronts poll
    /// [`Self::take_due_stats`] after each handled line.
    stats_every: u64,
    /// Predict requests handled, shared across clones so every connection
    /// of a socket front counts toward the same cadence.
    predicts: Arc<AtomicU64>,
    /// Highest cadence milestone already pushed — what makes each push
    /// fire exactly once even when connections race.
    stats_pushed: Arc<AtomicU64>,
}

impl ProtoEngine {
    /// Wraps `server`; `threads_override` is re-applied to reloaded models.
    /// Shutdown requests are honored by default ([`Self::allow_shutdown`]).
    pub fn new(server: Arc<ModelServer>, threads_override: Option<usize>) -> Self {
        Self {
            server,
            threads_override,
            allow_shutdown: true,
            stats_every: 0,
            predicts: Arc::new(AtomicU64::new(0)),
            stats_pushed: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Sets whether `{"shutdown": true}` stops the server on this front;
    /// when disabled the request is answered with an `err` line and serving
    /// continues (stop the daemon from a trusted front or by signal).
    pub fn allow_shutdown(mut self, allow: bool) -> Self {
        self.allow_shutdown = allow;
        self
    }

    /// Enables the periodic stats push: after every `n` predict requests
    /// the next [`Self::take_due_stats`] call returns an unsolicited
    /// `{"stats": {…}}` line for the front to emit, so dashboards tail the
    /// response stream instead of polling `{"stats": true}`. `0` (the
    /// default) disables the push.
    pub fn stats_every(mut self, n: u64) -> Self {
        self.stats_every = n;
        self
    }

    /// The unsolicited `{"stats": {…}}` line when the periodic push has
    /// just come due, `None` otherwise. Fronts call this after each handled
    /// line; the milestone bookkeeping guarantees one push per cadence
    /// point across all clones of this engine.
    pub fn take_due_stats(&self) -> Option<String> {
        if self.stats_every == 0 {
            return None;
        }
        let milestone = self.predicts.load(Ordering::Relaxed) / self.stats_every * self.stats_every;
        if milestone == 0 {
            return None;
        }
        let prev = self.stats_pushed.fetch_max(milestone, Ordering::Relaxed);
        (prev < milestone).then(|| {
            json_line(Value::Object(vec![(
                "stats".to_owned(),
                Value::Object(self.stats_fields()),
            )]))
        })
    }

    /// The served model server.
    pub fn server(&self) -> &Arc<ModelServer> {
        &self.server
    }

    /// Handles one raw protocol line.
    pub fn handle_line(&self, line: &str) -> LineOutcome {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return LineOutcome::Ignore;
        }
        let value = match serde_json::parse(trimmed) {
            Ok(v) => v,
            Err(e) => {
                return LineOutcome::Reply(Outgoing::Line(err_response(
                    None,
                    &format!("bad JSON: {e}"),
                )));
            }
        };
        let id = value.get("id").cloned();
        if let Some(predict) = value.get("predict") {
            self.predicts.fetch_add(1, Ordering::Relaxed);
            let submitted = DeadlineSpec::parse(&value)
                .map(|spec| spec.resolve(self.server.config()))
                .and_then(|deadline| submit_predict(&self.server, predict, deadline));
            LineOutcome::Reply(match submitted {
                Ok(ticket) => Outgoing::Ticket { id, ticket },
                Err(e) => Outgoing::Line(err_response(id.as_ref(), &e)),
            })
        } else if let Some(reload) = value.get("reload") {
            LineOutcome::Reply(Outgoing::Line(self.handle_reload(id.as_ref(), reload)))
        } else if value.get("stats").is_some() {
            LineOutcome::Reply(Outgoing::Line(self.render_stats(id.as_ref())))
        } else if value.get("shutdown").is_some() {
            if self.allow_shutdown {
                LineOutcome::Shutdown(Outgoing::Line(ok_response(
                    id.as_ref(),
                    vec![("shutdown".to_owned(), Value::Bool(true))],
                )))
            } else {
                LineOutcome::Reply(Outgoing::Line(err_response(
                    id.as_ref(),
                    "shutdown is disabled on this listener (serve with --allow-remote-shutdown to enable)",
                )))
            }
        } else {
            LineOutcome::Reply(Outgoing::Line(err_response(
                id.as_ref(),
                "unknown request: expected `predict`, `reload`, `stats`, or `shutdown`",
            )))
        }
    }

    fn handle_reload(&self, id: Option<&Value>, reload: &Value) -> String {
        match reload.as_str() {
            // `load` sniffs the envelope, so `{"reload": path}` accepts v1
            // JSON and v2 binary artifacts alike — the v2 decode copies the
            // index instead of re-hashing it, keeping the pre-swap pause
            // short. Parse/validate completes before the handle's write
            // lock is touched, and the generation bump invalidates the
            // hot-key cache as a side effect.
            Some(path) => FittedModel::load(path)
                .map_err(|e| format!("{path}: {e}"))
                .map(|mut model| {
                    if let Some(threads) = self.threads_override {
                        model.set_threads(threads);
                    }
                    self.server.handle().reload(model)
                })
                .map_or_else(
                    |e| err_response(id, &e),
                    |generation| {
                        ok_response(
                            id,
                            vec![
                                ("reloaded".to_owned(), Value::Bool(true)),
                                ("generation".to_owned(), serde_json::to_value(&generation)),
                            ],
                        )
                    },
                ),
            None => err_response(id, "reload takes a model artifact path string"),
        }
    }

    fn render_stats(&self, id: Option<&Value>) -> String {
        ok_response(id, self.stats_fields())
    }

    /// The introspection payload shared by `{"stats": true}` responses and
    /// the periodic push.
    fn stats_fields(&self) -> Vec<(String, Value)> {
        let server = &self.server;
        let model = server.model();
        let cache = server.hot_key_stats();
        let tickets = server.ticket_stats();
        vec![
            (
                "generation".to_owned(),
                serde_json::to_value(&server.generation()),
            ),
            (
                "queue".to_owned(),
                serde_json::to_value(&server.queue_len()),
            ),
            (
                "modality".to_owned(),
                Value::String(model.modality().to_owned()),
            ),
            ("k".to_owned(), serde_json::to_value(&model.k())),
            (
                "workers".to_owned(),
                serde_json::to_value(&server.config().workers),
            ),
            (
                "max_batch".to_owned(),
                serde_json::to_value(&server.config().max_batch),
            ),
            ("cache_hits".to_owned(), serde_json::to_value(&cache.hits)),
            (
                "cache_misses".to_owned(),
                serde_json::to_value(&cache.misses),
            ),
            (
                "cache_entries".to_owned(),
                serde_json::to_value(&cache.entries),
            ),
            (
                "submitted".to_owned(),
                serde_json::to_value(&tickets.submitted),
            ),
            (
                "resolved".to_owned(),
                serde_json::to_value(&tickets.resolved),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterSpec, Clusterer, Lsh, NumericDataset};

    fn engine() -> ProtoEngine {
        let data = NumericDataset::new(1, vec![0.0, 0.2, 0.4, 9.0, 9.2, 9.4]);
        let spec = ClusterSpec::new(2).lsh(Lsh::SimHash { bands: 8, rows: 2 });
        let run = Clusterer::new(spec).fit(&data).unwrap();
        let server = Arc::new(ModelServer::start(
            run.model,
            ServerConfig::default().workers(1),
        ));
        ProtoEngine::new(server, None)
    }

    fn reply_line(engine: &ProtoEngine, line: &str) -> String {
        match engine.handle_line(line) {
            LineOutcome::Reply(out) | LineOutcome::Shutdown(out) => {
                render_reply(out, Duration::from_secs(10))
            }
            LineOutcome::Ignore => panic!("expected a reply for {line:?}"),
        }
    }

    #[test]
    fn predict_reload_stats_shutdown_round_trip() {
        let engine = engine();
        let ok = reply_line(&engine, r#"{"predict": {"point": [0.1]}, "id": 7}"#);
        assert!(ok.contains(r#""id":7"#) && ok.contains("cluster"), "{ok}");
        let stats = reply_line(&engine, r#"{"stats": true}"#);
        for field in ["cache_hits", "submitted", "resolved", "queue"] {
            assert!(stats.contains(field), "missing {field}: {stats}");
        }
        assert!(matches!(
            engine.handle_line(r#"{"shutdown": true}"#),
            LineOutcome::Shutdown(_)
        ));
        assert!(matches!(engine.handle_line("   "), LineOutcome::Ignore));
    }

    #[test]
    fn malformed_lines_answer_with_err_not_panic() {
        let engine = engine();
        for bad in [
            "{not json",
            r#"{"predict": {}}"#,
            r#"{"predict": {"row": [1]}}"#,
            r#"{"predict": {"point": ["x"]}}"#,
            r#"{"frobnicate": 1}"#,
            r#"{"reload": 42}"#,
            r#"{"predict": {"point": [0.1]}, "deadline_ms": -3}"#,
            r#"{"predict": {"point": [0.1]}, "deadline_ms": "soon"}"#,
        ] {
            let reply = reply_line(&engine, bad);
            assert!(reply.contains(r#""err""#), "{bad} => {reply}");
        }
    }

    #[test]
    fn shutdown_can_be_disallowed_per_front() {
        let engine = engine().allow_shutdown(false);
        let reply = reply_line(&engine, r#"{"shutdown": true, "id": 3}"#);
        assert!(
            reply.contains(r#""err""#) && reply.contains("disabled"),
            "{reply}"
        );
        // The refusal answers without stopping: predicts still serve.
        let ok = reply_line(&engine, r#"{"predict": {"point": [0.1]}}"#);
        assert!(ok.contains("cluster"), "{ok}");
        // Re-enabling restores the normal shutdown outcome.
        let engine = engine.allow_shutdown(true);
        assert!(matches!(
            engine.handle_line(r#"{"shutdown": true}"#),
            LineOutcome::Shutdown(_)
        ));
    }

    #[test]
    fn stats_push_fires_once_per_cadence_point_and_is_off_by_default() {
        // Off by default: no push no matter how many predicts.
        let silent = engine();
        let _ = reply_line(&silent, r#"{"predict": {"point": [0.1]}}"#);
        assert_eq!(silent.take_due_stats(), None);

        let pushing = engine().stats_every(2);
        let _ = reply_line(&pushing, r#"{"predict": {"point": [0.1]}}"#);
        assert_eq!(pushing.take_due_stats(), None, "1 of 2 predicts");
        let _ = reply_line(&pushing, r#"{"predict": {"point": [9.1]}}"#);
        let push = pushing.take_due_stats().expect("2nd predict comes due");
        // Unsolicited shape: {"stats": {…}} — distinguishable from the
        // {"ok": {…}} reply to an explicit {"stats": true} request.
        assert!(push.starts_with(r#"{"stats":"#), "{push}");
        for field in ["queue", "submitted", "resolved", "cache_hits"] {
            assert!(push.contains(field), "missing {field}: {push}");
        }
        // The milestone is consumed: a re-poll (or a racing clone) stays
        // quiet until the next cadence point …
        assert_eq!(pushing.take_due_stats(), None);
        assert_eq!(pushing.clone().take_due_stats(), None);
        let _ = reply_line(&pushing, r#"{"predict": {"point": [0.1]}}"#);
        assert_eq!(pushing.take_due_stats(), None, "3 of 4 predicts");
        // … and a clone shares the counter (socket connections all feed the
        // same cadence).
        let _ = reply_line(&pushing.clone(), r#"{"predict": {"point": [9.1]}}"#);
        assert!(pushing.take_due_stats().is_some(), "4th predict comes due");

        // Control lines do not count as requests.
        let counting = engine();
        let counting = counting.stats_every(1);
        let _ = reply_line(&counting, r#"{"stats": true}"#);
        assert_eq!(counting.take_due_stats(), None);
    }

    #[test]
    fn deadline_field_semantics_are_absent_default_zero_unbounded() {
        let absent = serde_json::parse(r#"{"predict": {"point": [0.1]}}"#).unwrap();
        assert_eq!(DeadlineSpec::parse(&absent).unwrap(), DeadlineSpec::Default);
        let zero = serde_json::parse(r#"{"deadline_ms": 0}"#).unwrap();
        assert_eq!(DeadlineSpec::parse(&zero).unwrap(), DeadlineSpec::Unbounded);
        let five = serde_json::parse(r#"{"deadline_ms": 5}"#).unwrap();
        assert_eq!(
            DeadlineSpec::parse(&five).unwrap(),
            DeadlineSpec::After(Duration::from_millis(5))
        );

        // Resolution against a config default: absent inherits, 0 pins off.
        let config = ServerConfig::default().default_deadline(Some(Duration::from_millis(50)));
        assert_eq!(
            DeadlineSpec::Default.resolve(&config),
            Some(Duration::from_millis(50))
        );
        assert_eq!(DeadlineSpec::Unbounded.resolve(&config), None);
        assert_eq!(
            DeadlineSpec::After(Duration::from_millis(5)).resolve(&config),
            Some(Duration::from_millis(5))
        );
    }
}
