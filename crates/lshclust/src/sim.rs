//! Similarity workloads over the same LSH machinery the fits use: **dedup**
//! (near-duplicate detection), **similarity self-join**, and a
//! **centroid-linkage hierarchy** over a trained model's centroids.
//!
//! All three engines share one candidate-generation core
//! ([`lshclust_core::sim::CandidatePairs`]): items (or centroids) are hashed
//! into the modality's band-key buffer exactly as a fit would hash them,
//! bucket collisions nominate candidate pairs, and the modality's *exact*
//! distance kernel verifies every candidate. Emitted pairs therefore carry
//! **precision 1.0 by construction** — the LSH stage can only miss pairs
//! (recall < 1), never fabricate one. Candidate generation and verification
//! fan over `spec.threads` and are byte-identical at any thread count.
//!
//! ```
//! use lshclust::{Lsh, NumericDataset, Sim, SimSpec};
//!
//! let data = NumericDataset::new(1, vec![0.0, 0.01, 5.0, 5.02, 9.0]);
//! let spec = SimSpec::new(0.1).lsh(Lsh::SimHash { bands: 8, rows: 2 });
//! let report = Sim::new(spec).dedup(&data).unwrap();
//! // 0/1 and 2/3 are near-duplicates; every emitted pair is exact-verified.
//! assert!(report.pairs.iter().all(|p| p.distance <= 0.1));
//! assert_eq!(report.representative[1], 0);
//! ```

use crate::envelope;
use crate::model::ModelError;
use crate::spec::{Lsh, SpecError};
use crate::FittedModel;
use lshclust_categorical::{dissimilarity, Dataset, Schema, ValueId};
use lshclust_core::mhkmeans::SimHashIndex;
use lshclust_core::parallel::{chunked_map, hash_band_keys_parallel};
use lshclust_core::sim::{
    brute_force_pairs, concat_band_keys, verified_pairs, CandidatePairs, PairData,
};
use lshclust_kmodes::kmeans::{sq_euclidean, NumericDataset};
use lshclust_kmodes::kprototypes::{suggest_gamma, MixedDataset};
use lshclust_minhash::index::LshIndexBuilder;
use lshclust_minhash::Banding;
use serde;

/// Salt decorrelating the similarity workloads' MinHash family from the
/// fit-time item index and the centroid indexes ("sim-mh").
const CAT_SIM_SALT: u64 = 0x7369_6d2d_6d68;
/// Salt decorrelating the similarity workloads' SimHash family ("sim-sh").
const NUM_SIM_SALT: u64 = 0x7369_6d2d_7368;

/// Specification of a similarity workload: the LSH scheme nominating
/// candidate pairs, the exact-distance threshold, and the execution knobs.
///
/// The threshold is a **maximum distance** in the modality's native kernel —
/// differing-attribute count (categorical), squared Euclidean (numeric), or
/// their γ-weighted sum (mixed) — the same quantities the fit paths
/// minimise.
#[derive(Clone, Debug, PartialEq)]
pub struct SimSpec {
    /// The LSH scheme hashing items into candidate buckets. [`Lsh::None`]
    /// is rejected for dedup/join (no candidate source) but selects the
    /// exact full-search mode for [`Sim::hierarchy`].
    pub lsh: Lsh,
    /// Maximum exact distance for a pair to be emitted.
    pub threshold: f64,
    /// Self-join output cap; `None` emits every verified pair.
    pub max_pairs: Option<usize>,
    /// Seed driving the hash families (salted away from the fit indexes).
    pub seed: u64,
    /// Verification fan-out; results are identical at any count.
    pub threads: usize,
    /// Mixing weight γ for mixed data; `None` uses Huang's heuristic.
    pub gamma: Option<f64>,
}

serde::impl_serde_struct!(SimSpec {
    lsh,
    threshold,
    max_pairs,
    seed,
    threads,
    gamma
});

impl SimSpec {
    /// A spec with the given distance threshold and the workspace defaults:
    /// MinHash 16×2, seed 0, one thread, no output cap.
    pub fn new(threshold: f64) -> Self {
        Self {
            lsh: Lsh::MinHash { bands: 16, rows: 2 },
            threshold,
            max_pairs: None,
            seed: 0,
            threads: 1,
            gamma: None,
        }
    }

    /// Sets the LSH scheme.
    pub fn lsh(mut self, lsh: Lsh) -> Self {
        self.lsh = lsh;
        self
    }

    /// Sets the seed driving the hash families.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the verification thread count (`0` clamps to serial).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Caps the number of join pairs emitted (closest first).
    pub fn max_pairs(mut self, cap: usize) -> Self {
        self.max_pairs = Some(cap);
        self
    }

    /// Sets the K-Prototypes mixing weight γ for mixed inputs.
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = Some(gamma);
        self
    }
}

/// One emitted pair (`a < b`) with its exact distance.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PairRecord {
    /// Lower item id.
    pub a: u32,
    /// Higher item id.
    pub b: u32,
    /// Exact distance in the modality's kernel.
    pub distance: f64,
}

serde::impl_serde_struct!(PairRecord { a, b, distance });

/// Near-duplicate detection result: the verified pairs plus the duplicate
/// grouping they induce.
#[derive(Clone, Debug, PartialEq)]
pub struct DedupReport {
    /// Items scanned.
    pub n_items: usize,
    /// The distance threshold pairs were verified against.
    pub threshold: f64,
    /// Distinct candidate pairs the buckets nominated (verified or not) —
    /// the work volume LSH left of the `n·(n−1)/2` brute-force pairs.
    pub candidate_pairs: usize,
    /// Exact-verified near-duplicate pairs, sorted by `(a, b)`.
    pub pairs: Vec<PairRecord>,
    /// Per item, the smallest item id in its duplicate component (itself
    /// when the item has no duplicates) — the canonical "keep this one"
    /// choice.
    pub representative: Vec<u32>,
    /// Items whose representative is another item (the droppable ones).
    pub n_duplicates: usize,
}

serde::impl_serde_struct!(DedupReport {
    n_items,
    threshold,
    candidate_pairs,
    pairs,
    representative,
    n_duplicates
});

/// Similarity self-join result: every verified pair at or under the
/// threshold, closest first, optionally capped.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinReport {
    /// Items scanned.
    pub n_items: usize,
    /// The distance threshold pairs were verified against.
    pub threshold: f64,
    /// Distinct candidate pairs the buckets nominated.
    pub candidate_pairs: usize,
    /// Verified pairs before the cap was applied.
    pub matched: usize,
    /// Whether `max_pairs` truncated the output.
    pub capped: bool,
    /// Emitted pairs, sorted by `(distance, a, b)` — the deterministic
    /// tie-order that makes the cap reproducible.
    pub pairs: Vec<PairRecord>,
}

serde::impl_serde_struct!(JoinReport {
    n_items,
    threshold,
    candidate_pairs,
    matched,
    capped,
    pairs
});

/// One agglomerative merge: nodes `a` and `b` (leaf centroids are nodes
/// `0..k`; merge `i` creates node `k + i`) joined at centroid distance
/// `height`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Merge {
    /// Lower merged node id.
    pub a: u32,
    /// Higher merged node id.
    pub b: u32,
    /// Exact centroid distance at the merge (the modality's kernel).
    pub height: f64,
}

serde::impl_serde_struct!(Merge { a, b, height });

/// A centroid-linkage dendrogram over a fitted model's `k` centroids:
/// `k − 1` merges in order, scipy-style node numbering (leaves `0..k`,
/// merge `i` creates node `k + i`).
///
/// Serializes as JSON (`serde_json`) and as a v2-style binary envelope
/// ([`Dendrogram::to_bytes`] / [`Dendrogram::from_bytes`], same sectioned
/// container as the model artifacts).
#[derive(Clone, Debug, PartialEq)]
pub struct Dendrogram {
    /// Leaf count (the model's `k`).
    pub k: usize,
    /// The `k − 1` merges in execution order. Heights are centroid
    /// distances and may invert (centroid linkage is not monotone).
    pub merges: Vec<Merge>,
    /// Merge steps where the LSH shortlist nominated no pair at all and the
    /// engine fell back to the exact full pair search (always `0` under
    /// [`Lsh::None`], which is full search throughout).
    pub fallback_steps: usize,
}

serde::impl_serde_struct!(Dendrogram {
    k,
    merges,
    fallback_steps
});

impl Dendrogram {
    /// Renders the dendrogram into the sectioned binary envelope (same
    /// container as the v2 model artifacts: magic, section table, payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(24 + self.merges.len() * 16);
        envelope::put_u64(&mut payload, self.k as u64);
        envelope::put_u64(&mut payload, self.merges.len() as u64);
        envelope::put_u64(&mut payload, self.fallback_steps as u64);
        for m in &self.merges {
            envelope::put_u32(&mut payload, m.a);
            envelope::put_u32(&mut payload, m.b);
            envelope::put_f64(&mut payload, m.height);
        }
        let mut w = envelope::Writer::new();
        w.push(envelope::SEC_DENDRO, payload);
        w.finish()
    }

    /// Parses a [`Dendrogram::to_bytes`] artifact, validating the frame and
    /// every length before any payload byte is trusted.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ModelError> {
        let sections = envelope::Sections::parse(bytes)?;
        let payload = sections.require(envelope::SEC_DENDRO)?;
        if payload.len() < 24 {
            return Err(envelope::corrupt(
                "dendrogram section is shorter than its header",
            ));
        }
        let k = envelope::read_u64(payload, 0);
        let n_merges = envelope::read_u64(payload, 8);
        let fallback_steps = envelope::read_u64(payload, 16);
        let expected = n_merges.checked_mul(16).and_then(|p| p.checked_add(24));
        if expected != Some(payload.len() as u64) {
            return Err(envelope::corrupt(format!(
                "dendrogram section length {} disagrees with its {n_merges}-merge header",
                payload.len()
            )));
        }
        let mut merges = Vec::with_capacity(n_merges as usize);
        for i in 0..n_merges as usize {
            let at = 24 + i * 16;
            let a = u32::from_le_bytes(payload[at..at + 4].try_into().expect("4 bytes"));
            let b = u32::from_le_bytes(payload[at + 4..at + 8].try_into().expect("4 bytes"));
            let height = f64::from_le_bytes(payload[at + 8..at + 16].try_into().expect("8 bytes"));
            merges.push(Merge { a, b, height });
        }
        Ok(Self {
            k: k as usize,
            merges,
            fallback_steps: fallback_steps as usize,
        })
    }
}

/// An input modality the similarity engines can hash and verify: the
/// categorical [`Dataset`] (the *same* encoded dataset a fit used), the
/// numeric [`NumericDataset`], or a [`MixedDataset`].
pub trait SimInput {
    /// Modality name for error messages.
    fn modality(&self) -> &'static str;
    /// Items in the input.
    fn n_items(&self) -> usize;
    /// Hashes every item into the bucket-collision candidate view, or
    /// explains why the spec's scheme does not fit this modality.
    fn candidates(&self, spec: &SimSpec) -> Result<CandidatePairs, SpecError>;
    /// The exact verification kernel for this input.
    fn pair_data(&self, spec: &SimSpec) -> PairData<'_>;
}

fn unsupported(modality: &'static str, lsh: Lsh) -> SpecError {
    SpecError::UnsupportedLsh {
        modality,
        lsh: lsh.name(),
    }
}

impl SimInput for Dataset {
    fn modality(&self) -> &'static str {
        "categorical"
    }

    fn n_items(&self) -> usize {
        self.n_items()
    }

    fn candidates(&self, spec: &SimSpec) -> Result<CandidatePairs, SpecError> {
        match spec.lsh {
            Lsh::MinHash { bands, rows } => {
                let builder =
                    LshIndexBuilder::new(Banding::new(bands, rows)).seed(spec.seed ^ CAT_SIM_SALT);
                let keys = hash_band_keys_parallel(&builder, self, spec.threads.max(1));
                Ok(CandidatePairs::from_band_keys(bands, keys))
            }
            other => Err(unsupported("categorical", other)),
        }
    }

    fn pair_data(&self, _spec: &SimSpec) -> PairData<'_> {
        PairData::Categorical(self)
    }
}

impl SimInput for NumericDataset {
    fn modality(&self) -> &'static str {
        "numeric"
    }

    fn n_items(&self) -> usize {
        self.n_items()
    }

    fn candidates(&self, spec: &SimSpec) -> Result<CandidatePairs, SpecError> {
        match spec.lsh {
            Lsh::SimHash { bands, rows } => {
                let (keys, _mean) = SimHashIndex::hash_band_keys(
                    self,
                    bands,
                    rows,
                    spec.seed ^ NUM_SIM_SALT,
                    spec.threads.max(1),
                );
                Ok(CandidatePairs::from_band_keys(bands, keys))
            }
            other => Err(unsupported("numeric", other)),
        }
    }

    fn pair_data(&self, _spec: &SimSpec) -> PairData<'_> {
        PairData::Numeric(self)
    }
}

impl SimInput for MixedDataset<'_> {
    fn modality(&self) -> &'static str {
        "mixed"
    }

    fn n_items(&self) -> usize {
        self.n_items()
    }

    fn candidates(&self, spec: &SimSpec) -> Result<CandidatePairs, SpecError> {
        match spec.lsh {
            Lsh::Union {
                bands,
                rows,
                sim_bands,
                sim_rows,
            } => {
                let threads = spec.threads.max(1);
                let builder =
                    LshIndexBuilder::new(Banding::new(bands, rows)).seed(spec.seed ^ CAT_SIM_SALT);
                let cat_keys = hash_band_keys_parallel(&builder, self.categorical, threads);
                let (num_keys, _mean) = SimHashIndex::hash_band_keys(
                    self.numeric,
                    sim_bands,
                    sim_rows,
                    spec.seed ^ NUM_SIM_SALT,
                    threads,
                );
                let keys = concat_band_keys(self.n_items(), bands, &cat_keys, sim_bands, &num_keys);
                Ok(CandidatePairs::from_band_keys(bands + sim_bands, keys))
            }
            other => Err(unsupported("mixed", other)),
        }
    }

    fn pair_data(&self, spec: &SimSpec) -> PairData<'_> {
        PairData::Mixed {
            data: self,
            gamma: spec.gamma.unwrap_or_else(|| suggest_gamma(self.numeric)),
        }
    }
}

/// The similarity-workloads runner — [`crate::Clusterer`]'s sibling: one
/// [`SimSpec`], three engines ([`Sim::dedup`], [`Sim::join`],
/// [`Sim::hierarchy`]).
pub struct Sim {
    spec: SimSpec,
}

impl Sim {
    /// Wraps a spec.
    pub fn new(spec: SimSpec) -> Self {
        Self { spec }
    }

    /// The wrapped spec.
    pub fn spec(&self) -> &SimSpec {
        &self.spec
    }

    /// Near-duplicate detection: every bucket-collision candidate pair is
    /// exact-verified against the threshold; surviving pairs are grouped
    /// into duplicate components (union over pairs) with the smallest item
    /// id as each component's representative.
    pub fn dedup<D: SimInput + ?Sized>(&self, data: &D) -> Result<DedupReport, SpecError> {
        let candidates = data.candidates(&self.spec)?;
        let kernel = data.pair_data(&self.spec);
        let out = verified_pairs(
            &candidates,
            &kernel,
            self.spec.threshold,
            self.spec.threads.max(1),
        );
        let n = data.n_items();
        let mut representative: Vec<u32> = (0..n as u32).collect();
        // Union-find with the smallest id as every root: linking the larger
        // root under the smaller keeps `find(x) <= x`, so one ascending
        // compression pass afterwards settles every chain.
        fn find(repr: &mut [u32], mut x: u32) -> u32 {
            while repr[x as usize] != x {
                let parent = repr[x as usize];
                repr[x as usize] = repr[parent as usize];
                x = repr[x as usize];
            }
            x
        }
        for p in &out.pairs {
            let ra = find(&mut representative, p.a);
            let rb = find(&mut representative, p.b);
            if ra != rb {
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                representative[hi as usize] = lo;
            }
        }
        for x in 0..n as u32 {
            let root = find(&mut representative, x);
            representative[x as usize] = root;
        }
        let n_duplicates = representative
            .iter()
            .enumerate()
            .filter(|&(i, &r)| r != i as u32)
            .count();
        Ok(DedupReport {
            n_items: n,
            threshold: self.spec.threshold,
            candidate_pairs: out.candidate_pairs,
            pairs: out
                .pairs
                .into_iter()
                .map(|p| PairRecord {
                    a: p.a,
                    b: p.b,
                    distance: p.distance,
                })
                .collect(),
            representative,
            n_duplicates,
        })
    }

    /// Similarity self-join: every exact-verified pair at or under the
    /// threshold, sorted closest-first with `(a, b)` as the deterministic
    /// tie-break, truncated to `max_pairs` when set.
    pub fn join<D: SimInput + ?Sized>(&self, data: &D) -> Result<JoinReport, SpecError> {
        let candidates = data.candidates(&self.spec)?;
        let kernel = data.pair_data(&self.spec);
        let out = verified_pairs(
            &candidates,
            &kernel,
            self.spec.threshold,
            self.spec.threads.max(1),
        );
        let matched = out.pairs.len();
        let mut pairs: Vec<PairRecord> = out
            .pairs
            .into_iter()
            .map(|p| PairRecord {
                a: p.a,
                b: p.b,
                distance: p.distance,
            })
            .collect();
        pairs.sort_unstable_by(|x, y| {
            x.distance
                .partial_cmp(&y.distance)
                .expect("finite distances")
                .then(x.a.cmp(&y.a))
                .then(x.b.cmp(&y.b))
        });
        let capped = self.spec.max_pairs.is_some_and(|cap| pairs.len() > cap);
        if let Some(cap) = self.spec.max_pairs {
            pairs.truncate(cap);
        }
        Ok(JoinReport {
            n_items: data.n_items(),
            threshold: self.spec.threshold,
            candidate_pairs: out.candidate_pairs,
            matched,
            capped,
            pairs,
        })
    }

    /// Exact self-join over all pairs — the ground truth [`Sim::join`]'s
    /// recall is measured against (and the baseline the benches time). Uses
    /// the same threshold, cap and tie-order; ignores the spec's LSH scheme.
    pub fn join_exact<D: SimInput + ?Sized>(&self, data: &D) -> JoinReport {
        let kernel = data.pair_data(&self.spec);
        let exact = brute_force_pairs(&kernel, self.spec.threshold);
        let matched = exact.len();
        let mut pairs: Vec<PairRecord> = exact
            .into_iter()
            .map(|p| PairRecord {
                a: p.a,
                b: p.b,
                distance: p.distance,
            })
            .collect();
        pairs.sort_unstable_by(|x, y| {
            x.distance
                .partial_cmp(&y.distance)
                .expect("finite distances")
                .then(x.a.cmp(&y.a))
                .then(x.b.cmp(&y.b))
        });
        let capped = self.spec.max_pairs.is_some_and(|cap| pairs.len() > cap);
        if let Some(cap) = self.spec.max_pairs {
            pairs.truncate(cap);
        }
        let n = data.n_items();
        JoinReport {
            n_items: n,
            threshold: self.spec.threshold,
            candidate_pairs: n * n.saturating_sub(1) / 2,
            matched,
            capped,
            pairs,
        }
    }

    /// Centroid-linkage agglomerative clustering over a fitted model's `k`
    /// centroids: repeatedly merge the closest pair of active clusters,
    /// recording a deterministic dendrogram.
    ///
    /// Under an LSH scheme the closest-pair search is **shortlisted**: each
    /// step hashes the active representatives into the candidate core and
    /// only bucket-colliding pairs are scored; when a step's shortlist
    /// nominates no pair at all, the engine falls back to the exact full
    /// pair search (counted in [`Dendrogram::fallback_steps`]).
    /// [`Lsh::None`] selects the exact full search throughout.
    ///
    /// Merged representatives: numeric parts take the weighted mean of the
    /// merged clusters (weight = leaves absorbed); categorical parts take
    /// each attribute from the heavier side (ties to the lower node id).
    /// Every per-step nearest search fans over `spec.threads` with pure
    /// per-node decisions, so the dendrogram is **byte-identical at any
    /// thread count**.
    pub fn hierarchy(&self, model: &FittedModel) -> Result<Dendrogram, SpecError> {
        let threads = self.spec.threads.max(1);
        let k = model.k();
        let nodes = leaves_of(model, &self.spec)?;
        let kernel = match &nodes.kind {
            NodeKind::Categorical { .. } => "categorical",
            NodeKind::Numeric { .. } => "numeric",
            NodeKind::Mixed { .. } => "mixed",
        };
        match (&nodes.kind, self.spec.lsh) {
            (_, Lsh::None)
            | (NodeKind::Categorical { .. }, Lsh::MinHash { .. })
            | (NodeKind::Numeric { .. }, Lsh::SimHash { .. })
            | (NodeKind::Mixed { .. }, Lsh::Union { .. }) => {}
            (_, other) => {
                return Err(SpecError::UnsupportedLsh {
                    modality: kernel,
                    lsh: other.name(),
                })
            }
        }
        let mut active = nodes;
        let mut merges = Vec::with_capacity(k.saturating_sub(1));
        let mut fallback_steps = 0usize;
        let mut next_id = k as u32;
        while active.len() > 1 {
            let shortlisted = match self.spec.lsh {
                Lsh::None => None,
                _ => closest_shortlisted(&active, &self.spec, threads),
            };
            let (pa, pb, height) = match shortlisted {
                Some(best) => best,
                None => {
                    if !matches!(self.spec.lsh, Lsh::None) {
                        fallback_steps += 1;
                    }
                    closest_full(&active, threads)
                }
            };
            merges.push(Merge {
                a: active.ids[pa],
                b: active.ids[pb],
                height,
            });
            active.merge(pa, pb, next_id);
            next_id += 1;
        }
        Ok(Dendrogram {
            k,
            merges,
            fallback_steps,
        })
    }
}

// --- hierarchy internals ----------------------------------------------------

/// The per-modality representative buffers of the active clusters. Nodes are
/// kept in ascending node-id order throughout (merges remove two nodes and
/// append a fresh, higher id), so positions and ids sort identically and
/// every tie-break on position is a tie-break on id.
struct ActiveNodes<'m> {
    ids: Vec<u32>,
    /// Leaves absorbed per active node (merge weights).
    weights: Vec<u64>,
    kind: NodeKind<'m>,
}

enum NodeKind<'m> {
    Categorical {
        schema: &'m Schema,
        n_attrs: usize,
        /// `n_active × n_attrs` representative rows, node-major.
        rows: Vec<ValueId>,
    },
    Numeric {
        dim: usize,
        /// `n_active × dim` representative vectors, node-major.
        rows: Vec<f64>,
    },
    Mixed {
        schema: &'m Schema,
        n_attrs: usize,
        cat_rows: Vec<ValueId>,
        dim: usize,
        num_rows: Vec<f64>,
        gamma: f64,
    },
}

fn leaves_of<'m>(model: &'m FittedModel, spec: &SimSpec) -> Result<ActiveNodes<'m>, SpecError> {
    let k = model.k();
    let kind = if let Some(modes) = model.warm_modes() {
        let schema = model.schema().expect("categorical model carries a schema");
        let n_attrs = modes.n_attrs();
        let mut rows = Vec::with_capacity(k * n_attrs);
        for c in 0..k {
            rows.extend_from_slice(modes.mode(c));
        }
        NodeKind::Categorical {
            schema,
            n_attrs,
            rows,
        }
    } else if let Some((dim, centroids)) = model.warm_means() {
        NodeKind::Numeric {
            dim,
            rows: centroids.to_vec(),
        }
    } else {
        let (prototypes, model_gamma) = model
            .warm_prototypes()
            .expect("model is categorical, numeric or mixed");
        let schema = model.schema().expect("mixed model carries a schema");
        let n_attrs = prototypes.modes.n_attrs();
        let mut cat_rows = Vec::with_capacity(k * n_attrs);
        for c in 0..k {
            cat_rows.extend_from_slice(prototypes.modes.mode(c));
        }
        NodeKind::Mixed {
            schema,
            n_attrs,
            cat_rows,
            dim: prototypes.dim(),
            num_rows: prototypes.means.clone(),
            gamma: spec.gamma.unwrap_or(model_gamma),
        }
    };
    Ok(ActiveNodes {
        ids: (0..k as u32).collect(),
        weights: vec![1; k],
        kind,
    })
}

impl ActiveNodes<'_> {
    fn len(&self) -> usize {
        self.ids.len()
    }

    /// Exact centroid distance between active positions `a` and `b`.
    fn distance(&self, a: usize, b: usize) -> f64 {
        match &self.kind {
            NodeKind::Categorical { n_attrs, rows, .. } => {
                let x = &rows[a * n_attrs..(a + 1) * n_attrs];
                let y = &rows[b * n_attrs..(b + 1) * n_attrs];
                f64::from(dissimilarity::matching(x, y))
            }
            NodeKind::Numeric { dim, rows } => {
                sq_euclidean(&rows[a * dim..(a + 1) * dim], &rows[b * dim..(b + 1) * dim])
            }
            NodeKind::Mixed {
                n_attrs,
                cat_rows,
                dim,
                num_rows,
                gamma,
                ..
            } => {
                let cat = dissimilarity::matching(
                    &cat_rows[a * n_attrs..(a + 1) * n_attrs],
                    &cat_rows[b * n_attrs..(b + 1) * n_attrs],
                );
                let num = sq_euclidean(
                    &num_rows[a * dim..(a + 1) * dim],
                    &num_rows[b * dim..(b + 1) * dim],
                );
                f64::from(cat) + gamma * num
            }
        }
    }

    /// Merges positions `a < b` into a fresh node `new_id`: numeric parts
    /// take the weighted mean, categorical attributes come from the heavier
    /// side (ties to `a`, the lower node id). The merged node is appended,
    /// preserving ascending-id order.
    fn merge(&mut self, a: usize, b: usize, new_id: u32) {
        assert!(a < b, "merge positions must be ordered");
        let (wa, wb) = (self.weights[a], self.weights[b]);
        let take_a = wa >= wb; // tie → lower node id
        let total = wa + wb;
        match &mut self.kind {
            NodeKind::Categorical { n_attrs, rows, .. } => {
                let w = *n_attrs;
                let merged: Vec<ValueId> = (0..w)
                    .map(|attr| {
                        if take_a {
                            rows[a * w + attr]
                        } else {
                            rows[b * w + attr]
                        }
                    })
                    .collect();
                remove_rows(rows, w, a, b);
                rows.extend_from_slice(&merged);
            }
            NodeKind::Numeric { dim, rows } => {
                let w = *dim;
                let merged: Vec<f64> = (0..w)
                    .map(|d| {
                        (wa as f64 * rows[a * w + d] + wb as f64 * rows[b * w + d]) / total as f64
                    })
                    .collect();
                remove_rows(rows, w, a, b);
                rows.extend_from_slice(&merged);
            }
            NodeKind::Mixed {
                n_attrs,
                cat_rows,
                dim,
                num_rows,
                ..
            } => {
                let w = *n_attrs;
                let merged_cat: Vec<ValueId> = (0..w)
                    .map(|attr| {
                        if take_a {
                            cat_rows[a * w + attr]
                        } else {
                            cat_rows[b * w + attr]
                        }
                    })
                    .collect();
                remove_rows(cat_rows, w, a, b);
                cat_rows.extend_from_slice(&merged_cat);
                let w = *dim;
                let merged_num: Vec<f64> = (0..w)
                    .map(|d| {
                        (wa as f64 * num_rows[a * w + d] + wb as f64 * num_rows[b * w + d])
                            / total as f64
                    })
                    .collect();
                remove_rows(num_rows, w, a, b);
                num_rows.extend_from_slice(&merged_num);
            }
        }
        self.ids.remove(b);
        self.ids.remove(a);
        self.ids.push(new_id);
        self.weights.remove(b);
        self.weights.remove(a);
        self.weights.push(total);
    }

    /// Hashes the active representatives into the candidate core with the
    /// spec's scheme (the hierarchy's per-step shortlist source).
    fn candidates(&self, spec: &SimSpec, threads: usize) -> CandidatePairs {
        let n = self.len();
        match (&self.kind, spec.lsh) {
            (
                NodeKind::Categorical {
                    schema,
                    n_attrs,
                    rows,
                },
                Lsh::MinHash { bands, rows: r },
            ) => {
                let builder =
                    LshIndexBuilder::new(Banding::new(bands, r)).seed(spec.seed ^ CAT_SIM_SALT);
                let index = builder.build_centroids(schema, rows.chunks(*n_attrs.max(&1)), n);
                CandidatePairs::from_item_index(&index)
            }
            (NodeKind::Numeric { dim, rows }, Lsh::SimHash { bands, rows: r }) => {
                let data = NumericDataset::new(*dim, rows.clone());
                let (keys, _mean) = SimHashIndex::hash_band_keys(
                    &data,
                    bands,
                    r,
                    spec.seed ^ NUM_SIM_SALT,
                    threads,
                );
                CandidatePairs::from_band_keys(bands, keys)
            }
            (
                NodeKind::Mixed {
                    schema,
                    n_attrs,
                    cat_rows,
                    dim,
                    num_rows,
                    ..
                },
                Lsh::Union {
                    bands,
                    rows: r,
                    sim_bands,
                    sim_rows,
                },
            ) => {
                let builder =
                    LshIndexBuilder::new(Banding::new(bands, r)).seed(spec.seed ^ CAT_SIM_SALT);
                let index = builder.build_centroids(schema, cat_rows.chunks(*n_attrs.max(&1)), n);
                let data = NumericDataset::new(*dim, num_rows.clone());
                let (num_keys, _mean) = SimHashIndex::hash_band_keys(
                    &data,
                    sim_bands,
                    sim_rows,
                    spec.seed ^ NUM_SIM_SALT,
                    threads,
                );
                let keys = concat_band_keys(n, bands, index.band_keys(), sim_bands, &num_keys);
                CandidatePairs::from_band_keys(bands + sim_bands, keys)
            }
            _ => unreachable!("scheme/modality agreement was validated at entry"),
        }
    }
}

/// Removes node-major rows `a < b` of width `w` from a flat buffer,
/// preserving the order of the rest.
fn remove_rows<T: Copy>(buf: &mut Vec<T>, w: usize, a: usize, b: usize) {
    buf.drain(b * w..(b + 1) * w);
    buf.drain(a * w..(a + 1) * w);
}

/// The closest bucket-colliding active pair `(pos_a, pos_b, distance)`, or
/// `None` when no pair collides at all. Per-node searches fan over
/// `threads`; the serial reduce breaks ties toward the lowest positions
/// (equivalently: lowest node ids).
fn closest_shortlisted(
    active: &ActiveNodes<'_>,
    spec: &SimSpec,
    threads: usize,
) -> Option<(usize, usize, f64)> {
    let candidates = active.candidates(spec, threads);
    let per_node: Vec<Option<(f64, u32, u32)>> = chunked_map(
        active.len(),
        threads,
        || candidates.make_scratch(),
        |node, scratch| {
            let mut best: Option<(f64, u32, u32)> = None;
            candidates.for_each_candidate_below(node, scratch, |other| {
                let d = active.distance(other as usize, node as usize);
                let better = match best {
                    None => true,
                    Some((bd, ba, _)) => d < bd || (d == bd && other < ba),
                };
                if better {
                    best = Some((d, other, node));
                }
            });
            best
        },
    );
    let mut global: Option<(f64, u32, u32)> = None;
    for candidate in per_node.into_iter().flatten() {
        let better = match global {
            None => true,
            Some((bd, ba, bb)) => {
                candidate.0 < bd || (candidate.0 == bd && (candidate.1, candidate.2) < (ba, bb))
            }
        };
        if better {
            global = Some(candidate);
        }
    }
    global.map(|(d, a, b)| (a as usize, b as usize, d))
}

/// The exact closest active pair, ties toward the lowest positions. Fans
/// per-node scans over `threads` with the same pure-decision argument as the
/// shortlisted search.
fn closest_full(active: &ActiveNodes<'_>, threads: usize) -> (usize, usize, f64) {
    let per_node: Vec<Option<(f64, u32, u32)>> = chunked_map(
        active.len(),
        threads,
        || (),
        |node, _| {
            let mut best: Option<(f64, u32, u32)> = None;
            for other in 0..node {
                let d = active.distance(other as usize, node as usize);
                let better = match best {
                    None => true,
                    Some((bd, ba, _)) => d < bd || (d == bd && other < ba),
                };
                if better {
                    best = Some((d, other, node));
                }
            }
            best
        },
    );
    let mut global: Option<(f64, u32, u32)> = None;
    for candidate in per_node.into_iter().flatten() {
        let better = match global {
            None => true,
            Some((bd, ba, bb)) => {
                candidate.0 < bd || (candidate.0 == bd && (candidate.1, candidate.2) < (ba, bb))
            }
        };
        if better {
            global = Some(candidate);
        }
    }
    let (d, a, b) = global.expect("at least two active nodes");
    (a as usize, b as usize, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterSpec, Clusterer, DatasetBuilder};

    fn dup_dataset() -> Dataset {
        let mut b = DatasetBuilder::anonymous(4);
        for row in [
            ["a", "b", "c", "d"],
            ["a", "b", "c", "d"], // dup of 0
            ["a", "b", "c", "e"], // near-dup of 0/1
            ["w", "x", "y", "z"],
            ["w", "x", "y", "z"], // dup of 3
            ["p", "q", "r", "s"],
        ] {
            b.push_str_row(&row, None).unwrap();
        }
        b.finish()
    }

    #[test]
    fn dedup_groups_duplicates_under_the_smallest_id() {
        let ds = dup_dataset();
        let spec = SimSpec::new(1.0).lsh(Lsh::MinHash { bands: 24, rows: 1 });
        let report = Sim::new(spec).dedup(&ds).unwrap();
        assert_eq!(report.representative[0], 0);
        assert_eq!(report.representative[1], 0);
        assert_eq!(report.representative[2], 0);
        assert_eq!(report.representative[3], 3);
        assert_eq!(report.representative[4], 3);
        assert_eq!(report.representative[5], 5);
        assert_eq!(report.n_duplicates, 3);
        // Precision 1.0: every emitted pair is exact-verified.
        for p in &report.pairs {
            assert!(p.distance <= 1.0);
        }
    }

    #[test]
    fn join_cap_is_deterministic_and_flagged() {
        let ds = dup_dataset();
        let spec = SimSpec::new(1.0)
            .lsh(Lsh::MinHash { bands: 24, rows: 1 })
            .max_pairs(2);
        let report = Sim::new(spec.clone()).join(&ds).unwrap();
        assert_eq!(report.pairs.len(), 2);
        assert!(report.capped);
        assert!(report.matched >= 2);
        // Closest-first with (a, b) tie-break: the two exact duplicates.
        assert_eq!((report.pairs[0].a, report.pairs[0].b), (0, 1));
        assert_eq!((report.pairs[1].a, report.pairs[1].b), (3, 4));
        let again = Sim::new(spec).join(&ds).unwrap();
        assert_eq!(again, report);
    }

    #[test]
    fn lsh_none_is_rejected_for_dedup_and_join() {
        let ds = dup_dataset();
        let spec = SimSpec::new(1.0).lsh(Lsh::None);
        assert!(matches!(
            Sim::new(spec.clone()).dedup(&ds),
            Err(SpecError::UnsupportedLsh { .. })
        ));
        assert!(matches!(
            Sim::new(spec).join(&ds),
            Err(SpecError::UnsupportedLsh { .. })
        ));
    }

    #[test]
    fn wrong_scheme_for_modality_is_rejected() {
        let num = NumericDataset::new(1, vec![0.0, 1.0]);
        let spec = SimSpec::new(1.0).lsh(Lsh::MinHash { bands: 8, rows: 2 });
        assert!(matches!(
            Sim::new(spec).dedup(&num),
            Err(SpecError::UnsupportedLsh {
                modality: "numeric",
                ..
            })
        ));
    }

    #[test]
    fn hierarchy_merges_numeric_centroids_bottom_up() {
        // Three well-separated blobs; fit k=3, then merge down.
        let data = NumericDataset::new(1, vec![0.0, 0.1, 0.2, 5.0, 5.1, 5.2, 20.0, 20.1, 20.2]);
        let run = Clusterer::new(
            ClusterSpec::new(3)
                .lsh(Lsh::SimHash { bands: 8, rows: 2 })
                .seed(3),
        )
        .fit(&data)
        .unwrap();
        let dendro = Sim::new(SimSpec::new(0.0).lsh(Lsh::None))
            .hierarchy(&run.model)
            .unwrap();
        assert_eq!(dendro.k, 3);
        assert_eq!(dendro.merges.len(), 2);
        assert_eq!(dendro.fallback_steps, 0);
        // First merge joins the two nearby blobs (0-ish and 5-ish); the far
        // blob joins last at a larger height.
        assert!(dendro.merges[0].height < dendro.merges[1].height);
        // Node numbering: the second merge involves the first merge's
        // product (node k + 0 = 3).
        assert_eq!(dendro.merges[1].b, 3);
    }

    #[test]
    fn dendrogram_round_trips_through_bytes_and_json() {
        let dendro = Dendrogram {
            k: 3,
            merges: vec![
                Merge {
                    a: 0,
                    b: 2,
                    height: 0.25,
                },
                Merge {
                    a: 1,
                    b: 3,
                    height: 4.5,
                },
            ],
            fallback_steps: 1,
        };
        let back = Dendrogram::from_bytes(&dendro.to_bytes()).unwrap();
        assert_eq!(back, dendro);
        let json = serde_json::to_string(&dendro).unwrap();
        let back: Dendrogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dendro);
    }

    #[test]
    fn truncated_dendrogram_bytes_are_typed_errors() {
        let bytes = Dendrogram {
            k: 2,
            merges: vec![Merge {
                a: 0,
                b: 1,
                height: 1.0,
            }],
            fallback_steps: 0,
        }
        .to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Dendrogram::from_bytes(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes was accepted"
            );
        }
    }

    #[test]
    fn sim_spec_round_trips_through_json() {
        let spec = SimSpec::new(2.5)
            .lsh(Lsh::Union {
                bands: 12,
                rows: 2,
                sim_bands: 6,
                sim_rows: 8,
            })
            .seed(99)
            .threads(4)
            .max_pairs(1000)
            .gamma(0.5);
        let json = serde_json::to_string(&spec).unwrap();
        let back: SimSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
