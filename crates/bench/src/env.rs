//! The shared environment header of every `BENCH_*.json` artifact.
//!
//! Each bench report used to record its own ad-hoc copy of `host_cpus` /
//! `quick` / `seed`, and the sweep axes (thread counts, worker counts,
//! shard counts) lived in different places per experiment — so the three
//! artifact schemas drifted. [`BenchEnv`] is the one struct they all embed
//! under the `"env"` key: hardware context plus every sweep axis, with
//! empty lists meaning "this experiment does not sweep that axis".

use std::path::Path;

/// Hardware context and sweep axes shared by every bench report.
#[derive(Clone, Debug)]
pub struct BenchEnv {
    /// Hardware threads available to this process (wall-clock speedup from
    /// any parallel axis needs more than one).
    pub host_cpus: usize,
    /// Whether the shrunken CI workload was used.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Fit thread counts swept (`ClusterSpec::threads`); empty if fixed.
    pub threads: Vec<usize>,
    /// Shard counts swept (`ClusterSpec::shards`); empty if fixed.
    pub shards: Vec<usize>,
    /// Server worker-pool sizes swept (`ServerConfig::workers`); empty if
    /// the experiment serves nothing.
    pub workers: Vec<usize>,
    /// Chunk-scheduling disciplines swept (`"contiguous"` /
    /// `"interleaved"`, the Jacobi engine's two worker schedules); empty if
    /// the experiment pins one.
    pub scheduling: Vec<String>,
}

serde::impl_serde_struct!(BenchEnv {
    host_cpus,
    quick,
    seed,
    threads,
    shards,
    workers,
    scheduling
});

impl BenchEnv {
    /// Captures the host and records the run's `quick` / `seed` settings;
    /// sweep axes start empty — set the ones the experiment varies.
    pub fn capture(quick: bool, seed: u64) -> Self {
        Self {
            host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            quick,
            seed,
            threads: Vec::new(),
            shards: Vec::new(),
            workers: Vec::new(),
            scheduling: Vec::new(),
        }
    }

    /// Records the swept fit thread counts.
    pub fn threads(mut self, threads: &[usize]) -> Self {
        self.threads = threads.to_vec();
        self
    }

    /// Records the swept shard counts.
    pub fn shards(mut self, shards: &[usize]) -> Self {
        self.shards = shards.to_vec();
        self
    }

    /// Records the swept server worker-pool sizes.
    pub fn workers(mut self, workers: &[usize]) -> Self {
        self.workers = workers.to_vec();
        self
    }

    /// Records the swept chunk-scheduling disciplines.
    pub fn scheduling(mut self, scheduling: &[&str]) -> Self {
        self.scheduling = scheduling.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// The `(host cpus: …, quick: …)` prefix every `render()` banner shares.
    pub fn banner(&self) -> String {
        format!("host cpus: {}, quick: {}", self.host_cpus, self.quick)
    }
}

/// Writes any serializable report as pretty JSON — the one write path every
/// `BENCH_*.json` artifact goes through.
pub fn write_report<T: serde::Serialize, P: AsRef<Path>>(
    report: &T,
    path: P,
) -> std::io::Result<()> {
    let text = serde_json::to_string_pretty(report).expect("report serializes");
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_round_trips_and_keeps_axis_lists() {
        let env = BenchEnv::capture(true, 7)
            .threads(&[1, 2])
            .shards(&[1, 2, 4])
            .workers(&[])
            .scheduling(&["contiguous", "interleaved"]);
        let json = serde_json::to_string(&env).unwrap();
        let back: BenchEnv = serde_json::from_str(&json).unwrap();
        assert_eq!(back.host_cpus, env.host_cpus);
        assert!(back.quick);
        assert_eq!(back.seed, 7);
        assert_eq!(back.threads, vec![1, 2]);
        assert_eq!(back.shards, vec![1, 2, 4]);
        assert!(back.workers.is_empty());
        assert_eq!(back.scheduling, vec!["contiguous", "interleaved"]);
        assert!(env.banner().contains("quick: true"));
    }
}
