//! Cluster × class contingency table — the shared basis of all metrics.

use std::collections::HashMap;

/// Sparse contingency counts between predicted clusters and true classes.
#[derive(Debug, Clone)]
pub struct Contingency {
    /// `(cluster, class) → count`, sparse (most pairs are empty when k is
    /// large, as in the paper's 20 000-cluster experiments).
    counts: HashMap<(u32, u32), u64>,
    /// Per-cluster totals.
    cluster_totals: HashMap<u32, u64>,
    /// Per-class totals.
    class_totals: HashMap<u32, u64>,
    /// Number of items.
    n: u64,
}

impl Contingency {
    /// Builds the table from aligned prediction/label slices.
    ///
    /// Panics if lengths differ.
    pub fn new(predicted: &[u32], truth: &[u32]) -> Self {
        assert_eq!(
            predicted.len(),
            truth.len(),
            "prediction/label length mismatch"
        );
        let mut counts: HashMap<(u32, u32), u64> = HashMap::new();
        let mut cluster_totals: HashMap<u32, u64> = HashMap::new();
        let mut class_totals: HashMap<u32, u64> = HashMap::new();
        for (&p, &t) in predicted.iter().zip(truth) {
            *counts.entry((p, t)).or_insert(0) += 1;
            *cluster_totals.entry(p).or_insert(0) += 1;
            *class_totals.entry(t).or_insert(0) += 1;
        }
        Self {
            counts,
            cluster_totals,
            class_totals,
            n: predicted.len() as u64,
        }
    }

    /// Total items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of non-empty clusters.
    pub fn n_clusters(&self) -> usize {
        self.cluster_totals.len()
    }

    /// Number of observed classes.
    pub fn n_classes(&self) -> usize {
        self.class_totals.len()
    }

    /// Iterates `(cluster, class, count)` cells.
    pub fn cells(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        self.counts.iter().map(|(&(p, t), &c)| (p, t, c))
    }

    /// Per-cluster totals.
    pub fn cluster_totals(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.cluster_totals.iter().map(|(&p, &c)| (p, c))
    }

    /// Per-class totals.
    pub fn class_totals(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.class_totals.iter().map(|(&t, &c)| (t, c))
    }

    /// For each cluster, the count of its most frequent class (the numerator
    /// of purity).
    pub fn majority_sum(&self) -> u64 {
        let mut best: HashMap<u32, u64> = HashMap::new();
        for (&(p, _), &c) in &self.counts {
            let slot = best.entry(p).or_insert(0);
            *slot = (*slot).max(c);
        }
        best.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_shape() {
        let c = Contingency::new(&[0, 0, 1, 1, 1], &[0, 1, 1, 1, 2]);
        assert_eq!(c.n(), 5);
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.n_classes(), 3);
        let cluster: HashMap<u32, u64> = c.cluster_totals().collect();
        assert_eq!(cluster[&0], 2);
        assert_eq!(cluster[&1], 3);
        let class: HashMap<u32, u64> = c.class_totals().collect();
        assert_eq!(class[&1], 3);
    }

    #[test]
    fn majority_sum_picks_per_cluster_max() {
        // Cluster 0: classes {0:1, 1:1} → max 1; cluster 1: {1:2, 2:1} → 2.
        let c = Contingency::new(&[0, 0, 1, 1, 1], &[0, 1, 1, 1, 2]);
        assert_eq!(c.majority_sum(), 3);
    }

    #[test]
    fn cells_cover_all_items() {
        let c = Contingency::new(&[0, 1, 0], &[2, 2, 2]);
        let total: u64 = c.cells().map(|(_, _, n)| n).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn empty_input() {
        let c = Contingency::new(&[], &[]);
        assert_eq!(c.n(), 0);
        assert_eq!(c.majority_sum(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Contingency::new(&[0], &[]);
    }
}
