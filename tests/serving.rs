//! The train/serve split, end to end: every `ClusterRun` owns a
//! `FittedModel` whose JSON envelope round-trips **byte-identically**, whose
//! `predict` reproduces the converged run's training assignments across all
//! three dataset modalities, and whose centroids warm-start refits.

use lshclust::{
    ClusterSpec, Clusterer, DatasetBuilder, FittedModel, Lsh, MixedDataset, ModelError,
    NumericDataset, SpecError, StreamOptions,
};
use lshclust_categorical::{ClusterId, Dataset, Schema, ValueId};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Fixtures: well-separated blobs in each modality.
// ---------------------------------------------------------------------------

/// `groups` categorical blobs of `per_group` items over `n_attrs`
/// attributes; a blob shares all but the last (noise) attribute.
fn cat_blobs(groups: usize, per_group: usize, n_attrs: usize) -> Dataset {
    let mut b = DatasetBuilder::anonymous(n_attrs);
    for g in 0..groups {
        for i in 0..per_group {
            let row: Vec<String> = (0..n_attrs)
                .map(|a| {
                    if a == n_attrs - 1 {
                        format!("g{g}-noise{i}")
                    } else {
                        format!("g{g}-a{a}")
                    }
                })
                .collect();
            let refs: Vec<&str> = row.iter().map(String::as_str).collect();
            b.push_str_row(&refs, Some(g as u32)).unwrap();
        }
    }
    b.finish()
}

/// `groups` numeric blobs on a circle of radius 10, 2-D.
fn num_blobs(groups: usize, per_group: usize) -> NumericDataset {
    let mut data = Vec::new();
    for g in 0..groups {
        let angle = g as f64 / groups as f64 * std::f64::consts::TAU;
        let (cx, cy) = (10.0 * angle.cos(), 10.0 * angle.sin());
        for i in 0..per_group {
            let jx = (i as f64 * 0.37).sin() * 0.2;
            let jy = (i as f64 * 0.71).cos() * 0.2;
            data.extend_from_slice(&[cx + jx, cy + jy]);
        }
    }
    NumericDataset::new(2, data)
}

fn mixed_blobs(groups: usize, per_group: usize) -> (Dataset, NumericDataset) {
    (
        cat_blobs(groups, per_group, 6),
        num_blobs(groups, per_group),
    )
}

// ---------------------------------------------------------------------------
// Acceptance: JSON round-trips byte-identically; predict on the training
// batch reproduces the converged run's assignments, per modality.
// ---------------------------------------------------------------------------

fn assert_byte_identical_round_trip(model: &lshclust::FittedModel) -> FittedModel {
    let json = model.to_json();
    let back = FittedModel::from_json(&json).expect("model envelope parses");
    assert_eq!(back.to_json(), json, "save → load → save changed bytes");
    back
}

#[test]
fn categorical_model_round_trips_and_reproduces_training_assignments() {
    let ds = cat_blobs(4, 6, 8);
    let spec = ClusterSpec::new(4)
        .lsh(Lsh::MinHash { bands: 16, rows: 2 })
        .seed(3);
    let run = Clusterer::new(spec).fit(&ds).unwrap();
    assert!(run.summary.converged);

    let reloaded = assert_byte_identical_round_trip(&run.model);
    assert_eq!(run.model.predict(&ds).unwrap(), run.assignments);
    assert_eq!(reloaded.predict(&ds).unwrap(), run.assignments);
    // Single-row path agrees with the batch path.
    for i in 0..ds.n_items() {
        assert_eq!(reloaded.predict_one(ds.row(i)).unwrap(), run.assignments[i]);
    }
}

#[test]
fn categorical_exact_baseline_model_serves_by_full_search() {
    let ds = cat_blobs(3, 5, 6);
    let run = Clusterer::new(ClusterSpec::new(3).seed(7))
        .fit(&ds)
        .unwrap();
    assert!(run.summary.converged);
    assert!(!run.model.has_index(), "Lsh::None serves by full search");
    let reloaded = assert_byte_identical_round_trip(&run.model);
    assert_eq!(reloaded.predict(&ds).unwrap(), run.assignments);
}

#[test]
fn numeric_model_round_trips_and_reproduces_training_assignments() {
    let data = num_blobs(4, 8);
    for lsh in [Lsh::None, Lsh::SimHash { bands: 10, rows: 3 }] {
        let run = Clusterer::new(ClusterSpec::new(4).lsh(lsh).seed(1))
            .fit(&data)
            .unwrap();
        assert!(run.summary.converged, "{lsh:?}");
        let reloaded = assert_byte_identical_round_trip(&run.model);
        assert_eq!(reloaded.predict(&data).unwrap(), run.assignments, "{lsh:?}");
        for i in 0..data.n_items() {
            assert_eq!(
                reloaded.predict_point(data.row(i)).unwrap(),
                run.assignments[i]
            );
        }
    }
}

#[test]
fn mixed_model_round_trips_and_reproduces_training_assignments() {
    let (cat, num) = mixed_blobs(4, 6);
    let data = MixedDataset::new(&cat, &num);
    let union = Lsh::Union {
        bands: 16,
        rows: 2,
        sim_bands: 8,
        sim_rows: 4,
    };
    for lsh in [Lsh::None, union] {
        let run = Clusterer::new(ClusterSpec::new(4).lsh(lsh).seed(1))
            .fit(&data)
            .unwrap();
        assert!(run.summary.converged, "{lsh:?}");
        let reloaded = assert_byte_identical_round_trip(&run.model);
        assert_eq!(reloaded.gamma(), run.model.gamma(), "γ survives the trip");
        assert_eq!(reloaded.predict(&data).unwrap(), run.assignments, "{lsh:?}");
        for i in 0..data.n_items() {
            assert_eq!(
                reloaded.predict_mixed_one(cat.row(i), num.row(i)).unwrap(),
                run.assignments[i]
            );
        }
    }
}

#[test]
fn model_save_load_through_a_file() {
    let ds = cat_blobs(3, 4, 6);
    let run = Clusterer::new(
        ClusterSpec::new(3)
            .lsh(Lsh::MinHash { bands: 8, rows: 2 })
            .seed(5),
    )
    .fit(&ds)
    .unwrap();
    let path = std::env::temp_dir().join("lshclust-serving-test-model.json");
    run.model.save(&path).unwrap();
    let loaded = FittedModel::load(&path).unwrap();
    assert_eq!(loaded.to_json(), run.model.to_json());
    assert_eq!(loaded.predict(&ds).unwrap(), run.assignments);
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Serving unseen items: threads, string rows, unseen values.
// ---------------------------------------------------------------------------

#[test]
fn batched_predict_is_thread_count_invariant() {
    let ds = cat_blobs(5, 8, 8);
    let run = Clusterer::new(
        ClusterSpec::new(5)
            .lsh(Lsh::MinHash { bands: 16, rows: 2 })
            .seed(2)
            .threads(4), // the model inherits the spec's thread count
    )
    .fit(&ds)
    .unwrap();
    let parallel = run.model.predict(&ds).unwrap();
    // Per-row predictions are inherently serial; they must agree.
    let serial: Vec<ClusterId> = (0..ds.n_items())
        .map(|i| run.model.predict_one(ds.row(i)).unwrap())
        .collect();
    assert_eq!(parallel, serial);
}

#[test]
fn unseen_rows_and_unseen_values_are_served() {
    let ds = cat_blobs(3, 5, 6);
    let run = Clusterer::new(
        ClusterSpec::new(3)
            .lsh(Lsh::MinHash { bands: 16, rows: 2 })
            .seed(4),
    )
    .fit(&ds)
    .unwrap();
    // A fresh item from blob 1's distribution, with a never-seen noise value.
    let fresh = ["g1-a0", "g1-a1", "g1-a2", "g1-a3", "g1-a4", "totally-new"];
    let c = run.model.predict_str_row(&fresh).unwrap();
    assert_eq!(c, run.assignments[5], "fresh item joins blob 1's cluster");
    // encode_row maps unseen strings to NOT_PRESENT.
    let encoded = run.model.encode_row(&fresh).unwrap();
    assert_eq!(encoded[5], lshclust_categorical::NOT_PRESENT);
}

#[test]
fn streaming_hand_off_produces_a_serving_model() {
    let ds = cat_blobs(4, 8, 8);
    let spec = ClusterSpec::new(0)
        .lsh(Lsh::MinHash { bands: 16, rows: 2 })
        .seed(9)
        .stream(StreamOptions {
            distance_threshold: Some(4),
            max_clusters: None,
        });
    let mut stream = Clusterer::new(spec).streaming(ds.schema().clone()).unwrap();
    for i in 0..ds.n_items() {
        stream.insert(ds.row(i));
    }
    while stream.refine_pass() > 0 {}

    let model = FittedModel::from_streaming(&stream).unwrap();
    assert_eq!(model.k(), stream.n_clusters());
    assert_eq!(model.modality(), "categorical");
    // The snapshot serves the already-inserted items exactly as the stream
    // assigned them (refinement reached a fixpoint).
    for i in 0..ds.n_items() {
        assert_eq!(
            model.predict_one(ds.row(i)).unwrap(),
            stream.assignments()[i],
            "item {i}"
        );
    }
    // And the hand-off artifact round-trips like any other model.
    let reloaded = assert_byte_identical_round_trip(&model);
    assert_eq!(reloaded.predict(&ds).unwrap(), stream.assignments());
}

#[test]
fn empty_stream_cannot_hand_off() {
    let spec = ClusterSpec::new(0).lsh(Lsh::MinHash { bands: 4, rows: 1 });
    let stream = Clusterer::new(spec)
        .streaming(Schema::anonymous(3))
        .unwrap();
    assert_eq!(
        FittedModel::from_streaming(&stream).unwrap_err(),
        ModelError::EmptyModel
    );
}

// ---------------------------------------------------------------------------
// Warm starts.
// ---------------------------------------------------------------------------

#[test]
fn warm_start_resumes_from_served_centroids() {
    let ds = cat_blobs(4, 6, 8);
    let spec = ClusterSpec::new(4)
        .lsh(Lsh::MinHash { bands: 16, rows: 2 })
        .seed(3);
    let run = Clusterer::new(spec.clone()).fit(&ds).unwrap();
    assert!(run.summary.converged);

    // Refitting from the converged model is a no-op: the first shortlisted
    // pass makes no moves.
    let refit = spec.clone().warm_start(&run.model).fit(&ds).unwrap();
    assert_eq!(refit.assignments, run.assignments);
    assert_eq!(refit.summary.n_iterations(), 1);
    assert_eq!(refit.summary.iterations[0].moves, 0);

    // A different seed draws different hashes but the same warm centroids
    // still pin the partition on separated blobs.
    let reseeded = spec.seed(99).warm_start(&run.model).fit(&ds).unwrap();
    assert_eq!(reseeded.assignments, run.assignments);
}

#[test]
fn warm_start_works_across_all_modalities_and_baselines() {
    // Numeric.
    let data = num_blobs(3, 6);
    for lsh in [Lsh::None, Lsh::SimHash { bands: 8, rows: 3 }] {
        let spec = ClusterSpec::new(3).lsh(lsh).seed(1);
        let run = Clusterer::new(spec.clone()).fit(&data).unwrap();
        let refit = spec.warm_start(&run.model).fit(&data).unwrap();
        assert_eq!(refit.assignments, run.assignments, "{lsh:?}");
    }
    // Mixed (γ flows from the warm model when the spec leaves it unset).
    let (cat, num) = mixed_blobs(3, 5);
    let data = MixedDataset::new(&cat, &num);
    let union = Lsh::Union {
        bands: 16,
        rows: 2,
        sim_bands: 8,
        sim_rows: 4,
    };
    for lsh in [Lsh::None, union] {
        let spec = ClusterSpec::new(3).lsh(lsh).seed(2);
        let run = Clusterer::new(spec.clone()).fit(&data).unwrap();
        let refit = spec.warm_start(&run.model).fit(&data).unwrap();
        assert_eq!(refit.assignments, run.assignments, "{lsh:?}");
        assert_eq!(refit.model.gamma(), run.model.gamma());
    }
    // Categorical exact baseline.
    let ds = cat_blobs(3, 5, 6);
    let spec = ClusterSpec::new(3).seed(7);
    let run = Clusterer::new(spec.clone()).fit(&ds).unwrap();
    let refit = spec.warm_start(&run.model).fit(&ds).unwrap();
    assert_eq!(refit.assignments, run.assignments);
}

#[test]
fn warm_start_mismatches_are_typed_errors() {
    let ds = cat_blobs(3, 5, 6);
    let num = num_blobs(3, 5);
    let spec = ClusterSpec::new(3).lsh(Lsh::MinHash { bands: 8, rows: 2 });
    let run = Clusterer::new(spec.clone()).fit(&ds).unwrap();

    // Wrong modality: a categorical model cannot seed a numeric fit.
    let err = ClusterSpec::new(3)
        .lsh(Lsh::SimHash { bands: 8, rows: 2 })
        .warm_start(&run.model)
        .fit(&num)
        .unwrap_err();
    assert!(matches!(err, SpecError::WarmStartMismatch { .. }), "{err}");

    // Wrong k: the spec must request exactly the model's cluster count.
    let err = ClusterSpec::new(5)
        .lsh(Lsh::MinHash { bands: 8, rows: 2 })
        .warm_start(&run.model)
        .fit(&ds)
        .unwrap_err();
    assert!(matches!(err, SpecError::WarmStartMismatch { .. }), "{err}");

    // Wrong arity: a dataset with a different attribute count.
    let narrow = cat_blobs(3, 5, 4);
    let err = spec.warm_start(&run.model).fit(&narrow).unwrap_err();
    assert!(matches!(err, SpecError::WarmStartMismatch { .. }), "{err}");
}

// ---------------------------------------------------------------------------
// Error surfaces: every SpecError variant behaves, every ModelError
// variant is reachable.
// ---------------------------------------------------------------------------

#[test]
fn streaming_rejects_non_minhash_schemes_with_typed_errors() {
    let schema = Schema::anonymous(4);
    for lsh in [
        Lsh::None,
        Lsh::SimHash { bands: 8, rows: 2 },
        Lsh::Union {
            bands: 8,
            rows: 2,
            sim_bands: 4,
            sim_rows: 4,
        },
    ] {
        let err = Clusterer::new(ClusterSpec::new(0).lsh(lsh))
            .streaming(schema.clone())
            .unwrap_err();
        assert_eq!(
            err,
            SpecError::UnsupportedLsh {
                modality: "streaming",
                lsh: lsh.name(),
            }
        );
        assert!(err.to_string().contains("streaming"), "{err}");
    }
}

#[test]
fn remaining_spec_error_variants_fire_in_context() {
    let ds = cat_blobs(2, 3, 4);
    // InvalidK.
    assert_eq!(
        Clusterer::new(ClusterSpec::new(0)).fit(&ds).unwrap_err(),
        SpecError::InvalidK { k: 0, n_items: 6 }
    );
    // UnsupportedInit.
    assert!(matches!(
        Clusterer::new(ClusterSpec::new(2).init(lshclust::Init::PlusPlus))
            .fit(&ds)
            .unwrap_err(),
        SpecError::UnsupportedInit {
            modality: "categorical",
            ..
        }
    ));
    // UnsupportedLsh.
    assert!(matches!(
        Clusterer::new(ClusterSpec::new(2).lsh(Lsh::SimHash { bands: 4, rows: 2 }))
            .fit(&ds)
            .unwrap_err(),
        SpecError::UnsupportedLsh {
            modality: "categorical",
            ..
        }
    ));
}

#[test]
fn model_error_variants_are_reachable_and_descriptive() {
    let ds = cat_blobs(2, 4, 5);
    let run = Clusterer::new(ClusterSpec::new(2).seed(1))
        .fit(&ds)
        .unwrap();
    let model = &run.model;

    // WrongModality.
    let err = model.predict_point(&[1.0]).unwrap_err();
    assert_eq!(
        err,
        ModelError::WrongModality {
            expected: "categorical",
            got: "numeric",
        }
    );
    assert!(err.to_string().contains("categorical"), "{err}");

    // ShapeMismatch.
    let err = model.predict_one(&[ValueId(0)]).unwrap_err();
    assert!(
        matches!(
            err,
            ModelError::ShapeMismatch {
                expected: 5,
                got: 1,
                ..
            }
        ),
        "{err}"
    );

    // Json: garbage input.
    assert!(matches!(
        FittedModel::from_json("not json").unwrap_err(),
        ModelError::Json(_)
    ));

    // Envelope: wrong format marker and unsupported version.
    let json = model.to_json();
    let wrong_format = json.replacen("lshclust-model", "other-format", 1);
    assert!(matches!(
        FittedModel::from_json(&wrong_format).unwrap_err(),
        ModelError::Envelope(_)
    ));
    let wrong_version = json.replacen("\"version\": 1", "\"version\": 999", 1);
    let err = FittedModel::from_json(&wrong_version).unwrap_err();
    assert!(matches!(err, ModelError::Envelope(_)));
    assert!(err.to_string().contains("999"), "{err}");

    // Json: an internally consistent modes block whose arity disagrees
    // with the schema is rejected instead of misindexing rows at query
    // time. (Tree surgery: the public API cannot produce this artifact.)
    {
        use lshclust_kmodes::modes::Modes;
        use serde::{Deserialize, Serialize, Value};
        fn entry<'a>(v: &'a mut Value, key: &str) -> &'a mut Value {
            let Value::Object(entries) = v else {
                panic!("expected object")
            };
            &mut entries
                .iter_mut()
                .find(|(k, _)| k == key)
                .expect("key present")
                .1
        }
        let mut tree = Serialize::to_value(&run.model);
        let modes = entry(entry(entry(&mut tree, "centroids"), "Categorical"), "modes");
        // 3-attr modes under the 5-attr schema.
        *modes = Serialize::to_value(&Modes::from_parts(2, 3, vec![ValueId(0); 6]));
        let err = <FittedModel as Deserialize>::from_value(&tree).unwrap_err();
        assert!(err.0.contains("attributes"), "{err}");
    }

    // Io: loading a missing path.
    assert!(matches!(
        FittedModel::load("/nonexistent/model.json").unwrap_err(),
        ModelError::Io(_)
    ));
}

// ---------------------------------------------------------------------------
// Property: across all three modalities, a converged run's model reproduces
// the training assignments (the deterministic proptest shim draws the
// dataset shapes and seeds).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn prop_categorical_predict_reproduces_training_batch(
        groups in 2usize..6,
        per_group in 3usize..8,
        seed in 0u64..1000,
    ) {
        let ds = cat_blobs(groups, per_group, 8);
        let spec = ClusterSpec::new(groups)
            .lsh(Lsh::MinHash { bands: 24, rows: 2 })
            .seed(seed);
        let run = Clusterer::new(spec).fit(&ds).unwrap();
        prop_assume!(run.summary.converged);
        let served = run.model.predict(&ds).unwrap();
        prop_assert_eq!(served, run.assignments);
    }

    #[test]
    fn prop_numeric_predict_reproduces_training_batch(
        groups in 2usize..6,
        per_group in 4usize..9,
        seed in 0u64..1000,
    ) {
        let data = num_blobs(groups, per_group);
        let spec = ClusterSpec::new(groups)
            .lsh(Lsh::SimHash { bands: 10, rows: 3 })
            .seed(seed);
        let run = Clusterer::new(spec).fit(&data).unwrap();
        prop_assume!(run.summary.converged);
        let served = run.model.predict(&data).unwrap();
        prop_assert_eq!(served, run.assignments);
    }

    #[test]
    fn prop_mixed_predict_reproduces_training_batch(
        groups in 2usize..5,
        per_group in 3usize..7,
        seed in 0u64..1000,
    ) {
        let (cat, num) = mixed_blobs(groups, per_group);
        let data = MixedDataset::new(&cat, &num);
        let spec = ClusterSpec::new(groups)
            .lsh(Lsh::Union { bands: 24, rows: 2, sim_bands: 8, sim_rows: 4 })
            .seed(seed);
        let run = Clusterer::new(spec).fit(&data).unwrap();
        prop_assume!(run.summary.converged);
        let served = run.model.predict(&data).unwrap();
        prop_assert_eq!(served, run.assignments);
    }

    #[test]
    fn prop_model_json_round_trip_is_byte_identical(
        groups in 2usize..5,
        seed in 0u64..1000,
    ) {
        let ds = cat_blobs(groups, 4, 6);
        let spec = ClusterSpec::new(groups)
            .lsh(Lsh::MinHash { bands: 12, rows: 2 })
            .seed(seed);
        let run = Clusterer::new(spec).fit(&ds).unwrap();
        let json = run.model.to_json();
        let back = FittedModel::from_json(&json).unwrap();
        prop_assert_eq!(back.to_json(), json);
    }
}
