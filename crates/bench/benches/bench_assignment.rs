//! Micro-bench: the assignment step — the paper's target bottleneck.
//!
//! Compares one item's full `k`-way search against the shortlisted search,
//! which is the entire source of MH-K-Modes' speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lshclust_bench::scale::{Settings, SHAPE_FIG2};
use lshclust_bench::synthetic::dataset_for;
use lshclust_categorical::ClusterId;
use lshclust_kmodes::assign::{best_cluster_among, best_cluster_full};
use lshclust_kmodes::init::{initial_modes, InitMethod};
use lshclust_kmodes::modes::Modes;
use lshclust_minhash::index::LshIndexBuilder;
use std::hint::black_box;

fn fixtures(scale: f64) -> (lshclust_categorical::Dataset, Modes, Vec<ClusterId>) {
    let settings = Settings {
        scale,
        seed: 42,
        out_dir: None,
    };
    let shape = SHAPE_FIG2.scaled(scale);
    let dataset = dataset_for(shape, &settings);
    let initial: Vec<ClusterId> = dataset
        .labels()
        .unwrap()
        .iter()
        .map(|&l| ClusterId(l))
        .collect();
    let mut modes = initial_modes(&dataset, shape.n_clusters, InitMethod::RandomItems, 42);
    modes.recompute(&dataset, &initial);
    (dataset, modes, initial)
}

fn bench_assignment(c: &mut Criterion) {
    let (dataset, modes, initial) = fixtures(0.01); // 900 items, 200 clusters

    let mut group = c.benchmark_group("single_item_assignment");
    group.bench_function("full_search_k200", |b| {
        let mut item = 0usize;
        b.iter(|| {
            let r = best_cluster_full(black_box(dataset.row(item)), &modes);
            item = (item + 1) % dataset.n_items();
            black_box(r)
        });
    });

    for label in ["1b1r", "20b5r"] {
        let banding = lshclust_bench::scale::banding_by_label(label).unwrap();
        let index = LshIndexBuilder::new(banding)
            .seed(42)
            .build(&dataset, &initial);
        let mut scratch = index.make_scratch(modes.k());
        group.bench_with_input(
            BenchmarkId::new("shortlist_search", label),
            &banding,
            |b, _| {
                let mut item = 0u32;
                b.iter(|| {
                    index.shortlist(item, &mut scratch, false);
                    let r =
                        best_cluster_among(dataset.row(item as usize), &modes, &scratch.clusters);
                    item = (item + 1) % dataset.n_items() as u32;
                    black_box(r)
                });
            },
        );
    }
    group.finish();

    // Distance kernels on paper-width rows.
    let mut group = c.benchmark_group("distance_kernel");
    let x = dataset.row(0);
    let y = dataset.row(1);
    group.bench_function("matching_m100", |b| {
        b.iter(|| {
            black_box(lshclust_categorical::dissimilarity::matching(
                black_box(x),
                black_box(y),
            ))
        })
    });
    group.bench_function("matching_bounded_m100_tight", |b| {
        b.iter(|| {
            black_box(lshclust_categorical::dissimilarity::matching_bounded(
                black_box(x),
                black_box(y),
                8,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_assignment);
criterion_main!(benches);
