//! Minimal CSV interchange for categorical datasets.
//!
//! Format: first line is a header of attribute names; an optional final
//! column named `__label` carries the ground-truth class as an integer.
//! Values are unquoted and must not contain commas or newlines — sufficient
//! for the workspace's synthetic data and keeps the substrate dependency-free.

use crate::dataset::{Dataset, DatasetBuilder};
use std::io::{self, BufRead, BufWriter, Write};

/// Column name that marks the ground-truth label column.
pub const LABEL_COLUMN: &str = "__label";

/// Errors from [`read_csv`].
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the CSV content.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        reason: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Reads a dataset from CSV text.
pub fn read_csv<R: BufRead>(reader: R) -> Result<Dataset, CsvError> {
    let mut lines = reader.lines();
    let header = lines.next().ok_or(CsvError::Malformed {
        line: 1,
        reason: "empty input".into(),
    })??;
    let mut cols: Vec<String> = header.split(',').map(str::trim).map(String::from).collect();
    let has_label = cols.last().map(String::as_str) == Some(LABEL_COLUMN);
    if has_label {
        cols.pop();
    }
    if cols.is_empty() {
        return Err(CsvError::Malformed {
            line: 1,
            reason: "no attribute columns".into(),
        });
    }
    let n_attrs = cols.len();
    let mut builder = DatasetBuilder::new(cols);
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let mut fields: Vec<&str> = line.split(',').collect();
        let expected = n_attrs + usize::from(has_label);
        if fields.len() != expected {
            return Err(CsvError::Malformed {
                line: lineno + 2,
                reason: format!("expected {expected} fields, got {}", fields.len()),
            });
        }
        let label = if has_label {
            let raw = fields.pop().unwrap();
            Some(raw.trim().parse::<u32>().map_err(|_| CsvError::Malformed {
                line: lineno + 2,
                reason: format!("label {raw:?} is not a u32"),
            })?)
        } else {
            None
        };
        builder
            .push_str_row(&fields, label)
            .map_err(|e| CsvError::Malformed {
                line: lineno + 2,
                reason: e.to_string(),
            })?;
    }
    Ok(builder.finish())
}

/// Writes a dataset as CSV (decoding value ids back to strings).
pub fn write_csv<W: Write>(dataset: &Dataset, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    let schema = dataset.schema();
    for a in 0..dataset.n_attrs() {
        if a > 0 {
            out.write_all(b",")?;
        }
        out.write_all(schema.attr_name(crate::AttrId(a as u32)).as_bytes())?;
    }
    if dataset.labels().is_some() {
        write!(out, ",{LABEL_COLUMN}")?;
    }
    out.write_all(b"\n")?;
    for i in 0..dataset.n_items() {
        let decoded = dataset.decode_row(i);
        out.write_all(decoded.join(",").as_bytes())?;
        if let Some(labels) = dataset.labels() {
            write!(out, ",{}", labels[i])?;
        }
        out.write_all(b"\n")?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "colour,shape,__label\nred,square,0\nred,circle,0\nblue,circle,1\n";

    #[test]
    fn read_labelled_csv() {
        let ds = read_csv(Cursor::new(SAMPLE)).unwrap();
        assert_eq!(ds.n_items(), 3);
        assert_eq!(ds.n_attrs(), 2);
        assert_eq!(ds.labels(), Some(&[0, 0, 1][..]));
        assert_eq!(
            ds.decode_row(0),
            vec!["red".to_owned(), "square".to_owned()]
        );
    }

    #[test]
    fn read_unlabelled_csv() {
        let ds = read_csv(Cursor::new("a,b\nx,y\n")).unwrap();
        assert_eq!(ds.n_items(), 1);
        assert!(ds.labels().is_none());
    }

    #[test]
    fn round_trip_preserves_content() {
        let ds = read_csv(Cursor::new(SAMPLE)).unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let again = read_csv(Cursor::new(buf)).unwrap();
        assert_eq!(again.n_items(), ds.n_items());
        for i in 0..ds.n_items() {
            assert_eq!(again.decode_row(i), ds.decode_row(i));
        }
        assert_eq!(again.labels(), ds.labels());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let ds = read_csv(Cursor::new("a\nx\n\ny\n")).unwrap();
        assert_eq!(ds.n_items(), 2);
    }

    #[test]
    fn field_count_mismatch_is_reported_with_line() {
        let err = read_csv(Cursor::new("a,b\nx\n")).unwrap_err();
        match err {
            CsvError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn bad_label_is_reported() {
        let err = read_csv(Cursor::new("a,__label\nx,notanumber\n")).unwrap_err();
        assert!(err.to_string().contains("not a u32"));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(read_csv(Cursor::new("")).is_err());
    }

    #[test]
    fn header_only_gives_empty_dataset() {
        let ds = read_csv(Cursor::new("a,b\n")).unwrap();
        assert_eq!(ds.n_items(), 0);
    }
}
