//! Full-search K-Means on dense `f64` vectors.
//!
//! The paper's framework targets "centroid-based clustering algorithms that
//! assign an object to the most similar cluster" in general; K-Means is the
//! canonical numeric member of that family and anchors the further-work
//! extension (`lshclust-core::mhkmeans` accelerates this implementation with
//! SimHash).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// A dense numeric dataset: `n × dim`, row-major.
#[derive(Clone, Debug)]
pub struct NumericDataset {
    dim: usize,
    data: Vec<f64>,
}

impl NumericDataset {
    /// Wraps a flat buffer. Panics if `data.len()` is not a multiple of `dim`.
    pub fn new(dim: usize, data: Vec<f64>) -> Self {
        assert!(dim > 0);
        assert_eq!(data.len() % dim, 0, "buffer is not a whole number of rows");
        Self { dim, data }
    }

    /// Number of vectors.
    pub fn n_items(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

/// Squared Euclidean distance.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// K-Means initialisation strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KMeansInit {
    /// `k` distinct random items.
    #[default]
    RandomItems,
    /// k-means++ seeding (D² weighting).
    PlusPlus,
}

/// Configuration for K-Means.
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Seeding strategy.
    pub init: KMeansInit,
    /// RNG seed.
    pub seed: u64,
    /// Stop when total centroid movement falls below this.
    pub tolerance: f64,
}

impl KMeansConfig {
    /// Defaults: random init, 100 iterations, tolerance 1e-9.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iterations: 100,
            init: KMeansInit::default(),
            seed: 0,
            tolerance: 1e-9,
        }
    }
}

/// Result of a K-Means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster per item.
    pub assignments: Vec<u32>,
    /// `k × dim` centroids, row-major.
    pub centroids: Vec<f64>,
    /// Iterations executed.
    pub n_iterations: usize,
    /// Whether the movement tolerance was reached (vs the iteration cap).
    pub converged: bool,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
    /// Total wall-clock time.
    pub elapsed: std::time::Duration,
}

/// Computes the `k` initial centroids.
pub fn kmeans_initial_centroids(
    data: &NumericDataset,
    k: usize,
    init: KMeansInit,
    seed: u64,
) -> Vec<f64> {
    assert!(k > 0 && k <= data.n_items());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6b6d_6561_6e73);
    match init {
        KMeansInit::RandomItems => {
            let picks = crate::init::sample_distinct_items(data.n_items(), k, seed);
            picks
                .iter()
                .flat_map(|&i| data.row(i as usize).to_vec())
                .collect()
        }
        KMeansInit::PlusPlus => {
            let n = data.n_items();
            let mut centroids: Vec<f64> = Vec::with_capacity(k * data.dim());
            let first = rng.random_range(0..n);
            centroids.extend_from_slice(data.row(first));
            let mut d2: Vec<f64> = (0..n)
                .map(|i| sq_euclidean(data.row(i), data.row(first)))
                .collect();
            for _ in 1..k {
                let total: f64 = d2.iter().sum();
                let pick = if total <= 0.0 {
                    rng.random_range(0..n)
                } else {
                    let mut t = rng.random_range(0.0..total);
                    let mut chosen = n - 1;
                    for (i, &w) in d2.iter().enumerate() {
                        if t < w {
                            chosen = i;
                            break;
                        }
                        t -= w;
                    }
                    chosen
                };
                let row = data.row(pick).to_vec();
                for (i, slot) in d2.iter_mut().enumerate() {
                    *slot = slot.min(sq_euclidean(data.row(i), &row));
                }
                centroids.extend_from_slice(&row);
            }
            centroids
        }
    }
}

/// Runs Lloyd's algorithm to convergence.
pub fn kmeans(data: &NumericDataset, config: &KMeansConfig) -> KMeansResult {
    let start = Instant::now();
    let centroids = kmeans_initial_centroids(data, config.k, config.init, config.seed);
    kmeans_from(data, config, centroids, start)
}

/// Runs Lloyd's algorithm from explicit centroids.
pub fn kmeans_from(
    data: &NumericDataset,
    config: &KMeansConfig,
    mut centroids: Vec<f64>,
    start: Instant,
) -> KMeansResult {
    let (n, dim, k) = (data.n_items(), data.dim(), config.k);
    assert_eq!(centroids.len(), k * dim);
    let mut assignments = vec![0u32; n];
    let mut converged = false;
    let mut n_iterations = 0;
    for _ in 0..config.max_iterations {
        n_iterations += 1;
        // Assignment.
        for (i, slot) in assignments.iter_mut().enumerate() {
            let row = data.row(i);
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = sq_euclidean(row, &centroids[c * dim..(c + 1) * dim]);
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            *slot = best;
        }
        // Update.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0u32; k];
        for (i, &a) in assignments.iter().enumerate() {
            let c = a as usize;
            counts[c] += 1;
            for (s, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(data.row(i)) {
                *s += x;
            }
        }
        let mut movement = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                continue; // empty cluster keeps its centroid
            }
            for d in 0..dim {
                let new = sums[c * dim + d] / f64::from(counts[c]);
                let old = centroids[c * dim + d];
                movement += (new - old) * (new - old);
                centroids[c * dim + d] = new;
            }
        }
        if movement <= config.tolerance {
            converged = true;
            break;
        }
    }
    let inertia = (0..n)
        .map(|i| {
            let c = assignments[i] as usize;
            sq_euclidean(data.row(i), &centroids[c * dim..(c + 1) * dim])
        })
        .sum();
    KMeansResult {
        assignments,
        centroids,
        n_iterations,
        converged,
        inertia,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> NumericDataset {
        // Two tight 2-D blobs around (0,0) and (10,10).
        let mut data = Vec::new();
        for i in 0..10 {
            data.extend_from_slice(&[0.1 * f64::from(i), -0.1 * f64::from(i)]);
        }
        for i in 0..10 {
            data.extend_from_slice(&[10.0 + 0.1 * f64::from(i), 10.0 - 0.1 * f64::from(i)]);
        }
        NumericDataset::new(2, data)
    }

    #[test]
    fn dataset_shape() {
        let d = blobs();
        assert_eq!(d.n_items(), 20);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.row(0).len(), 2);
    }

    #[test]
    fn separates_blobs() {
        // Seed 1 draws the two initial items from different blobs; random
        // init that doubles up inside one blob cannot split them apart.
        let mut config = KMeansConfig::new(2);
        config.seed = 1;
        let result = kmeans(&blobs(), &config);
        assert!(result.converged);
        let first = result.assignments[0];
        assert!(result.assignments[..10].iter().all(|&c| c == first));
        let second = result.assignments[10];
        assert!(result.assignments[10..].iter().all(|&c| c == second));
        assert_ne!(first, second);
        assert!(result.inertia < 10.0);
    }

    #[test]
    fn plus_plus_also_separates() {
        let mut cfg = KMeansConfig::new(2);
        cfg.init = KMeansInit::PlusPlus;
        let result = kmeans(&blobs(), &cfg);
        assert_ne!(result.assignments[0], result.assignments[19]);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = KMeansConfig::new(2);
        let a = kmeans(&blobs(), &cfg);
        let b = kmeans(&blobs(), &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn inertia_zero_when_k_equals_n() {
        let d = NumericDataset::new(1, vec![1.0, 5.0, 9.0]);
        let result = kmeans(&d, &KMeansConfig::new(3));
        assert!(result.inertia < 1e-12);
    }

    #[test]
    fn respects_iteration_cap() {
        let mut cfg = KMeansConfig::new(2);
        cfg.max_iterations = 1;
        let result = kmeans(&blobs(), &cfg);
        assert_eq!(result.n_iterations, 1);
    }

    #[test]
    fn sq_euclidean_basics() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn dataset_validates_shape() {
        let _ = NumericDataset::new(2, vec![1.0, 2.0, 3.0]);
    }
}
