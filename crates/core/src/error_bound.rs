//! Empirical verification of the §III-C error bound.
//!
//! The paper proves: when clustering an item `X` with `m` attributes, if
//! `C_n` is the cluster whose mode is nearest to `X`, then the probability
//! that the LSH index fails to put `C_n` on `X`'s shortlist is at most
//! `(1 − (1/(2m−1))^r)^{b·|C_n|}`. This module measures the *actual* miss
//! rate of an index against the modes it would be queried with, so the
//! experiments can print "paper bound vs measured" rows.

use crate::mhkmodes::KModesModel;
use lshclust_categorical::{ClusterId, Dataset};
use lshclust_kmodes::modes::{group_by_cluster, Modes};
use lshclust_minhash::index::LshIndex;
use lshclust_minhash::probability;

/// Outcome of an error-bound audit.
#[derive(Clone, Debug)]
pub struct BoundReport {
    /// Items audited.
    pub n_items: usize,
    /// Items whose true best cluster was absent from their shortlist.
    pub misses: usize,
    /// `misses / n_items`.
    pub miss_rate: f64,
    /// Misses when the item's own index entry is ignored — the quantity the
    /// §III-C argument actually bounds (it requires a collision with some
    /// *other* member `Y` of the best cluster). Self-collision only helps,
    /// so `misses <= misses_excl_self` always.
    pub misses_excl_self: usize,
    /// `misses_excl_self / n_items`.
    pub miss_rate_excl_self: f64,
    /// Mean of the per-item analytic bounds `(1−(1/(2m−1))^r)^{b·|C_n|}`
    /// (using each item's actual best-cluster population).
    pub mean_analytic_bound: f64,
    /// Worst-case analytic bound over audited items.
    pub max_analytic_bound: f64,
    /// Mean shortlist length observed.
    pub avg_shortlist: f64,
    /// Items whose best cluster shares no attribute value with them — the
    /// bound's precondition fails for these (they are still audited; misses
    /// among them are counted).
    pub unbounded_items: usize,
}

/// Audits `index` against `modes`: for every item, compares the full-search
/// best cluster with the shortlist the index produces.
///
/// `assignments` must be the cluster references currently stored in the index
/// (used to size cluster populations for the per-item bound).
pub fn audit(
    dataset: &Dataset,
    modes: &Modes,
    index: &LshIndex,
    assignments: &[ClusterId],
) -> BoundReport {
    assert_eq!(assignments.len(), dataset.n_items());
    let n = dataset.n_items();
    let k = modes.k();
    let model = KModesModel::new(dataset, modes.clone());
    let groups = group_by_cluster(assignments, k);
    let banding = index.banding();
    let m = dataset.n_attrs();

    let mut scratch = index.make_scratch(k);
    let mut misses = 0usize;
    let mut misses_excl_self = 0usize;
    let mut shortlist_total = 0usize;
    let mut bound_sum = 0.0f64;
    let mut bound_max = 0.0f64;
    let mut unbounded = 0usize;

    for item in 0..n as u32 {
        use crate::framework::CentroidModel;
        let (best, best_d) = model.best_full(item);
        index.shortlist(item, &mut scratch, true);
        if !scratch.clusters.contains(&best) {
            misses_excl_self += 1;
        }
        index.shortlist(item, &mut scratch, false);
        shortlist_total += scratch.clusters.len();
        if !scratch.clusters.contains(&best) {
            misses += 1;
        }
        // Per-item analytic bound: |C_n| counts the best cluster's members
        // other than the item itself.
        let mut population = groups.len(best.idx());
        if assignments[item as usize] == best {
            population = population.saturating_sub(1);
        }
        if best_d as usize >= m || population == 0 {
            // Precondition of §III-C fails: no member shares a value (or the
            // cluster is otherwise empty); the bound degenerates to 1.
            unbounded += 1;
            bound_sum += 1.0;
            bound_max = 1.0f64.max(bound_max);
        } else {
            let b = probability::error_bound(m, banding.rows(), banding.bands(), population as u32);
            bound_sum += b;
            bound_max = bound_max.max(b);
        }
    }

    BoundReport {
        n_items: n,
        misses,
        miss_rate: if n == 0 {
            0.0
        } else {
            misses as f64 / n as f64
        },
        misses_excl_self,
        miss_rate_excl_self: if n == 0 {
            0.0
        } else {
            misses_excl_self as f64 / n as f64
        },
        mean_analytic_bound: if n == 0 { 0.0 } else { bound_sum / n as f64 },
        max_analytic_bound: bound_max,
        avg_shortlist: if n == 0 {
            0.0
        } else {
            shortlist_total as f64 / n as f64
        },
        unbounded_items: unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;
    use lshclust_kmodes::init::{initial_modes, InitMethod};
    use lshclust_minhash::index::LshIndexBuilder;
    use lshclust_minhash::Banding;

    fn blob_dataset(groups: usize, per_group: usize, n_attrs: usize) -> Dataset {
        let mut b = DatasetBuilder::anonymous(n_attrs);
        for g in 0..groups {
            for i in 0..per_group {
                let row: Vec<String> = (0..n_attrs)
                    .map(|a| {
                        if a == 0 {
                            format!("g{g}-n{i}")
                        } else {
                            format!("g{g}-a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
            }
        }
        b.finish()
    }

    fn ground_truth_assignments(ds: &Dataset, per_group: usize) -> Vec<ClusterId> {
        (0..ds.n_items())
            .map(|i| ClusterId((i / per_group) as u32))
            .collect()
    }

    #[test]
    fn aggressive_banding_has_zero_misses() {
        let ds = blob_dataset(4, 5, 8);
        let assignments = ground_truth_assignments(&ds, 5);
        let mut modes = initial_modes(&ds, 4, InitMethod::RandomItems, 1);
        modes.recompute(&ds, &assignments);
        // 64 bands of 1 row: candidate probability ≈ 1 even for s = 1/(2m−1).
        let index = LshIndexBuilder::new(Banding::new(64, 1))
            .seed(1)
            .build(&ds, &assignments);
        let report = audit(&ds, &modes, &index, &assignments);
        assert_eq!(report.misses, 0, "{report:?}");
        assert!(report.miss_rate <= report.mean_analytic_bound + 1e-9);
    }

    #[test]
    fn strict_banding_misses_more_but_bound_holds_loosely() {
        let ds = blob_dataset(6, 4, 6);
        let assignments = ground_truth_assignments(&ds, 4);
        let mut modes = initial_modes(&ds, 6, InitMethod::RandomItems, 2);
        modes.recompute(&ds, &assignments);
        // 2 bands of 8 rows: collisions need near-identical items.
        let index = LshIndexBuilder::new(Banding::new(2, 8))
            .seed(2)
            .build(&ds, &assignments);
        let report = audit(&ds, &modes, &index, &assignments);
        // The bound with such strict banding is close to 1 — it must still
        // dominate the measured rate.
        assert!(
            report.miss_rate <= report.mean_analytic_bound + 0.05,
            "{report:?}"
        );
    }

    #[test]
    fn self_collision_only_reduces_misses() {
        let ds = blob_dataset(5, 4, 6);
        let assignments = ground_truth_assignments(&ds, 4);
        let mut modes = initial_modes(&ds, 5, InitMethod::RandomItems, 7);
        modes.recompute(&ds, &assignments);
        let index = LshIndexBuilder::new(Banding::new(4, 4))
            .seed(7)
            .build(&ds, &assignments);
        let report = audit(&ds, &modes, &index, &assignments);
        assert!(report.misses <= report.misses_excl_self, "{report:?}");
        assert!(report.miss_rate <= report.miss_rate_excl_self + 1e-12);
    }

    #[test]
    fn excl_self_miss_rate_respects_bound_for_r1() {
        // r = 1 is where the §III-C bound is informative; verify on a
        // balanced dataset with the paper-style 25b1r parameters.
        let ds = blob_dataset(8, 6, 10);
        let assignments = ground_truth_assignments(&ds, 6);
        let mut modes = initial_modes(&ds, 8, InitMethod::RandomItems, 9);
        modes.recompute(&ds, &assignments);
        let index = LshIndexBuilder::new(Banding::new(25, 1))
            .seed(9)
            .build(&ds, &assignments);
        let report = audit(&ds, &modes, &index, &assignments);
        assert!(
            report.miss_rate_excl_self <= report.mean_analytic_bound + 0.05,
            "{report:?}"
        );
    }

    #[test]
    fn report_fields_are_consistent() {
        let ds = blob_dataset(3, 4, 5);
        let assignments = ground_truth_assignments(&ds, 4);
        let mut modes = initial_modes(&ds, 3, InitMethod::RandomItems, 3);
        modes.recompute(&ds, &assignments);
        let index = LshIndexBuilder::new(Banding::new(8, 2))
            .seed(3)
            .build(&ds, &assignments);
        let report = audit(&ds, &modes, &index, &assignments);
        assert_eq!(report.n_items, 12);
        assert!(report.avg_shortlist >= 1.0);
        assert!(report.miss_rate >= 0.0 && report.miss_rate <= 1.0);
        assert!(report.mean_analytic_bound <= report.max_analytic_bound + 1e-12);
    }

    #[test]
    fn empty_dataset_report() {
        let ds = DatasetBuilder::anonymous(2).finish();
        let modes = initial_modes(&blob_dataset(1, 1, 2), 1, InitMethod::RandomItems, 0);
        let index = LshIndexBuilder::new(Banding::new(2, 1)).build(&ds, &[]);
        let report = audit(&ds, &modes, &index, &[]);
        assert_eq!(report.n_items, 0);
        assert_eq!(report.miss_rate, 0.0);
    }
}
