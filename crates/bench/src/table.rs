//! Minimal fixed-width text tables (and CSV lines) for harness output.

/// A simple text table accumulated row by row.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let n_cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let push_row = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', w - cell.len()));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        push_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            push_row(row, &mut out);
        }
        out
    }

    /// Renders as CSV (no quoting — harness cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a `Duration` as fractional seconds with millisecond precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("1 "));
    }

    #[test]
    fn csv_is_plain() {
        let mut t = TextTable::new(["x", "y"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn row_arity_checked() {
        let mut t = TextTable::new(["only-one"]);
        t.row(["a", "b"]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(f3(0.12345), "0.123");
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(["h"]);
        assert!(t.is_empty());
        t.row(["v"]);
        assert_eq!(t.len(), 1);
    }
}
