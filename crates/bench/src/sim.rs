//! Similarity-workloads experiment: what bucket-collision candidate
//! generation saves over brute-force all-pairs, and what it loses.
//!
//! The `lshclust::sim` engines (dedup / self-join / hierarchy) share one
//! candidate core: items colliding in at least one LSH band bucket become
//! candidate pairs, and only candidates are exact-verified against the
//! threshold. Precision is 1.0 by construction — verification uses the
//! modality's real distance kernel — so the two empirical questions are
//! **volume** (how many of the `n·(n−1)/2` pairs did the buckets nominate?)
//! and **recall** (how many true pairs did the buckets miss?). This
//! experiment measures both, per modality and size, against the brute-force
//! join run with the same threshold and tie-order. The artifact
//! (`BENCH_sim.json`) is the evidence for the candidate-volume claims in
//! `docs/ARCHITECTURE.md` § Similarity workloads.
//!
//! The `bench_sim` binary doubles as a regression gate: it exits non-zero
//! when any measured recall falls below [`RECALL_FLOOR`], the committed
//! floor CI enforces.

use crate::env::BenchEnv;
use lshclust::{Lsh, MixedDataset, NumericDataset, Sim, SimSpec};
use lshclust_categorical::Dataset;
use lshclust_datagen::datgen::{generate, DatgenConfig};
use std::path::Path;
use std::time::Instant;

/// The committed recall floor the `bench_sim` binary enforces. The measured
/// recall on the default seeds sits at 1.0 (see `BENCH_sim.json`); the floor
/// leaves room for small fixture drift without letting a real shortlist
/// regression slide.
pub const RECALL_FLOOR: f64 = 0.95;

/// Settings of a similarity-workloads run.
#[derive(Clone, Debug)]
pub struct SimSettings {
    /// Shrinks the workload for CI smoke runs.
    pub quick: bool,
    /// Verification threads for every join.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for SimSettings {
    fn default() -> Self {
        Self {
            quick: false,
            threads: 4,
            seed: 42,
        }
    }
}

/// One (family, size) measurement: candidate volume, verify wall-time, and
/// recall, all against the brute-force join on the same data.
#[derive(Clone, Debug)]
pub struct SimPoint {
    /// `"categorical"`, `"numeric"` or `"mixed"`.
    pub family: String,
    /// The LSH scheme generating candidates.
    pub lsh: String,
    /// Items scanned.
    pub n_items: usize,
    /// The distance threshold pairs were verified against.
    pub threshold: f64,
    /// `n·(n−1)/2` — what brute force verifies.
    pub all_pairs: usize,
    /// Distinct pairs the buckets nominated — what LSH verifies.
    pub candidate_pairs: usize,
    /// `candidate_pairs / all_pairs` — the volume LSH left standing.
    pub candidate_fraction: f64,
    /// True pairs at or under the threshold (brute-force count).
    pub exact_matched: usize,
    /// Pairs the LSH join found (all exact-verified, so ⊆ the true set).
    pub lsh_matched: usize,
    /// `lsh_matched / exact_matched` (1.0 when there is nothing to find).
    pub recall: f64,
    /// Candidate generation + verification wall-time, milliseconds.
    pub lsh_ms: f64,
    /// Brute-force all-pairs wall-time, milliseconds.
    pub brute_ms: f64,
    /// `brute_ms / lsh_ms` — what candidate generation bought.
    pub speedup: f64,
}

serde::impl_serde_struct!(SimPoint {
    family,
    lsh,
    n_items,
    threshold,
    all_pairs,
    candidate_pairs,
    candidate_fraction,
    exact_matched,
    lsh_matched,
    recall,
    lsh_ms,
    brute_ms,
    speedup
});

/// The full `BENCH_sim.json` payload.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Experiment marker.
    pub experiment: String,
    /// Host context; `threads` records the fixed verification fan-out.
    pub env: BenchEnv,
    /// The committed floor the binary enforces.
    pub recall_floor: f64,
    /// Per-(family, size) measurements.
    pub points: Vec<SimPoint>,
    /// The worst recall across every point — the gated number.
    pub min_recall: f64,
}

serde::impl_serde_struct!(SimReport {
    experiment,
    env,
    recall_floor,
    points,
    min_recall
});

/// Centered blobs: the `- 50` spreads the blob directions across the whole
/// sphere instead of packing them into the positive orthant, which is what
/// gives SimHash (an *angular* hash) something to discriminate on.
fn numeric_blobs(labels: &[u32], dim: usize) -> NumericDataset {
    let data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..dim).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 40));
                (h % 100) as f64 - 50.0 + ((i * 13 + d) as f64 * 0.37).sin() * 0.1
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

/// Runs one family at one size: timed LSH join, timed brute-force join,
/// volumes and recall off the two reports.
fn measure<D: lshclust::SimInput + ?Sized>(
    family: &str,
    lsh_name: &str,
    spec: SimSpec,
    data: &D,
) -> SimPoint {
    let sim = Sim::new(spec);
    let t = Instant::now();
    let join = sim.join(data).expect("sim join");
    let lsh_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let exact = sim.join_exact(data);
    let brute_ms = t.elapsed().as_secs_f64() * 1e3;
    let n = join.n_items;
    let all_pairs = n * n.saturating_sub(1) / 2;
    let recall = if exact.matched == 0 {
        1.0
    } else {
        join.matched as f64 / exact.matched as f64
    };
    SimPoint {
        family: family.to_owned(),
        lsh: lsh_name.to_owned(),
        n_items: n,
        threshold: sim.spec().threshold,
        all_pairs,
        candidate_pairs: join.candidate_pairs,
        candidate_fraction: join.candidate_pairs as f64 / all_pairs.max(1) as f64,
        exact_matched: exact.matched,
        lsh_matched: join.matched,
        recall,
        lsh_ms,
        brute_ms,
        speedup: if lsh_ms > 0.0 { brute_ms / lsh_ms } else { 1.0 },
    }
}

/// Runs the full experiment and returns the report.
pub fn run(settings: &SimSettings) -> SimReport {
    // Sized like the other experiments: the full run sweeps 5k and 20k rows
    // (the paper's mid sizes), quick mode stays CI-fast.
    let sizes: &[usize] = if settings.quick {
        &[1_000, 3_000]
    } else {
        &[5_000, 20_000]
    };
    let n_attrs = 16;
    let dim = 8;
    let seed = settings.seed;
    let minhash = Lsh::MinHash { bands: 16, rows: 2 };
    let simhash = Lsh::SimHash { bands: 8, rows: 16 };
    let union = Lsh::Union {
        bands: 16,
        rows: 2,
        sim_bands: 8,
        sim_rows: 16,
    };
    let spec = |lsh: Lsh, threshold: f64| {
        SimSpec::new(threshold)
            .lsh(lsh)
            .seed(seed)
            .threads(settings.threads)
    };

    let mut points = Vec::new();
    for &n in sizes {
        // ~50-row planted groups: near-duplicate structure at every size.
        let n_clusters = (n / 50).max(2);
        let dataset: Dataset = generate(&DatgenConfig::new(n, n_clusters, n_attrs).seed(seed));
        let labels: Vec<u32> = dataset.labels().expect("datgen labels").to_vec();
        let numeric = numeric_blobs(&labels, dim);
        let mixed = MixedDataset::new(&dataset, &numeric);

        eprintln!("# sim: categorical (MinHash 16b2r, n={n})");
        points.push(measure(
            "categorical",
            "MinHash 16b2r",
            spec(minhash, 3.0),
            &dataset,
        ));
        eprintln!("# sim: numeric (SimHash 8b16r, n={n})");
        points.push(measure(
            "numeric",
            "SimHash 8b16r",
            spec(simhash, 1.0),
            &numeric,
        ));
        eprintln!("# sim: mixed (MinHash ∪ SimHash, n={n})");
        points.push(measure(
            "mixed",
            "Union 16b2r + 8b16r",
            spec(union, 4.0),
            &mixed,
        ));
    }

    let min_recall = points.iter().map(|p| p.recall).fold(1.0_f64, f64::min);
    SimReport {
        experiment: "similarity-workloads".into(),
        env: BenchEnv::capture(settings.quick, seed).threads(&[settings.threads]),
        recall_floor: RECALL_FLOOR,
        points,
        min_recall,
    }
}

impl SimReport {
    /// Writes the report as pretty JSON to `path`.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        crate::env::write_report(self, path)
    }

    /// Renders an aligned text summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "similarity workloads  ({}, min recall {:.4}, floor {:.2})",
            self.env.banner(),
            self.min_recall,
            self.recall_floor
        );
        let _ = writeln!(
            out,
            "{:>12}  {:>7}  {:>12}  {:>12}  {:>7}  {:>8}  {:>9}  {:>9}  {:>7}",
            "family",
            "n",
            "all pairs",
            "candidates",
            "cand %",
            "recall",
            "lsh (ms)",
            "brute",
            "speedup"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:>12}  {:>7}  {:>12}  {:>12}  {:>6.2}%  {:>8.4}  {:>9.1}  {:>9.1}  {:>6.1}x",
                p.family,
                p.n_items,
                p.all_pairs,
                p.candidate_pairs,
                p.candidate_fraction * 100.0,
                p.recall,
                p.lsh_ms,
                p.brute_ms,
                p.speedup
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_meets_the_recall_floor_and_round_trips() {
        let report = run(&SimSettings {
            quick: true,
            threads: 2,
            seed: 7,
        });
        assert_eq!(report.points.len(), 6, "2 sizes x 3 families");
        assert!(
            report.min_recall >= RECALL_FLOOR,
            "recall {:.4} under the committed floor {RECALL_FLOOR}",
            report.min_recall
        );
        for p in &report.points {
            assert!(
                p.candidate_pairs < p.all_pairs,
                "{} n={}: candidates not below brute-force volume",
                p.family,
                p.n_items
            );
            assert!(
                p.lsh_matched <= p.exact_matched,
                "{} n={}: precision violated",
                p.family,
                p.n_items
            );
            assert!(
                p.exact_matched > 0,
                "{} n={}: nothing to find",
                p.family,
                p.n_items
            );
        }
        let json = serde_json::to_string(&report).unwrap();
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.points.len(), report.points.len());
        assert!(report.render().contains("similarity workloads"));
    }
}
