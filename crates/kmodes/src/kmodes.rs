//! The full-search K-Modes driver (§III-A1).

use crate::assign::{assign_all_full, best_cluster_full};
use crate::cost::total_cost;
use crate::init::{initial_modes, InitMethod};
use crate::modes::{group_by_cluster, Modes};
use crate::stats::{IterationStats, RunSummary};
use lshclust_categorical::{ClusterId, Dataset};
use std::time::Instant;

/// When modes are refreshed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum UpdateRule {
    /// Lloyd-style: assign *all* items, then recompute all modes — the
    /// paper's iteration structure (its figures count moves per full pass).
    #[default]
    Batch,
    /// Huang's original online rule: recompute the two affected clusters'
    /// modes immediately after each move. Converges in fewer passes on small
    /// data but each pass costs more; kept for the ablation study.
    Online,
}

/// Configuration for a K-Modes run.
#[derive(Clone, Debug)]
pub struct KModesConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Iteration cap (the paper caps Fig. 10 at 10 iterations).
    pub max_iterations: usize,
    /// Centroid initialisation strategy.
    pub init: InitMethod,
    /// Seed for initialisation randomness.
    pub seed: u64,
    /// Mode refresh rule.
    pub update: UpdateRule,
}

impl KModesConfig {
    /// Reasonable defaults: random init, batch updates, 100-iteration cap.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iterations: 100,
            init: InitMethod::RandomItems,
            seed: 0,
            update: UpdateRule::Batch,
        }
    }

    /// Sets the iteration cap.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the initialisation method.
    pub fn init(mut self, init: InitMethod) -> Self {
        self.init = init;
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the mode refresh rule.
    pub fn update(mut self, update: UpdateRule) -> Self {
        self.update = update;
        self
    }
}

/// The K-Modes estimator.
#[derive(Clone, Debug)]
pub struct KModes {
    config: KModesConfig,
}

/// Result of a K-Modes run.
#[derive(Clone, Debug)]
pub struct KModesResult {
    /// Final cluster per item.
    pub assignments: Vec<ClusterId>,
    /// Final modes.
    pub modes: Modes,
    /// Instrumentation.
    pub summary: RunSummary,
}

impl KModes {
    /// Creates an estimator from a configuration.
    pub fn new(config: KModesConfig) -> Self {
        Self { config }
    }

    /// Convenience constructor with defaults.
    pub fn with_k(k: usize) -> Self {
        Self::new(KModesConfig::new(k))
    }

    /// The configuration in use.
    pub fn config(&self) -> &KModesConfig {
        &self.config
    }

    /// Runs K-Modes to convergence (no moves), cost stagnation, or the
    /// iteration cap.
    pub fn fit(&self, dataset: &Dataset) -> KModesResult {
        let cfg = &self.config;
        let setup_start = Instant::now();
        let modes = initial_modes(dataset, cfg.k, cfg.init, cfg.seed);
        let setup = setup_start.elapsed();
        self.fit_from(dataset, modes, setup)
    }

    /// Runs K-Modes from explicit initial modes (used by experiments that
    /// must share initialisation with MH-K-Modes). `setup` is added to the
    /// run summary's setup time.
    pub fn fit_from(
        &self,
        dataset: &Dataset,
        mut modes: Modes,
        setup: std::time::Duration,
    ) -> KModesResult {
        let cfg = &self.config;
        assert_eq!(modes.k(), cfg.k, "initial modes disagree with configured k");
        let n = dataset.n_items();
        let mut assignments = vec![ClusterId(0); n];
        // Initial full assignment (step 2 of the paper's summary). This is
        // counted as iteration 1, mirroring how the paper's per-iteration
        // plots start.
        let mut iterations = Vec::new();
        let mut converged = false;
        let mut prev_cost = u64::MAX;
        for iteration in 1..=cfg.max_iterations {
            let t = Instant::now();
            let moves = match cfg.update {
                UpdateRule::Batch => {
                    let moves = assign_all_full(dataset, &modes, &mut assignments);
                    modes.recompute(dataset, &assignments);
                    moves
                }
                UpdateRule::Online => {
                    online_pass(dataset, &mut modes, &mut assignments, iteration == 1)
                }
            };
            let cost = total_cost(dataset, &modes, &assignments);
            iterations.push(IterationStats {
                iteration,
                duration: t.elapsed(),
                moves,
                avg_candidates: cfg.k as f64,
                cost,
                skipped_items: 0,
                active_clusters: 0,
            });
            // Convergence tests (paper: "no item has changed cluster, or the
            // cost has minimised"). The first pass moves everything from the
            // zero-initialised assignment, so only later passes can converge.
            if iteration > 1 && moves == 0 {
                converged = true;
                break;
            }
            if iteration > 1 && cost >= prev_cost {
                converged = true;
                break;
            }
            prev_cost = cost;
        }
        KModesResult {
            assignments,
            modes,
            summary: RunSummary {
                iterations,
                converged,
                setup,
            },
        }
    }
}

/// One online pass: items are assigned in order and the source/target modes
/// are refreshed right away.
fn online_pass(
    dataset: &Dataset,
    modes: &mut Modes,
    assignments: &mut [ClusterId],
    first_pass: bool,
) -> usize {
    let mut moves = 0;
    for item in 0..dataset.n_items() {
        let (best, _) = best_cluster_full(dataset.row(item), modes);
        let current = assignments[item];
        if best != current || first_pass {
            assignments[item] = best;
            moves += 1;
            // Refresh both affected modes from their member sets. Cluster
            // populations are ~n/k items, so this stays cheap.
            let groups = group_by_cluster(assignments, modes.k());
            recompute_single(dataset, modes, &groups, best);
            if !first_pass {
                recompute_single(dataset, modes, &groups, current);
            }
        }
    }
    moves
}

fn recompute_single(
    dataset: &Dataset,
    modes: &mut Modes,
    groups: &crate::modes::ClusterGroups,
    cluster: ClusterId,
) {
    // Recompute by building a one-cluster view: reuse Modes::recompute by
    // temporarily mapping is overkill; do it directly.
    let members = groups.members(cluster.idx());
    if members.is_empty() {
        return;
    }
    let n_attrs = dataset.n_attrs();
    let mut counts: Vec<(lshclust_categorical::ValueId, u32)> = Vec::new();
    let mut new_mode = Vec::with_capacity(n_attrs);
    for a in 0..n_attrs {
        counts.clear();
        for &item in members {
            let v = dataset.row(item as usize)[a];
            match counts.iter_mut().find(|(val, _)| *val == v) {
                Some((_, n)) => *n += 1,
                None => counts.push((v, 1)),
            }
        }
        let best = counts
            .iter()
            .copied()
            .max_by(|(va, na), (vb, nb)| na.cmp(nb).then(vb.cmp(va)))
            .expect("non-empty member group");
        new_mode.push(best.0);
    }
    modes.set_mode(cluster, &new_mode);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;

    /// Two obvious groups of three near-identical items each.
    fn two_blob_dataset() -> Dataset {
        let mut b = DatasetBuilder::anonymous(4);
        b.push_str_row(&["a", "b", "c", "d"], Some(0)).unwrap();
        b.push_str_row(&["a", "b", "c", "e"], Some(0)).unwrap();
        b.push_str_row(&["a", "b", "c", "f"], Some(0)).unwrap();
        b.push_str_row(&["w", "x", "y", "z"], Some(1)).unwrap();
        b.push_str_row(&["w", "x", "y", "q"], Some(1)).unwrap();
        b.push_str_row(&["w", "x", "y", "r"], Some(1)).unwrap();
        b.finish()
    }

    #[test]
    fn separates_two_blobs() {
        let ds = two_blob_dataset();
        let result = KModes::with_k(2).fit(&ds);
        assert!(result.summary.converged);
        // All items of a blob share a cluster, and the blobs differ.
        let a = result.assignments[0];
        assert_eq!(result.assignments[1], a);
        assert_eq!(result.assignments[2], a);
        let b = result.assignments[3];
        assert_eq!(result.assignments[4], b);
        assert_eq!(result.assignments[5], b);
        assert_ne!(a, b);
    }

    #[test]
    fn cost_is_monotone_nonincreasing_across_iterations() {
        let ds = two_blob_dataset();
        let result = KModes::new(KModesConfig::new(3).seed(5)).fit(&ds);
        let costs: Vec<u64> = result.summary.iterations.iter().map(|s| s.cost).collect();
        for w in costs.windows(2) {
            assert!(w[1] <= w[0], "cost increased: {costs:?}");
        }
    }

    #[test]
    fn converged_run_ends_with_zero_moves() {
        let ds = two_blob_dataset();
        let result = KModes::with_k(2).fit(&ds);
        assert_eq!(result.summary.iterations.last().unwrap().moves, 0);
    }

    #[test]
    fn respects_iteration_cap() {
        let ds = two_blob_dataset();
        let result = KModes::new(KModesConfig::new(2).max_iterations(1)).fit(&ds);
        assert_eq!(result.summary.n_iterations(), 1);
        assert!(!result.summary.converged);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = two_blob_dataset();
        let r1 = KModes::new(KModesConfig::new(2).seed(9)).fit(&ds);
        let r2 = KModes::new(KModesConfig::new(2).seed(9)).fit(&ds);
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.modes, r2.modes);
    }

    #[test]
    fn avg_candidates_equals_k_for_baseline() {
        let ds = two_blob_dataset();
        let result = KModes::with_k(2).fit(&ds);
        for s in &result.summary.iterations {
            assert_eq!(s.avg_candidates, 2.0);
        }
    }

    #[test]
    fn fit_from_uses_supplied_modes() {
        let ds = two_blob_dataset();
        let modes = Modes::from_items(&ds, &[0, 3]);
        let result = KModes::with_k(2).fit_from(&ds, modes, std::time::Duration::ZERO);
        assert!(result.summary.converged);
        assert_eq!(result.summary.n_iterations(), 2); // assign + verify pass
        assert_eq!(result.summary.final_cost(), Some(4));
    }

    #[test]
    fn online_update_also_separates_blobs() {
        let ds = two_blob_dataset();
        let cfg = KModesConfig::new(2).update(UpdateRule::Online).seed(1);
        let result = KModes::new(cfg).fit(&ds);
        let a = result.assignments[0];
        let b = result.assignments[3];
        assert_ne!(a, b);
        assert_eq!(result.assignments[1], a);
        assert_eq!(result.assignments[4], b);
    }

    #[test]
    fn k_equals_n_gives_zero_cost() {
        let ds = two_blob_dataset();
        let result = KModes::with_k(6).fit(&ds);
        assert_eq!(result.summary.final_cost(), Some(0));
    }

    #[test]
    fn single_cluster_mode_is_majority_vector() {
        let ds = two_blob_dataset();
        let result = KModes::with_k(1).fit(&ds);
        assert!(result.assignments.iter().all(|&c| c == ClusterId(0)));
        // Mode per attribute is some majority value; cost is the sum of
        // mismatches which must be ≤ n_items * n_attrs.
        let cost = result.summary.final_cost().unwrap();
        assert!(cost <= 24);
    }

    #[test]
    #[should_panic(expected = "disagree with configured k")]
    fn fit_from_validates_k() {
        let ds = two_blob_dataset();
        let modes = Modes::from_items(&ds, &[0]);
        let _ = KModes::with_k(2).fit_from(&ds, modes, std::time::Duration::ZERO);
    }
}
