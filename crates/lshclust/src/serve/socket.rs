//! Socket transport for the NDJSON serving protocol: many concurrent
//! TCP (or Unix-domain) clients over one shared [`super::ModelServer`].
//!
//! Connection lifecycle:
//!
//! ```text
//!            bind_tcp / bind_unix
//!                    │
//!            [accept loop thread]──spawns per connection──┐
//!                    │                                    │
//!                    │                 [reader thread]    │   [writer thread]
//!                    │                 capped line split ─┼─► mpsc<Outgoing> ─► render_reply
//!                    │                 ProtoEngine        │   (FIFO = request order)
//!                    │                                    │
//!         stop flag ◄┴── {"shutdown"} from any client ────┘
//!                    │
//!              lame-duck drain:
//!                1. accept loop exits (no new connections)
//!                2. close_intake()   (new submits fail ShutDown; queued work drains)
//!                3. shutdown read halves  (readers see EOF and exit)
//!                4. join readers, then writers (every accepted reply flushed)
//!                5. quiesce: queue empty ∧ resolved == submitted
//! ```
//!
//! Each reader feeds the *shared* micro-batch queue, so requests from
//! different clients coalesce into the same worker batches. Each
//! connection's writer resolves its tickets FIFO: replies leave in request
//! order per connection, while cross-connection order is unspecified (as
//! with any socket server).
//!
//! Robustness is part of the contract, proven by `tests/serve_faults.rs`:
//! oversized lines are answered with an error and discarded to the next
//! newline (bounded memory per connection), garbage bytes become `err`
//! replies, a client disconnecting mid-request only tears down its own
//! connection, and a client that stops reading its replies trips
//! [`SocketOptions::write_timeout`] instead of wedging a writer forever.

use super::proto::{err_response, render_reply, LineOutcome, Outgoing, ProtoEngine};
use super::{HotKeyStats, TicketStats};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables of the socket front (the serving semantics — batching,
/// deadlines, cache — live in [`super::ServerConfig`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SocketOptions {
    /// Longest accepted request line; anything longer is answered with an
    /// error and discarded up to the next newline, so one hostile client
    /// cannot balloon server memory.
    pub max_line_bytes: usize,
    /// Upper bound a writer waits on any single ticket
    /// ([`super::PredictTicket::wait_deadline`]); a stalled serving side
    /// becomes an `err` reply instead of a hung connection.
    pub wait_cap: Duration,
    /// Socket write timeout; a client that stops reading its replies is
    /// disconnected when its send buffer stays full this long (`None`
    /// blocks forever — only for trusted clients).
    pub write_timeout: Option<Duration>,
}

impl Default for SocketOptions {
    fn default() -> Self {
        Self {
            max_line_bytes: 1 << 20,
            wait_cap: Duration::from_secs(30),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }
}

impl SocketOptions {
    /// Sets the request line cap (clamps to ≥ 1).
    pub fn max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes.max(1);
        self
    }

    /// Sets the per-ticket writer wait cap.
    pub fn wait_cap(mut self, cap: Duration) -> Self {
        self.wait_cap = cap;
        self
    }

    /// Sets the socket write timeout (`None` = never time out).
    pub fn write_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.write_timeout = timeout;
        self
    }
}

/// Final accounting of a socket server run, returned by
/// [`SocketServer::wait`] / [`SocketServer::shutdown`] after the drain.
#[derive(Clone, Copy, Debug)]
pub struct SocketReport {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Protocol lines handled (including malformed ones answered with
    /// `err`).
    pub lines: u64,
    /// Ticket accounting after quiescing — `submitted == resolved` here is
    /// the "no orphaned tickets" guarantee the fault suite asserts.
    pub tickets: TicketStats,
    /// Hot-key cache counters.
    pub cache: HotKeyStats,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    fn shutdown(&self, how: Shutdown) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(how),
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(how),
        };
    }

    fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) {
        let _ = match self {
            Stream::Tcp(s) => s
                .set_read_timeout(read)
                .and_then(|()| s.set_write_timeout(write)),
            #[cfg(unix)]
            Stream::Unix(s) => s
                .set_read_timeout(read)
                .and_then(|()| s.set_write_timeout(write)),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Shared across the accept loop and every connection thread.
struct Shared {
    engine: ProtoEngine,
    options: SocketOptions,
    /// `true` once shutdown began (client request or programmatic); the
    /// accept loop and blocked readers poll it.
    stop: Mutex<bool>,
    stopped: Condvar,
    connections: AtomicU64,
    lines: AtomicU64,
    /// Read-half clones of live connections keyed by connection id, so the
    /// drain can force blocked readers to EOF. Each connection removes its
    /// own entry (closing the clone) when it ends — a long-lived daemon
    /// must not accumulate one fd per past client.
    conns: Mutex<HashMap<u64, Stream>>,
    /// Live connection thread handles; finished ones are reaped by the
    /// accept loop, the rest joined by the drain.
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn request_stop(&self) {
        *self.stop.lock().expect("stop lock") = true;
        self.stopped.notify_all();
    }

    fn stopping(&self) -> bool {
        *self.stop.lock().expect("stop lock")
    }
}

/// A running socket front over a [`ProtoEngine`]; see the
/// [module docs](self) for the lifecycle.
pub struct SocketServer {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
}

impl SocketServer {
    /// Binds a TCP listener on `addr` (e.g. `"127.0.0.1:0"` to let the OS
    /// pick a port — read it back with [`Self::local_addr`]) and starts
    /// accepting clients.
    pub fn bind_tcp(
        addr: &str,
        engine: ProtoEngine,
        options: SocketOptions,
    ) -> io::Result<SocketServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr().ok();
        Self::spawn(Listener::Tcp(listener), engine, options, local_addr)
    }

    /// Binds a Unix-domain listener on `path` and starts accepting clients.
    ///
    /// A leftover socket file from a crashed server is removed, but only
    /// after probing it: if something still answers on `path` this fails
    /// with `AddrInUse` instead of silently deleting the live socket out
    /// from under the running server (which would leave it serving nobody).
    #[cfg(unix)]
    pub fn bind_unix(
        path: &std::path::Path,
        engine: ProtoEngine,
        options: SocketOptions,
    ) -> io::Result<SocketServer> {
        match UnixStream::connect(path) {
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a server is already listening on {}", path.display()),
                ));
            }
            // Nothing there: bind directly.
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            // Stale file (typically ConnectionRefused): safe to reclaim.
            Err(_) => {
                let _ = std::fs::remove_file(path);
            }
        }
        let listener = UnixListener::bind(path)?;
        Self::spawn(Listener::Unix(listener), engine, options, None)
    }

    fn spawn(
        listener: Listener,
        engine: ProtoEngine,
        options: SocketOptions,
        local_addr: Option<SocketAddr>,
    ) -> io::Result<SocketServer> {
        match &listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(true)?,
        }
        let shared = Arc::new(Shared {
            engine,
            options,
            stop: Mutex::new(false),
            stopped: Condvar::new(),
            connections: AtomicU64::new(0),
            lines: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            threads: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, &shared))
        };
        Ok(SocketServer {
            shared,
            accept: Some(accept),
            local_addr,
        })
    }

    /// The bound TCP address (`None` for Unix-domain servers).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// The protocol engine (and through it the [`super::ModelServer`]).
    pub fn engine(&self) -> &ProtoEngine {
        &self.shared.engine
    }

    /// Connections still tracked by the server (racy by nature — for
    /// monitoring and tests). Ended connections leave both registries
    /// promptly, so this does NOT grow with the total connection count:
    /// the fault suite asserts it returns to zero after clients disconnect.
    pub fn live_connections(&self) -> usize {
        let conns = self.shared.conns.lock().expect("conn registry").len();
        let threads = self.shared.threads.lock().expect("thread registry").len();
        conns.max(threads)
    }

    /// Blocks until a client requests `{"shutdown": true}`, then runs the
    /// lame-duck drain and reports.
    pub fn wait(mut self) -> SocketReport {
        let mut stop = self.shared.stop.lock().expect("stop lock");
        while !*stop {
            stop = self.shared.stopped.wait(stop).expect("stop lock");
        }
        drop(stop);
        self.drain()
    }

    /// Programmatic shutdown: stop accepting, drain, report.
    pub fn shutdown(mut self) -> SocketReport {
        self.shared.request_stop();
        self.drain()
    }

    fn drain(&mut self) -> SocketReport {
        self.shared.request_stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let server = self.shared.engine.server();
        // Lame duck: queued work keeps draining, new submits fail ShutDown.
        server.close_intake();
        // Force blocked readers to EOF; their writers then flush what was
        // accepted and exit on the closed channel. Collect outside the lock
        // so exiting connections (which remove their own entries) never
        // contend with the join loop.
        let streams: Vec<Stream> = {
            let mut conns = self.shared.conns.lock().expect("conn registry");
            conns.drain().map(|(_, stream)| stream).collect()
        };
        for stream in streams {
            stream.shutdown(Shutdown::Read);
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut threads = self.shared.threads.lock().expect("thread registry");
            threads.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        // Quiesce: connection threads are gone, so `submitted` is final;
        // wait (bounded) for the worker pool to finish what was accepted.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let tickets = server.ticket_stats();
            if (tickets.resolved >= tickets.submitted && server.queue_len() == 0)
                || std::time::Instant::now() >= deadline
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        SocketReport {
            connections: self.shared.connections.load(Ordering::Relaxed),
            lines: self.shared.lines.load(Ordering::Relaxed),
            tickets: server.ticket_stats(),
            cache: server.hot_key_stats(),
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.drain();
        }
    }
}

fn accept_loop(listener: Listener, shared: &Arc<Shared>) {
    loop {
        if shared.stopping() {
            break;
        }
        reap_finished(shared);
        let accepted = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        };
        match accepted {
            Ok(stream) => {
                let id = shared.connections.fetch_add(1, Ordering::Relaxed);
                let read_half = match stream.try_clone() {
                    Ok(clone) => clone,
                    Err(_) => continue,
                };
                shared
                    .conns
                    .lock()
                    .expect("conn registry")
                    .insert(id, read_half);
                let handle = {
                    let shared = Arc::clone(shared);
                    std::thread::spawn(move || serve_connection(id, stream, &shared))
                };
                shared.threads.lock().expect("thread registry").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                if shared.stopping() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Joins connection threads that have already ended, so a long-lived daemon
/// serving many short-lived clients does not accumulate a handle per past
/// connection. Runs on every accept-loop tick (~5ms when idle); each
/// connection's fd-holding registry entry is removed by the connection
/// itself in [`serve_connection`].
fn reap_finished(shared: &Shared) {
    let finished: Vec<JoinHandle<()>> = {
        let mut threads = shared.threads.lock().expect("thread registry");
        let mut done = Vec::new();
        let mut i = 0;
        while i < threads.len() {
            if threads[i].is_finished() {
                done.push(threads.swap_remove(i));
            } else {
                i += 1;
            }
        }
        done
    };
    for handle in finished {
        let _ = handle.join();
    }
}

/// One connection: read NDJSON lines (capped), hand them to the engine,
/// queue replies to the writer thread. Runs on the per-connection thread
/// spawned by the accept loop; on exit it removes its registry entry so
/// the dup'ed read-half fd closes with the connection, not at shutdown.
fn serve_connection(id: u64, stream: Stream, shared: &Arc<Shared>) {
    stream.set_timeouts(
        Some(Duration::from_millis(100)),
        shared.options.write_timeout,
    );
    let write_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            shared.conns.lock().expect("conn registry").remove(&id);
            return;
        }
    };
    let (tx, rx) = mpsc::channel::<Outgoing>();
    let wait_cap = shared.options.wait_cap;
    let writer = {
        let teardown = stream.try_clone().ok();
        std::thread::spawn(move || writer_loop(write_half, rx, wait_cap, teardown))
    };

    read_lines(stream, shared, &tx);
    drop(tx); // writer drains remaining replies, then exits
    let _ = writer.join();
    shared.conns.lock().expect("conn registry").remove(&id);
}

/// The writer half: renders replies FIFO and writes them. A write failure
/// (client gone, or its send buffer full past the write timeout) tears the
/// connection down and discards the remaining replies — their tickets
/// still resolve server-side, so nothing leaks.
fn writer_loop(
    mut stream: Stream,
    rx: mpsc::Receiver<Outgoing>,
    wait_cap: Duration,
    teardown: Option<Stream>,
) {
    for out in rx.iter() {
        let line = render_reply(out, wait_cap);
        if stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
            .is_err()
        {
            if let Some(conn) = &teardown {
                conn.shutdown(Shutdown::Both);
            }
            // Drain without writing; dropped tickets resolve server-side.
            for _ in rx.iter() {}
            return;
        }
    }
}

/// The reader half: splits the byte stream into lines with a hard cap, so
/// a hostile client can neither balloon memory with an endless line nor
/// wedge the server with garbage (every malformed line is answered).
fn read_lines(mut stream: Stream, shared: &Arc<Shared>, tx: &mpsc::Sender<Outgoing>) {
    let mut pending: Vec<u8> = Vec::new();
    let mut discarding = false;
    let mut buf = [0u8; 8192];
    'read: loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if shared.stopping() {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        let mut chunk = &buf[..n];
        while let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if discarding {
                // Tail of an oversized line: drop it, resume normal parsing.
                discarding = false;
            } else {
                pending.extend_from_slice(&chunk[..pos]);
                if pending.len() > shared.options.max_line_bytes {
                    // The cap applies to complete lines too, not just the
                    // residual between reads — an over-cap line whose
                    // newline arrives in the same chunk is still rejected.
                    let _ = tx.send(oversized_reply(shared.options.max_line_bytes));
                } else if !handle_line(shared, tx, &pending) {
                    break 'read;
                }
                pending.clear();
            }
            chunk = &chunk[pos + 1..];
        }
        if discarding {
            continue;
        }
        pending.extend_from_slice(chunk);
        if pending.len() > shared.options.max_line_bytes {
            let _ = tx.send(oversized_reply(shared.options.max_line_bytes));
            pending.clear();
            discarding = true;
        }
    }
    // A half-written trailing line (client died mid-request) still gets
    // parsed — it answers with `err` like any malformed line would, and is
    // simply unread by the dead client.
    if !discarding && !pending.is_empty() {
        let _ = handle_line(shared, tx, &pending);
    }
}

/// The `err` reply for a line past [`SocketOptions::max_line_bytes`].
fn oversized_reply(max_line_bytes: usize) -> Outgoing {
    Outgoing::Line(err_response(
        None,
        &format!("line exceeds {max_line_bytes} bytes; discarded to next newline"),
    ))
}

/// Routes one complete line through the engine; `false` stops the reader
/// (the client asked for shutdown).
fn handle_line(shared: &Arc<Shared>, tx: &mpsc::Sender<Outgoing>, raw: &[u8]) -> bool {
    shared.lines.fetch_add(1, Ordering::Relaxed);
    let line = String::from_utf8_lossy(raw);
    match shared.engine.handle_line(&line) {
        LineOutcome::Ignore => true,
        LineOutcome::Reply(out) => {
            let _ = tx.send(out);
            // Periodic stats push (`--stats-every`): rides the same ordered
            // reply channel, so it lands between responses, never inside one.
            if let Some(stats) = shared.engine.take_due_stats() {
                let _ = tx.send(Outgoing::Line(stats));
            }
            true
        }
        LineOutcome::Shutdown(out) => {
            let _ = tx.send(out);
            shared.request_stop();
            false
        }
    }
}
