//! Serving quickstart: **fit → save → load → predict → warm-start refit**.
//!
//! A `ClusterRun` is not a terminal report — it owns a `FittedModel`:
//! frozen centroids plus an LSH index built over those centroids, so unseen
//! items are assigned by probing a handful of candidate clusters instead of
//! all `k`. The model persists as a versioned JSON envelope and seeds
//! warm-started refits when fresh data arrives.
//!
//! ```text
//! cargo run --release -p lshclust --example serving
//! ```

use lshclust::{ClusterSpec, Clusterer, FittedModel, Lsh};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_metrics::purity;

fn main() {
    // --- fit ---------------------------------------------------------------
    let seed = 7;
    let config = DatgenConfig::new(2_000, 200, 60).seed(seed);
    println!(
        "training on {} items x {} attrs ({} rule clusters) ...",
        config.n_items, config.n_attrs, config.n_clusters
    );
    let train = generate(&config);
    let spec = ClusterSpec::new(config.n_clusters)
        .lsh(Lsh::MinHash { bands: 20, rows: 5 })
        .seed(seed)
        .max_iterations(30);
    let run = Clusterer::new(spec.clone()).fit(&train).unwrap();
    println!(
        "  {} iterations, converged: {}, purity {:.3}",
        run.summary.n_iterations(),
        run.summary.converged,
        purity(&run.labels(), train.labels().unwrap()),
    );

    // --- save / load -------------------------------------------------------
    let path = std::env::temp_dir().join("lshclust-serving-example.json");
    run.model.save(&path).unwrap();
    println!(
        "saved model artifact ({} clusters, {} bytes) to {}",
        run.model.k(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        path.display()
    );
    let model = FittedModel::load(&path).unwrap();

    // --- predict -----------------------------------------------------------
    // Re-serving the training batch reproduces the run's assignments almost
    // everywhere. (Fit-time assignment shortlists over an *item* index with
    // self-collision; serving shortlists over the *centroid* index — on
    // hard, overlapping data the two local optima can differ on a few
    // items. `tests/serving.rs` pins exact equality on separated data.)
    let served = model.predict(&train).unwrap();
    let agree = served
        .iter()
        .zip(&run.assignments)
        .filter(|(a, b)| a == b)
        .count();
    let rate = agree as f64 / served.len() as f64;
    println!(
        "predict(training batch) agrees with run.assignments on {agree}/{} items ({:.1}%)",
        served.len(),
        rate * 100.0,
    );
    assert!(rate > 0.8, "served assignments diverged: {rate:.3}");

    // A fresh batch is assigned through the centroid shortlist (per-query
    // cost independent of k).
    let fresh = generate(&DatgenConfig::new(500, 200, 60).seed(seed + 1));
    let t = std::time::Instant::now();
    let assignments = model.predict(&fresh).unwrap();
    let elapsed = t.elapsed();
    println!(
        "assigned {} unseen items in {:.1} ms ({:.0} items/s)",
        assignments.len(),
        elapsed.as_secs_f64() * 1e3,
        assignments.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    );

    // --- warm-start refit --------------------------------------------------
    // Refit on the training data, resuming from the served centroids
    // instead of re-initialising: the model is already near its fixpoint,
    // so the refit settles in a couple of cheap passes.
    let refit = spec.warm_start(&model).fit(&train).unwrap();
    println!(
        "warm-started refit: {} iterations ({} moves in the first pass), purity {:.3}",
        refit.summary.n_iterations(),
        refit.summary.iterations[0].moves,
        purity(&refit.labels(), train.labels().unwrap()),
    );
    assert!(refit.summary.converged);
    let _ = std::fs::remove_file(&path);
    println!("done.");
}
