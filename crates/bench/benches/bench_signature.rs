//! Micro-bench: MinHash signature generation (Algorithm 1).
//!
//! Ablation axes: hash family (mix vs tabulation) and signature length
//! (the paper's 1b1r / 20b2r / 20b5r / 50b5r correspond to n = 1 / 40 /
//! 100 / 250 hash functions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lshclust_minhash::signature::SignatureGenerator;
use lshclust_minhash::{HashFamily, MixHashFamily, TabulationHashFamily};
use std::hint::black_box;

fn elements(m: usize) -> Vec<u64> {
    // One present element per attribute, as in the synthetic datasets.
    (0..m as u64)
        .map(|a| (a << 32) | (a * 2_654_435_761 % 40_000))
        .collect()
}

fn bench_signature(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature_generation");
    let items = elements(100);
    for n in [1usize, 40, 100, 250] {
        group.bench_with_input(BenchmarkId::new("mix_m100", n), &n, |b, &n| {
            let generator = SignatureGenerator::new(MixHashFamily::new(n, 42));
            let mut out = Vec::new();
            b.iter(|| {
                generator.signature_into(black_box(items.iter().copied()), &mut out);
                black_box(out.last().copied())
            });
        });
        group.bench_with_input(BenchmarkId::new("tabulation_m100", n), &n, |b, &n| {
            let generator = SignatureGenerator::new(TabulationHashFamily::new(n, 42));
            let mut out = Vec::new();
            b.iter(|| {
                generator.signature_into(black_box(items.iter().copied()), &mut out);
                black_box(out.last().copied())
            });
        });
    }
    group.finish();

    // Direct family evaluation cost (one hash application).
    let mut group = c.benchmark_group("hash_family_eval");
    let mix = MixHashFamily::new(8, 1);
    let tab = TabulationHashFamily::new(8, 1);
    group.bench_function("mix", |b| {
        b.iter(|| black_box(mix.eval(3, black_box(0xdead_beef))))
    });
    group.bench_function("tabulation", |b| {
        b.iter(|| black_box(tab.eval(3, black_box(0xdead_beef))))
    });
    group.finish();
}

fn bench_numeric_families(c: &mut Criterion) {
    use lshclust_minhash::pstable::PStableHash;
    use lshclust_minhash::simhash::SimHash;

    let dim = 16;
    let v: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
    let mut group = c.benchmark_group("numeric_lsh_signature");
    let sim = SimHash::new(128, dim, 42);
    group.bench_function("simhash_128bit_d16", |b| {
        b.iter(|| black_box(sim.signature(black_box(&v))))
    });
    let pst = PStableHash::new(128, dim, 4.0, 42);
    group.bench_function("pstable_128hash_d16", |b| {
        b.iter(|| black_box(pst.signature(black_box(&v))))
    });
    group.finish();
}

criterion_group!(benches, bench_signature, bench_numeric_families);
criterion_main!(benches);
