//! The banding scheme: a signature of `n = b·r` values is split into `b`
//! bands of `r` rows; each band is hashed into its own bucket universe
//! (§III-A2: "there will be b sets of buckets to map to, one set for each
//! band so no overlapping between bands can occur").

use crate::hashfn::mix64;

/// Banding parameters `b` (bands) × `r` (rows per band).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Banding {
    bands: u32,
    rows: u32,
}

impl Banding {
    /// Creates a banding scheme. Panics if either dimension is zero.
    pub fn new(bands: u32, rows: u32) -> Self {
        assert!(bands > 0, "bands must be positive");
        assert!(rows > 0, "rows must be positive");
        Self { bands, rows }
    }

    /// Number of bands `b`.
    #[inline]
    pub fn bands(&self) -> u32 {
        self.bands
    }

    /// Rows per band `r`.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Required signature length `n = b·r`.
    #[inline]
    pub fn signature_len(&self) -> usize {
        self.bands as usize * self.rows as usize
    }

    /// The similarity at which the candidate-pair probability curve is
    /// steepest, `(1/b)^{1/r}` (§III-A2).
    pub fn threshold(&self) -> f64 {
        (1.0 / f64::from(self.bands)).powf(1.0 / f64::from(self.rows))
    }

    /// Hashes band `band` of `signature` into a 64-bit bucket key.
    ///
    /// The band index is folded into the key so the same `r` minima hash to
    /// *different* buckets in different bands (per-band bucket universes).
    #[inline]
    pub fn band_key(&self, signature: &[u64], band: u32) -> u64 {
        debug_assert_eq!(signature.len(), self.signature_len());
        debug_assert!(band < self.bands);
        let r = self.rows as usize;
        let start = band as usize * r;
        let mut acc = mix64(u64::from(band) ^ 0x00b4_11d5_u64);
        for &v in &signature[start..start + r] {
            // Sequential mixing: order-sensitive combination of the r minima.
            acc = mix64(acc ^ v);
        }
        acc
    }

    /// Computes all `b` band keys of a signature into `out`.
    pub fn band_keys_into(&self, signature: &[u64], out: &mut Vec<u64>) {
        out.clear();
        out.reserve(self.bands as usize);
        for band in 0..self.bands {
            out.push(self.band_key(signature, band));
        }
    }

    /// Allocating convenience wrapper over [`Self::band_keys_into`].
    pub fn band_keys(&self, signature: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        self.band_keys_into(signature, &mut out);
        out
    }

    /// Probability that two items with Jaccard similarity `s` share at least
    /// one band bucket: `1 − (1 − s^r)^b`.
    pub fn candidate_probability(&self, s: f64) -> f64 {
        crate::probability::candidate_probability(s, self.rows, self.bands)
    }
}

// `{"bands": 20, "rows": 5}`; deserialization re-validates positivity so a
// hand-edited parameter file errors instead of panicking.
impl serde::Serialize for Banding {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("bands".to_owned(), serde::Serialize::to_value(&self.bands)),
            ("rows".to_owned(), serde::Serialize::to_value(&self.rows)),
        ])
    }
}

impl serde::Deserialize for Banding {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::expected("object", "Banding"))?;
        let bands: u32 = serde::field(entries, "bands", "Banding")?;
        let rows: u32 = serde::field(entries, "rows", "Banding")?;
        if bands == 0 || rows == 0 {
            return Err(serde::Error(format!(
                "Banding dimensions must be positive, got {bands}b{rows}r"
            )));
        }
        Ok(Banding::new(bands, rows))
    }
}

impl std::fmt::Display for Banding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}b{}r", self.bands, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        let b = Banding::new(20, 5);
        assert_eq!(b.bands(), 20);
        assert_eq!(b.rows(), 5);
        assert_eq!(b.signature_len(), 100);
        assert_eq!(b.to_string(), "20b5r");
    }

    #[test]
    #[should_panic(expected = "bands must be positive")]
    fn zero_bands_rejected() {
        let _ = Banding::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "rows must be positive")]
    fn zero_rows_rejected() {
        let _ = Banding::new(1, 0);
    }

    #[test]
    fn threshold_matches_formula() {
        let b = Banding::new(20, 5);
        assert!((b.threshold() - (1.0f64 / 20.0).powf(0.2)).abs() < 1e-12);
        // 1 band 1 row: threshold 1.0 (everything below certainty).
        assert_eq!(Banding::new(1, 1).threshold(), 1.0);
    }

    #[test]
    fn identical_bands_share_keys() {
        let b = Banding::new(4, 3);
        let sig: Vec<u64> = (0..12).collect();
        assert_eq!(b.band_key(&sig, 2), b.band_key(&sig, 2));
        assert_eq!(b.band_keys(&sig), b.band_keys(&sig));
    }

    #[test]
    fn same_rows_different_band_different_key() {
        // Two bands with identical r-row content must land in different
        // bucket universes.
        let b = Banding::new(2, 2);
        let sig = vec![7u64, 8, 7, 8];
        assert_ne!(b.band_key(&sig, 0), b.band_key(&sig, 1));
    }

    #[test]
    fn partial_signature_difference_changes_only_that_band() {
        let b = Banding::new(3, 2);
        let sig1: Vec<u64> = vec![1, 2, 3, 4, 5, 6];
        let mut sig2 = sig1.clone();
        sig2[2] = 99; // inside band 1
        assert_eq!(b.band_key(&sig1, 0), b.band_key(&sig2, 0));
        assert_ne!(b.band_key(&sig1, 1), b.band_key(&sig2, 1));
        assert_eq!(b.band_key(&sig1, 2), b.band_key(&sig2, 2));
    }

    #[test]
    fn band_key_is_order_sensitive_within_band() {
        let b = Banding::new(1, 2);
        let k1 = b.band_key(&[1, 2], 0);
        let k2 = b.band_key(&[2, 1], 0);
        assert_ne!(k1, k2);
    }

    #[test]
    fn band_keys_into_reuses_buffer() {
        let b = Banding::new(5, 1);
        let sig: Vec<u64> = (0..5).collect();
        let mut buf = vec![0u64; 32];
        b.band_keys_into(&sig, &mut buf);
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn candidate_probability_delegates() {
        let b = Banding::new(10, 1);
        assert!((b.candidate_probability(0.01) - 0.0956).abs() < 0.001);
    }
}
