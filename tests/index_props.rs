//! Property-based tests (proptest) on the LSH index and the streaming
//! clusterer — the structures whose invariants the whole framework rests on.

use lshclust_categorical::{ClusterId, Dataset, Schema, ValueId};
use lshclust_core::streaming::{StreamingConfig, StreamingMhKModes};
use lshclust_minhash::index::{ItemScratch, LshIndexBuilder};
use lshclust_minhash::{Banding, QueryMode};
use proptest::prelude::*;

/// A random small dataset: `n` rows over `m` attributes with `domain` values.
fn dataset_strategy(max_items: usize, m: usize, domain: u32) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(0..domain, m), 2..max_items).prop_map(move |rows| {
        let values: Vec<ValueId> = rows.iter().flatten().map(|&v| ValueId(v)).collect();
        Dataset::from_parts(Schema::anonymous(m), values, None)
    })
}

fn arbitrary_assignments(n: usize, k: u32, salt: u32) -> Vec<ClusterId> {
    (0..n)
        .map(|i| ClusterId((i as u32).wrapping_mul(salt.max(1)) % k))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Self-collision: with self included, every item's shortlist contains
    /// its own current cluster, for any dataset, banding and assignment.
    #[test]
    fn shortlist_always_contains_own_cluster(
        ds in dataset_strategy(30, 6, 5),
        bands in 1u32..12,
        rows in 1u32..4,
        salt in 1u32..50,
    ) {
        let k = 7;
        let assignments = arbitrary_assignments(ds.n_items(), k, salt);
        let index = LshIndexBuilder::new(Banding::new(bands, rows))
            .seed(1)
            .build(&ds, &assignments);
        let mut scratch = index.make_scratch(k as usize);
        for item in 0..ds.n_items() as u32 {
            index.shortlist(item, &mut scratch, false);
            prop_assert!(
                scratch.clusters.contains(&assignments[item as usize]),
                "item {} missing own cluster", item
            );
            // No duplicates in the shortlist.
            let mut sorted = scratch.clusters.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), scratch.clusters.len());
        }
    }

    /// Scan-mode and precomputed-mode queries return identical shortlists.
    #[test]
    fn query_modes_agree(
        ds in dataset_strategy(25, 5, 4),
        bands in 1u32..10,
        salt in 1u32..50,
    ) {
        let k = 5;
        let assignments = arbitrary_assignments(ds.n_items(), k, salt);
        let scan = LshIndexBuilder::new(Banding::new(bands, 2))
            .seed(3)
            .mode(QueryMode::ScanBuckets)
            .build(&ds, &assignments);
        let pre = LshIndexBuilder::new(Banding::new(bands, 2))
            .seed(3)
            .mode(QueryMode::Precomputed)
            .build(&ds, &assignments);
        let mut s1 = scan.make_scratch(k as usize);
        let mut s2 = pre.make_scratch(k as usize);
        for item in 0..ds.n_items() as u32 {
            scan.shortlist(item, &mut s1, false);
            pre.shortlist(item, &mut s2, false);
            let mut a = s1.clusters.clone();
            let mut b = s2.clusters.clone();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "item {} disagrees", item);
        }
    }

    /// Candidate relation is symmetric: if `j` is among `i`'s candidates,
    /// `i` is among `j`'s (they share a bucket).
    #[test]
    fn candidate_relation_is_symmetric(
        ds in dataset_strategy(20, 5, 3),
        bands in 1u32..8,
    ) {
        let n = ds.n_items();
        let assignments = vec![ClusterId(0); n];
        let index = LshIndexBuilder::new(Banding::new(bands, 2))
            .seed(5)
            .build(&ds, &assignments);
        let mut scratch = ItemScratch::new(n);
        let mut candidates: Vec<Vec<u32>> = Vec::with_capacity(n);
        for item in 0..n as u32 {
            let mut list = Vec::new();
            index.for_each_candidate_item(item, &mut scratch, |o| list.push(o));
            candidates.push(list);
        }
        for i in 0..n {
            for &j in &candidates[i] {
                prop_assert!(
                    candidates[j as usize].contains(&(i as u32)),
                    "candidate relation asymmetric: {} -> {}", i, j
                );
            }
        }
    }

    /// Identical rows always collide (identical signatures in every band).
    #[test]
    fn duplicate_items_always_collide(
        row in prop::collection::vec(0u32..6, 5),
        bands in 1u32..10,
        rows in 1u32..5,
    ) {
        let values: Vec<ValueId> =
            row.iter().chain(row.iter()).map(|&v| ValueId(v)).collect();
        let ds = Dataset::from_parts(Schema::anonymous(5), values, None);
        let assignments = vec![ClusterId(0), ClusterId(1)];
        let index = LshIndexBuilder::new(Banding::new(bands, rows))
            .seed(7)
            .build(&ds, &assignments);
        let mut scratch = index.make_scratch(2);
        index.shortlist(0, &mut scratch, true); // exclude self
        prop_assert!(
            scratch.clusters.contains(&ClusterId(1)),
            "identical twin not shortlisted"
        );
    }

    /// Streaming invariants hold for arbitrary insertion streams: cluster
    /// sizes sum to n, assignments are in range, outcome reports match state.
    #[test]
    fn streaming_bookkeeping_is_consistent(
        rows in prop::collection::vec(prop::collection::vec(0u32..4, 4), 1..40),
        threshold in 0u32..5,
    ) {
        let mut config = StreamingConfig::new(Banding::new(6, 2), 4);
        config.distance_threshold = threshold;
        let mut s = StreamingMhKModes::new(config, Schema::anonymous(4));
        for (i, row) in rows.iter().enumerate() {
            let encoded: Vec<ValueId> = row.iter().map(|&v| ValueId(v)).collect();
            let out = s.insert(&encoded);
            prop_assert_eq!(out.item as usize, i);
            prop_assert!(out.cluster.idx() < s.n_clusters());
            prop_assert_eq!(s.assignments()[i], out.cluster);
        }
        let total: u32 =
            (0..s.n_clusters()).map(|c| s.cluster_size(ClusterId(c as u32))).sum();
        prop_assert_eq!(total as usize, rows.len());
        // Refinement never breaks the size bookkeeping.
        s.refine_pass();
        let total: u32 =
            (0..s.n_clusters()).map(|c| s.cluster_size(ClusterId(c as u32))).sum();
        prop_assert_eq!(total as usize, rows.len());
    }

    /// With a zero distance threshold and no cap, identical rows share a
    /// cluster and distinct rows are split apart.
    #[test]
    fn streaming_zero_threshold_groups_exact_duplicates(
        rows in prop::collection::vec(prop::collection::vec(0u32..3, 3), 2..30),
    ) {
        let mut config = StreamingConfig::new(Banding::new(24, 1), 3);
        config.distance_threshold = 0;
        let mut s = StreamingMhKModes::new(config, Schema::anonymous(3));
        let mut outcomes = Vec::new();
        for row in &rows {
            let encoded: Vec<ValueId> = row.iter().map(|&v| ValueId(v)).collect();
            outcomes.push(s.insert(&encoded).cluster);
        }
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                if outcomes[i] == outcomes[j] {
                    // Same cluster at threshold 0 means the later item was at
                    // distance 0 from the cluster mode at its insertion time;
                    // with identical-only merging the rows must be equal...
                    // unless the mode drifted — which cannot happen because
                    // every member is identical to the founding row.
                    prop_assert_eq!(&rows[i], &rows[j]);
                }
            }
        }
    }
}
