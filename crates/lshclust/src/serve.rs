//! The long-lived serving layer: [`ModelServer`] — a worker pool over a
//! hot-swappable [`FittedModel`], fed by a micro-batching request queue.
//!
//! [`FittedModel::predict`] is a synchronous library call: its throughput is
//! bounded by whatever batch one caller happens to hold. A service front has
//! the opposite shape — **many** concurrent callers, each holding a *single*
//! row — and serving each row as its own call wastes the batch machinery
//! (thread fan-out, scratch reuse) the predict path already has. The server
//! closes that gap:
//!
//! * callers submit single requests ([`ModelServer::submit_row`] and
//!   friends) and get back a [`PredictTicket`] to wait on — an
//!   `async`-shaped API built on the offline shims (std threads + channels,
//!   no tokio);
//! * requests land in a bounded [`MicroBatchQueue`] whose consumers pop
//!   **coalesced batches**: the first request opens a short
//!   [`ServerConfig::flush_latency`] window in which concurrent callers'
//!   requests merge, up to [`ServerConfig::max_batch`];
//! * each worker serves its batch against an atomic **snapshot** of the
//!   current model, fanned over the model's `spec.threads` with one reused
//!   scratch per thread — the same shortlisted assignment core as
//!   `FittedModel::predict`, so a served answer is byte-identical to the
//!   library call;
//! * the model behind the server **hot reloads** ([`ModelServer::reload`] /
//!   [`ModelHandle::reload`]): the swap is one generation bump plus an
//!   `Arc` store, in-flight batches finish on the snapshot they started
//!   with, and every [`Prediction`] carries the generation that served it;
//! * [`ModelServer::shutdown`] closes intake (further submits fail with
//!   [`ServeError::ShutDown`]), drains every queued request, and joins the
//!   workers — no ticket is ever left hanging.
//!
//! ```
//! use lshclust::serve::{ModelServer, ServerConfig};
//! use lshclust::{ClusterSpec, Clusterer, Lsh, NumericDataset};
//!
//! let data = NumericDataset::new(1, vec![0.0, 0.2, 0.4, 9.0, 9.2, 9.4]);
//! let spec = ClusterSpec::new(2).lsh(Lsh::SimHash { bands: 8, rows: 2 });
//! let run = Clusterer::new(spec).fit(&data).unwrap();
//!
//! let server = ModelServer::start(run.model.clone(), ServerConfig::default());
//! let ticket = server.submit_point(vec![0.1]).unwrap();   // async-style
//! let prediction = ticket.wait().unwrap();
//! assert_eq!(prediction.cluster, run.assignments[0]);
//! assert_eq!(prediction.generation, 0);                    // initial model
//! server.shutdown();                                       // drains + joins
//! ```

pub mod proto;
pub mod socket;

use crate::model::{FittedModel, ModelError, ServeScratch};
use lshclust_categorical::{ClusterId, ValueId};
use lshclust_core::parallel::{chunked_map, AdaptiveWindow, MicroBatchQueue, QueuePushError};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shape of a [`ModelServer`]'s worker pool and micro-batching queue.
///
/// All counts clamp to at least 1 at [`ModelServer::start`] (the workspace's
/// `threads(0)` boundary rule) except [`Self::hot_keys`], where 0 genuinely
/// means "no cache". `max_batch: 1` or a zero `flush_latency` disables
/// coalescing — every request is served as its own batch — which is the
/// ablation mode `bench_serve` measures against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads popping batches from the queue.
    pub workers: usize,
    /// Most requests coalesced into one batch.
    pub max_batch: usize,
    /// How long the first request of a batch waits for company before the
    /// batch is flushed to a worker. With [`Self::adaptive_flush`] on (the
    /// default) this is the **ceiling** of a load-scaled window; off, it is
    /// the fixed window every batch waits.
    pub flush_latency: Duration,
    /// Most requests pending in the queue; submissions beyond it fail fast
    /// with [`ServeError::QueueFull`] instead of blocking the caller.
    pub queue_depth: usize,
    /// Deadline applied to requests submitted without their own: a request
    /// older than this when a worker reaches it resolves
    /// [`ServeError::DeadlineExceeded`] instead of being scored. `None`
    /// (the default) means requests wait as long as it takes.
    pub default_deadline: Option<Duration>,
    /// Scale the coalescing window with observed load (each worker's
    /// [`AdaptiveWindow`]): near-zero latency when the queue is shallow,
    /// growing toward [`Self::flush_latency`] under sustained load. `false`
    /// is the fixed-window escape hatch (the pre-adaptive behaviour).
    pub adaptive_flush: bool,
    /// Capacity (entries) of the generation-keyed hot-key prediction cache;
    /// `0` disables it. Identical requests recur heavily under skewed
    /// (Zipfian) traffic, and a cache hit skips the shortlist probe and
    /// scoring entirely while returning — by exact-payload construction —
    /// the same answer the uncached path would.
    pub hot_keys: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 64,
            flush_latency: Duration::from_micros(200),
            queue_depth: 1024,
            default_deadline: None,
            adaptive_flush: true,
            hot_keys: 1024,
        }
    }
}

impl ServerConfig {
    /// Sets the worker count (`0` clamps to 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Sets the coalescing cap (`0` clamps to 1 = no coalescing).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }

    /// Sets the coalescing window (zero = flush immediately).
    pub fn flush_latency(mut self, latency: Duration) -> Self {
        self.flush_latency = latency;
        self
    }

    /// Sets the queue bound (`0` clamps to 1).
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n.max(1);
        self
    }

    /// Sets the default per-request deadline (`None` = unbounded).
    pub fn default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.default_deadline = deadline;
        self
    }

    /// Turns load-adaptive flush latency on or off (`false` = the fixed
    /// window escape hatch).
    pub fn adaptive_flush(mut self, adaptive: bool) -> Self {
        self.adaptive_flush = adaptive;
        self
    }

    /// Sets the hot-key cache capacity (`0` disables the cache).
    pub fn hot_keys(mut self, entries: usize) -> Self {
        self.hot_keys = entries;
        self
    }

    fn normalized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.max_batch = self.max_batch.max(1);
        self.queue_depth = self.queue_depth.max(1);
        self
    }
}

/// Why a serving request failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The request queue is at `queue_depth`; the server is shedding load.
    QueueFull,
    /// The server was shut down; no further requests are accepted.
    ShutDown,
    /// The model rejected the request (wrong modality, wrong shape, …).
    Model(ModelError),
    /// The serving side went away without answering (a worker panicked).
    Disconnected,
    /// The request's deadline passed before a worker reached it; it was
    /// skipped, not scored.
    DeadlineExceeded,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "request queue is full (load shed)"),
            ServeError::ShutDown => write!(f, "server is shut down"),
            ServeError::Model(e) => write!(f, "model rejected the request: {e}"),
            ServeError::Disconnected => write!(f, "serving side disconnected without a reply"),
            ServeError::DeadlineExceeded => write!(f, "request deadline passed before serving"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        ServeError::Model(e)
    }
}

/// A served assignment: the chosen cluster plus the **generation** of the
/// model that produced it (0 for the model the server started with, bumped
/// by every reload) — so callers can tell pre- and post-reload answers
/// apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// The assigned cluster.
    pub cluster: ClusterId,
    /// Generation of the model snapshot that served this request.
    pub generation: u64,
}

/// One request's payload. String rows stay raw until serving time so they
/// are encoded under the schema of the model snapshot that actually answers
/// them (which may be newer than the one live at submit time).
#[derive(Clone)]
enum Payload {
    Row(Vec<ValueId>),
    Point(Vec<f64>),
    Mixed(Vec<ValueId>, Vec<f64>),
    StrRow(Vec<String>),
    StrMixed(Vec<String>, Vec<f64>),
}

struct Request {
    payload: Payload,
    /// Absolute point past which this request must not be scored; `None`
    /// waits forever. Resolved at submit time from the per-request override
    /// or [`ServerConfig::default_deadline`].
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<Prediction, ServeError>>,
}

/// The waitable half of a submitted request.
///
/// Obtained from the `submit_*` methods; [`Self::wait`] blocks until a
/// worker has served the request (shutdown drains the queue, so every
/// ticket issued before shutdown resolves).
#[must_use = "a ticket resolves to the prediction; drop it and the answer is lost"]
pub struct PredictTicket {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl PredictTicket {
    /// Blocks until the request is served.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Non-blocking poll: `None` while the request is still in flight. A
    /// request that can no longer be answered (its serving side went away)
    /// resolves to `Some(Err(ServeError::Disconnected))` rather than
    /// pretending to be in flight forever.
    pub fn try_wait(&self) -> Option<Result<Prediction, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }

    /// Blocks at most `timeout` for the request to be served; `None` means
    /// it is still in flight (the ticket stays waitable). A dead serving
    /// side resolves to `Some(Err(ServeError::Disconnected))` — this is the
    /// variant CLI writer loops use so a wedged worker pool can never block
    /// a caller forever.
    pub fn wait_deadline(&self, timeout: Duration) -> Option<Result<Prediction, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

struct Current {
    generation: u64,
    model: Arc<FittedModel>,
}

/// A shared, atomically swappable reference to the model being served.
///
/// Cloning the handle is cheap (one `Arc`); every clone sees the same
/// current model. [`Self::reload`] swaps it for all holders at once —
/// workers snapshot per batch, so in-flight batches finish on the model
/// they started with while the very next batch sees the new one. This is
/// the hot-reload primitive behind [`ModelServer::reload`], exposed
/// separately so a control plane (e.g. the `cluster serve` stdin loop) can
/// swap models without holding the server itself.
#[derive(Clone)]
pub struct ModelHandle {
    current: Arc<RwLock<Current>>,
}

impl ModelHandle {
    /// Wraps `model` as generation 0.
    pub fn new(model: FittedModel) -> Self {
        Self {
            current: Arc::new(RwLock::new(Current {
                generation: 0,
                model: Arc::new(model),
            })),
        }
    }

    /// The current generation (0 until the first reload).
    pub fn generation(&self) -> u64 {
        self.current.read().expect("model lock").generation
    }

    /// A snapshot of the current model — stays valid (and unchanged) across
    /// concurrent reloads.
    pub fn model(&self) -> Arc<FittedModel> {
        self.snapshot().1
    }

    fn snapshot(&self) -> (u64, Arc<FittedModel>) {
        let current = self.current.read().expect("model lock");
        (current.generation, Arc::clone(&current.model))
    }

    /// Atomically swaps in `model` and returns the new generation. Requests
    /// already being served finish against their snapshot; requests served
    /// after the swap see `model`.
    pub fn reload(&self, model: FittedModel) -> u64 {
        let mut current = self.current.write().expect("model lock");
        current.generation += 1;
        current.model = Arc::new(model);
        current.generation
    }

    /// [`Self::reload`] from a serialized model envelope (the versioned JSON
    /// of [`FittedModel::to_json`]); the envelope is parsed and validated
    /// **in full before the write lock is taken**, so a bad artifact can
    /// never take down a healthy server — the generation only moves when a
    /// complete, valid model is ready to swap in.
    pub fn reload_from_json(&self, json: &str) -> Result<u64, ModelError> {
        let model = FittedModel::from_json(json)?;
        Ok(self.reload(model))
    }

    /// [`Self::reload`] from serialized envelope bytes, sniffing v1 JSON vs
    /// the v2 binary format ([`FittedModel::from_bytes`]). Same guarantee as
    /// [`Self::reload_from_json`]: decode fails ⇒ no swap, no generation
    /// bump. The v2 path is the one to reach for under load — its decode
    /// copies the index's flat band-key buffers instead of re-hashing every
    /// centroid, so the pause before the swap shrinks with it.
    pub fn reload_from_bytes(&self, bytes: &[u8]) -> Result<u64, ModelError> {
        let model = FittedModel::from_bytes(bytes)?;
        Ok(self.reload(model))
    }

    /// [`Self::reload_from_bytes`] straight from a file path (either
    /// envelope format). Read or decode fails ⇒ no swap, no generation bump.
    pub fn reload_from_path<P: AsRef<std::path::Path>>(&self, path: P) -> Result<u64, ModelError> {
        let model = FittedModel::load(path)?;
        Ok(self.reload(model))
    }
}

/// Observable counters of the hot-key cache (see
/// [`ModelServer::hot_key_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotKeyStats {
    /// Requests answered straight from the cache (no shortlist probe, no
    /// scoring).
    pub hits: u64,
    /// Requests that went through the full predict path (including every
    /// request when the cache is disabled).
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
}

/// Ticket accounting (see [`ModelServer::ticket_stats`]): with the server
/// drained, `submitted == resolved` — anything else means an orphaned
/// ticket, which the fault-injection suite treats as a hard failure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TicketStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests replied to (served, failed, deadline-skipped, or failed by
    /// a panicking worker — every accepted request ends up here).
    pub resolved: u64,
}

/// Exact-query memo from payload to cluster, keyed by model generation.
///
/// **Why exact payloads and not just band signatures:** two distinct rows
/// can share a band signature yet have different nearest centroids, so a
/// signature-keyed map could serve the wrong cluster. Keying by the full
/// payload (hash + stored-copy equality check, `f64` compared by bits)
/// makes a hit *by construction* return exactly what the uncached path
/// computed for that payload on this generation — byte-identical answers.
///
/// **Invalidation:** every entry belongs to the generation recorded in the
/// guarded state. A lookup or insert under a *newer* generation wipes the
/// map first; one under an *older* generation (an in-flight batch racing a
/// reload) is refused so stale answers can never be cached or served.
///
/// String payloads are cached too: encoding is deterministic under a fixed
/// schema, and the generation guard pins the schema.
struct HotKeyCache {
    capacity: usize,
    state: Mutex<HotKeyState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct HotKeyState {
    generation: u64,
    map: HashMap<u64, (Payload, ClusterId)>,
}

impl HotKeyCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            state: Mutex::new(HotKeyState {
                generation: 0,
                map: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Aligns `state` to `generation`; `false` means the caller runs on an
    /// older snapshot than the cache has seen and must not touch the map.
    fn align(state: &mut HotKeyState, generation: u64) -> bool {
        if state.generation < generation {
            state.map.clear();
            state.generation = generation;
        }
        state.generation == generation
    }

    fn lookup(&self, generation: u64, payload: &Payload) -> Option<ClusterId> {
        if self.capacity == 0 {
            return None;
        }
        let key = payload_key(payload);
        let mut state = self.state.lock().expect("hot-key lock");
        let hit = if Self::align(&mut state, generation) {
            match state.map.get(&key) {
                Some((stored, cluster)) if payload_eq(stored, payload) => Some(*cluster),
                _ => None,
            }
        } else {
            None
        };
        drop(state);
        match hit {
            Some(cluster) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(cluster)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, generation: u64, payload: &Payload, cluster: ClusterId) {
        if self.capacity == 0 {
            return;
        }
        let key = payload_key(payload);
        let mut state = self.state.lock().expect("hot-key lock");
        if !Self::align(&mut state, generation) {
            return; // older snapshot than the cache: never poison it
        }
        if state.map.len() >= self.capacity && !state.map.contains_key(&key) {
            // Wholesale reset at capacity: hot keys repopulate in a few
            // requests, and it keeps the map allocation bounded without
            // tracking recency.
            state.map.clear();
        }
        state.map.insert(key, (payload.clone(), cluster));
    }

    fn stats(&self) -> HotKeyStats {
        HotKeyStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.state.lock().expect("hot-key lock").map.len(),
        }
    }
}

/// FNV-1a over the payload's modality tag and content (`f64` by bit
/// pattern, matching [`payload_eq`]).
fn payload_key(payload: &Payload) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    struct Fnv(u64);
    impl Fnv {
        fn word(&mut self, word: u64) {
            for byte in word.to_le_bytes() {
                self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(PRIME);
            }
        }
        fn str(&mut self, s: &str) {
            for &byte in s.as_bytes() {
                self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(PRIME);
            }
            self.word(s.len() as u64);
        }
    }
    let mut h = Fnv(OFFSET);
    match payload {
        Payload::Row(row) => {
            h.word(1);
            row.iter().for_each(|v| h.word(u64::from(v.0)));
        }
        Payload::Point(point) => {
            h.word(2);
            point.iter().for_each(|x| h.word(x.to_bits()));
        }
        Payload::Mixed(row, point) => {
            h.word(3);
            row.iter().for_each(|v| h.word(u64::from(v.0)));
            h.word(row.len() as u64);
            point.iter().for_each(|x| h.word(x.to_bits()));
        }
        Payload::StrRow(row) => {
            h.word(4);
            row.iter().for_each(|s| h.str(s));
        }
        Payload::StrMixed(row, point) => {
            h.word(5);
            row.iter().for_each(|s| h.str(s));
            h.word(row.len() as u64);
            point.iter().for_each(|x| h.word(x.to_bits()));
        }
    }
    h.0
}

/// Exact payload equality with `f64` compared by bit pattern (`NaN`s with
/// identical bits are "the same request"; `0.0 != -0.0` — stricter than
/// `==`, which is the safe direction for a cache key).
fn payload_eq(a: &Payload, b: &Payload) -> bool {
    fn bits_eq(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }
    match (a, b) {
        (Payload::Row(a), Payload::Row(b)) => a == b,
        (Payload::Point(a), Payload::Point(b)) => bits_eq(a, b),
        (Payload::Mixed(ar, ap), Payload::Mixed(br, bp)) => ar == br && bits_eq(ap, bp),
        (Payload::StrRow(a), Payload::StrRow(b)) => a == b,
        (Payload::StrMixed(ar, ap), Payload::StrMixed(br, bp)) => ar == br && bits_eq(ap, bp),
        _ => false,
    }
}

/// The long-lived serving front over a [`FittedModel`]: a worker pool fed by
/// a micro-batching request queue, with atomic hot reload and graceful
/// draining shutdown. See the [module docs](self) for the full lifecycle.
pub struct ModelServer {
    handle: ModelHandle,
    queue: Arc<MicroBatchQueue<Request>>,
    workers: Vec<JoinHandle<()>>,
    config: ServerConfig,
    cache: Arc<HotKeyCache>,
    submitted: AtomicU64,
    resolved: Arc<AtomicU64>,
}

impl ModelServer {
    /// Spawns `config.workers` worker threads serving `model`.
    pub fn start(model: FittedModel, config: ServerConfig) -> Self {
        let config = config.normalized();
        let handle = ModelHandle::new(model);
        let queue = Arc::new(MicroBatchQueue::new(config.queue_depth));
        let cache = Arc::new(HotKeyCache::new(config.hot_keys));
        let resolved = Arc::new(AtomicU64::new(0));
        let workers = (0..config.workers)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let handle = handle.clone();
                let cache = Arc::clone(&cache);
                let resolved = Arc::clone(&resolved);
                std::thread::spawn(move || worker_loop(&queue, &handle, &cache, &resolved, config))
            })
            .collect();
        Self {
            handle,
            queue,
            workers,
            config,
            cache,
            submitted: AtomicU64::new(0),
            resolved,
        }
    }

    /// The normalized configuration in effect.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// A clone of the server's [`ModelHandle`] (for control planes that
    /// reload or inspect the model without owning the server).
    pub fn handle(&self) -> ModelHandle {
        self.handle.clone()
    }

    /// The current model generation.
    pub fn generation(&self) -> u64 {
        self.handle.generation()
    }

    /// A snapshot of the model currently being served.
    pub fn model(&self) -> Arc<FittedModel> {
        self.handle.model()
    }

    /// Hot-reloads the served model without draining in-flight requests;
    /// returns the new generation. See [`ModelHandle::reload`].
    pub fn reload(&self, model: FittedModel) -> u64 {
        self.handle.reload(model)
    }

    /// Requests currently pending in the queue (monitoring; racy by nature).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Hit/miss/occupancy counters of the hot-key cache (all zero when
    /// `hot_keys: 0`; `misses` still counts served requests).
    pub fn hot_key_stats(&self) -> HotKeyStats {
        self.cache.stats()
    }

    /// Submitted-vs-resolved ticket counters. After a drain (shutdown or
    /// `close_intake` + quiesce) the two must be equal; the fault-injection
    /// suite asserts exactly that to prove no injected fault leaks tickets.
    pub fn ticket_stats(&self) -> TicketStats {
        // `submitted` is counted before a request becomes visible to
        // workers (see submit()), and `resolved` is loaded first here, so a
        // snapshot can at worst under-report resolved — it can never show
        // resolved > submitted.
        let resolved = self.resolved.load(Ordering::Acquire);
        TicketStats {
            submitted: self.submitted.load(Ordering::Acquire),
            resolved,
        }
    }

    fn submit(
        &self,
        payload: Payload,
        deadline: Option<Duration>,
    ) -> Result<PredictTicket, ServeError> {
        let deadline = deadline.map(|d| Instant::now() + d);
        let (reply, rx) = mpsc::channel();
        // Count before the push: a worker can pop and resolve the request
        // the instant it lands in the queue, and its submission must already
        // be visible by then (`resolved > submitted` must never be
        // observable). Rejected pushes undo the count.
        self.submitted.fetch_add(1, Ordering::Release);
        match self.queue.push(Request {
            payload,
            deadline,
            reply,
        }) {
            Ok(()) => Ok(PredictTicket { rx }),
            Err(QueuePushError::Full(_)) => {
                self.submitted.fetch_sub(1, Ordering::Release);
                Err(ServeError::QueueFull)
            }
            Err(QueuePushError::Closed(_)) => {
                self.submitted.fetch_sub(1, Ordering::Release);
                Err(ServeError::ShutDown)
            }
        }
    }

    /// Submits one encoded categorical row (values under the model's
    /// training schema).
    pub fn submit_row(&self, row: Vec<ValueId>) -> Result<PredictTicket, ServeError> {
        self.submit(Payload::Row(row), self.config.default_deadline)
    }

    /// [`Self::submit_row`] with an explicit deadline (`None` = wait
    /// forever), overriding [`ServerConfig::default_deadline`].
    pub fn submit_row_deadline(
        &self,
        row: Vec<ValueId>,
        deadline: Option<Duration>,
    ) -> Result<PredictTicket, ServeError> {
        self.submit(Payload::Row(row), deadline)
    }

    /// Submits one numeric point.
    pub fn submit_point(&self, point: Vec<f64>) -> Result<PredictTicket, ServeError> {
        self.submit(Payload::Point(point), self.config.default_deadline)
    }

    /// [`Self::submit_point`] with an explicit deadline (`None` = wait
    /// forever), overriding [`ServerConfig::default_deadline`].
    pub fn submit_point_deadline(
        &self,
        point: Vec<f64>,
        deadline: Option<Duration>,
    ) -> Result<PredictTicket, ServeError> {
        self.submit(Payload::Point(point), deadline)
    }

    /// Submits one mixed item (encoded categorical part + numeric part).
    pub fn submit_mixed(
        &self,
        row: Vec<ValueId>,
        point: Vec<f64>,
    ) -> Result<PredictTicket, ServeError> {
        self.submit(Payload::Mixed(row, point), self.config.default_deadline)
    }

    /// [`Self::submit_mixed`] with an explicit deadline (`None` = wait
    /// forever), overriding [`ServerConfig::default_deadline`].
    pub fn submit_mixed_deadline(
        &self,
        row: Vec<ValueId>,
        point: Vec<f64>,
        deadline: Option<Duration>,
    ) -> Result<PredictTicket, ServeError> {
        self.submit(Payload::Mixed(row, point), deadline)
    }

    /// Submits one raw string row; it is encoded at **serving** time under
    /// the schema of whichever model snapshot answers it, so reloads apply
    /// to queued string rows too.
    pub fn submit_str_row(&self, row: &[&str]) -> Result<PredictTicket, ServeError> {
        self.submit_str_row_deadline(row, self.config.default_deadline)
    }

    /// [`Self::submit_str_row`] with an explicit deadline (`None` = wait
    /// forever), overriding [`ServerConfig::default_deadline`].
    pub fn submit_str_row_deadline(
        &self,
        row: &[&str],
        deadline: Option<Duration>,
    ) -> Result<PredictTicket, ServeError> {
        self.submit(
            Payload::StrRow(row.iter().map(|s| (*s).to_owned()).collect()),
            deadline,
        )
    }

    /// Submits one raw string row plus a numeric part (mixed models); like
    /// [`Self::submit_str_row`], the categorical part is encoded at
    /// **serving** time under the schema of whichever model snapshot answers
    /// it, so hot reloads apply to queued mixed requests too.
    pub fn submit_str_mixed(
        &self,
        row: &[&str],
        point: Vec<f64>,
    ) -> Result<PredictTicket, ServeError> {
        self.submit_str_mixed_deadline(row, point, self.config.default_deadline)
    }

    /// [`Self::submit_str_mixed`] with an explicit deadline (`None` = wait
    /// forever), overriding [`ServerConfig::default_deadline`].
    pub fn submit_str_mixed_deadline(
        &self,
        row: &[&str],
        point: Vec<f64>,
        deadline: Option<Duration>,
    ) -> Result<PredictTicket, ServeError> {
        self.submit(
            Payload::StrMixed(row.iter().map(|s| (*s).to_owned()).collect(), point),
            deadline,
        )
    }

    /// Submit-and-wait convenience for [`Self::submit_row`].
    pub fn predict_row(&self, row: Vec<ValueId>) -> Result<Prediction, ServeError> {
        self.submit_row(row)?.wait()
    }

    /// Submit-and-wait convenience for [`Self::submit_point`].
    pub fn predict_point(&self, point: Vec<f64>) -> Result<Prediction, ServeError> {
        self.submit_point(point)?.wait()
    }

    /// Submit-and-wait convenience for [`Self::submit_mixed`].
    pub fn predict_mixed(
        &self,
        row: Vec<ValueId>,
        point: Vec<f64>,
    ) -> Result<Prediction, ServeError> {
        self.submit_mixed(row, point)?.wait()
    }

    /// Submit-and-wait convenience for [`Self::submit_str_row`].
    pub fn predict_str_row(&self, row: &[&str]) -> Result<Prediction, ServeError> {
        self.submit_str_row(row)?.wait()
    }

    /// Submit-and-wait convenience for [`Self::submit_str_mixed`].
    pub fn predict_str_mixed(
        &self,
        row: &[&str],
        point: Vec<f64>,
    ) -> Result<Prediction, ServeError> {
        self.submit_str_mixed(row, point)?.wait()
    }

    /// Lame-duck mode: closes intake **without** consuming the server —
    /// further submits fail with [`ServeError::ShutDown`] while
    /// already-accepted requests keep draining. The first half of
    /// [`Self::shutdown`], useful when a daemon wants to refuse new work
    /// before its final drain.
    pub fn close_intake(&self) {
        self.queue.close();
    }

    /// Graceful shutdown: closes intake (further submits fail with
    /// [`ServeError::ShutDown`]), lets the workers **drain every queued
    /// request**, and joins them. Dropping the server does the same, so a
    /// ticket issued before shutdown always resolves.
    pub fn shutdown(self) {
        // Drop runs the close-drain-join sequence.
    }
}

impl Drop for ModelServer {
    fn drop(&mut self) {
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Below this batch size a worker serves inline with its cached scratch;
/// spawning `spec.threads` scoped workers costs tens of microseconds, which
/// only amortizes over batches with real work in them.
const FAN_OUT_MIN_BATCH: usize = 17;

/// How a single popped request resolved inside a batch.
#[derive(Clone)]
enum Served {
    /// Served through the full predict path (cacheable on success).
    Scored(Result<ClusterId, ModelError>),
    /// Answered from the hot-key cache (already known correct for this
    /// generation; re-inserting would be a wasted lock).
    CacheHit(ClusterId),
    /// Deadline already passed at pop time: skipped, not scored.
    Expired,
}

/// One worker: pop a coalesced batch, snapshot the model, serve it — inline
/// with a reused worker-local scratch for small batches, fanned over the
/// model's `spec.threads` (one scratch per thread) for large ones — and
/// reply per request. Expired requests are skipped (never scored), cache
/// hits skip scoring, and fresh scored answers populate the cache. A panic
/// while serving fails that batch's tickets with
/// [`ServeError::Disconnected`] and keeps the worker alive, so requests
/// still in the queue are never orphaned. Exits when the queue is closed
/// and drained.
fn worker_loop(
    queue: &MicroBatchQueue<Request>,
    handle: &ModelHandle,
    cache: &HotKeyCache,
    resolved: &AtomicU64,
    config: ServerConfig,
) {
    let mut batch: Vec<Request> = Vec::new();
    // Worker-local scratch reused across batches, keyed by the generation it
    // was built against (a reload can change k, schema, even modality).
    let mut cached: Option<(u64, ServeScratch)> = None;
    // Per-worker flush-window controller: each worker sees its own share of
    // the load, which is exactly the signal its window should follow.
    let mut window = AdaptiveWindow::new();
    loop {
        let flush = if config.adaptive_flush {
            window.window(config.flush_latency)
        } else {
            config.flush_latency
        };
        if !queue.pop_batch(&mut batch, config.max_batch, flush) {
            break;
        }
        window.observe(batch.len(), config.max_batch);
        let now = Instant::now();
        let (generation, model) = handle.snapshot();
        let threads = model.spec().threads;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if threads > 1 && batch.len() >= FAN_OUT_MIN_BATCH {
                chunked_map(
                    batch.len(),
                    threads,
                    || model.serve_scratch(),
                    |i, scratch| {
                        Some(serve_request(
                            &model,
                            cache,
                            generation,
                            now,
                            &batch[i as usize],
                            scratch,
                        ))
                    },
                )
                .into_iter()
                .map(|slot| slot.expect("chunked_map fills every slot"))
                .collect::<Vec<_>>()
            } else {
                let scratch = match &mut cached {
                    Some((cached_generation, scratch)) if *cached_generation == generation => {
                        scratch
                    }
                    slot => {
                        *slot = Some((generation, model.serve_scratch()));
                        &mut slot.as_mut().expect("just set").1
                    }
                };
                batch
                    .iter()
                    .map(|request| serve_request(&model, cache, generation, now, request, scratch))
                    .collect()
            }
        }));
        match outcome {
            Ok(results) => {
                for (request, served) in batch.drain(..).zip(results) {
                    let reply = match served {
                        Served::Scored(Ok(cluster)) => {
                            cache.insert(generation, &request.payload, cluster);
                            Ok(Prediction {
                                cluster,
                                generation,
                            })
                        }
                        Served::CacheHit(cluster) => Ok(Prediction {
                            cluster,
                            generation,
                        }),
                        Served::Scored(Err(e)) => Err(ServeError::Model(e)),
                        Served::Expired => Err(ServeError::DeadlineExceeded),
                    };
                    resolved.fetch_add(1, Ordering::Release);
                    // The caller may have dropped its ticket; its business.
                    let _ = request.reply.send(reply);
                }
            }
            Err(_) => {
                // Serving this batch panicked (a model-internals bug): fail
                // these tickets explicitly, drop the possibly-corrupt
                // cached scratch, and keep the worker alive — otherwise
                // requests still in the queue would hang forever.
                cached = None;
                for request in batch.drain(..) {
                    resolved.fetch_add(1, Ordering::Release);
                    let _ = request.reply.send(Err(ServeError::Disconnected));
                }
            }
        }
    }
}

/// Serves one popped request: deadline check first (an expired request must
/// not burn scoring work), then the hot-key cache, then the full predict
/// path.
fn serve_request(
    model: &FittedModel,
    cache: &HotKeyCache,
    generation: u64,
    now: Instant,
    request: &Request,
    scratch: &mut ServeScratch,
) -> Served {
    if request.deadline.is_some_and(|deadline| deadline <= now) {
        return Served::Expired;
    }
    if let Some(cluster) = cache.lookup(generation, &request.payload) {
        return Served::CacheHit(cluster);
    }
    Served::Scored(serve_one(model, &request.payload, scratch))
}

fn serve_one(
    model: &FittedModel,
    payload: &Payload,
    scratch: &mut ServeScratch,
) -> Result<ClusterId, ModelError> {
    match payload {
        Payload::Row(row) => model.predict_row_with(row, scratch),
        Payload::Point(point) => model.predict_point_with(point, scratch),
        Payload::Mixed(row, point) => model.predict_mixed_with(row, point, scratch),
        Payload::StrRow(row) => {
            let refs: Vec<&str> = row.iter().map(String::as_str).collect();
            let encoded = model.encode_row(&refs)?;
            model.predict_row_with(&encoded, scratch)
        }
        Payload::StrMixed(row, point) => {
            let refs: Vec<&str> = row.iter().map(String::as_str).collect();
            let encoded = model.encode_row(&refs)?;
            model.predict_mixed_with(&encoded, point, scratch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterSpec, Clusterer, DatasetBuilder, Lsh, NumericDataset};

    fn categorical_model(seed: u64) -> (crate::ClusterRun, crate::Dataset) {
        let mut b = DatasetBuilder::anonymous(3);
        for row in [
            ["a", "b", "c"],
            ["a", "b", "d"],
            ["a", "b", "e"],
            ["x", "y", "z"],
            ["x", "y", "w"],
            ["x", "y", "v"],
        ] {
            b.push_str_row(&row, None).unwrap();
        }
        let ds = b.finish();
        let spec = ClusterSpec::new(2)
            .lsh(Lsh::MinHash { bands: 8, rows: 2 })
            .seed(seed);
        let run = Clusterer::new(spec).fit(&ds).unwrap();
        (run, ds)
    }

    #[test]
    fn served_rows_match_the_library_predict() {
        let (run, ds) = categorical_model(1);
        let server = ModelServer::start(run.model.clone(), ServerConfig::default());
        for i in 0..ds.n_items() {
            let served = server.predict_row(ds.row(i).to_vec()).unwrap();
            assert_eq!(served.cluster, run.model.predict_one(ds.row(i)).unwrap());
            assert_eq!(served.generation, 0);
        }
        server.shutdown();
    }

    #[test]
    fn str_rows_and_modality_errors_round_trip() {
        let (run, _) = categorical_model(2);
        let server = ModelServer::start(run.model.clone(), ServerConfig::default());
        let served = server.predict_str_row(&["a", "b", "q"]).unwrap();
        assert_eq!(
            served.cluster,
            run.model.predict_str_row(&["a", "b", "q"]).unwrap()
        );
        // Wrong modality surfaces through the ticket as a typed error.
        match server.predict_point(vec![1.0]) {
            Err(ServeError::Model(ModelError::WrongModality { .. })) => {}
            other => panic!("expected WrongModality, got {other:?}"),
        }
        // Wrong arity too.
        match server.predict_str_row(&["a"]) {
            Err(ServeError::Model(ModelError::ShapeMismatch { .. })) => {}
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn reload_bumps_generation_and_swaps_answers() {
        let data = NumericDataset::new(1, vec![0.0, 0.1, 9.0, 9.1]);
        let spec = ClusterSpec::new(2).lsh(Lsh::SimHash { bands: 8, rows: 2 });
        let run = Clusterer::new(spec.clone()).fit(&data).unwrap();
        let server = ModelServer::start(run.model.clone(), ServerConfig::default());
        let before = server.predict_point(vec![0.05]).unwrap();
        assert_eq!(before.generation, 0);

        // Retrain on shifted data and hot-swap.
        let shifted = NumericDataset::new(1, vec![100.0, 100.1, 900.0, 900.1]);
        let refit = Clusterer::new(spec).fit(&shifted).unwrap();
        assert_eq!(server.reload(refit.model.clone()), 1);
        let after = server.predict_point(vec![100.05]).unwrap();
        assert_eq!(after.generation, 1);
        assert_eq!(after.cluster, refit.model.predict_point(&[100.05]).unwrap());
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_every_submitted_ticket() {
        let (run, ds) = categorical_model(3);
        let server = ModelServer::start(
            run.model.clone(),
            // One worker and a generous window so tickets are still queued
            // when shutdown lands.
            ServerConfig::default()
                .workers(1)
                .max_batch(64)
                .flush_latency(Duration::from_millis(50)),
        );
        let tickets: Vec<_> = (0..ds.n_items())
            .map(|i| server.submit_row(ds.row(i).to_vec()).unwrap())
            .collect();
        server.shutdown();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let served = ticket.wait().expect("drained on shutdown");
            assert_eq!(served.cluster, run.assignments[i]);
        }
    }

    #[test]
    fn try_wait_reports_disconnection_instead_of_pending_forever() {
        // A ticket whose serving side vanished (worker panic) must resolve
        // to Disconnected on poll, not look in-flight forever.
        let (reply, rx) = mpsc::channel::<Result<Prediction, ServeError>>();
        let ticket = PredictTicket { rx };
        assert_eq!(ticket.try_wait(), None, "in flight while the sender lives");
        drop(reply);
        assert_eq!(ticket.try_wait(), Some(Err(ServeError::Disconnected)));
    }

    #[test]
    fn config_clamps_zeroes_like_every_other_boundary() {
        let config = ServerConfig::default()
            .workers(0)
            .max_batch(0)
            .queue_depth(0);
        assert_eq!(
            (config.workers, config.max_batch, config.queue_depth),
            (1, 1, 1)
        );
        let (run, _) = categorical_model(4);
        let server = ModelServer::start(
            run.model,
            ServerConfig {
                workers: 0,
                max_batch: 0,
                flush_latency: Duration::ZERO,
                queue_depth: 0,
                default_deadline: None,
                adaptive_flush: true,
                hot_keys: 0,
            },
        );
        assert_eq!(server.config().workers, 1);
        assert_eq!(server.config().max_batch, 1);
        assert_eq!(server.config().queue_depth, 1);
        assert_eq!(server.config().hot_keys, 0, "0 means disabled, not 1");
        server.shutdown();
    }

    #[test]
    fn hot_key_cache_serves_repeats_without_rescoring() {
        let (run, ds) = categorical_model(5);
        let server = ModelServer::start(
            run.model.clone(),
            ServerConfig::default().workers(1).hot_keys(64),
        );
        let row = ds.row(0).to_vec();
        let first = server.predict_row(row.clone()).unwrap();
        let second = server.predict_row(row.clone()).unwrap();
        assert_eq!(first, second);
        let stats = server.hot_key_stats();
        assert!(stats.hits >= 1, "repeat request should hit: {stats:?}");
        assert!(stats.entries >= 1);
        server.shutdown();
    }

    #[test]
    fn hot_key_cache_refuses_stale_generations() {
        let cache = HotKeyCache::new(8);
        let payload = Payload::Point(vec![1.0, 2.0]);
        cache.insert(0, &payload, ClusterId(3));
        assert_eq!(cache.lookup(0, &payload), Some(ClusterId(3)));
        // A newer generation wipes the map on first contact …
        assert_eq!(cache.lookup(1, &payload), None);
        // … and an older (in-flight pre-reload) snapshot can neither read
        // nor poison it.
        assert_eq!(cache.lookup(0, &payload), None);
        cache.insert(0, &payload, ClusterId(9));
        assert_eq!(cache.lookup(1, &payload), None);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn hot_key_cache_distinguishes_colliding_payload_kinds() {
        // Same numbers, different modality/value paths must never alias.
        let a = Payload::Point(vec![1.0]);
        let b = Payload::Mixed(vec![], vec![1.0]);
        assert!(!payload_eq(&a, &b));
        let cache = HotKeyCache::new(8);
        cache.insert(0, &a, ClusterId(1));
        assert_eq!(cache.lookup(0, &b), None);
        // -0.0 and 0.0 compare equal as f64 but are different bit patterns;
        // the cache must treat them as distinct keys (stricter is safe).
        let zero = Payload::Point(vec![0.0]);
        let negzero = Payload::Point(vec![-0.0]);
        cache.insert(0, &zero, ClusterId(2));
        assert!(!payload_eq(&zero, &negzero));
    }

    #[test]
    fn hot_key_cache_capacity_resets_wholesale() {
        let cache = HotKeyCache::new(2);
        cache.insert(0, &Payload::Point(vec![1.0]), ClusterId(1));
        cache.insert(0, &Payload::Point(vec![2.0]), ClusterId(2));
        assert_eq!(cache.stats().entries, 2);
        // Third distinct key clears the map and inserts itself.
        cache.insert(0, &Payload::Point(vec![3.0]), ClusterId(3));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(
            cache.lookup(0, &Payload::Point(vec![3.0])),
            Some(ClusterId(3))
        );
    }

    #[test]
    fn expired_on_arrival_requests_resolve_deadline_exceeded() {
        let (run, ds) = categorical_model(6);
        let server = ModelServer::start(
            run.model.clone(),
            // A long flush window guarantees the deadline lapses while the
            // request is still queued.
            ServerConfig::default()
                .workers(1)
                .flush_latency(Duration::from_millis(80))
                .adaptive_flush(false),
        );
        let ticket = server
            .submit_row_deadline(ds.row(0).to_vec(), Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(ticket.wait(), Err(ServeError::DeadlineExceeded));
        // The skip is per-request: an undeadlined submit still serves.
        assert!(server.predict_row(ds.row(0).to_vec()).is_ok());
        // Both tickets have been waited on, so both are resolved — the
        // deadline skip still counts as a resolution, never a leak.
        let stats = server.ticket_stats();
        assert_eq!((stats.submitted, stats.resolved), (2, 2));
        server.shutdown();
    }

    #[test]
    fn ticket_stats_balance_after_drain() {
        let (run, ds) = categorical_model(7);
        let server = ModelServer::start(run.model, ServerConfig::default().workers(2));
        let tickets: Vec<_> = (0..ds.n_items())
            .map(|i| server.submit_row(ds.row(i).to_vec()).unwrap())
            .collect();
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let stats = server.ticket_stats();
        assert_eq!(stats.submitted, ds.n_items() as u64);
        assert_eq!(stats.resolved, stats.submitted, "no orphaned tickets");
        server.shutdown();
    }

    #[test]
    fn wait_deadline_times_out_then_still_resolves() {
        let (run, ds) = categorical_model(8);
        let server = ModelServer::start(
            run.model.clone(),
            ServerConfig::default()
                .workers(1)
                .flush_latency(Duration::from_millis(60))
                .adaptive_flush(false),
        );
        let ticket = server.submit_row(ds.row(0).to_vec()).unwrap();
        // First poll lands inside the coalescing window: still in flight.
        assert_eq!(ticket.wait_deadline(Duration::from_millis(1)), None);
        // A bounded wait long past the window must resolve.
        let served = ticket
            .wait_deadline(Duration::from_secs(10))
            .expect("resolves after the flush window")
            .expect("healthy serve");
        assert_eq!(served.cluster, run.assignments[0]);
        server.shutdown();
    }
}
