//! **MH-K-Modes** — the paper's instantiation of the framework (§III-B,
//! Algorithm 2): K-Modes accelerated with a MinHash LSH index.
//!
//! The run proceeds exactly as the paper describes:
//!
//! 1. select `k` initial modes (shared with the baseline via the same seed),
//! 2. one *full* assignment pass over all `k` clusters,
//! 3. MinHash every item into the LSH index, storing a cluster reference per
//!    item (this plus step 2 is the "initial extra step" the paper counts in
//!    total time),
//! 4. iterate: shortlist → restricted assignment → O(1) reference update on
//!    every move → mode recomputation, until no item moves or the cost stops
//!    improving.

use crate::framework::{self, ActivitySet, CentroidModel, ShortlistProvider, StopPolicy};
use lshclust_categorical::{ClusterId, Dataset, ValueId};
use lshclust_kmodes::assign::{best_cluster_among, best_cluster_full};
use lshclust_kmodes::cost::total_cost;
use lshclust_kmodes::init::{initial_modes, InitMethod};
use lshclust_kmodes::modes::{group_by_cluster, Modes};
use lshclust_kmodes::stats::RunSummary;
use lshclust_minhash::index::{IndexStats, LshIndex, LshIndexBuilder, ShortlistScratch};
use lshclust_minhash::{Banding, QueryMode};
use std::time::Instant;

/// Configuration for an MH-K-Modes run.
#[derive(Clone, Debug)]
pub struct MhKModesConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// LSH banding scheme (`b` bands × `r` rows; the paper sweeps
    /// 1b1r / 20b2r / 20b5r / 50b5r).
    pub banding: Banding,
    /// Iteration policy for the shortlisted phase (cap + stop criteria).
    pub stop: StopPolicy,
    /// Centroid initialisation (defaults to the paper's random selection).
    pub init: InitMethod,
    /// Seed driving initialisation *and* the MinHash family.
    pub seed: u64,
    /// Bucket scan vs precomputed candidate lists (identical results).
    pub query_mode: QueryMode,
    /// Whether the item's own index entry may contribute its current cluster
    /// to the shortlist (`true` is Algorithm 2's behaviour; `false` exists
    /// for the self-collision ablation).
    pub include_self: bool,
    /// Assignment-pass threads. `1` reproduces the paper's single-threaded
    /// setup; `> 1` uses the Jacobi-style parallel pass of [`crate::parallel`].
    pub threads: usize,
    /// Cluster-closure incremental assignment: skip re-evaluating items whose
    /// cached shortlist touches no active cluster. Byte-identical results
    /// either way; `false` is the `--no-closures` escape hatch.
    pub closures: bool,
    /// Interleaved (round-robin) chunk scheduling for the parallel assignment
    /// pass instead of contiguous chunks. Identical results; exists so the
    /// bench can sweep the schedule axis.
    pub interleaved: bool,
}

impl MhKModesConfig {
    /// Defaults mirroring the paper's setup.
    pub fn new(k: usize, banding: Banding) -> Self {
        Self {
            k,
            banding,
            stop: StopPolicy::default(),
            init: InitMethod::RandomItems,
            seed: 0,
            query_mode: QueryMode::ScanBuckets,
            include_self: true,
            threads: 1,
            closures: true,
            interleaved: false,
        }
    }

    /// Sets the iteration cap (shorthand for adjusting [`Self::stop`]).
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.stop.max_iterations = n;
        self
    }

    /// Sets the full iteration policy.
    pub fn stop(mut self, stop: StopPolicy) -> Self {
        self.stop = stop;
        self
    }

    /// Sets the initialisation method.
    pub fn init(mut self, init: InitMethod) -> Self {
        self.init = init;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the index query mode.
    pub fn query_mode(mut self, mode: QueryMode) -> Self {
        self.query_mode = mode;
        self
    }

    /// Enables/disables self-collision (ablation).
    pub fn include_self(mut self, yes: bool) -> Self {
        self.include_self = yes;
        self
    }

    /// Sets the number of assignment threads. `0` is normalised to `1`
    /// (serial) — the documented clamp shared with
    /// `lshclust::ClusterSpec::threads`.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Enables/disables cluster-closure incremental assignment.
    pub fn closures(mut self, yes: bool) -> Self {
        self.closures = yes;
        self
    }

    /// Selects interleaved vs contiguous parallel chunk scheduling.
    pub fn interleaved(mut self, yes: bool) -> Self {
        self.interleaved = yes;
        self
    }
}

/// The K-Modes instantiation of [`CentroidModel`].
///
/// Borrowing the dataset and owning the modes, it delegates to the exact same
/// assignment kernels as the full-search baseline so that the shortlist is
/// the *only* difference between the two algorithms.
pub struct KModesModel<'a> {
    dataset: &'a Dataset,
    modes: Modes,
}

impl<'a> KModesModel<'a> {
    /// Wraps a dataset and initial modes.
    pub fn new(dataset: &'a Dataset, modes: Modes) -> Self {
        assert_eq!(dataset.n_attrs(), modes.n_attrs());
        Self { dataset, modes }
    }

    /// The current modes.
    pub fn modes(&self) -> &Modes {
        &self.modes
    }

    /// Consumes the model, returning the modes.
    pub fn into_modes(self) -> Modes {
        self.modes
    }

    /// The wrapped dataset (returned at the dataset's own lifetime, not the
    /// borrow's, so callers can hold a row across a centroid mutation).
    pub(crate) fn dataset_ref(&self) -> &'a Dataset {
        self.dataset
    }

    /// Mutable access to the modes (mini-batch nudges).
    pub(crate) fn modes_mut(&mut self) -> &mut Modes {
        &mut self.modes
    }
}

impl CentroidModel for KModesModel<'_> {
    type Snapshot = Modes;

    fn snapshot_centroids(&self) -> Modes {
        self.modes.clone()
    }

    fn restore_centroids(&mut self, snapshot: Modes) {
        self.modes = snapshot;
    }

    fn k(&self) -> usize {
        self.modes.k()
    }

    fn n_items(&self) -> usize {
        self.dataset.n_items()
    }

    fn best_full(&self, item: u32) -> (ClusterId, f64) {
        let (c, d) = best_cluster_full(self.dataset.row(item as usize), &self.modes);
        (c, f64::from(d))
    }

    fn best_among(&self, item: u32, candidates: &[ClusterId]) -> Option<(ClusterId, f64)> {
        best_cluster_among(self.dataset.row(item as usize), &self.modes, candidates)
            .map(|(c, d)| (c, f64::from(d)))
    }

    fn update_centroids(&mut self, assignments: &[ClusterId]) -> ActivitySet {
        let old = self.modes.clone();
        self.modes.recompute(self.dataset, assignments);
        let mut activity = ActivitySet::none(self.k());
        for c in 0..self.k() {
            if self.modes.mode(c) != old.mode(c) {
                activity.mark(ClusterId(c as u32));
            }
        }
        activity
    }

    fn update_centroids_parallel(
        &mut self,
        assignments: &[ClusterId],
        threads: usize,
    ) -> ActivitySet {
        if threads <= 1 {
            return self.update_centroids(assignments);
        }
        // Cluster-by-cluster recomputation through the same kernel as the
        // serial path — bit-identical at any thread count.
        let k = self.k();
        let groups = group_by_cluster(assignments, k);
        let dataset = self.dataset;
        let new_modes: Vec<Option<Vec<ValueId>>> = crate::parallel::chunked_map(
            k,
            threads,
            Vec::new,
            |c, counts: &mut Vec<(ValueId, u32)>| {
                let members = groups.members(c as usize);
                if members.is_empty() {
                    return None; // keep previous mode
                }
                let mut mode = Vec::with_capacity(dataset.n_attrs());
                Modes::mode_of_members(dataset, members, counts, &mut mode);
                Some(mode)
            },
        );
        let mut activity = ActivitySet::none(k);
        for (c, mode) in new_modes.iter().enumerate() {
            if let Some(mode) = mode {
                if self.modes.mode(c) != mode.as_slice() {
                    activity.mark(ClusterId(c as u32));
                }
                self.modes.set_mode(ClusterId(c as u32), mode);
            }
        }
        activity
    }

    fn total_cost(&self, assignments: &[ClusterId]) -> f64 {
        total_cost(self.dataset, &self.modes, assignments) as f64
    }
}

/// The MinHash instantiation of [`ShortlistProvider`].
pub struct MinHashProvider {
    index: LshIndex,
    scratch: ShortlistScratch,
    n_clusters: usize,
    include_self: bool,
}

impl MinHashProvider {
    /// Wraps a built index. `n_clusters` sizes the dedup scratch.
    pub fn new(index: LshIndex, n_clusters: usize, include_self: bool) -> Self {
        let scratch = index.make_scratch(n_clusters);
        Self {
            index,
            scratch,
            n_clusters,
            include_self,
        }
    }

    /// Read access to the wrapped index.
    pub fn index(&self) -> &LshIndex {
        &self.index
    }

    /// Consumes the provider, returning the index.
    pub fn into_index(self) -> LshIndex {
        self.index
    }
}

impl ShortlistProvider for MinHashProvider {
    fn shortlist(&mut self, item: u32, out: &mut Vec<ClusterId>) {
        self.index
            .shortlist(item, &mut self.scratch, !self.include_self);
        out.clear();
        out.extend_from_slice(&self.scratch.clusters);
    }

    fn record_assignment(&mut self, item: u32, cluster: ClusterId) {
        self.index.set_cluster(item, cluster);
    }
}

impl crate::parallel::SyncShortlistProvider for MinHashProvider {
    type Scratch = ShortlistScratch;

    fn make_scratch(&self) -> ShortlistScratch {
        self.index.make_scratch(self.n_clusters)
    }

    fn shortlist_into(&self, item: u32, scratch: &mut ShortlistScratch, out: &mut Vec<ClusterId>) {
        self.index.shortlist(item, scratch, !self.include_self);
        out.clear();
        out.extend_from_slice(&scratch.clusters);
    }
}

/// The MH-K-Modes estimator.
#[derive(Clone, Debug)]
pub struct MhKModes {
    config: MhKModesConfig,
}

/// Result of an MH-K-Modes run.
#[derive(Clone, Debug)]
pub struct MhKModesResult {
    /// Final cluster per item.
    pub assignments: Vec<ClusterId>,
    /// Final modes.
    pub modes: Modes,
    /// Instrumentation: setup covers initial assignment + index build;
    /// iterations cover the shortlisted passes.
    pub summary: RunSummary,
    /// Bucket statistics of the LSH index.
    pub index_stats: IndexStats,
}

impl MhKModes {
    /// Creates an estimator from a configuration.
    pub fn new(config: MhKModesConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MhKModesConfig {
        &self.config
    }

    /// Runs MH-K-Modes on `dataset`.
    pub fn fit(&self, dataset: &Dataset) -> MhKModesResult {
        let cfg = &self.config;
        let setup_start = Instant::now();
        let modes = initial_modes(dataset, cfg.k, cfg.init, cfg.seed);
        self.fit_from(dataset, modes, setup_start)
    }

    /// Runs MH-K-Modes from explicit initial modes. `setup_start` should be
    /// the instant initialisation began, so that setup time is complete.
    pub fn fit_from(
        &self,
        dataset: &Dataset,
        modes: Modes,
        setup_start: Instant,
    ) -> MhKModesResult {
        let cfg = &self.config;
        assert_eq!(modes.k(), cfg.k, "initial modes disagree with configured k");
        let n = dataset.n_items();

        // Step 2: initial full assignment over all k clusters — fanned over
        // `cfg.threads` (byte-identical to the serial pass; setup was the
        // serial bottleneck once the iterations parallelised).
        let mut assignments = vec![ClusterId(0); n];
        let mut model = KModesModel::new(dataset, modes);
        crate::parallel::assign_full_parallel(&model, &mut assignments, cfg.threads);
        // Refresh modes once so the first shortlisted pass works against
        // up-to-date centroids (equivalent to the tail of a baseline
        // iteration; counted in setup).
        model.update_centroids_parallel(&assignments, cfg.threads);

        // Step 3: MinHash every item; bucket entries reference the cluster
        // each item was just assigned to. Hashing fans over `cfg.threads`;
        // the bucket fill stays serial in item order (byte-identical index).
        let builder = LshIndexBuilder::new(cfg.banding)
            .seed(cfg.seed ^ 0x4d48_4b4d) // decorrelate from init sampling
            .mode(cfg.query_mode);
        let index =
            crate::parallel::build_lsh_index_parallel(&builder, dataset, &assignments, cfg.threads);
        let index_stats = index.stats();
        let mut provider = MinHashProvider::new(index, cfg.k, cfg.include_self);
        let setup = setup_start.elapsed();

        // Step 4+: shortlisted iterations.
        let run = if cfg.threads <= 1 {
            framework::fit(
                &mut model,
                &mut provider,
                assignments,
                setup,
                &cfg.stop,
                cfg.closures,
            )
        } else {
            crate::parallel::parallel_fit(
                &mut model,
                &mut provider,
                assignments,
                setup,
                &cfg.stop,
                cfg.threads,
                cfg.closures,
                cfg.interleaved,
            )
        };

        MhKModesResult {
            assignments: run.assignments,
            modes: model.into_modes(),
            summary: run.summary,
            index_stats,
        }
    }
}

/// Convenience: run baseline K-Modes and MH-K-Modes from identical initial
/// centroids (the paper's controlled comparison) and return both results.
pub fn paired_run(
    dataset: &Dataset,
    k: usize,
    banding: Banding,
    seed: u64,
    max_iterations: usize,
) -> (lshclust_kmodes::KModesResult, MhKModesResult) {
    let init_start = Instant::now();
    let modes = initial_modes(dataset, k, InitMethod::RandomItems, seed);
    let init_time = init_start.elapsed();

    let baseline = lshclust_kmodes::KModes::new(
        lshclust_kmodes::KModesConfig::new(k)
            .seed(seed)
            .max_iterations(max_iterations),
    )
    .fit_from(dataset, modes.clone(), init_time);

    let mh_start = Instant::now();
    let mh = MhKModes::new(
        MhKModesConfig::new(k, banding)
            .seed(seed)
            .max_iterations(max_iterations),
    )
    .fit_from(dataset, modes, mh_start);

    (baseline, mh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;

    /// `groups` blobs of `per_group` items over `n_attrs` attributes; items
    /// in a blob share all but one attribute value.
    fn blob_dataset(groups: usize, per_group: usize, n_attrs: usize) -> Dataset {
        let mut b = DatasetBuilder::anonymous(n_attrs);
        for g in 0..groups {
            for i in 0..per_group {
                let row: Vec<String> = (0..n_attrs)
                    .map(|a| {
                        if a == n_attrs - 1 {
                            format!("g{g}-noise{i}")
                        } else {
                            format!("g{g}-a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn recovers_obvious_blobs() {
        let ds = blob_dataset(4, 6, 8);
        let cfg = MhKModesConfig::new(4, Banding::new(16, 2)).seed(3);
        let result = MhKModes::new(cfg).fit(&ds);
        assert!(result.summary.converged);
        // Every blob is pure: items of the same blob share a cluster.
        let labels = ds.labels().unwrap();
        for i in 0..ds.n_items() {
            for j in 0..ds.n_items() {
                if labels[i] == labels[j] {
                    assert_eq!(result.assignments[i], result.assignments[j]);
                }
            }
        }
    }

    #[test]
    fn shortlist_is_much_smaller_than_k() {
        let ds = blob_dataset(8, 5, 10);
        let cfg = MhKModesConfig::new(8, Banding::new(10, 3)).seed(1);
        let result = MhKModes::new(cfg).fit(&ds);
        for s in &result.summary.iterations {
            assert!(
                s.avg_candidates < 8.0,
                "avg shortlist {} not below k=8",
                s.avg_candidates
            );
        }
    }

    #[test]
    fn agrees_with_baseline_on_well_separated_data() {
        let ds = blob_dataset(5, 6, 10);
        let (baseline, mh) = paired_run(&ds, 5, Banding::new(16, 2), 7, 50);
        // Same partition (cluster ids may permute — compare co-membership).
        for i in 0..ds.n_items() {
            for j in (i + 1)..ds.n_items() {
                let same_base = baseline.assignments[i] == baseline.assignments[j];
                let same_mh = mh.assignments[i] == mh.assignments[j];
                assert_eq!(same_base, same_mh, "items {i},{j} co-membership differs");
            }
        }
    }

    #[test]
    fn self_collision_keeps_shortlist_nonempty() {
        let ds = blob_dataset(3, 4, 6);
        let cfg = MhKModesConfig::new(3, Banding::new(4, 2)).seed(5);
        let result = MhKModes::new(cfg).fit(&ds);
        for s in &result.summary.iterations {
            assert!(
                s.avg_candidates >= 1.0,
                "shortlist dipped below 1: {}",
                s.avg_candidates
            );
        }
    }

    #[test]
    fn exclude_self_ablation_still_runs() {
        let ds = blob_dataset(3, 4, 6);
        let cfg = MhKModesConfig::new(3, Banding::new(4, 2))
            .seed(5)
            .include_self(false);
        let result = MhKModes::new(cfg).fit(&ds);
        assert!(result.summary.n_iterations() >= 1);
    }

    #[test]
    fn query_modes_produce_identical_clusterings() {
        let ds = blob_dataset(4, 5, 8);
        let scan = MhKModes::new(
            MhKModesConfig::new(4, Banding::new(8, 2))
                .seed(2)
                .query_mode(QueryMode::ScanBuckets),
        )
        .fit(&ds);
        let pre = MhKModes::new(
            MhKModesConfig::new(4, Banding::new(8, 2))
                .seed(2)
                .query_mode(QueryMode::Precomputed),
        )
        .fit(&ds);
        assert_eq!(scan.assignments, pre.assignments);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = blob_dataset(4, 5, 8);
        let cfg = MhKModesConfig::new(4, Banding::new(8, 2)).seed(11);
        let a = MhKModes::new(cfg.clone()).fit(&ds);
        let b = MhKModes::new(cfg).fit(&ds);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn index_stats_are_populated() {
        let ds = blob_dataset(2, 5, 6);
        let cfg = MhKModesConfig::new(2, Banding::new(6, 2)).seed(0);
        let result = MhKModes::new(cfg).fit(&ds);
        assert_eq!(result.index_stats.n_items, 10);
        assert_eq!(result.index_stats.total_entries, 10 * 6);
    }

    #[test]
    fn paired_run_shares_initialisation() {
        // With banding so aggressive every pair collides, MH must match the
        // baseline exactly (same init, same tie-breaks, full shortlists).
        let ds = blob_dataset(3, 4, 6);
        let (baseline, mh) = paired_run(&ds, 3, Banding::new(64, 1), 9, 50);
        assert_eq!(baseline.assignments, mh.assignments);
        assert_eq!(
            baseline.summary.final_cost(),
            mh.summary.iterations.last().map(|s| s.cost)
        );
    }

    #[test]
    fn max_iterations_zero_shortlist_phase() {
        let ds = blob_dataset(2, 3, 5);
        let cfg = MhKModesConfig::new(2, Banding::new(4, 1))
            .max_iterations(1)
            .seed(1);
        let result = MhKModes::new(cfg).fit(&ds);
        assert_eq!(result.summary.n_iterations(), 1);
    }
}
