//! Workspace-local stand-in for `criterion`.
//!
//! The build environment has no registry access, so this crate keeps the
//! workspace's benches compiling and runnable: each benchmark closure is
//! timed over a fixed number of samples and the median per-iteration time is
//! printed. There is no statistics engine, warm-up calibration, or HTML
//! report — results are indicative only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        run_benchmark(id, 20, f);
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(&mut self, id: I, f: F) {
        run_benchmark(&id.to_string(), self.sample_size, f);
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: Display, P, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) {
        run_benchmark(&id.to_string(), self.sample_size, |b| f(b, input));
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Handed to each benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `payload` once per sample, recording per-sample wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(payload());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let best = bencher.samples[0];
    println!("{id:<40} median {:>12?}   best {:>12?}", median, best);
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, demo);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 5,
        };
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 5);
    }
}
