//! Centroid initialisation.
//!
//! The paper randomly selects `k` initial centroids ("we will randomly select
//! the k initial centroids", §IV-A) but notes that "numerous methods exist";
//! we additionally provide Huang's frequency-based method (\[3\] in the paper)
//! and the density method of Cao et al. (\[22\] in the paper) so the
//! initialisation choice can be studied.
//!
//! Crucially, initial modes depend only on `(dataset, method, seed)` — both
//! the baseline and the accelerated algorithm call [`initial_modes`] with the
//! same arguments, fulfilling the paper's controlled-comparison requirement
//! that "the same initial centroid points were selected".

use crate::modes::Modes;
use lshclust_categorical::dissimilarity::matching;
use lshclust_categorical::{Dataset, ValueId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Initialisation strategy for the `k` starting modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InitMethod {
    /// `k` distinct items chosen uniformly at random (the paper's choice).
    #[default]
    RandomItems,
    /// Huang (1998): synthesise modes from frequent attribute values, then
    /// snap each to its nearest item to guarantee realisable centroids.
    Huang,
    /// Cao, Liang & Bai (2009): density-weighted farthest-first traversal.
    /// Deterministic given the dataset; `O(n·k·m)`, intended for modest `n`.
    Cao,
}

/// Computes the `k` initial modes for `dataset`.
///
/// Panics if `k` is zero or exceeds the number of items.
pub fn initial_modes(dataset: &Dataset, k: usize, method: InitMethod, seed: u64) -> Modes {
    assert!(k > 0, "k must be positive");
    assert!(
        k <= dataset.n_items(),
        "k={k} exceeds number of items {}",
        dataset.n_items()
    );
    match method {
        InitMethod::RandomItems => random_items(dataset, k, seed),
        InitMethod::Huang => huang(dataset, k, seed),
        InitMethod::Cao => cao(dataset, k),
    }
}

/// Selects `k` distinct item indices uniformly (partial Fisher–Yates).
pub fn sample_distinct_items(n_items: usize, k: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x696e_6974);
    let mut pool: Vec<u32> = (0..n_items as u32).collect();
    for i in 0..k {
        let j = rng.random_range(i..n_items);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

fn random_items(dataset: &Dataset, k: usize, seed: u64) -> Modes {
    let picks = sample_distinct_items(dataset.n_items(), k, seed);
    Modes::from_items(dataset, &picks)
}

fn huang(dataset: &Dataset, k: usize, seed: u64) -> Modes {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0068_7561_6e67);
    let n_attrs = dataset.n_attrs();
    // Per attribute: empirical frequency of each value.
    let mut freqs: Vec<Vec<(ValueId, u32)>> = vec![Vec::new(); n_attrs];
    for row in dataset.rows() {
        for (a, &v) in row.iter().enumerate() {
            match freqs[a].iter_mut().find(|(val, _)| *val == v) {
                Some((_, c)) => *c += 1,
                None => freqs[a].push((v, 1)),
            }
        }
    }
    // Draw k synthetic modes: each attribute sampled proportionally to its
    // value frequency, then snap to the nearest actual item (distinct items
    // preferred) so every initial mode is realisable.
    let n = dataset.n_items();
    let mut used = vec![false; n];
    let mut picks = Vec::with_capacity(k);
    let mut synthetic = vec![ValueId(0); n_attrs];
    for _ in 0..k {
        for (a, f) in freqs.iter().enumerate() {
            let total: u32 = f.iter().map(|&(_, c)| c).sum();
            let mut t = rng.random_range(0..total);
            synthetic[a] = f
                .iter()
                .find(|&&(_, c)| {
                    if t < c {
                        true
                    } else {
                        t -= c;
                        false
                    }
                })
                .expect("frequency total covers draw")
                .0;
        }
        let mut best = usize::MAX;
        let mut best_d = u32::MAX;
        for (i, &is_used) in used.iter().enumerate() {
            let d = matching(&synthetic, dataset.row(i));
            let penalty = u32::from(is_used); // prefer unused items on ties
            if d + penalty < best_d {
                best_d = d + penalty;
                best = i;
            }
        }
        used[best] = true;
        picks.push(best as u32);
    }
    Modes::from_items(dataset, &picks)
}

fn cao(dataset: &Dataset, k: usize) -> Modes {
    let n = dataset.n_items();
    let n_attrs = dataset.n_attrs();
    // Density of an item = average relative frequency of its attribute values.
    let mut freqs: Vec<std::collections::HashMap<u32, u32>> = vec![Default::default(); n_attrs];
    for row in dataset.rows() {
        for (a, &v) in row.iter().enumerate() {
            *freqs[a].entry(v.0).or_insert(0) += 1;
        }
    }
    let density: Vec<f64> = (0..n)
        .map(|i| {
            dataset
                .row(i)
                .iter()
                .enumerate()
                .map(|(a, &v)| f64::from(freqs[a][&v.0]) / n as f64)
                .sum::<f64>()
                / n_attrs as f64
        })
        .collect();

    let mut picks: Vec<u32> = Vec::with_capacity(k);
    // First centre: maximum density (ties to lowest index).
    let first = density
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.partial_cmp(b).unwrap().then(ib.cmp(ia)))
        .map(|(i, _)| i as u32)
        .expect("non-empty dataset");
    picks.push(first);
    // min distance to any chosen centre, refreshed incrementally.
    let mut min_dist: Vec<u32> = (0..n)
        .map(|i| matching(dataset.row(i), dataset.row(first as usize)))
        .collect();
    while picks.len() < k {
        let next = (0..n)
            .filter(|&i| !picks.contains(&(i as u32)))
            .max_by(|&a, &b| {
                let sa = density[a] * f64::from(min_dist[a]);
                let sb = density[b] * f64::from(min_dist[b]);
                sa.partial_cmp(&sb).unwrap().then(b.cmp(&a))
            })
            .expect("k <= n leaves a candidate");
        picks.push(next as u32);
        for (i, slot) in min_dist.iter_mut().enumerate() {
            *slot = (*slot).min(matching(dataset.row(i), dataset.row(next)));
        }
    }
    Modes::from_items(dataset, &picks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;

    fn dataset(n: usize) -> Dataset {
        let mut b = DatasetBuilder::anonymous(3);
        for i in 0..n {
            let v0 = format!("v{}", i % 4);
            let v1 = format!("w{}", i % 3);
            let v2 = format!("u{}", i % 2);
            b.push_str_row(&[&v0, &v1, &v2], None).unwrap();
        }
        b.finish()
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let picks = sample_distinct_items(100, 20, 7);
        assert_eq!(picks.len(), 20);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 20);
        assert!(picks.iter().all(|&p| p < 100));
    }

    #[test]
    fn sample_all_items() {
        let mut picks = sample_distinct_items(5, 5, 3);
        picks.sort_unstable();
        assert_eq!(picks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_init_is_seed_deterministic() {
        let ds = dataset(50);
        let a = initial_modes(&ds, 5, InitMethod::RandomItems, 11);
        let b = initial_modes(&ds, 5, InitMethod::RandomItems, 11);
        let c = initial_modes(&ds, 5, InitMethod::RandomItems, 12);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn all_methods_produce_k_modes_over_dataset_rows() {
        let ds = dataset(30);
        for method in [InitMethod::RandomItems, InitMethod::Huang, InitMethod::Cao] {
            let modes = initial_modes(&ds, 4, method, 5);
            assert_eq!(modes.k(), 4, "{method:?}");
            assert_eq!(modes.n_attrs(), 3);
            for c in 0..4 {
                assert!(
                    (0..ds.n_items()).any(|i| ds.row(i) == modes.mode(c)),
                    "{method:?} produced a mode that is not a dataset item"
                );
            }
        }
    }

    #[test]
    fn cao_is_deterministic_without_seed() {
        let ds = dataset(25);
        let a = initial_modes(&ds, 3, InitMethod::Cao, 0);
        let b = initial_modes(&ds, 3, InitMethod::Cao, 999);
        assert_eq!(a, b, "Cao init must ignore the seed");
    }

    #[test]
    fn cao_first_centre_has_max_density() {
        // A dataset where one row repeats: that row's values dominate the
        // frequency tables, so a copy of it must be the first centre.
        let mut b = DatasetBuilder::anonymous(2);
        for _ in 0..5 {
            b.push_str_row(&["common", "common"], None).unwrap();
        }
        b.push_str_row(&["rare", "rare"], None).unwrap();
        let ds = b.finish();
        let modes = initial_modes(&ds, 1, InitMethod::Cao, 0);
        assert_eq!(modes.mode(0), ds.row(0));
    }

    #[test]
    fn cao_spreads_centres() {
        // Two tight groups: the second centre should come from the other group.
        let mut b = DatasetBuilder::anonymous(2);
        for _ in 0..4 {
            b.push_str_row(&["g1", "g1"], None).unwrap();
        }
        for _ in 0..4 {
            b.push_str_row(&["g2", "g2"], None).unwrap();
        }
        let ds = b.finish();
        let modes = initial_modes(&ds, 2, InitMethod::Cao, 0);
        assert_ne!(modes.mode(0), modes.mode(1));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let ds = dataset(3);
        let _ = initial_modes(&ds, 0, InitMethod::RandomItems, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds number of items")]
    fn oversized_k_rejected() {
        let ds = dataset(3);
        let _ = initial_modes(&ds, 4, InitMethod::RandomItems, 0);
    }

    #[test]
    fn huang_is_seed_deterministic() {
        let ds = dataset(40);
        let a = initial_modes(&ds, 6, InitMethod::Huang, 21);
        let b = initial_modes(&ds, 6, InitMethod::Huang, 21);
        assert_eq!(a, b);
    }
}
