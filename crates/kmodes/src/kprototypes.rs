//! K-Prototypes: centroid-based clustering of **mixed** categorical +
//! numeric data (Huang 1998, the same paper that introduced K-Modes).
//!
//! The paper's further-work section asks for the framework to cover
//! "not only categorical data, but numeric data, or combinations of both";
//! this is the full-search baseline for the "combinations" case. Distance is
//!
//! `d(X, P) = d_matching(X_cat, P_mode) + γ · d²_euclidean(X_num, P_mean)`
//!
//! with prototypes carrying a mode for the categorical part and a mean for
//! the numeric part. `γ` balances the two scales (Huang suggests a value
//! around the average numeric variance).

use crate::kmeans::{sq_euclidean, NumericDataset};
use crate::modes::{group_by_cluster, Modes};
use lshclust_categorical::dissimilarity::matching;
use lshclust_categorical::{ClusterId, Dataset};
use std::time::Instant;

/// A mixed dataset: aligned categorical and numeric parts (row `i` of each
/// describes the same item).
pub struct MixedDataset<'a> {
    /// Categorical columns.
    pub categorical: &'a Dataset,
    /// Numeric columns.
    pub numeric: &'a NumericDataset,
}

impl<'a> MixedDataset<'a> {
    /// Pairs the two parts; they must have equal row counts.
    pub fn new(categorical: &'a Dataset, numeric: &'a NumericDataset) -> Self {
        assert_eq!(
            categorical.n_items(),
            numeric.n_items(),
            "categorical and numeric parts must align"
        );
        Self {
            categorical,
            numeric,
        }
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.categorical.n_items()
    }
}

/// Cluster prototypes: modes for the categorical part, means for the numeric.
#[derive(Clone, Debug, PartialEq)]
pub struct Prototypes {
    /// Categorical modes (`k × n_cat_attrs`).
    pub modes: Modes,
    /// Numeric means (`k × dim`, row-major).
    pub means: Vec<f64>,
    dim: usize,
}

impl Prototypes {
    /// Assembles prototypes from their parts: categorical modes plus a flat
    /// `k × dim` numeric mean matrix. Panics on shape mismatch.
    pub fn from_parts(modes: Modes, means: Vec<f64>, dim: usize) -> Self {
        assert_eq!(
            means.len(),
            modes.k() * dim,
            "prototype mean buffer shape mismatch"
        );
        Self { modes, means, dim }
    }

    /// Numeric dimensionality of each prototype mean.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Initialises prototypes from `k` sampled items.
    pub fn from_items(data: &MixedDataset<'_>, items: &[u32]) -> Self {
        let modes = Modes::from_items(data.categorical, items);
        let dim = data.numeric.dim();
        let mut means = Vec::with_capacity(items.len() * dim);
        for &i in items {
            means.extend_from_slice(data.numeric.row(i as usize));
        }
        Self { modes, means, dim }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.modes.k()
    }

    /// Numeric mean of cluster `c`.
    #[inline]
    pub fn mean(&self, c: usize) -> &[f64] {
        &self.means[c * self.dim..(c + 1) * self.dim]
    }

    /// Mixed distance of item `item` to prototype `c`.
    #[inline]
    pub fn distance(&self, data: &MixedDataset<'_>, item: usize, c: usize, gamma: f64) -> f64 {
        let cat = f64::from(matching(data.categorical.row(item), self.modes.mode(c)));
        let num = sq_euclidean(data.numeric.row(item), self.mean(c));
        cat + gamma * num
    }

    /// Recomputes all prototypes from assignments (empty clusters keep their
    /// previous prototype, per the workspace policy).
    pub fn recompute(&mut self, data: &MixedDataset<'_>, assignments: &[ClusterId]) {
        self.modes.recompute(data.categorical, assignments);
        let k = self.k();
        let dim = self.dim;
        let groups = group_by_cluster(assignments, k);
        for c in 0..k {
            let members = groups.members(c);
            if members.is_empty() {
                continue;
            }
            let slot = &mut self.means[c * dim..(c + 1) * dim];
            slot.fill(0.0);
            for &i in members {
                for (s, &x) in slot.iter_mut().zip(data.numeric.row(i as usize)) {
                    *s += x;
                }
            }
            for s in slot.iter_mut() {
                *s /= members.len() as f64;
            }
        }
    }
}

// `{"modes": {...}, "dim": 2, "means": [...]}` — the modes carry their own
// shape; `dim` validates the mean matrix.
impl serde::Serialize for Prototypes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("modes".to_owned(), serde::Serialize::to_value(&self.modes)),
            ("dim".to_owned(), serde::Serialize::to_value(&self.dim)),
            ("means".to_owned(), serde::Serialize::to_value(&self.means)),
        ])
    }
}

impl serde::Deserialize for Prototypes {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::expected("object", "Prototypes"))?;
        let modes: Modes = serde::field(entries, "modes", "Prototypes")?;
        let dim: usize = serde::field(entries, "dim", "Prototypes")?;
        let means: Vec<f64> = serde::field(entries, "means", "Prototypes")?;
        if means.len() != modes.k() * dim {
            return Err(serde::Error(format!(
                "Prototypes mean buffer holds {} values, expected k×dim = {}",
                means.len(),
                modes.k() * dim
            )));
        }
        Ok(Prototypes::from_parts(modes, means, dim))
    }
}

/// Suggests `γ` as the mean per-dimension variance of the numeric part
/// (Huang's heuristic): one categorical mismatch then "costs" about one
/// standard-unit of numeric spread.
pub fn suggest_gamma(numeric: &NumericDataset) -> f64 {
    let (n, dim) = (numeric.n_items(), numeric.dim());
    if n < 2 {
        return 1.0;
    }
    let mut mean = vec![0.0f64; dim];
    for i in 0..n {
        for (m, &x) in mean.iter_mut().zip(numeric.row(i)) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let mut var = 0.0f64;
    for i in 0..n {
        for (m, &x) in mean.iter().zip(numeric.row(i)) {
            var += (x - m) * (x - m);
        }
    }
    let v = var / (n as f64 * dim as f64);
    if v > 0.0 {
        1.0 / v
    } else {
        1.0
    }
}

/// Configuration for a K-Prototypes run.
#[derive(Clone, Debug)]
pub struct KPrototypesConfig {
    /// Number of clusters.
    pub k: usize,
    /// Mixing weight γ (see [`suggest_gamma`]).
    pub gamma: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Seed for prototype initialisation.
    pub seed: u64,
}

impl KPrototypesConfig {
    /// Defaults: 100-iteration cap.
    pub fn new(k: usize, gamma: f64) -> Self {
        Self {
            k,
            gamma,
            max_iterations: 100,
            seed: 0,
        }
    }
}

/// Result of a K-Prototypes run.
#[derive(Clone, Debug)]
pub struct KPrototypesResult {
    /// Final cluster per item.
    pub assignments: Vec<ClusterId>,
    /// Final prototypes.
    pub prototypes: Prototypes,
    /// Iterations executed.
    pub n_iterations: usize,
    /// Whether a zero-move pass was reached.
    pub converged: bool,
    /// Final mixed cost.
    pub cost: f64,
    /// Wall-clock time.
    pub elapsed: std::time::Duration,
}

/// Runs full-search K-Prototypes.
pub fn kprototypes(data: &MixedDataset<'_>, config: &KPrototypesConfig) -> KPrototypesResult {
    let start = Instant::now();
    let picks = crate::init::sample_distinct_items(data.n_items(), config.k, config.seed);
    let prototypes = Prototypes::from_items(data, &picks);
    kprototypes_from(data, config, prototypes, start)
}

/// Runs K-Prototypes from explicit initial prototypes.
pub fn kprototypes_from(
    data: &MixedDataset<'_>,
    config: &KPrototypesConfig,
    mut prototypes: Prototypes,
    start: Instant,
) -> KPrototypesResult {
    assert_eq!(prototypes.k(), config.k);
    let n = data.n_items();
    let mut assignments = vec![ClusterId(0); n];
    let mut converged = false;
    let mut n_iterations = 0;
    let mut prev_cost = f64::INFINITY;
    for iteration in 1..=config.max_iterations {
        n_iterations = iteration;
        let mut moves = 0usize;
        for (item, slot) in assignments.iter_mut().enumerate() {
            let mut best = ClusterId(0);
            let mut best_d = f64::INFINITY;
            for c in 0..config.k {
                let d = prototypes.distance(data, item, c, config.gamma);
                if d < best_d {
                    best_d = d;
                    best = ClusterId(c as u32);
                }
            }
            if best != *slot {
                moves += 1;
                *slot = best;
            }
        }
        prototypes.recompute(data, &assignments);
        let cost: f64 = assignments
            .iter()
            .enumerate()
            .map(|(i, &c)| prototypes.distance(data, i, c.idx(), config.gamma))
            .sum();
        if iteration > 1 && (moves == 0 || cost >= prev_cost) {
            converged = true;
            prev_cost = cost.min(prev_cost);
            break;
        }
        prev_cost = cost;
    }
    KPrototypesResult {
        assignments,
        prototypes,
        n_iterations,
        converged,
        cost: prev_cost,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;

    /// Two groups separated in *both* modalities.
    fn mixed_fixture() -> (Dataset, NumericDataset) {
        let mut b = DatasetBuilder::anonymous(3);
        let mut numeric = Vec::new();
        for g in 0..2 {
            for i in 0..6 {
                let cat: Vec<String> = (0..3)
                    .map(|a| {
                        if a == 2 {
                            format!("g{g}n{i}")
                        } else {
                            format!("g{g}a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = cat.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
                let base = g as f64 * 10.0;
                numeric.extend_from_slice(&[base + 0.1 * i as f64, base - 0.1 * i as f64]);
            }
        }
        (b.finish(), NumericDataset::new(2, numeric))
    }

    #[test]
    fn separates_mixed_blobs() {
        let (cat, num) = mixed_fixture();
        let data = MixedDataset::new(&cat, &num);
        let gamma = suggest_gamma(&num);
        let result = kprototypes(&data, &KPrototypesConfig::new(2, gamma));
        assert!(result.converged);
        let a = result.assignments[0];
        let b = result.assignments[6];
        assert_ne!(a, b);
        assert!(result.assignments[..6].iter().all(|&c| c == a));
        assert!(result.assignments[6..].iter().all(|&c| c == b));
    }

    #[test]
    fn numeric_part_breaks_categorical_ties() {
        // Categorical parts identical; only the numeric part separates.
        let mut b = DatasetBuilder::anonymous(1);
        for _ in 0..8 {
            b.push_str_row(&["same"], None).unwrap();
        }
        let cat = b.finish();
        let numeric = NumericDataset::new(1, vec![0.0, 0.1, 0.2, 0.3, 9.0, 9.1, 9.2, 9.3]);
        let data = MixedDataset::new(&cat, &numeric);
        let result = kprototypes(&data, &KPrototypesConfig::new(2, 1.0));
        assert_ne!(result.assignments[0], result.assignments[7]);
        assert_eq!(result.assignments[0], result.assignments[3]);
    }

    #[test]
    fn categorical_part_breaks_numeric_ties() {
        let mut b = DatasetBuilder::anonymous(2);
        for i in 0..8 {
            let g = if i < 4 { "x" } else { "y" };
            b.push_str_row(&[g, g], None).unwrap();
        }
        let cat = b.finish();
        let numeric = NumericDataset::new(1, vec![1.0; 8]);
        let data = MixedDataset::new(&cat, &numeric);
        // Seed 1 draws one initial item from each categorical group; picks
        // from the same group make both prototypes identical, so every item
        // ties and the split can never happen.
        let mut config = KPrototypesConfig::new(2, 1.0);
        config.seed = 1;
        let result = kprototypes(&data, &config);
        assert_ne!(result.assignments[0], result.assignments[4]);
    }

    #[test]
    fn gamma_zero_ignores_numeric() {
        let (cat, _) = mixed_fixture();
        // Numeric part actively misleading: same for all items except noise.
        let numeric = NumericDataset::new(1, (0..12).map(|i| (i % 3) as f64 * 100.0).collect());
        let data = MixedDataset::new(&cat, &numeric);
        let result = kprototypes(&data, &KPrototypesConfig::new(2, 0.0));
        // With γ=0 the categorical structure must dominate.
        assert_eq!(result.assignments[0], result.assignments[5]);
        assert_ne!(result.assignments[0], result.assignments[6]);
    }

    #[test]
    fn suggest_gamma_is_inverse_variance() {
        let numeric = NumericDataset::new(1, vec![0.0, 2.0]); // var = 1
        let g = suggest_gamma(&numeric);
        assert!((g - 1.0).abs() < 1e-12);
        // Tighter data → larger gamma (numeric differences mean more).
        let tight = NumericDataset::new(1, vec![0.0, 0.2]);
        assert!(suggest_gamma(&tight) > g);
    }

    #[test]
    fn cost_non_increasing() {
        let (cat, num) = mixed_fixture();
        let data = MixedDataset::new(&cat, &num);
        let result = kprototypes(&data, &KPrototypesConfig::new(3, suggest_gamma(&num)));
        assert!(result.cost.is_finite());
        assert!(result.converged);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_parts_rejected() {
        let (cat, _) = mixed_fixture();
        let numeric = NumericDataset::new(1, vec![1.0]);
        let _ = MixedDataset::new(&cat, &numeric);
    }
}
