//! One function per paper artefact (Tables I–II, Figs. 2–10, the §III-C
//! bound), each returning a [`Report`] of text tables that mirror the rows /
//! series the paper plots.
//!
//! Synthetic [`RunSet`]s are cached in a [`Suite`] so composite figures
//! (6, 7, 8) reuse the runs of Figs. 2–5 instead of re-clustering.

use crate::scale::{
    Settings, SHAPE_250K_40K, SHAPE_400ATTR, SHAPE_FIG2, SHAPE_FIG3, SHAPE_FIG4, SHAPE_FIG5,
};
use crate::synthetic::{run_bound_audit, run_experiment, speedup, RunSet};
use crate::table::{f3, secs, TextTable};
use crate::textexp::{run_text_experiment, TextExperiment, TextRunSet};
use lshclust_minhash::probability::{candidate_probability, cluster_hit_probability};
use lshclust_minhash::signature::SignatureGenerator;
use lshclust_minhash::{Banding, MixHashFamily};
use std::collections::HashMap;
use std::rc::Rc;

/// Iteration cap used for the synthetic experiments (the paper's baseline
/// converged within 12 iterations on every synthetic dataset).
pub const SYNTHETIC_MAX_ITER: usize = 30;

/// A rendered experiment report: named tables plus free-form notes.
pub struct Report {
    /// Human-readable title.
    pub title: String,
    /// `(section name, table)` pairs.
    pub sections: Vec<(String, TextTable)>,
    /// Free-form notes appended after the tables.
    pub notes: Vec<String>,
}

impl Report {
    /// Starts an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            sections: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a named table.
    pub fn section(&mut self, name: impl Into<String>, table: TextTable) {
        self.sections.push((name.into(), table));
    }

    /// Appends a free-form note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the full report as text.
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n\n", self.title);
        for (name, table) in &self.sections {
            out.push_str(&format!("-- {name} --\n"));
            out.push_str(&table.render());
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Writes each section as `<prefix>_<section>.csv` under `dir`.
    pub fn write_csvs(&self, dir: &std::path::Path, prefix: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (name, table) in &self.sections {
            let slug: String = name
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            std::fs::write(dir.join(format!("{prefix}_{slug}.csv")), table.to_csv())?;
        }
        Ok(())
    }
}

/// Caches synthetic run sets so composite figures reuse them.
pub struct Suite {
    /// Global settings (scale, seed, output directory).
    pub settings: Settings,
    cache: HashMap<&'static str, Rc<RunSet>>,
}

impl Suite {
    /// Creates an empty suite.
    pub fn new(settings: Settings) -> Self {
        Self {
            settings,
            cache: HashMap::new(),
        }
    }

    /// Returns (running on first use) the named run set.
    pub fn runset(&mut self, key: &'static str) -> Rc<RunSet> {
        if let Some(r) = self.cache.get(key) {
            return Rc::clone(r);
        }
        let (shape, bandings): (_, Vec<Banding>) = match key {
            "fig2" => (SHAPE_FIG2, paper_bandings(&["20b2r", "20b5r", "50b5r"])),
            "fig3" => (SHAPE_FIG3, paper_bandings(&["20b2r", "20b5r", "50b5r"])),
            "fig4" => (SHAPE_FIG4, paper_bandings(&["1b1r", "20b5r"])),
            "fig5" => (SHAPE_FIG5, paper_bandings(&["20b5r", "50b5r"])),
            "attr400" => (SHAPE_400ATTR, paper_bandings(&["20b5r", "50b5r"])),
            "fig6b_40k" => (SHAPE_250K_40K, paper_bandings(&["20b5r"])),
            other => panic!("unknown run set {other}"),
        };
        let set = Rc::new(run_experiment(
            shape,
            &bandings,
            &self.settings,
            SYNTHETIC_MAX_ITER,
        ));
        self.cache.insert(key, Rc::clone(&set));
        set
    }
}

fn paper_bandings(labels: &[&str]) -> Vec<Banding> {
    labels
        .iter()
        .map(|l| crate::scale::banding_by_label(l).expect("known banding label"))
        .collect()
}

// ---------------------------------------------------------------- Tables I/II

/// Empirically measures the candidate probability with real MinHash on real
/// sets. Returns `None` when the similarity is too small to represent with a
/// tractable universe.
fn empirical_candidate_probability(
    s: f64,
    banding: Banding,
    seed: u64,
    trials: usize,
) -> Option<f64> {
    // Two sets with |A| = |B| and overlap chosen so Jaccard = s:
    // shared = s/(1+s) * union ... use union U and shared = round(s*U).
    let union = if s >= 0.01 { 400 } else { return None };
    let shared = ((s * union as f64).round() as usize).max(1);
    let distinct = union - shared;
    let each_side = shared + distinct / 2;
    let a: Vec<u64> = (0..each_side as u64).collect();
    let b: Vec<u64> = (0..shared as u64)
        .chain(1_000_000..1_000_000 + (union - each_side) as u64)
        .collect();
    let mut hits = 0usize;
    for t in 0..trials {
        let family = MixHashFamily::new(banding.signature_len(), seed ^ (t as u64) << 17);
        let generator = SignatureGenerator::new(family);
        let sig_a = generator.signature(a.iter().copied());
        let sig_b = generator.signature(b.iter().copied());
        let keys_a = banding.band_keys(&sig_a);
        let keys_b = banding.band_keys(&sig_b);
        if keys_a.iter().zip(&keys_b).any(|(x, y)| x == y) {
            hits += 1;
        }
    }
    Some(hits as f64 / trials as f64)
}

fn probability_table(rows: u32, grid: &[(u32, f64)], settings: &Settings) -> TextTable {
    let mut t = TextTable::new([
        "bands",
        "jaccard",
        "P[pair] (paper formula)",
        "P[pair] (measured)",
        "MH-K-Modes P (c=10)",
    ]);
    for &(bands, s) in grid {
        let banding = Banding::new(bands, rows);
        let analytic = candidate_probability(s, rows, bands);
        let empirical = if banding.signature_len() <= 400 {
            empirical_candidate_probability(s, banding, settings.seed, 200)
        } else {
            None
        };
        t.row([
            bands.to_string(),
            format!("{s}"),
            f3(analytic),
            empirical.map_or_else(|| "-".to_owned(), f3),
            f3(cluster_hit_probability(s, rows, bands, 10)),
        ]);
    }
    t
}

/// Table I: candidate-pair and cluster-hit probabilities at r = 1.
pub fn table1(settings: &Settings) -> Report {
    let grid = [
        (10, 0.01),
        (10, 0.1),
        (10, 0.2),
        (10, 0.5),
        (100, 0.001),
        (100, 0.01),
        (100, 0.1),
        (100, 0.5),
        (100, 0.8),
        (800, 0.0001),
        (800, 0.001),
        (800, 0.01),
        (800, 0.1),
    ];
    let mut report = Report::new("Table I — candidate probabilities, r = 1");
    report.section("table1", probability_table(1, &grid, settings));
    report.note(
        "paper's printed rows (b=100, s=0.001) and (b=100, s=0.01) disagree with its \
         own formula 1-(1-s^r)^b; this table follows the formula (see EXPERIMENTS.md)",
    );
    report.note(
        "measured column: 200 MinHash trials on 400-element universes; '-' where \
                 the similarity is unrepresentable at that size",
    );
    report
}

/// Table II: the r = 5 grid.
pub fn table2(settings: &Settings) -> Report {
    let grid = [
        (10, 0.1),
        (10, 0.2),
        (10, 0.5),
        (10, 0.8),
        (100, 0.1),
        (100, 0.5),
        (800, 0.1),
        (800, 0.2),
        (800, 0.3),
    ];
    let mut report = Report::new("Table II — candidate probabilities, r = 5");
    report.section("table2", probability_table(5, &grid, settings));
    report
}

// ---------------------------------------------------------------- Figs. 2–5

fn series_tables(report: &mut Report, set: &RunSet) {
    let mut per_iter = TextTable::new([
        "series",
        "iteration",
        "time_s",
        "avg_clusters_searched",
        "moves",
        "cost",
    ]);
    for s in &set.baseline.summary.iterations {
        per_iter.row([
            "K-Modes".to_owned(),
            s.iteration.to_string(),
            secs(s.duration),
            f3(s.avg_candidates),
            s.moves.to_string(),
            s.cost.to_string(),
        ]);
    }
    for run in &set.mh_runs {
        for s in &run.result.summary.iterations {
            per_iter.row([
                format!("MH-K-Modes {}", run.banding),
                s.iteration.to_string(),
                secs(s.duration),
                f3(s.avg_candidates),
                s.moves.to_string(),
                s.cost.to_string(),
            ]);
        }
    }
    report.section("per_iteration", per_iter);

    let mut summary = TextTable::new([
        "series",
        "iterations",
        "converged",
        "setup_s",
        "total_s",
        "speedup_vs_kmodes",
        "purity",
        "nmi",
        "ari",
    ]);
    summary.row([
        "K-Modes".to_owned(),
        set.baseline.summary.n_iterations().to_string(),
        set.baseline.summary.converged.to_string(),
        secs(set.baseline.summary.setup),
        secs(set.baseline.summary.total_time()),
        "1.000".to_owned(),
        f3(set.baseline_quality.purity),
        f3(set.baseline_quality.nmi),
        f3(set.baseline_quality.ari),
    ]);
    for run in &set.mh_runs {
        summary.row([
            format!("MH-K-Modes {}", run.banding),
            run.result.summary.n_iterations().to_string(),
            run.result.summary.converged.to_string(),
            secs(run.result.summary.setup),
            secs(run.result.summary.total_time()),
            f3(speedup(set, run)),
            f3(run.quality.purity),
            f3(run.quality.nmi),
            f3(run.quality.ari),
        ]);
    }
    report.section("summary", summary);
}

fn shape_note(set: &RunSet, settings: &Settings) -> String {
    format!(
        "scaled shape: {} items x {} attrs x {} clusters (scale {}); paper shape preserved in ratio",
        set.shape.n_items, set.shape.n_attrs, set.shape.n_clusters, settings.scale
    )
}

fn synthetic_figure(suite: &mut Suite, key: &'static str, title: &str) -> Report {
    let set = suite.runset(key);
    let mut report = Report::new(title);
    series_tables(&mut report, &set);
    report.note(shape_note(&set, &suite.settings));
    report
}

/// Fig. 2: 90 000 × 100 × 20 000 (a: time/iter, b: shortlist, c: moves;
/// d–e are zoom-ins of the same series).
pub fn fig2(suite: &mut Suite) -> Report {
    synthetic_figure(
        suite,
        "fig2",
        "Figure 2 — 90k items, 100 attrs, 20k clusters",
    )
}

/// Fig. 3: 40 000 clusters.
pub fn fig3(suite: &mut Suite) -> Report {
    synthetic_figure(
        suite,
        "fig3",
        "Figure 3 — 90k items, 100 attrs, 40k clusters",
    )
}

/// Fig. 4: 250 000 items.
pub fn fig4(suite: &mut Suite) -> Report {
    synthetic_figure(
        suite,
        "fig4",
        "Figure 4 — 250k items, 100 attrs, 20k clusters",
    )
}

/// Fig. 5: 200 attributes.
pub fn fig5(suite: &mut Suite) -> Report {
    synthetic_figure(
        suite,
        "fig5",
        "Figure 5 — 90k items, 200 attrs, 20k clusters",
    )
}

// ---------------------------------------------------------------- Figs. 6–8

fn total_time_of(set: &RunSet, banding_label: &str) -> Option<f64> {
    set.mh_runs
        .iter()
        .find(|r| r.banding.to_string() == banding_label)
        .map(|r| r.result.summary.total_time().as_secs_f64())
}

/// Fig. 6: scaling comparisons (a: items, b: clusters, c: attributes), all
/// with the paper's 20b5r parameters.
pub fn fig6(suite: &mut Suite) -> Report {
    let mut report = Report::new("Figure 6 — scaling of total clustering time");

    let fig2 = suite.runset("fig2");
    let fig4 = suite.runset("fig4");
    let mut items = TextTable::new(["n_items", "K-Modes_total_s", "MH-K-Modes_20b5r_total_s"]);
    for set in [&fig2, &fig4] {
        items.row([
            set.shape.n_items.to_string(),
            secs(set.baseline.summary.total_time()),
            f3(total_time_of(set, "20b5r").unwrap_or(f64::NAN)),
        ]);
    }
    report.section("a_scaling_items", items);

    let fig6b = suite.runset("fig6b_40k");
    let mut clusters = TextTable::new([
        "n_clusters_at_250k_items",
        "K-Modes_total_s",
        "MH-K-Modes_20b5r_total_s",
    ]);
    for set in [&fig4, &fig6b] {
        clusters.row([
            set.shape.n_clusters.to_string(),
            secs(set.baseline.summary.total_time()),
            f3(total_time_of(set, "20b5r").unwrap_or(f64::NAN)),
        ]);
    }
    report.section("b_scaling_clusters", clusters);

    let fig5 = suite.runset("fig5");
    let attr400 = suite.runset("attr400");
    let mut attrs = TextTable::new(["n_attrs", "K-Modes_total_s", "MH-K-Modes_20b5r_total_s"]);
    for set in [&fig2, &fig5, &attr400] {
        attrs.row([
            set.shape.n_attrs.to_string(),
            secs(set.baseline.summary.total_time()),
            f3(total_time_of(set, "20b5r").unwrap_or(f64::NAN)),
        ]);
    }
    report.section("c_scaling_attributes", attrs);
    report.note(
        "expected shape: MH-K-Modes growth flatter than K-Modes on every axis (paper Fig. 6)",
    );
    report
}

fn totals_for(report: &mut Report, name: &str, set: &RunSet) {
    let mut t = TextTable::new(["series", "total_s", "speedup"]);
    t.row([
        "K-Modes".to_owned(),
        secs(set.baseline.summary.total_time()),
        "1.000".to_owned(),
    ]);
    for run in &set.mh_runs {
        t.row([
            format!("MH-K-Modes {}", run.banding),
            secs(run.result.summary.total_time()),
            f3(speedup(set, run)),
        ]);
    }
    report.section(name, t);
}

/// Fig. 7: total time to cluster each synthetic dataset.
pub fn fig7(suite: &mut Suite) -> Report {
    let mut report = Report::new("Figure 7 — total time per synthetic dataset");
    let sets = [
        ("a_90k_100attr_20k", "fig2"),
        ("b_90k_200attr_20k", "fig5"),
        ("c_90k_400attr_20k", "attr400"),
        ("d_90k_100attr_40k", "fig3"),
        ("e_250k_100attr_20k", "fig4"),
    ];
    for (name, key) in sets {
        let set = suite.runset(key);
        totals_for(&mut report, name, &set);
    }
    report.note("paper claim: MH-K-Modes 2x-6x faster in every tested combination");
    report
}

/// Fig. 8: cluster purity per synthetic dataset.
pub fn fig8(suite: &mut Suite) -> Report {
    let mut report = Report::new("Figure 8 — cluster purity per synthetic dataset");
    let sets = [
        ("a_90k_100attr_20k", "fig2"),
        ("b_90k_200attr_20k", "fig5"),
        ("c_90k_400attr_20k", "attr400"),
        ("d_90k_100attr_40k", "fig3"),
        ("e_250k_100attr_20k", "fig4"),
    ];
    for (name, key) in sets {
        let set = suite.runset(key);
        let mut t = TextTable::new(["series", "purity", "nmi", "ari"]);
        t.row([
            "K-Modes".to_owned(),
            f3(set.baseline_quality.purity),
            f3(set.baseline_quality.nmi),
            f3(set.baseline_quality.ari),
        ]);
        for run in &set.mh_runs {
            t.row([
                format!("MH-K-Modes {}", run.banding),
                f3(run.quality.purity),
                f3(run.quality.nmi),
                f3(run.quality.ari),
            ]);
        }
        report.section(name, t);
    }
    report.note("paper claim: purity within a few points of K-Modes everywhere");
    report
}

// ---------------------------------------------------------------- Figs. 9–10

fn text_series_tables(report: &mut Report, set: &TextRunSet) {
    let mut per_iter = TextTable::new([
        "series",
        "iteration",
        "time_s",
        "avg_clusters_searched",
        "moves",
    ]);
    for s in &set.baseline.summary.iterations {
        per_iter.row([
            "K-Modes".to_owned(),
            s.iteration.to_string(),
            secs(s.duration),
            f3(s.avg_candidates),
            s.moves.to_string(),
        ]);
    }
    for run in &set.mh_runs {
        for s in &run.result.summary.iterations {
            per_iter.row([
                format!("MH-K-Modes {}", run.banding),
                s.iteration.to_string(),
                secs(s.duration),
                f3(s.avg_candidates),
                s.moves.to_string(),
            ]);
        }
    }
    report.section("per_iteration", per_iter);

    let mut summary = TextTable::new([
        "series",
        "iterations",
        "converged",
        "total_s",
        "speedup",
        "purity",
        "nmi",
    ]);
    summary.row([
        "K-Modes".to_owned(),
        set.baseline.summary.n_iterations().to_string(),
        set.baseline.summary.converged.to_string(),
        secs(set.baseline.summary.total_time()),
        "1.000".to_owned(),
        f3(set.baseline_quality.purity),
        f3(set.baseline_quality.nmi),
    ]);
    for run in &set.mh_runs {
        let sp = set.baseline.summary.total_time().as_secs_f64()
            / run.result.summary.total_time().as_secs_f64();
        summary.row([
            format!("MH-K-Modes {}", run.banding),
            run.result.summary.n_iterations().to_string(),
            run.result.summary.converged.to_string(),
            secs(run.result.summary.total_time()),
            f3(sp),
            f3(run.quality.purity),
            f3(run.quality.nmi),
        ]);
    }
    report.section("summary", summary);
}

/// Fig. 9: Yahoo!-like corpus with TF-IDF threshold 0.7 (1b1r vs K-Modes).
pub fn fig9(settings: &Settings) -> Report {
    let exp = TextExperiment {
        tfidf_threshold: 0.7,
        max_words_per_topic: 10_000,
        max_iterations: SYNTHETIC_MAX_ITER,
        bandings: vec![Banding::new(1, 1)],
    };
    let set = run_text_experiment(&exp, settings);
    let mut report = Report::new("Figure 9 — Yahoo!-like questions, TF-IDF threshold 0.7");
    text_series_tables(&mut report, &set);
    report.note(format!(
        "pipeline produced {} items x {} attrs, k = {} topics (paper: 81036 x 382, k = 2916)",
        set.n_items, set.n_attrs, set.n_topics
    ));
    report
}

/// Fig. 10: threshold 0.3, max 10 iterations (1b1r / 20b5r / 50b5r).
pub fn fig10(settings: &Settings) -> Report {
    let exp = TextExperiment {
        tfidf_threshold: 0.3,
        max_words_per_topic: 10_000,
        max_iterations: 10,
        bandings: paper_bandings(&["1b1r", "20b5r", "50b5r"]),
    };
    let set = run_text_experiment(&exp, settings);
    let mut report =
        Report::new("Figure 10 — Yahoo!-like questions, TF-IDF threshold 0.3 (max 10 iterations)");
    text_series_tables(&mut report, &set);
    report.note(format!(
        "pipeline produced {} items x {} attrs, k = {} topics (paper: 157602 x 2881, k = 2916)",
        set.n_items, set.n_attrs, set.n_topics
    ));
    report
}

// ---------------------------------------------------------------- §III-C bound

/// Empirical vs analytic error bound (§III-C) on the Fig. 2 dataset.
pub fn bound(settings: &Settings) -> Report {
    let bandings = [
        Banding::new(1, 1),
        Banding::new(20, 2),
        Banding::new(20, 5),
        Banding::new(50, 5),
        Banding::new(25, 1), // the paper's worked example (r=1, b=25)
    ];
    let reports = run_bound_audit(SHAPE_FIG2, &bandings, settings);
    let mut report = Report::new("§III-C — empirical shortlist miss rate vs analytic bound");
    let mut t = TextTable::new([
        "banding",
        "miss_rate (operational)",
        "miss_rate (excl. self)",
        "mean_analytic_bound",
        "avg_shortlist",
        "unbounded_items",
    ]);
    for (banding, r) in &reports {
        t.row([
            banding.to_string(),
            format!("{:.4}", r.miss_rate),
            format!("{:.4}", r.miss_rate_excl_self),
            format!("{:.4}", r.mean_analytic_bound),
            f3(r.avg_shortlist),
            r.unbounded_items.to_string(),
        ]);
    }
    report.section("bound", t);
    report.note(
        "claim: excl-self miss rate <= mean analytic bound (the §III-C quantity); \
         the operational rate is lower still because self-collision always \
         shortlists the current cluster",
    );
    report.note(
        "the bound is informative for r=1 (e.g. 25b1r, the paper's worked example); \
         for r>=2 it is vacuous (≈1) because (1/(2m-1))^r is negligible",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Settings {
        Settings {
            scale: 0.002,
            seed: 5,
            out_dir: None,
        }
    }

    #[test]
    fn table_reports_have_expected_rows() {
        let t1 = table1(&tiny());
        assert_eq!(t1.sections[0].1.len(), 13);
        let t2 = table2(&tiny());
        assert_eq!(t2.sections[0].1.len(), 9);
        assert!(t1.render().contains("Table I"));
    }

    #[test]
    fn empirical_probability_tracks_formula() {
        let banding = Banding::new(10, 1);
        let p = empirical_candidate_probability(0.5, banding, 1, 300).unwrap();
        let analytic = candidate_probability(0.5, 1, 10);
        assert!(
            (p - analytic).abs() < 0.12,
            "measured {p} vs analytic {analytic}"
        );
    }

    #[test]
    fn fig2_report_contains_all_series() {
        let mut suite = Suite::new(tiny());
        let r = fig2(&mut suite);
        let text = r.render();
        assert!(text.contains("K-Modes"));
        assert!(text.contains("MH-K-Modes 20b5r"));
        assert!(text.contains("per_iteration"));
        assert!(text.contains("summary"));
    }

    #[test]
    fn suite_caches_runs() {
        let mut suite = Suite::new(tiny());
        let a = suite.runset("fig2");
        let b = suite.runset("fig2");
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn composite_figures_render() {
        let mut suite = Suite::new(tiny());
        let f6 = fig6(&mut suite);
        assert_eq!(f6.sections.len(), 3);
        let f7 = fig7(&mut suite);
        assert_eq!(f7.sections.len(), 5);
        let f8 = fig8(&mut suite);
        assert_eq!(f8.sections.len(), 5);
    }

    #[test]
    fn bound_report_renders() {
        let r = bound(&tiny());
        assert_eq!(r.sections[0].1.len(), 5);
    }

    #[test]
    fn csv_export_writes_files() {
        let dir = std::env::temp_dir().join("lshclust_test_csv");
        let _ = std::fs::remove_dir_all(&dir);
        let r = table2(&tiny());
        r.write_csvs(&dir, "table2").unwrap();
        assert!(dir.join("table2_table2.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
