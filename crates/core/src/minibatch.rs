//! **Shortlisted mini-batch fitting** — Sculley-style mini-batch updates
//! composed with the paper's LSH shortlist, for every algorithm family.
//!
//! Full-batch fitting touches all `n` items per iteration; the mini-batch
//! discipline (Sculley, WWW 2010) instead samples `b ≪ n` items per step and
//! nudges only the touched centroids, so fit cost scales with `b·steps`
//! rather than `n·iterations`. That attacks the *number* of assignments; the
//! paper's shortlist attacks the *cost of each one*. This module composes
//! the two: each sampled item is assigned by probing an LSH index built
//! **over the centroids** (the serving-side construction of
//! `lshclust::FittedModel`, and the neighbourhood-restricted assignment of
//! the cluster-closures line of work), with a full `k`-search fallback when
//! the shortlist comes back empty, and the index is **rebuilt every
//! [`MiniBatchParams::refresh_every`] steps** so it tracks the drifting
//! centroids (stale buckets would silently degrade the shortlist — the
//! LSH-survey motivation for keeping indexes fresh).
//!
//! One deterministic driver serves all three modalities:
//!
//! 1. sample the batch serially from one seeded RNG stream (the same stream
//!    as the `lshclust_kmodes::minibatch` baseline, so full-search and
//!    shortlisted runs draw identical batches at equal seeds),
//! 2. assign the whole batch against the step's **frozen** centroids and
//!    index, fanned over `threads` workers through
//!    [`crate::parallel::chunked_map`] (each item's result depends only on
//!    the frozen state, so the step is Jacobi-within-batch and the outcome
//!    is byte-identical at *any* thread count, including 1),
//! 3. apply the centroid nudges serially in batch order through the family's
//!    [`MiniBatchModel::absorb`] sketch.
//!
//! A final full assignment pass (also fanned over `threads`) turns the
//! drifted centroids into a complete clustering, exactly like the baseline.

use crate::framework::CentroidModel;
use crate::mhkmeans::{KMeansModel, SimHashIndex, VectorQueryScratch};
use crate::mhkmodes::KModesModel;
use crate::mhkprototypes::KPrototypesModel;
use crate::parallel::chunked_map;
use lshclust_categorical::{ClusterId, Dataset, PresentElements};
use lshclust_kmodes::init::{initial_modes, sample_distinct_items, InitMethod};
use lshclust_kmodes::kmeans::{kmeans_initial_centroids, KMeansInit, NumericDataset};
use lshclust_kmodes::kprototypes::{MixedDataset, Prototypes};
use lshclust_kmodes::minibatch::{FrequencySketch, BATCH_SAMPLING_SALT};
use lshclust_kmodes::modes::Modes;
use lshclust_kmodes::stats::{IterationStats, RunSummary};
use lshclust_minhash::hashfn::{FastSet, MixHashFamily};
use lshclust_minhash::index::{LshIndex, LshIndexBuilder, ShortlistScratch};
use lshclust_minhash::signature::SignatureGenerator;
use lshclust_minhash::Banding;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

// Centroid indexes decorrelate their hash families from batch sampling and
// from the fit-time item indexes of the Full discipline.
const CAT_MB_SALT: u64 = 0x6d62_6d68; // "mbmh"
const NUM_MB_SALT: u64 = 0x6d62_7368; // "mbsh"

/// The mini-batch schedule: how much is sampled, for how long, and how often
/// the centroid LSH index is rebuilt as the centroids drift.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MiniBatchParams {
    /// Items sampled per step (clamped to `1..=n`).
    pub batch_size: usize,
    /// Mini-batch steps before the final full assignment pass (min 1).
    pub n_steps: usize,
    /// Rebuild the centroid index every this-many steps (it is always built
    /// at step 1; `0` means never refresh after that). Irrelevant without an
    /// LSH scheme.
    pub refresh_every: usize,
    /// Cluster-closure reuse of batch assignments: a re-sampled item keeps
    /// its cached decision when no cluster in its cached shortlist has
    /// changed since — byte-identical either way. Irrelevant without an
    /// LSH scheme.
    pub closures: bool,
}

impl MiniBatchParams {
    /// Index refresh cadence used when the caller does not pick one.
    pub const DEFAULT_REFRESH_EVERY: usize = 8;

    /// A schedule with the default refresh cadence and closures enabled.
    pub fn new(batch_size: usize, n_steps: usize) -> Self {
        Self {
            batch_size,
            n_steps,
            refresh_every: Self::DEFAULT_REFRESH_EVERY,
            closures: true,
        }
    }

    /// Enables/disables cluster-closure assignment reuse.
    pub fn closures(mut self, yes: bool) -> Self {
        self.closures = yes;
        self
    }
}

/// A [`CentroidModel`] that can also absorb single items into per-cluster
/// streaming accumulators (Sculley's "nudge" update): frequency tables for
/// modes, decaying-rate means for centroids, both for prototypes.
pub trait MiniBatchModel: CentroidModel {
    /// The per-run accumulator state (owned by the driver, not the model, so
    /// a model remains reusable across disciplines).
    type Sketch;

    /// One empty accumulator sized for this model.
    fn make_sketch(&self) -> Self::Sketch;

    /// Folds `item` into `cluster`'s accumulator and nudges that cluster's
    /// centroid in place. Must be deterministic in call order. Returns
    /// whether the cluster's centroid **value** actually changed — absorbing
    /// a value that merely reinforces the current mode leaves it in place —
    /// which is what the cluster-closure reuse cache keys invalidation on.
    fn absorb(&mut self, sketch: &mut Self::Sketch, item: u32, cluster: ClusterId) -> bool;
}

impl MiniBatchModel for KModesModel<'_> {
    type Sketch = FrequencySketch;

    fn make_sketch(&self) -> FrequencySketch {
        // Flat-array counts for low-cardinality attributes (dictionary
        // sizes read off the training schema), hash maps otherwise.
        FrequencySketch::for_dataset(self.k(), self.dataset_ref())
    }

    fn absorb(&mut self, sketch: &mut FrequencySketch, item: u32, cluster: ClusterId) -> bool {
        let row = self.dataset_ref().row(item as usize);
        let mode = sketch.absorb(cluster, row);
        let changed = self.modes().of(cluster) != mode;
        self.modes_mut().set_mode(cluster, mode);
        changed
    }
}

impl MiniBatchModel for KMeansModel<'_> {
    /// Per-cluster absorb counts; the learning rate for the `c`-th absorb
    /// into a cluster is `1/c` (Sculley's decaying per-centre rate).
    type Sketch = Vec<u64>;

    fn make_sketch(&self) -> Vec<u64> {
        vec![0; self.k()]
    }

    fn absorb(&mut self, counts: &mut Vec<u64>, item: u32, cluster: ClusterId) -> bool {
        let data = self.data_ref();
        let row = data.row(item as usize);
        let dim = data.dim();
        counts[cluster.idx()] += 1;
        let eta = 1.0 / counts[cluster.idx()] as f64;
        let centroid = &mut self.centroids_mut()[cluster.idx() * dim..(cluster.idx() + 1) * dim];
        let mut changed = false;
        for (c, &x) in centroid.iter_mut().zip(row) {
            let new = *c + eta * (x - *c);
            changed |= new != *c;
            *c = new;
        }
        changed
    }
}

/// Accumulator of the mixed-data nudge: frequency tables for the mode part,
/// absorb counts for the mean part (one shared count per cluster).
pub struct PrototypeSketch {
    freq: FrequencySketch,
    counts: Vec<u64>,
}

impl MiniBatchModel for KPrototypesModel<'_> {
    type Sketch = PrototypeSketch;

    fn make_sketch(&self) -> PrototypeSketch {
        PrototypeSketch {
            freq: FrequencySketch::for_dataset(self.k(), self.data_ref().categorical),
            counts: vec![0; self.k()],
        }
    }

    fn absorb(&mut self, sketch: &mut PrototypeSketch, item: u32, cluster: ClusterId) -> bool {
        let data = self.data_ref();
        let row = data.categorical.row(item as usize);
        let point = data.numeric.row(item as usize);
        sketch.counts[cluster.idx()] += 1;
        let eta = 1.0 / sketch.counts[cluster.idx()] as f64;
        let mode = sketch.freq.absorb(cluster, row);
        let prototypes = self.prototypes_mut();
        let mut changed = prototypes.modes.of(cluster) != mode;
        prototypes.modes.set_mode(cluster, mode);
        let dim = prototypes.dim();
        let mean = &mut prototypes.means[cluster.idx() * dim..(cluster.idx() + 1) * dim];
        for (m, &x) in mean.iter_mut().zip(point) {
            let new = *m + eta * (x - *m);
            changed |= new != *m;
            *m = new;
        }
        changed
    }
}

/// An LSH index **over the centroids** that shortlists candidate clusters
/// for a dataset item, and can be rebuilt as the centroids drift. Queries
/// are read-only with per-thread scratch so the batch assignment can fan out
/// (the mini-batch twin of [`crate::parallel::SyncShortlistProvider`]).
pub trait CentroidShortlister<M: CentroidModel>: Sync {
    /// Per-thread query scratch (hash buffers, dedup stamps, …).
    type Scratch: Send;

    /// Rebuilds the index from the model's current centroids.
    fn refresh(&mut self, model: &M);

    /// One scratch per worker thread.
    fn make_scratch(&self) -> Self::Scratch;

    /// Writes the candidate clusters for `item` into `out` (cleared first).
    /// An empty result makes the driver fall back to full search.
    fn shortlist_into(&self, item: u32, scratch: &mut Self::Scratch, out: &mut Vec<ClusterId>);
}

/// Uninhabited stand-in for runs without an LSH scheme: `None::<NoShortlist>`
/// selects the full-search mini-batch path through the same driver.
pub enum NoShortlist {}

impl<M: CentroidModel> CentroidShortlister<M> for NoShortlist {
    type Scratch = ();

    fn refresh(&mut self, _model: &M) {
        match *self {}
    }

    fn make_scratch(&self) -> Self::Scratch {
        match *self {}
    }

    fn shortlist_into(&self, _item: u32, _scratch: &mut (), _out: &mut Vec<ClusterId>) {
        match *self {}
    }
}

/// MinHash banding over the modes (the categorical centroid index).
///
/// An item's band keys depend only on the item and the hash family — never
/// on the centroids — so the first [`CentroidShortlister::refresh`] hashes
/// every item **once** and each refresh after that rebuilds only the
/// (cheap, `k`-row) centroid buckets. A per-step query is then a stored-key
/// lookup plus bucket probes: no per-step hashing at all, which is what
/// lets the shortlist undercut the early-exit full search per batch item.
pub struct MinHashCentroidShortlister<'a> {
    dataset: &'a Dataset,
    banding: Banding,
    seed: u64,
    index: Option<LshIndex>,
    /// `n_items × bands` item band keys, item-major; hashed on first
    /// refresh.
    item_keys: Vec<u64>,
    k: usize,
}

impl<'a> MinHashCentroidShortlister<'a> {
    /// A shortlister for items of `dataset` against `k` mode centroids.
    pub fn new(dataset: &'a Dataset, banding: Banding, seed: u64, k: usize) -> Self {
        Self {
            dataset,
            banding,
            seed: seed ^ CAT_MB_SALT,
            index: None,
            item_keys: Vec::new(),
            k,
        }
    }

    fn refresh_from_modes(&mut self, modes: &Modes) {
        self.index = Some(
            LshIndexBuilder::new(self.banding)
                .seed(self.seed)
                .build_centroids(
                    self.dataset.schema(),
                    (0..modes.k()).map(|c| modes.mode(c)),
                    modes.k(),
                ),
        );
        if self.item_keys.is_empty() {
            let generator = SignatureGenerator::new(MixHashFamily::new(
                self.banding.signature_len(),
                self.seed,
            ));
            let n = self.dataset.n_items();
            let mut sig = Vec::with_capacity(self.banding.signature_len());
            let mut keys = Vec::with_capacity(self.banding.bands() as usize);
            self.item_keys.reserve(n * self.banding.bands() as usize);
            for item in 0..n {
                generator.signature_into(
                    PresentElements::new(self.dataset.schema(), self.dataset.row(item)),
                    &mut sig,
                );
                self.banding.band_keys_into(&sig, &mut keys);
                self.item_keys.extend_from_slice(&keys);
            }
        }
    }

    fn query(&self, item: u32, scratch: &mut CatScratch, out: &mut Vec<ClusterId>) {
        out.clear();
        let Some(index) = &self.index else { return };
        let bands = self.banding.bands() as usize;
        let keys = &self.item_keys[item as usize * bands..(item as usize + 1) * bands];
        index.shortlist_for_band_keys(keys, &mut scratch.shortlist);
        out.extend_from_slice(&scratch.shortlist.clusters);
    }
}

/// Per-thread scratch of the categorical centroid query.
pub struct CatScratch {
    shortlist: ShortlistScratch,
}

impl CentroidShortlister<KModesModel<'_>> for MinHashCentroidShortlister<'_> {
    type Scratch = CatScratch;

    fn refresh(&mut self, model: &KModesModel<'_>) {
        self.refresh_from_modes(model.modes());
    }

    fn make_scratch(&self) -> CatScratch {
        CatScratch {
            shortlist: ShortlistScratch::new(self.k, self.k),
        }
    }

    fn shortlist_into(&self, item: u32, scratch: &mut CatScratch, out: &mut Vec<ClusterId>) {
        self.query(item, scratch, out);
    }
}

/// SimHash over the mean centroids (the numeric centroid index).
pub struct SimHashCentroidShortlister<'a> {
    data: &'a NumericDataset,
    bands: u32,
    rows: u32,
    seed: u64,
    index: Option<SimHashIndex>,
}

impl<'a> SimHashCentroidShortlister<'a> {
    /// A shortlister for points of `data` against mean centroids.
    pub fn new(data: &'a NumericDataset, bands: u32, rows: u32, seed: u64) -> Self {
        Self {
            data,
            bands,
            rows,
            seed: seed ^ NUM_MB_SALT,
            index: None,
        }
    }

    fn refresh_from_means(&mut self, dim: usize, centroids: &[f64]) {
        let k = centroids.len().checked_div(dim).unwrap_or(0);
        let identity: Vec<ClusterId> = (0..k as u32).map(ClusterId).collect();
        self.index = Some(SimHashIndex::build(
            &NumericDataset::new(dim, centroids.to_vec()),
            self.bands,
            self.rows,
            self.seed,
            &identity,
        ));
    }

    fn query(&self, item: u32, scratch: &mut NumScratch, out: &mut Vec<ClusterId>) {
        out.clear();
        let Some(index) = &self.index else { return };
        index.shortlist_for_vector_with(
            self.data.row(item as usize),
            &mut scratch.query,
            out,
            &mut scratch.seen,
        );
    }
}

/// Per-thread scratch of the numeric centroid query.
#[derive(Default)]
pub struct NumScratch {
    query: VectorQueryScratch,
    seen: FastSet<u32>,
}

impl CentroidShortlister<KMeansModel<'_>> for SimHashCentroidShortlister<'_> {
    type Scratch = NumScratch;

    fn refresh(&mut self, model: &KMeansModel<'_>) {
        self.refresh_from_means(model.data_ref().dim(), model.centroids());
    }

    fn make_scratch(&self) -> NumScratch {
        NumScratch::default()
    }

    fn shortlist_into(&self, item: u32, scratch: &mut NumScratch, out: &mut Vec<ClusterId>) {
        self.query(item, scratch, out);
    }
}

/// MinHash over the mode part ∪ SimHash over the mean part — the mixed-data
/// centroid index, mirroring the fit-time `UnionProvider`.
pub struct UnionCentroidShortlister<'a> {
    cat: MinHashCentroidShortlister<'a>,
    num: SimHashCentroidShortlister<'a>,
}

impl<'a> UnionCentroidShortlister<'a> {
    /// A shortlister for items of `data` against `k` prototype centroids.
    pub fn new(
        data: &'a MixedDataset<'a>,
        banding: Banding,
        sim_bands: u32,
        sim_rows: u32,
        seed: u64,
        k: usize,
    ) -> Self {
        Self {
            cat: MinHashCentroidShortlister::new(data.categorical, banding, seed, k),
            num: SimHashCentroidShortlister::new(data.numeric, sim_bands, sim_rows, seed),
        }
    }
}

/// Per-thread scratch of the union centroid query.
pub struct UnionCentroidScratch {
    cat: CatScratch,
    num: NumScratch,
    buf: Vec<ClusterId>,
}

impl CentroidShortlister<KPrototypesModel<'_>> for UnionCentroidShortlister<'_> {
    type Scratch = UnionCentroidScratch;

    fn refresh(&mut self, model: &KPrototypesModel<'_>) {
        let prototypes = model.prototypes();
        self.cat.refresh_from_modes(&prototypes.modes);
        self.num
            .refresh_from_means(prototypes.dim(), &prototypes.means);
    }

    fn make_scratch(&self) -> UnionCentroidScratch {
        UnionCentroidScratch {
            cat: self.cat.make_scratch(),
            num: NumScratch::default(),
            buf: Vec::new(),
        }
    }

    fn shortlist_into(
        &self,
        item: u32,
        scratch: &mut UnionCentroidScratch,
        out: &mut Vec<ClusterId>,
    ) {
        self.cat.query(item, &mut scratch.cat, out);
        self.num.query(item, &mut scratch.num, &mut scratch.buf);
        for &c in &scratch.buf {
            if !out.contains(&c) {
                out.push(c);
            }
        }
    }
}

/// Where a mini-batch run's time went, phase by phase, summed over all
/// steps. Wall-clock per step (`IterationStats::duration`) bundles the three
/// phases; this breakdown exists because the phases respond to different
/// levers — the shortlist attacks `assign` only, while `absorb` (the
/// sequential sketch nudges) is identical under every LSH scheme — and the
/// bench harness compares assignment cost in isolation.
#[derive(Clone, Copy, Debug, Default)]
pub struct MiniBatchProfile {
    /// Centroid-index (re)builds, including the one-time item hashing.
    pub refresh: std::time::Duration,
    /// Batch assignment (shortlist + restricted search, or full search).
    pub assign: std::time::Duration,
    /// Sequential sketch absorption and centroid nudges.
    pub absorb: std::time::Duration,
    /// Batch items whose shortlist came back empty and fell back to full
    /// search (always 0 without an LSH scheme). Counts reused fallback
    /// decisions too, so the number matches the closure-disabled run.
    pub fallbacks: usize,
    /// The subset of [`Self::fallbacks`] answered straight from the reuse
    /// cache — the full `k`-searches the fallback cache saved.
    pub fallback_reuses: usize,
}

/// One item's cached batch decision for the cluster-closure reuse path.
#[derive(Clone, Default)]
struct BatchCache {
    /// Which index refresh the cached shortlist was read under (`0` = never
    /// evaluated; epochs start at 1).
    epoch: u32,
    /// The step whose frozen centroids the decision was computed against.
    eval_step: u64,
    /// The shortlist the centroid index returned (constant within an epoch —
    /// item band keys never change and centroid buckets only move on
    /// refresh). Empty for a cached fallback decision.
    shortlist: Vec<ClusterId>,
    /// The restricted-search (or, for a fallback, full-search) winner.
    chosen: u32,
    /// Whether the cached decision was a full `k`-search fallback. Its
    /// winner read *every* centroid, so reuse additionally requires that no
    /// centroid at all has changed since `eval_step` — and the same epoch,
    /// because a refreshed index could stop the shortlist coming back empty.
    fallback: bool,
}

/// How one batch slot was decided.
#[derive(Clone, Default)]
struct BatchDecision {
    chosen: u32,
    searched: u32,
    /// Empty shortlist → full `k`-search. Cached by epoch like any other
    /// decision, but invalidated by *any* centroid change (the search read
    /// every centroid).
    fallback: bool,
    /// The fresh shortlist to cache (`None` for reused, fallback, or
    /// closure-disabled decisions; fallbacks cache through the `fallback`
    /// flag instead).
    cache: Option<Vec<ClusterId>>,
    /// Reused straight from the cache without touching the index or model.
    reused: bool,
}

/// The shared step loop: sample → (refresh →) assign frozen batch → absorb.
/// Appends one [`IterationStats`] row per step (`moves` counts absorbed
/// items, `avg_candidates` the mean searched-cluster count — `k` whenever an
/// item fell back to full search — and `cost` is a placeholder 0 that
/// [`finish`] later backfills with the run's cost: mini-batch steps do
/// not pay the `O(n·m)` objective evaluation).
///
/// ## Cluster-closure reuse (`MiniBatchParams::closures`)
///
/// A re-sampled item may keep its cached decision iff (a) the centroid index
/// has not been refreshed since (same epoch — within an epoch the index is
/// frozen, so the cached shortlist **is** what a fresh query would return),
/// and (b) no cluster in that shortlist has had its centroid *value* change
/// since the step the decision was computed (`last_changed[c] < eval_step`;
/// an absorb that merely reinforces the current mode does not count). Under
/// those conditions a fresh restricted search would scan the identical
/// shortlist against identical centroids — same winner, same searched count
/// — so the fit is byte-identical with reuse on or off. Absorbs always run
/// (reused items still nudge their cluster), keeping the centroid trajectory
/// itself untouched by the cache.
///
/// Full-`k` **fallback** decisions (empty shortlist) cache under the same
/// epoch key with a stricter invalidation: the full search read every
/// centroid, so reuse requires that *no* centroid value has changed since
/// `eval_step` (`max(last_changed) < eval_step`). Same epoch still matters —
/// a refreshed index could return a non-empty shortlist, changing both the
/// searched count and the search itself. When valid, the reused decision is
/// exactly what the fresh path would recompute (same winner, `searched = k`,
/// still counted as a fallback), so byte-identity is preserved.
fn run_steps<M, S>(
    model: &mut M,
    mut shortlister: Option<S>,
    params: &MiniBatchParams,
    seed: u64,
    threads: usize,
    steps_out: &mut Vec<IterationStats>,
) -> MiniBatchProfile
where
    M: MiniBatchModel + Sync,
    S: CentroidShortlister<M>,
{
    let n = model.n_items();
    let k = model.k();
    let b = params.batch_size.clamp(1, n.max(1));
    let n_steps = params.n_steps.max(1);
    let closures = params.closures && shortlister.is_some();
    let mut rng = StdRng::seed_from_u64(seed ^ BATCH_SAMPLING_SALT);
    let mut sketch = model.make_sketch();
    let mut batch: Vec<u32> = Vec::with_capacity(b);
    let mut profile = MiniBatchProfile::default();
    // Closure-reuse state: per-item cached decisions, the refresh epoch they
    // were read under, and the last step each cluster's centroid value
    // changed.
    let mut cache: Vec<BatchCache> = if closures {
        vec![BatchCache::default(); n]
    } else {
        Vec::new()
    };
    let mut last_changed: Vec<u64> = vec![0; k];
    let mut epoch: u32 = 0;
    let mut changed_this_step: Vec<bool> = vec![false; k];
    for step in 1..=n_steps {
        let t = Instant::now();
        if let Some(s) = shortlister.as_mut() {
            if step == 1 || (params.refresh_every > 0 && (step - 1) % params.refresh_every == 0) {
                let t_refresh = Instant::now();
                s.refresh(&*model);
                profile.refresh += t_refresh.elapsed();
                epoch += 1;
            }
        }
        batch.clear();
        batch.extend((0..b).map(|_| rng.random_range(0..n) as u32));
        // Jacobi-within-batch: every decision reads the frozen centroids and
        // index (and the frozen reuse cache — written only after the batch),
        // so the fan-out below cannot change the outcome.
        let t_assign = Instant::now();
        let frozen: &M = &*model;
        let batch_ref: &[u32] = &batch;
        let cache_ref: &[BatchCache] = &cache;
        let last_changed_ref: &[u64] = &last_changed;
        // One scan serves every cached-fallback validity check this step:
        // a fallback read all k centroids, so the latest change anywhere is
        // its invalidation clock.
        let max_changed = last_changed.iter().copied().max().unwrap_or(0);
        let assigned: Vec<BatchDecision> = match shortlister.as_ref() {
            Some(s) => chunked_map(
                b,
                threads,
                || (s.make_scratch(), Vec::new()),
                |i, (scratch, out): &mut (S::Scratch, Vec<ClusterId>)| {
                    let item = batch_ref[i as usize];
                    if closures {
                        let slot = &cache_ref[item as usize];
                        if slot.epoch == epoch {
                            if slot.fallback {
                                if max_changed < slot.eval_step {
                                    return BatchDecision {
                                        chosen: slot.chosen,
                                        searched: k as u32,
                                        fallback: true,
                                        cache: None,
                                        reused: true,
                                    };
                                }
                            } else if slot
                                .shortlist
                                .iter()
                                .all(|c| last_changed_ref[c.idx()] < slot.eval_step)
                            {
                                return BatchDecision {
                                    chosen: slot.chosen,
                                    searched: slot.shortlist.len() as u32,
                                    fallback: false,
                                    cache: None,
                                    reused: true,
                                };
                            }
                        }
                    }
                    s.shortlist_into(item, scratch, out);
                    match frozen.best_among(item, out) {
                        Some((c, _)) => BatchDecision {
                            chosen: c.0,
                            searched: out.len() as u32,
                            fallback: false,
                            cache: closures.then(|| out.clone()),
                            reused: false,
                        },
                        // Empty shortlist: no centroid collided — fall back
                        // to full search so every batch item lands somewhere.
                        None => BatchDecision {
                            chosen: frozen.best_full(item).0 .0,
                            searched: k as u32,
                            fallback: true,
                            cache: None,
                            reused: false,
                        },
                    }
                },
            ),
            None => chunked_map(
                b,
                threads,
                || (),
                |i, _| BatchDecision {
                    chosen: frozen.best_full(batch_ref[i as usize]).0 .0,
                    searched: k as u32,
                    fallback: false,
                    cache: None,
                    reused: false,
                },
            ),
        };
        profile.assign += t_assign.elapsed();
        let searched: usize = assigned.iter().map(|d| d.searched as usize).sum();
        profile.fallbacks += assigned.iter().filter(|d| d.fallback).count();
        profile.fallback_reuses += assigned.iter().filter(|d| d.fallback && d.reused).count();
        let skipped = assigned.iter().filter(|d| d.reused).count();
        // Nudges apply serially in batch order — the one deliberately
        // sequential piece, shared by every thread count.
        let t_absorb = Instant::now();
        changed_this_step.iter_mut().for_each(|c| *c = false);
        for (&item, d) in batch.iter().zip(&assigned) {
            if model.absorb(&mut sketch, item, ClusterId(d.chosen)) {
                changed_this_step[d.chosen as usize] = true;
            }
        }
        profile.absorb += t_absorb.elapsed();
        // Record fresh decisions, then the step's centroid changes — in that
        // order, so a decision cached at step `t` whose cluster changed at
        // `t` (its own absorb included) is invalid from `t + 1` on.
        if closures {
            for (&item, d) in batch.iter().zip(&assigned) {
                let slot = &mut cache[item as usize];
                if let Some(fresh) = &d.cache {
                    slot.epoch = epoch;
                    slot.eval_step = step as u64;
                    slot.shortlist.clone_from(fresh);
                    slot.chosen = d.chosen;
                    slot.fallback = false;
                } else if d.fallback && !d.reused {
                    // A fresh full-`k` fallback: cache the verdict with an
                    // empty shortlist; the `fallback` flag switches the reuse
                    // check over to the all-centroids clock.
                    slot.epoch = epoch;
                    slot.eval_step = step as u64;
                    slot.shortlist.clear();
                    slot.chosen = d.chosen;
                    slot.fallback = true;
                }
            }
        }
        for (c, changed) in changed_this_step.iter().enumerate() {
            if *changed {
                last_changed[c] = step as u64;
            }
        }
        steps_out.push(IterationStats {
            iteration: step,
            duration: t.elapsed(),
            moves: b,
            avg_candidates: searched as f64 / b as f64,
            cost: 0,
            skipped_items: skipped,
            active_clusters: changed_this_step.iter().filter(|c| **c).count(),
        });
    }
    profile
}

/// The final full assignment pass (fanned over `threads`), appended to the
/// step series with the run's true cost.
fn finish<M: CentroidModel + Sync>(
    model: &M,
    threads: usize,
    steps: &mut Vec<IterationStats>,
) -> Vec<ClusterId> {
    let t = Instant::now();
    let assignments: Vec<ClusterId> = chunked_map(
        model.n_items(),
        threads,
        || (),
        |i, _| model.best_full(i).0 .0,
    )
    .into_iter()
    .map(ClusterId)
    .collect();
    let cost = model.total_cost(&assignments) as u64;
    // Mini-batch steps never evaluate the O(n·m) objective, so their rows
    // were recorded with a cost of 0. Backfill them with the run's true
    // cost now that it is known: `RunSummary::best_cost` is a min over the
    // rows, and a literal 0 would make every mini-batch run report a
    // perfect clustering.
    for step in steps.iter_mut() {
        step.cost = cost;
    }
    steps.push(IterationStats {
        iteration: steps.len() + 1,
        duration: t.elapsed(),
        moves: 0,
        avg_candidates: model.k() as f64,
        cost,
        skipped_items: 0,
        active_clusters: 0,
    });
    assignments
}

fn summary_of(steps: Vec<IterationStats>, setup: std::time::Duration) -> RunSummary {
    RunSummary {
        iterations: steps,
        converged: true,
        setup,
    }
}

/// Result of a mini-batch K-Modes fit through this engine.
#[derive(Clone, Debug)]
pub struct MiniBatchKModesResult {
    /// Final cluster per item (one full pass under the final modes).
    pub assignments: Vec<ClusterId>,
    /// Final modes.
    pub modes: Modes,
    /// Per-step instrumentation; the last row is the final full pass.
    /// Mini-batch steps do not evaluate the `O(n·m)` objective, so every
    /// row's `cost` carries the run's final cost (making
    /// `RunSummary::best_cost`/`final_cost` both read as the cost of the
    /// returned state, per their contract).
    pub summary: RunSummary,
    /// Phase-level timing breakdown of the steps.
    pub profile: MiniBatchProfile,
}

/// Mini-batch K-Modes: full search per batch item when `lsh` is `None`,
/// shortlisted through a periodically refreshed MinHash centroid index
/// otherwise.
pub fn minibatch_mh_kmodes(
    dataset: &Dataset,
    k: usize,
    init: InitMethod,
    seed: u64,
    lsh: Option<Banding>,
    params: &MiniBatchParams,
    threads: usize,
) -> MiniBatchKModesResult {
    let setup_start = Instant::now();
    let modes = initial_modes(dataset, k, init, seed);
    minibatch_mh_kmodes_from(dataset, seed, lsh, params, threads, modes, setup_start)
}

/// [`minibatch_mh_kmodes`] from explicit initial modes — the warm-start path
/// of `lshclust::ClusterSpec::warm_start`.
pub fn minibatch_mh_kmodes_from(
    dataset: &Dataset,
    seed: u64,
    lsh: Option<Banding>,
    params: &MiniBatchParams,
    threads: usize,
    modes: Modes,
    setup_start: Instant,
) -> MiniBatchKModesResult {
    assert!(modes.k() > 0 && modes.k() <= dataset.n_items());
    let k = modes.k();
    let mut model = KModesModel::new(dataset, modes);
    let setup = setup_start.elapsed();
    let mut steps = Vec::new();
    let profile = match lsh {
        Some(banding) => run_steps(
            &mut model,
            Some(MinHashCentroidShortlister::new(dataset, banding, seed, k)),
            params,
            seed,
            threads,
            &mut steps,
        ),
        None => run_steps(
            &mut model,
            None::<NoShortlist>,
            params,
            seed,
            threads,
            &mut steps,
        ),
    };
    let assignments = finish(&model, threads, &mut steps);
    MiniBatchKModesResult {
        assignments,
        modes: model.into_modes(),
        summary: summary_of(steps, setup),
        profile,
    }
}

/// Result of a mini-batch K-Means fit through this engine.
#[derive(Clone, Debug)]
pub struct MiniBatchKMeansResult {
    /// Final cluster per item.
    pub assignments: Vec<ClusterId>,
    /// Final centroids (`k × dim`, row-major).
    pub centroids: Vec<f64>,
    /// Per-step instrumentation (see [`MiniBatchKModesResult::summary`]).
    pub summary: RunSummary,
    /// Phase-level timing breakdown of the steps.
    pub profile: MiniBatchProfile,
}

/// Mini-batch K-Means (Sculley's algorithm): full search per batch item when
/// `lsh` is `None`, shortlisted through a refreshed SimHash centroid index
/// given `(bands, rows)`.
pub fn minibatch_mh_kmeans(
    data: &NumericDataset,
    k: usize,
    init: KMeansInit,
    seed: u64,
    lsh: Option<(u32, u32)>,
    params: &MiniBatchParams,
    threads: usize,
) -> MiniBatchKMeansResult {
    let setup_start = Instant::now();
    let centroids = kmeans_initial_centroids(data, k, init, seed);
    minibatch_mh_kmeans_from(data, k, seed, lsh, params, threads, centroids, setup_start)
}

/// [`minibatch_mh_kmeans`] from explicit initial centroids (warm start).
#[allow(clippy::too_many_arguments)]
pub fn minibatch_mh_kmeans_from(
    data: &NumericDataset,
    k: usize,
    seed: u64,
    lsh: Option<(u32, u32)>,
    params: &MiniBatchParams,
    threads: usize,
    centroids: Vec<f64>,
    setup_start: Instant,
) -> MiniBatchKMeansResult {
    assert!(k > 0 && k <= data.n_items());
    let mut model = KMeansModel::new(data, centroids, k);
    let setup = setup_start.elapsed();
    let mut steps = Vec::new();
    let profile = match lsh {
        Some((bands, rows)) => run_steps(
            &mut model,
            Some(SimHashCentroidShortlister::new(data, bands, rows, seed)),
            params,
            seed,
            threads,
            &mut steps,
        ),
        None => run_steps(
            &mut model,
            None::<NoShortlist>,
            params,
            seed,
            threads,
            &mut steps,
        ),
    };
    let assignments = finish(&model, threads, &mut steps);
    MiniBatchKMeansResult {
        assignments,
        centroids: model.centroids().to_vec(),
        summary: summary_of(steps, setup),
        profile,
    }
}

/// The union banding of a mixed-data mini-batch run.
#[derive(Clone, Copy, Debug)]
pub struct UnionBands {
    /// MinHash banding for the categorical part.
    pub banding: Banding,
    /// SimHash bands for the numeric part.
    pub sim_bands: u32,
    /// SimHash bits per band.
    pub sim_rows: u32,
}

/// Result of a mini-batch K-Prototypes fit through this engine.
#[derive(Clone, Debug)]
pub struct MiniBatchKPrototypesResult {
    /// Final cluster per item.
    pub assignments: Vec<ClusterId>,
    /// Final prototypes.
    pub prototypes: Prototypes,
    /// Per-step instrumentation (see [`MiniBatchKModesResult::summary`]).
    pub summary: RunSummary,
    /// Phase-level timing breakdown of the steps.
    pub profile: MiniBatchProfile,
}

/// Mini-batch K-Prototypes: full search per batch item when `lsh` is `None`,
/// shortlisted through refreshed MinHash∪SimHash centroid indexes otherwise.
/// Initialisation draws `k` random items (the only strategy both
/// K-Prototypes paths support).
pub fn minibatch_mh_kprototypes(
    data: &MixedDataset<'_>,
    k: usize,
    gamma: f64,
    seed: u64,
    lsh: Option<UnionBands>,
    params: &MiniBatchParams,
    threads: usize,
) -> MiniBatchKPrototypesResult {
    let setup_start = Instant::now();
    let picks = sample_distinct_items(data.n_items(), k, seed);
    let prototypes = Prototypes::from_items(data, &picks);
    minibatch_mh_kprototypes_from(
        data,
        gamma,
        seed,
        lsh,
        params,
        threads,
        prototypes,
        setup_start,
    )
}

/// [`minibatch_mh_kprototypes`] from explicit initial prototypes (warm
/// start).
#[allow(clippy::too_many_arguments)]
pub fn minibatch_mh_kprototypes_from(
    data: &MixedDataset<'_>,
    gamma: f64,
    seed: u64,
    lsh: Option<UnionBands>,
    params: &MiniBatchParams,
    threads: usize,
    prototypes: Prototypes,
    setup_start: Instant,
) -> MiniBatchKPrototypesResult {
    assert!(prototypes.k() > 0 && prototypes.k() <= data.n_items());
    let k = prototypes.k();
    let mut model = KPrototypesModel::new(data, prototypes, gamma);
    let setup = setup_start.elapsed();
    let mut steps = Vec::new();
    let profile = match lsh {
        Some(u) => run_steps(
            &mut model,
            Some(UnionCentroidShortlister::new(
                data,
                u.banding,
                u.sim_bands,
                u.sim_rows,
                seed,
                k,
            )),
            params,
            seed,
            threads,
            &mut steps,
        ),
        None => run_steps(
            &mut model,
            None::<NoShortlist>,
            params,
            seed,
            threads,
            &mut steps,
        ),
    };
    let assignments = finish(&model, threads, &mut steps);
    MiniBatchKPrototypesResult {
        assignments,
        prototypes: model.into_prototypes(),
        summary: summary_of(steps, setup),
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;

    fn blob_dataset(groups: usize, per_group: usize, n_attrs: usize) -> Dataset {
        let mut b = DatasetBuilder::anonymous(n_attrs);
        for g in 0..groups {
            for i in 0..per_group {
                let row: Vec<String> = (0..n_attrs)
                    .map(|a| {
                        if a == 0 {
                            format!("g{g}n{i}")
                        } else {
                            format!("g{g}a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
            }
        }
        b.finish()
    }

    fn blob_numeric(groups: usize, per_group: usize, dim: usize) -> NumericDataset {
        let mut data = Vec::new();
        for g in 0..groups {
            for i in 0..per_group {
                for d in 0..dim {
                    let jitter = ((i * 7 + d * 3) as f64 * 0.31).sin() * 0.2;
                    data.push(g as f64 * 12.0 + jitter);
                }
            }
        }
        NumericDataset::new(dim, data)
    }

    fn params(batch: usize, steps: usize) -> MiniBatchParams {
        MiniBatchParams {
            batch_size: batch,
            n_steps: steps,
            refresh_every: 4,
            closures: true,
        }
    }

    #[test]
    fn shortlisted_kmodes_separates_blobs() {
        let ds = blob_dataset(3, 10, 6);
        let result = minibatch_mh_kmodes(
            &ds,
            3,
            InitMethod::RandomItems,
            0,
            Some(Banding::new(8, 2)),
            &params(16, 30),
            1,
        );
        for g in 0..3 {
            let first = result.assignments[g * 10];
            for i in 0..10 {
                assert_eq!(result.assignments[g * 10 + i], first, "blob {g} split");
            }
        }
    }

    #[test]
    fn full_search_path_matches_kmodes_baseline() {
        // Same sampling stream, same sketch, same Jacobi-within-batch
        // semantics: the engine with `lsh: None` must be byte-identical to
        // the dependency-light `lshclust_kmodes::minibatch` baseline.
        let ds = blob_dataset(3, 8, 5);
        let engine =
            minibatch_mh_kmodes(&ds, 3, InitMethod::RandomItems, 9, None, &params(8, 12), 1);
        let baseline = lshclust_kmodes::minibatch::minibatch_kmodes(
            &ds,
            &lshclust_kmodes::minibatch::MiniBatchConfig::new(3)
                .batch_size(8)
                .n_steps(12)
                .seed(9),
        );
        assert_eq!(engine.assignments, baseline.assignments);
        assert_eq!(engine.modes, baseline.modes);
    }

    #[test]
    fn thread_count_does_not_change_the_fit() {
        let ds = blob_dataset(4, 8, 6);
        let run = |threads| {
            minibatch_mh_kmodes(
                &ds,
                4,
                InitMethod::RandomItems,
                5,
                Some(Banding::new(8, 2)),
                &params(12, 20),
                threads,
            )
        };
        let one = run(1);
        for threads in [2, 4, 8] {
            let other = run(threads);
            assert_eq!(one.assignments, other.assignments, "threads={threads}");
            assert_eq!(one.modes, other.modes, "threads={threads}");
        }
    }

    #[test]
    fn closure_reuse_is_byte_identical_for_kmodes() {
        let ds = blob_dataset(4, 8, 6);
        let run = |closures| {
            minibatch_mh_kmodes(
                &ds,
                4,
                InitMethod::RandomItems,
                7,
                Some(Banding::new(8, 2)),
                &MiniBatchParams {
                    batch_size: 16,
                    n_steps: 40,
                    refresh_every: 16,
                    closures,
                },
                2,
            )
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.assignments, off.assignments);
        assert_eq!(on.modes, off.modes);
        // Trajectory identical except for the skip counter itself.
        for (a, b) in on.summary.iterations.iter().zip(&off.summary.iterations) {
            assert_eq!(a.moves, b.moves);
            assert_eq!(a.avg_candidates, b.avg_candidates);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.active_clusters, b.active_clusters);
            assert_eq!(b.skipped_items, 0);
        }
        // Once the blob modes stabilise, re-sampled items actually reuse.
        assert!(
            on.summary.total_skipped() > 0,
            "expected some reuse: {:?}",
            on.summary
                .iterations
                .iter()
                .map(|s| s.skipped_items)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn fallback_decisions_cache_and_stay_byte_identical() {
        // Aggressive banding (2 bands x 16 rows) almost never lands a
        // centroid in an item's buckets, so shortlists come back empty and
        // most decisions are full-`k` fallbacks — the path satellite caching
        // has to keep byte-identical.
        let ds = blob_dataset(4, 8, 6);
        let run = |closures| {
            minibatch_mh_kmodes(
                &ds,
                4,
                InitMethod::RandomItems,
                7,
                Some(Banding::new(2, 16)),
                &MiniBatchParams {
                    batch_size: 16,
                    n_steps: 40,
                    refresh_every: 16,
                    closures,
                },
                2,
            )
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.assignments, off.assignments);
        assert_eq!(on.modes, off.modes);
        // Reused fallbacks still count as fallbacks, so the profile agrees
        // with the closure-disabled run.
        assert_eq!(on.profile.fallbacks, off.profile.fallbacks);
        for (a, b) in on.summary.iterations.iter().zip(&off.summary.iterations) {
            assert_eq!(a.moves, b.moves);
            assert_eq!(a.avg_candidates, b.avg_candidates);
            assert_eq!(a.active_clusters, b.active_clusters);
            assert_eq!(b.skipped_items, 0);
        }
        assert!(
            on.profile.fallbacks > 0,
            "banding was supposed to force fallbacks: {:?}",
            on.profile
        );
        assert!(
            on.profile.fallback_reuses > 0,
            "expected cached fallback decisions to be reused: {:?}",
            on.profile
        );
        assert_eq!(off.profile.fallback_reuses, 0);
    }

    #[test]
    fn closure_reuse_is_byte_identical_for_kmeans() {
        let data = blob_numeric(3, 10, 4);
        let run = |closures| {
            minibatch_mh_kmeans(
                &data,
                3,
                KMeansInit::PlusPlus,
                2,
                Some((4, 8)),
                &MiniBatchParams {
                    batch_size: 12,
                    n_steps: 25,
                    refresh_every: 8,
                    closures,
                },
                2,
            )
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.assignments, off.assignments);
        assert_eq!(on.centroids, off.centroids, "means must be bit-identical");
    }

    #[test]
    fn shortlisted_kmeans_separates_blobs_and_is_thread_invariant() {
        let data = blob_numeric(3, 10, 4);
        // D² seeding spreads the initial centroids across the blobs —
        // mini-batch has no empty-cluster reseeding, so an init doubled up
        // inside one blob could never recover the partition.
        let run = |threads| {
            minibatch_mh_kmeans(
                &data,
                3,
                KMeansInit::PlusPlus,
                2,
                Some((4, 8)),
                &params(12, 25),
                threads,
            )
        };
        let one = run(1);
        for g in 0..3 {
            let first = one.assignments[g * 10];
            for i in 0..10 {
                assert_eq!(one.assignments[g * 10 + i], first, "blob {g} split");
            }
        }
        let four = run(4);
        assert_eq!(one.assignments, four.assignments);
        assert_eq!(
            one.centroids, four.centroids,
            "float means must be bit-identical"
        );
    }

    #[test]
    fn shortlisted_kprototypes_runs_and_is_thread_invariant() {
        let cat = blob_dataset(3, 8, 4);
        let num = blob_numeric(3, 8, 3);
        let data = MixedDataset::new(&cat, &num);
        let lsh = UnionBands {
            banding: Banding::new(8, 2),
            sim_bands: 4,
            sim_rows: 8,
        };
        let run = |threads| {
            minibatch_mh_kprototypes(&data, 3, 1.0, 1, Some(lsh), &params(10, 20), threads)
        };
        let one = run(1);
        assert_eq!(one.assignments.len(), 24);
        let four = run(4);
        assert_eq!(one.assignments, four.assignments);
        assert_eq!(one.prototypes.means, four.prototypes.means);
        assert_eq!(one.prototypes.modes, four.prototypes.modes);
    }

    #[test]
    fn steps_record_shortlist_sizes_below_k() {
        let ds = blob_dataset(8, 6, 8);
        let result = minibatch_mh_kmodes(
            &ds,
            8,
            InitMethod::RandomItems,
            3,
            Some(Banding::new(6, 2)),
            &params(24, 15),
            1,
        );
        let steps = &result.summary.iterations[..result.summary.iterations.len() - 1];
        let mean: f64 = steps.iter().map(|s| s.avg_candidates).sum::<f64>() / steps.len() as f64;
        assert!(mean < 8.0, "mean searched clusters {mean} not below k=8");
        // The final row is the full pass and carries the true cost.
        let last = result.summary.iterations.last().unwrap();
        assert_eq!(last.avg_candidates, 8.0);
    }

    #[test]
    fn zero_step_and_zero_batch_params_are_clamped() {
        let ds = blob_dataset(2, 4, 4);
        let result = minibatch_mh_kmodes(
            &ds,
            2,
            InitMethod::RandomItems,
            0,
            None,
            &MiniBatchParams {
                batch_size: 0,
                n_steps: 0,
                refresh_every: 0,
                closures: true,
            },
            1,
        );
        assert_eq!(result.assignments.len(), 8);
        // One clamped step plus the final full pass.
        assert_eq!(result.summary.iterations.len(), 2);
    }

    #[test]
    fn refresh_never_after_initial_build_still_works() {
        let ds = blob_dataset(3, 6, 5);
        let result = minibatch_mh_kmodes(
            &ds,
            3,
            InitMethod::RandomItems,
            4,
            Some(Banding::new(8, 2)),
            &MiniBatchParams {
                batch_size: 8,
                n_steps: 10,
                refresh_every: 0,
                closures: true,
            },
            1,
        );
        assert_eq!(result.assignments.len(), 18);
    }
}
