//! Adjusted Rand index (Hubert & Arabie).
//!
//! Chance-corrected pair-counting agreement between two partitions:
//! `ARI = (Index − E[Index]) / (Max − E[Index])` over item pairs. 1.0 for
//! identical partitions, ~0 for random ones, negative for adversarial ones.

use crate::contingency::Contingency;

fn choose2(x: u64) -> f64 {
    (x as f64) * (x as f64 - 1.0) / 2.0
}

/// Computes the adjusted Rand index between predictions and labels.
pub fn adjusted_rand_index(predicted: &[u32], truth: &[u32]) -> f64 {
    if predicted.len() < 2 {
        return 1.0; // degenerate: no pairs to disagree on
    }
    let table = Contingency::new(predicted, truth);
    let sum_cells: f64 = table.cells().map(|(_, _, c)| choose2(c)).sum();
    let sum_clusters: f64 = table.cluster_totals().map(|(_, c)| choose2(c)).sum();
    let sum_classes: f64 = table.class_totals().map(|(_, c)| choose2(c)).sum();
    let total_pairs = choose2(table.n());
    let expected = sum_clusters * sum_classes / total_pairs;
    let max_index = 0.5 * (sum_clusters + sum_classes);
    if (max_index - expected).abs() < 1e-15 {
        // Both partitions trivial (all-singletons vs all-singletons etc.).
        return if (sum_cells - expected).abs() < 1e-15 {
            1.0
        } else {
            0.0
        };
    }
    (sum_cells - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let p = [0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabelling_scores_one() {
        assert!((adjusted_rand_index(&[0, 0, 1, 1], &[9, 9, 4, 4]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_near_zero() {
        let p = [0, 0, 1, 1, 0, 0, 1, 1];
        let t = [0, 1, 0, 1, 0, 1, 0, 1];
        let ari = adjusted_rand_index(&p, &t);
        assert!(ari.abs() < 0.2, "ari {ari}");
    }

    #[test]
    fn worse_than_chance_is_negative() {
        // Anti-correlated partition on 4 items: each cluster contains one
        // item of each class.
        let p = [0, 0, 1, 1];
        let t = [0, 1, 0, 1];
        let ari = adjusted_rand_index(&p, &t);
        assert!(ari < 0.0 || ari.abs() < 1e-12, "ari {ari}");
    }

    #[test]
    fn partial_agreement_between_zero_and_one() {
        // One item of class 0 strays into cluster 1: (4−2.8)/(6.5−2.8) ≈ 0.324.
        let p = [0, 0, 0, 1, 1, 1];
        let t = [0, 0, 0, 1, 1, 0];
        let ari = adjusted_rand_index(&p, &t);
        assert!(ari > 0.0 && ari < 1.0, "ari {ari}");
        assert!((ari - 1.2 / 3.7).abs() < 1e-9);
    }

    #[test]
    fn known_value_sklearn_example() {
        // sklearn docs: ARI([0,0,1,1],[0,0,1,2]) ≈ 0.5714285714.
        let ari = adjusted_rand_index(&[0, 0, 1, 1], &[0, 0, 1, 2]);
        assert!((ari - 0.571_428_571_4).abs() < 1e-9, "ari {ari}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
        assert_eq!(adjusted_rand_index(&[0], &[3]), 1.0);
    }

    #[test]
    fn all_singletons_vs_all_singletons() {
        let p = [0, 1, 2, 3];
        assert!((adjusted_rand_index(&p, &p) - 1.0).abs() < 1e-12);
    }
}
