//! The long-lived serving layer: [`ModelServer`] — a worker pool over a
//! hot-swappable [`FittedModel`], fed by a micro-batching request queue.
//!
//! [`FittedModel::predict`] is a synchronous library call: its throughput is
//! bounded by whatever batch one caller happens to hold. A service front has
//! the opposite shape — **many** concurrent callers, each holding a *single*
//! row — and serving each row as its own call wastes the batch machinery
//! (thread fan-out, scratch reuse) the predict path already has. The server
//! closes that gap:
//!
//! * callers submit single requests ([`ModelServer::submit_row`] and
//!   friends) and get back a [`PredictTicket`] to wait on — an
//!   `async`-shaped API built on the offline shims (std threads + channels,
//!   no tokio);
//! * requests land in a bounded [`MicroBatchQueue`] whose consumers pop
//!   **coalesced batches**: the first request opens a short
//!   [`ServerConfig::flush_latency`] window in which concurrent callers'
//!   requests merge, up to [`ServerConfig::max_batch`];
//! * each worker serves its batch against an atomic **snapshot** of the
//!   current model, fanned over the model's `spec.threads` with one reused
//!   scratch per thread — the same shortlisted assignment core as
//!   `FittedModel::predict`, so a served answer is byte-identical to the
//!   library call;
//! * the model behind the server **hot reloads** ([`ModelServer::reload`] /
//!   [`ModelHandle::reload`]): the swap is one generation bump plus an
//!   `Arc` store, in-flight batches finish on the snapshot they started
//!   with, and every [`Prediction`] carries the generation that served it;
//! * [`ModelServer::shutdown`] closes intake (further submits fail with
//!   [`ServeError::ShutDown`]), drains every queued request, and joins the
//!   workers — no ticket is ever left hanging.
//!
//! ```
//! use lshclust::serve::{ModelServer, ServerConfig};
//! use lshclust::{ClusterSpec, Clusterer, Lsh, NumericDataset};
//!
//! let data = NumericDataset::new(1, vec![0.0, 0.2, 0.4, 9.0, 9.2, 9.4]);
//! let spec = ClusterSpec::new(2).lsh(Lsh::SimHash { bands: 8, rows: 2 });
//! let run = Clusterer::new(spec).fit(&data).unwrap();
//!
//! let server = ModelServer::start(run.model.clone(), ServerConfig::default());
//! let ticket = server.submit_point(vec![0.1]).unwrap();   // async-style
//! let prediction = ticket.wait().unwrap();
//! assert_eq!(prediction.cluster, run.assignments[0]);
//! assert_eq!(prediction.generation, 0);                    // initial model
//! server.shutdown();                                       // drains + joins
//! ```

use crate::model::{FittedModel, ModelError, ServeScratch};
use lshclust_categorical::{ClusterId, ValueId};
use lshclust_core::parallel::{chunked_map, MicroBatchQueue, QueuePushError};
use std::fmt;
use std::sync::{mpsc, Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Shape of a [`ModelServer`]'s worker pool and micro-batching queue.
///
/// All counts clamp to at least 1 at [`ModelServer::start`] (the workspace's
/// `threads(0)` boundary rule). `max_batch: 1` or a zero `flush_latency`
/// disables coalescing — every request is served as its own batch — which is
/// the ablation mode `bench_serve` measures against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads popping batches from the queue.
    pub workers: usize,
    /// Most requests coalesced into one batch.
    pub max_batch: usize,
    /// How long the first request of a batch waits for company before the
    /// batch is flushed to a worker.
    pub flush_latency: Duration,
    /// Most requests pending in the queue; submissions beyond it fail fast
    /// with [`ServeError::QueueFull`] instead of blocking the caller.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 64,
            flush_latency: Duration::from_micros(200),
            queue_depth: 1024,
        }
    }
}

impl ServerConfig {
    /// Sets the worker count (`0` clamps to 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Sets the coalescing cap (`0` clamps to 1 = no coalescing).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }

    /// Sets the coalescing window (zero = flush immediately).
    pub fn flush_latency(mut self, latency: Duration) -> Self {
        self.flush_latency = latency;
        self
    }

    /// Sets the queue bound (`0` clamps to 1).
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n.max(1);
        self
    }

    fn normalized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.max_batch = self.max_batch.max(1);
        self.queue_depth = self.queue_depth.max(1);
        self
    }
}

/// Why a serving request failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The request queue is at `queue_depth`; the server is shedding load.
    QueueFull,
    /// The server was shut down; no further requests are accepted.
    ShutDown,
    /// The model rejected the request (wrong modality, wrong shape, …).
    Model(ModelError),
    /// The serving side went away without answering (a worker panicked).
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "request queue is full (load shed)"),
            ServeError::ShutDown => write!(f, "server is shut down"),
            ServeError::Model(e) => write!(f, "model rejected the request: {e}"),
            ServeError::Disconnected => write!(f, "serving side disconnected without a reply"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        ServeError::Model(e)
    }
}

/// A served assignment: the chosen cluster plus the **generation** of the
/// model that produced it (0 for the model the server started with, bumped
/// by every reload) — so callers can tell pre- and post-reload answers
/// apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// The assigned cluster.
    pub cluster: ClusterId,
    /// Generation of the model snapshot that served this request.
    pub generation: u64,
}

/// One request's payload. String rows stay raw until serving time so they
/// are encoded under the schema of the model snapshot that actually answers
/// them (which may be newer than the one live at submit time).
enum Payload {
    Row(Vec<ValueId>),
    Point(Vec<f64>),
    Mixed(Vec<ValueId>, Vec<f64>),
    StrRow(Vec<String>),
    StrMixed(Vec<String>, Vec<f64>),
}

struct Request {
    payload: Payload,
    reply: mpsc::Sender<Result<Prediction, ServeError>>,
}

/// The waitable half of a submitted request.
///
/// Obtained from the `submit_*` methods; [`Self::wait`] blocks until a
/// worker has served the request (shutdown drains the queue, so every
/// ticket issued before shutdown resolves).
#[must_use = "a ticket resolves to the prediction; drop it and the answer is lost"]
pub struct PredictTicket {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl PredictTicket {
    /// Blocks until the request is served.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Non-blocking poll: `None` while the request is still in flight. A
    /// request that can no longer be answered (its serving side went away)
    /// resolves to `Some(Err(ServeError::Disconnected))` rather than
    /// pretending to be in flight forever.
    pub fn try_wait(&self) -> Option<Result<Prediction, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

struct Current {
    generation: u64,
    model: Arc<FittedModel>,
}

/// A shared, atomically swappable reference to the model being served.
///
/// Cloning the handle is cheap (one `Arc`); every clone sees the same
/// current model. [`Self::reload`] swaps it for all holders at once —
/// workers snapshot per batch, so in-flight batches finish on the model
/// they started with while the very next batch sees the new one. This is
/// the hot-reload primitive behind [`ModelServer::reload`], exposed
/// separately so a control plane (e.g. the `cluster serve` stdin loop) can
/// swap models without holding the server itself.
#[derive(Clone)]
pub struct ModelHandle {
    current: Arc<RwLock<Current>>,
}

impl ModelHandle {
    /// Wraps `model` as generation 0.
    pub fn new(model: FittedModel) -> Self {
        Self {
            current: Arc::new(RwLock::new(Current {
                generation: 0,
                model: Arc::new(model),
            })),
        }
    }

    /// The current generation (0 until the first reload).
    pub fn generation(&self) -> u64 {
        self.current.read().expect("model lock").generation
    }

    /// A snapshot of the current model — stays valid (and unchanged) across
    /// concurrent reloads.
    pub fn model(&self) -> Arc<FittedModel> {
        self.snapshot().1
    }

    fn snapshot(&self) -> (u64, Arc<FittedModel>) {
        let current = self.current.read().expect("model lock");
        (current.generation, Arc::clone(&current.model))
    }

    /// Atomically swaps in `model` and returns the new generation. Requests
    /// already being served finish against their snapshot; requests served
    /// after the swap see `model`.
    pub fn reload(&self, model: FittedModel) -> u64 {
        let mut current = self.current.write().expect("model lock");
        current.generation += 1;
        current.model = Arc::new(model);
        current.generation
    }

    /// [`Self::reload`] from a serialized model envelope (the versioned JSON
    /// of [`FittedModel::to_json`]); the envelope is parsed and validated
    /// **in full before the write lock is taken**, so a bad artifact can
    /// never take down a healthy server — the generation only moves when a
    /// complete, valid model is ready to swap in.
    pub fn reload_from_json(&self, json: &str) -> Result<u64, ModelError> {
        let model = FittedModel::from_json(json)?;
        Ok(self.reload(model))
    }

    /// [`Self::reload`] from serialized envelope bytes, sniffing v1 JSON vs
    /// the v2 binary format ([`FittedModel::from_bytes`]). Same guarantee as
    /// [`Self::reload_from_json`]: decode fails ⇒ no swap, no generation
    /// bump. The v2 path is the one to reach for under load — its decode
    /// copies the index's flat band-key buffers instead of re-hashing every
    /// centroid, so the pause before the swap shrinks with it.
    pub fn reload_from_bytes(&self, bytes: &[u8]) -> Result<u64, ModelError> {
        let model = FittedModel::from_bytes(bytes)?;
        Ok(self.reload(model))
    }

    /// [`Self::reload_from_bytes`] straight from a file path (either
    /// envelope format). Read or decode fails ⇒ no swap, no generation bump.
    pub fn reload_from_path<P: AsRef<std::path::Path>>(&self, path: P) -> Result<u64, ModelError> {
        let model = FittedModel::load(path)?;
        Ok(self.reload(model))
    }
}

/// The long-lived serving front over a [`FittedModel`]: a worker pool fed by
/// a micro-batching request queue, with atomic hot reload and graceful
/// draining shutdown. See the [module docs](self) for the full lifecycle.
pub struct ModelServer {
    handle: ModelHandle,
    queue: Arc<MicroBatchQueue<Request>>,
    workers: Vec<JoinHandle<()>>,
    config: ServerConfig,
}

impl ModelServer {
    /// Spawns `config.workers` worker threads serving `model`.
    pub fn start(model: FittedModel, config: ServerConfig) -> Self {
        let config = config.normalized();
        let handle = ModelHandle::new(model);
        let queue = Arc::new(MicroBatchQueue::new(config.queue_depth));
        let workers = (0..config.workers)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let handle = handle.clone();
                let (max_batch, flush_latency) = (config.max_batch, config.flush_latency);
                std::thread::spawn(move || worker_loop(&queue, &handle, max_batch, flush_latency))
            })
            .collect();
        Self {
            handle,
            queue,
            workers,
            config,
        }
    }

    /// The normalized configuration in effect.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// A clone of the server's [`ModelHandle`] (for control planes that
    /// reload or inspect the model without owning the server).
    pub fn handle(&self) -> ModelHandle {
        self.handle.clone()
    }

    /// The current model generation.
    pub fn generation(&self) -> u64 {
        self.handle.generation()
    }

    /// A snapshot of the model currently being served.
    pub fn model(&self) -> Arc<FittedModel> {
        self.handle.model()
    }

    /// Hot-reloads the served model without draining in-flight requests;
    /// returns the new generation. See [`ModelHandle::reload`].
    pub fn reload(&self, model: FittedModel) -> u64 {
        self.handle.reload(model)
    }

    /// Requests currently pending in the queue (monitoring; racy by nature).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn submit(&self, payload: Payload) -> Result<PredictTicket, ServeError> {
        let (reply, rx) = mpsc::channel();
        match self.queue.push(Request { payload, reply }) {
            Ok(()) => Ok(PredictTicket { rx }),
            Err(QueuePushError::Full(_)) => Err(ServeError::QueueFull),
            Err(QueuePushError::Closed(_)) => Err(ServeError::ShutDown),
        }
    }

    /// Submits one encoded categorical row (values under the model's
    /// training schema).
    pub fn submit_row(&self, row: Vec<ValueId>) -> Result<PredictTicket, ServeError> {
        self.submit(Payload::Row(row))
    }

    /// Submits one numeric point.
    pub fn submit_point(&self, point: Vec<f64>) -> Result<PredictTicket, ServeError> {
        self.submit(Payload::Point(point))
    }

    /// Submits one mixed item (encoded categorical part + numeric part).
    pub fn submit_mixed(
        &self,
        row: Vec<ValueId>,
        point: Vec<f64>,
    ) -> Result<PredictTicket, ServeError> {
        self.submit(Payload::Mixed(row, point))
    }

    /// Submits one raw string row; it is encoded at **serving** time under
    /// the schema of whichever model snapshot answers it, so reloads apply
    /// to queued string rows too.
    pub fn submit_str_row(&self, row: &[&str]) -> Result<PredictTicket, ServeError> {
        self.submit(Payload::StrRow(
            row.iter().map(|s| (*s).to_owned()).collect(),
        ))
    }

    /// Submits one raw string row plus a numeric part (mixed models); like
    /// [`Self::submit_str_row`], the categorical part is encoded at
    /// **serving** time under the schema of whichever model snapshot answers
    /// it, so hot reloads apply to queued mixed requests too.
    pub fn submit_str_mixed(
        &self,
        row: &[&str],
        point: Vec<f64>,
    ) -> Result<PredictTicket, ServeError> {
        self.submit(Payload::StrMixed(
            row.iter().map(|s| (*s).to_owned()).collect(),
            point,
        ))
    }

    /// Submit-and-wait convenience for [`Self::submit_row`].
    pub fn predict_row(&self, row: Vec<ValueId>) -> Result<Prediction, ServeError> {
        self.submit_row(row)?.wait()
    }

    /// Submit-and-wait convenience for [`Self::submit_point`].
    pub fn predict_point(&self, point: Vec<f64>) -> Result<Prediction, ServeError> {
        self.submit_point(point)?.wait()
    }

    /// Submit-and-wait convenience for [`Self::submit_mixed`].
    pub fn predict_mixed(
        &self,
        row: Vec<ValueId>,
        point: Vec<f64>,
    ) -> Result<Prediction, ServeError> {
        self.submit_mixed(row, point)?.wait()
    }

    /// Submit-and-wait convenience for [`Self::submit_str_row`].
    pub fn predict_str_row(&self, row: &[&str]) -> Result<Prediction, ServeError> {
        self.submit_str_row(row)?.wait()
    }

    /// Submit-and-wait convenience for [`Self::submit_str_mixed`].
    pub fn predict_str_mixed(
        &self,
        row: &[&str],
        point: Vec<f64>,
    ) -> Result<Prediction, ServeError> {
        self.submit_str_mixed(row, point)?.wait()
    }

    /// Lame-duck mode: closes intake **without** consuming the server —
    /// further submits fail with [`ServeError::ShutDown`] while
    /// already-accepted requests keep draining. The first half of
    /// [`Self::shutdown`], useful when a daemon wants to refuse new work
    /// before its final drain.
    pub fn close_intake(&self) {
        self.queue.close();
    }

    /// Graceful shutdown: closes intake (further submits fail with
    /// [`ServeError::ShutDown`]), lets the workers **drain every queued
    /// request**, and joins them. Dropping the server does the same, so a
    /// ticket issued before shutdown always resolves.
    pub fn shutdown(self) {
        // Drop runs the close-drain-join sequence.
    }
}

impl Drop for ModelServer {
    fn drop(&mut self) {
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Below this batch size a worker serves inline with its cached scratch;
/// spawning `spec.threads` scoped workers costs tens of microseconds, which
/// only amortizes over batches with real work in them.
const FAN_OUT_MIN_BATCH: usize = 17;

/// One worker: pop a coalesced batch, snapshot the model, serve it — inline
/// with a reused worker-local scratch for small batches, fanned over the
/// model's `spec.threads` (one scratch per thread) for large ones — and
/// reply per request. A panic while serving fails that batch's tickets with
/// [`ServeError::Disconnected`] and keeps the worker alive, so requests
/// still in the queue are never orphaned. Exits when the queue is closed
/// and drained.
fn worker_loop(
    queue: &MicroBatchQueue<Request>,
    handle: &ModelHandle,
    max_batch: usize,
    flush_latency: Duration,
) {
    let mut batch: Vec<Request> = Vec::new();
    // Worker-local scratch reused across batches, keyed by the generation it
    // was built against (a reload can change k, schema, even modality).
    let mut cached: Option<(u64, ServeScratch)> = None;
    while queue.pop_batch(&mut batch, max_batch, flush_latency) {
        let (generation, model) = handle.snapshot();
        let threads = model.spec().threads;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if threads > 1 && batch.len() >= FAN_OUT_MIN_BATCH {
                chunked_map(
                    batch.len(),
                    threads,
                    || model.serve_scratch(),
                    |i, scratch| Some(serve_one(&model, &batch[i as usize].payload, scratch)),
                )
                .into_iter()
                .map(|slot| slot.expect("chunked_map fills every slot"))
                .collect::<Vec<_>>()
            } else {
                let scratch = match &mut cached {
                    Some((cached_generation, scratch)) if *cached_generation == generation => {
                        scratch
                    }
                    slot => {
                        *slot = Some((generation, model.serve_scratch()));
                        &mut slot.as_mut().expect("just set").1
                    }
                };
                batch
                    .iter()
                    .map(|request| serve_one(&model, &request.payload, scratch))
                    .collect()
            }
        }));
        match outcome {
            Ok(results) => {
                for (request, result) in batch.drain(..).zip(results) {
                    let reply = result
                        .map(|cluster| Prediction {
                            cluster,
                            generation,
                        })
                        .map_err(ServeError::Model);
                    // The caller may have dropped its ticket; its business.
                    let _ = request.reply.send(reply);
                }
            }
            Err(_) => {
                // Serving this batch panicked (a model-internals bug): fail
                // these tickets explicitly, drop the possibly-corrupt
                // cached scratch, and keep the worker alive — otherwise
                // requests still in the queue would hang forever.
                cached = None;
                for request in batch.drain(..) {
                    let _ = request.reply.send(Err(ServeError::Disconnected));
                }
            }
        }
    }
}

fn serve_one(
    model: &FittedModel,
    payload: &Payload,
    scratch: &mut ServeScratch,
) -> Result<ClusterId, ModelError> {
    match payload {
        Payload::Row(row) => model.predict_row_with(row, scratch),
        Payload::Point(point) => model.predict_point_with(point, scratch),
        Payload::Mixed(row, point) => model.predict_mixed_with(row, point, scratch),
        Payload::StrRow(row) => {
            let refs: Vec<&str> = row.iter().map(String::as_str).collect();
            let encoded = model.encode_row(&refs)?;
            model.predict_row_with(&encoded, scratch)
        }
        Payload::StrMixed(row, point) => {
            let refs: Vec<&str> = row.iter().map(String::as_str).collect();
            let encoded = model.encode_row(&refs)?;
            model.predict_mixed_with(&encoded, point, scratch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterSpec, Clusterer, DatasetBuilder, Lsh, NumericDataset};

    fn categorical_model(seed: u64) -> (crate::ClusterRun, crate::Dataset) {
        let mut b = DatasetBuilder::anonymous(3);
        for row in [
            ["a", "b", "c"],
            ["a", "b", "d"],
            ["a", "b", "e"],
            ["x", "y", "z"],
            ["x", "y", "w"],
            ["x", "y", "v"],
        ] {
            b.push_str_row(&row, None).unwrap();
        }
        let ds = b.finish();
        let spec = ClusterSpec::new(2)
            .lsh(Lsh::MinHash { bands: 8, rows: 2 })
            .seed(seed);
        let run = Clusterer::new(spec).fit(&ds).unwrap();
        (run, ds)
    }

    #[test]
    fn served_rows_match_the_library_predict() {
        let (run, ds) = categorical_model(1);
        let server = ModelServer::start(run.model.clone(), ServerConfig::default());
        for i in 0..ds.n_items() {
            let served = server.predict_row(ds.row(i).to_vec()).unwrap();
            assert_eq!(served.cluster, run.model.predict_one(ds.row(i)).unwrap());
            assert_eq!(served.generation, 0);
        }
        server.shutdown();
    }

    #[test]
    fn str_rows_and_modality_errors_round_trip() {
        let (run, _) = categorical_model(2);
        let server = ModelServer::start(run.model.clone(), ServerConfig::default());
        let served = server.predict_str_row(&["a", "b", "q"]).unwrap();
        assert_eq!(
            served.cluster,
            run.model.predict_str_row(&["a", "b", "q"]).unwrap()
        );
        // Wrong modality surfaces through the ticket as a typed error.
        match server.predict_point(vec![1.0]) {
            Err(ServeError::Model(ModelError::WrongModality { .. })) => {}
            other => panic!("expected WrongModality, got {other:?}"),
        }
        // Wrong arity too.
        match server.predict_str_row(&["a"]) {
            Err(ServeError::Model(ModelError::ShapeMismatch { .. })) => {}
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn reload_bumps_generation_and_swaps_answers() {
        let data = NumericDataset::new(1, vec![0.0, 0.1, 9.0, 9.1]);
        let spec = ClusterSpec::new(2).lsh(Lsh::SimHash { bands: 8, rows: 2 });
        let run = Clusterer::new(spec.clone()).fit(&data).unwrap();
        let server = ModelServer::start(run.model.clone(), ServerConfig::default());
        let before = server.predict_point(vec![0.05]).unwrap();
        assert_eq!(before.generation, 0);

        // Retrain on shifted data and hot-swap.
        let shifted = NumericDataset::new(1, vec![100.0, 100.1, 900.0, 900.1]);
        let refit = Clusterer::new(spec).fit(&shifted).unwrap();
        assert_eq!(server.reload(refit.model.clone()), 1);
        let after = server.predict_point(vec![100.05]).unwrap();
        assert_eq!(after.generation, 1);
        assert_eq!(after.cluster, refit.model.predict_point(&[100.05]).unwrap());
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_every_submitted_ticket() {
        let (run, ds) = categorical_model(3);
        let server = ModelServer::start(
            run.model.clone(),
            // One worker and a generous window so tickets are still queued
            // when shutdown lands.
            ServerConfig::default()
                .workers(1)
                .max_batch(64)
                .flush_latency(Duration::from_millis(50)),
        );
        let tickets: Vec<_> = (0..ds.n_items())
            .map(|i| server.submit_row(ds.row(i).to_vec()).unwrap())
            .collect();
        server.shutdown();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let served = ticket.wait().expect("drained on shutdown");
            assert_eq!(served.cluster, run.assignments[i]);
        }
    }

    #[test]
    fn try_wait_reports_disconnection_instead_of_pending_forever() {
        // A ticket whose serving side vanished (worker panic) must resolve
        // to Disconnected on poll, not look in-flight forever.
        let (reply, rx) = mpsc::channel::<Result<Prediction, ServeError>>();
        let ticket = PredictTicket { rx };
        assert_eq!(ticket.try_wait(), None, "in flight while the sender lives");
        drop(reply);
        assert_eq!(ticket.try_wait(), Some(Err(ServeError::Disconnected)));
    }

    #[test]
    fn config_clamps_zeroes_like_every_other_boundary() {
        let config = ServerConfig::default()
            .workers(0)
            .max_batch(0)
            .queue_depth(0);
        assert_eq!(
            (config.workers, config.max_batch, config.queue_depth),
            (1, 1, 1)
        );
        let (run, _) = categorical_model(4);
        let server = ModelServer::start(
            run.model,
            ServerConfig {
                workers: 0,
                max_batch: 0,
                flush_latency: Duration::ZERO,
                queue_depth: 0,
            },
        );
        assert_eq!(server.config().workers, 1);
        assert_eq!(server.config().max_batch, 1);
        assert_eq!(server.config().queue_depth, 1);
        server.shutdown();
    }
}
