//! Opt-in parallel assignment pass (crossbeam scoped threads).
//!
//! The paper's implementation is single-threaded ("our implementation was
//! single threaded and thus only used one of the available twelve cores");
//! this module exists to show the shortlist's gains compose with thread-level
//! parallelism, and is exercised by the ablation benches.
//!
//! Semantics differ slightly from the serial driver: the serial pass is
//! Gauss–Seidel (an item's move is visible to later items *within* the same
//! pass via the cluster references), whereas the parallel pass is Jacobi
//! (all shortlists are computed against the references as of the start of
//! the pass, then moves are applied at once). Both converge on the paper's
//! workloads; convergence behaviour may differ by an iteration or two.

use crate::framework::{AcceleratedRun, CentroidModel, ShortlistProvider, StopPolicy};
use crate::mhkmodes::MinHashProvider;
use lshclust_categorical::ClusterId;
use lshclust_kmodes::stats::{IterationStats, RunSummary};
use lshclust_minhash::index::ShortlistScratch;
use std::time::Instant;

/// Like [`crate::framework::fit`], but each assignment pass fans out across
/// `threads` crossbeam scoped threads. Specialised to the MinHash provider
/// because the threads need shared read access to the LSH index plus
/// per-thread scratch.
pub fn parallel_fit<M: CentroidModel + Sync>(
    model: &mut M,
    provider: &mut MinHashProvider,
    mut assignments: Vec<ClusterId>,
    setup: std::time::Duration,
    config: &StopPolicy,
    threads: usize,
) -> AcceleratedRun {
    assert!(threads >= 1);
    let n = model.n_items();
    assert_eq!(assignments.len(), n);
    let k = model.k();
    let mut iterations = Vec::new();
    let mut converged = false;
    let mut prev_cost = f64::INFINITY;
    for iteration in 1..=config.max_iterations {
        let t = Instant::now();
        let (new_assignments, shortlist_total) =
            parallel_pass(model, provider, &assignments, k, threads);
        let mut moves = 0usize;
        for (item, (&old, &new)) in assignments.iter().zip(&new_assignments).enumerate() {
            if old != new {
                moves += 1;
                provider.record_assignment(item as u32, new);
            }
        }
        assignments = new_assignments;
        model.update_centroids(&assignments);
        let cost = model.total_cost(&assignments);
        iterations.push(IterationStats {
            iteration,
            duration: t.elapsed(),
            moves,
            avg_candidates: if n == 0 {
                0.0
            } else {
                shortlist_total as f64 / n as f64
            },
            cost: cost as u64,
        });
        if config.stop_on_no_moves && moves == 0 {
            converged = true;
            break;
        }
        if config.stop_on_cost_increase && cost >= prev_cost {
            converged = true;
            break;
        }
        prev_cost = cost;
    }
    AcceleratedRun {
        assignments,
        summary: RunSummary {
            iterations,
            converged,
            setup,
        },
    }
}

/// Fans an item-indexed map over `threads` crossbeam scoped threads, with
/// one `scratch` (built by `init`) per thread — the batched-assignment
/// primitive shared by the fit-time parallel pass and the serving-time
/// `FittedModel::predict` path in `lshclust`.
///
/// Returns `f(0), f(1), …, f(n-1)` in item order. With `threads <= 1` the
/// map runs inline on the calling thread, spawning nothing.
pub fn chunked_map<T, S, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send + Clone + Default,
    I: Fn() -> S + Sync,
    F: Fn(u32, &mut S) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        let mut scratch = init();
        return (0..n as u32).map(|item| f(item, &mut scratch)).collect();
    }
    let chunk = n.div_ceil(threads).max(1);
    let mut out = vec![T::default(); n];
    crossbeam::thread::scope(|scope| {
        for (tid, slice) in out.chunks_mut(chunk).enumerate() {
            let start = tid * chunk;
            let (init, f) = (&init, &f);
            scope.spawn(move |_| {
                let mut scratch = init();
                for (offset, slot) in slice.iter_mut().enumerate() {
                    *slot = f((start + offset) as u32, &mut scratch);
                }
            });
        }
    })
    .expect("chunked_map worker panicked");
    out
}

/// One Jacobi-style pass: shortlists and best-cluster searches run in
/// parallel against a frozen index; returns the new assignment vector and
/// the summed shortlist sizes.
fn parallel_pass<M: CentroidModel + Sync>(
    model: &M,
    provider: &MinHashProvider,
    assignments: &[ClusterId],
    k: usize,
    threads: usize,
) -> (Vec<ClusterId>, usize) {
    let n = assignments.len();
    let index = provider.index();
    let chunk = n.div_ceil(threads.max(1)).max(1);
    let mut new_assignments = vec![ClusterId(0); n];
    let mut totals = vec![0usize; threads];

    crossbeam::thread::scope(|scope| {
        let mut out_chunks = new_assignments.chunks_mut(chunk);
        let mut in_chunks = assignments.chunks(chunk);
        for (tid, total_slot) in totals.iter_mut().enumerate() {
            let (Some(out), Some(cur)) = (out_chunks.next(), in_chunks.next()) else {
                break;
            };
            let start = tid * chunk;
            scope.spawn(move |_| {
                let mut scratch: ShortlistScratch = index.make_scratch(k);
                let mut shortlist_sum = 0usize;
                for (offset, slot) in out.iter_mut().enumerate() {
                    let item = (start + offset) as u32;
                    index.shortlist(item, &mut scratch, false);
                    shortlist_sum += scratch.clusters.len();
                    *slot = match model.best_among(item, &scratch.clusters) {
                        Some((c, _)) => c,
                        None => cur[offset],
                    };
                }
                *total_slot = shortlist_sum;
            });
        }
    })
    .expect("assignment worker panicked");

    (new_assignments, totals.iter().sum())
}

#[cfg(test)]
mod tests {
    use crate::mhkmodes::{MhKModes, MhKModesConfig};
    use lshclust_categorical::{Dataset, DatasetBuilder};
    use lshclust_minhash::Banding;

    fn blob_dataset(groups: usize, per_group: usize, n_attrs: usize) -> Dataset {
        let mut b = DatasetBuilder::anonymous(n_attrs);
        for g in 0..groups {
            for i in 0..per_group {
                let row: Vec<String> = (0..n_attrs)
                    .map(|a| {
                        if a == n_attrs - 1 {
                            format!("g{g}-n{i}")
                        } else {
                            format!("g{g}-a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn parallel_matches_serial_partition() {
        let ds = blob_dataset(4, 6, 8);
        let serial = MhKModes::new(MhKModesConfig::new(4, Banding::new(16, 2)).seed(3)).fit(&ds);
        let parallel = MhKModes::new(
            MhKModesConfig::new(4, Banding::new(16, 2))
                .seed(3)
                .threads(4),
        )
        .fit(&ds);
        // Co-membership must agree on clearly separated data.
        for i in 0..ds.n_items() {
            for j in (i + 1)..ds.n_items() {
                assert_eq!(
                    serial.assignments[i] == serial.assignments[j],
                    parallel.assignments[i] == parallel.assignments[j],
                    "items {i},{j}"
                );
            }
        }
    }

    #[test]
    fn parallel_with_one_thread_matches_framework_results() {
        let ds = blob_dataset(3, 5, 8);
        let a = MhKModes::new(MhKModesConfig::new(3, Banding::new(12, 2)).seed(1)).fit(&ds);
        let b = MhKModes::new(
            MhKModesConfig::new(3, Banding::new(12, 2))
                .seed(1)
                .threads(2),
        )
        .fit(&ds);
        // Jacobi vs Gauss–Seidel may differ mid-run but the final partitions
        // on separated blobs must coincide.
        for i in 0..ds.n_items() {
            for j in (i + 1)..ds.n_items() {
                assert_eq!(
                    a.assignments[i] == a.assignments[j],
                    b.assignments[i] == b.assignments[j],
                );
            }
        }
    }

    #[test]
    fn thread_count_larger_than_items_is_fine() {
        let ds = blob_dataset(2, 3, 5);
        let result = MhKModes::new(
            MhKModesConfig::new(2, Banding::new(8, 1))
                .seed(2)
                .threads(64),
        )
        .fit(&ds);
        assert_eq!(result.assignments.len(), 6);
    }

    #[test]
    fn parallel_converges() {
        let ds = blob_dataset(5, 4, 10);
        let result = MhKModes::new(
            MhKModesConfig::new(5, Banding::new(10, 2))
                .seed(4)
                .threads(3),
        )
        .fit(&ds);
        assert!(result.summary.converged);
        assert_eq!(result.summary.iterations.last().unwrap().moves, 0);
    }
}
