//! Persistence experiment: what the v2 flat binary envelope and the
//! content-addressed [`lshclust::ArtifactStore`] buy over the v1 JSON
//! envelope — the numbers behind `BENCH_artifact.json`.
//!
//! Three measurements, all facade-faithful:
//!
//! * **Load latency** — the same fitted numeric model saved as v1 JSON and
//!   as the v2 binary envelope, loaded back through the one public
//!   [`lshclust::FittedModel::load`] sniffing path, at several centroid
//!   counts `k`. The v1 path re-parses a float-heavy JSON tree and
//!   re-hashes every centroid to rebuild the LSH index; the v2 path copies
//!   flat band-key buffers. Both loaded models must predict a probe batch
//!   **byte-identically** — the driver binary exits non-zero if they ever
//!   diverge.
//! * **Reload under load** — a [`lshclust::ModelServer`] answering a
//!   steady stream of single-point queries while the control plane
//!   repeatedly hot-reloads the v2 artifact from disk
//!   ([`lshclust::ModelHandle::reload_from_path`]); reports reload-latency
//!   p50/p99.
//! * **Cache hit vs refit** — [`lshclust::ArtifactStore::fit_or_get`]
//!   called twice with the identical `(spec, dataset)`: the first call
//!   pays the fit, the second must be a store hit returning the
//!   byte-identical envelope.

use crate::env::BenchEnv;
use lshclust::serve::{ModelServer, ServerConfig};
use lshclust::{ArtifactStore, ClusterSpec, Clusterer, Fit, FittedModel, Lsh};
use lshclust_kmodes::kmeans::NumericDataset;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Settings of a persistence run.
#[derive(Clone, Debug)]
pub struct ArtifactSettings {
    /// Shrinks the workload for CI smoke runs.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Centroid counts to sweep for the v1-vs-v2 load comparison.
    pub ks: Vec<usize>,
    /// Times each envelope is loaded; the report keeps the fastest.
    pub load_reps: usize,
    /// Hot reloads issued against the live server.
    pub reloads: usize,
}

impl Default for ArtifactSettings {
    fn default() -> Self {
        Self {
            quick: false,
            seed: 42,
            ks: vec![200, 2_000, 20_000],
            load_reps: 5,
            reloads: 40,
        }
    }
}

/// One `k` point of the v1-vs-v2 load comparison.
#[derive(Clone, Debug)]
pub struct LoadRun {
    /// Centroids in the fitted model.
    pub k: usize,
    /// Bytes of the v1 JSON envelope on disk.
    pub v1_bytes: usize,
    /// Bytes of the v2 binary envelope on disk.
    pub v2_bytes: usize,
    /// Fastest v1 load (parse JSON + re-hash every centroid), milliseconds.
    pub v1_load_ms: f64,
    /// Fastest v2 load (copy flat band-key buffers), milliseconds.
    pub v2_load_ms: f64,
    /// `v1_load_ms / v2_load_ms`.
    pub speedup: f64,
    /// Whether both loaded models assigned the probe batch identically.
    pub predictions_identical: bool,
}

serde::impl_serde_struct!(LoadRun {
    k,
    v1_bytes,
    v2_bytes,
    v1_load_ms,
    v2_load_ms,
    speedup,
    predictions_identical
});

/// Reload-latency percentiles measured against a serving model.
#[derive(Clone, Debug)]
pub struct ReloadRun {
    /// Centroids in the served model.
    pub k: usize,
    /// Hot reloads issued while queries were in flight.
    pub reloads: usize,
    /// Concurrent caller threads keeping the server busy.
    pub callers: usize,
    /// Median reload latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile reload latency, milliseconds.
    pub p99_ms: f64,
}

serde::impl_serde_struct!(ReloadRun {
    k,
    reloads,
    callers,
    p50_ms,
    p99_ms
});

/// Cache-hit-vs-refit wall time through [`ArtifactStore::fit_or_get`].
#[derive(Clone, Debug)]
pub struct CacheRun {
    /// Centroids in the cached model.
    pub k: usize,
    /// First call: full fit plus store write, seconds.
    pub miss_secs: f64,
    /// Second identical call: store hit, seconds.
    pub hit_secs: f64,
    /// `miss_secs / hit_secs`.
    pub speedup: f64,
    /// Whether the hit returned the byte-identical envelope.
    pub hit_byte_identical: bool,
}

serde::impl_serde_struct!(CacheRun {
    k,
    miss_secs,
    hit_secs,
    speedup,
    hit_byte_identical
});

/// The full `BENCH_artifact.json` payload.
#[derive(Clone, Debug)]
pub struct ArtifactReport {
    /// Experiment marker.
    pub experiment: String,
    /// Host context (no sweep axes beyond `ks` below).
    pub env: BenchEnv,
    /// Numeric dimensionality of every model.
    pub dim: usize,
    /// Centroid counts swept.
    pub ks: Vec<usize>,
    /// v1-vs-v2 load latency per `k`.
    pub loads: Vec<LoadRun>,
    /// Hot-reload percentiles under serving load.
    pub reload: ReloadRun,
    /// Cache-hit vs refit wall time.
    pub cache: CacheRun,
}

serde::impl_serde_struct!(ArtifactReport {
    experiment,
    env,
    dim,
    ks,
    loads,
    reload,
    cache
});

/// Deterministic Gaussian-ish blobs: `k` well-separated centers, a handful
/// of points each, `dim` coordinates.
fn blobs(n_items: usize, k: usize, dim: usize, seed: u64) -> NumericDataset {
    let data: Vec<f64> = (0..n_items)
        .flat_map(|i| {
            let label = (i % k) as u64;
            (0..dim).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(
                    label ^ ((d as u64) << 32) ^ seed.rotate_left(17),
                );
                let center = (h % 10_000) as f64 / 10.0;
                let jitter = lshclust_minhash::hashfn::mix64(h ^ (i as u64)) % 100;
                center + jitter as f64 * 0.001
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

/// Fits a `k`-centroid numeric model cheaply (mini-batch, SimHash index).
fn fit_model(data: &NumericDataset, k: usize, seed: u64) -> FittedModel {
    let spec = cache_spec(k, seed);
    Clusterer::new(spec)
        .fit(data)
        .expect("bench fit is well-formed")
        .model
}

/// The one spec the cache measurement keys on (also used by `fit_model`).
fn cache_spec(k: usize, seed: u64) -> ClusterSpec {
    ClusterSpec::new(k)
        .lsh(Lsh::SimHash { bands: 8, rows: 16 })
        .seed(seed)
        .fit(Fit::MiniBatch {
            batch_size: 256,
            n_steps: 30,
            refresh_every: 10,
        })
}

/// Fastest-of-`reps` wall time for `f`, in milliseconds.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let start = Instant::now();
    let mut last = f();
    best = best.min(start.elapsed().as_secs_f64() * 1e3);
    for _ in 1..reps.max(1) {
        let start = Instant::now();
        last = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (best, last)
}

/// A scratch directory under the system temp dir, unique per process.
fn scratch_dir() -> PathBuf {
    std::env::temp_dir().join(format!("lshclust-bench-artifact-{}", std::process::id()))
}

/// One `k` point: fit, save both envelopes, time loads, diff predictions.
fn load_point(settings: &ArtifactSettings, k: usize, dim: usize, dir: &Path) -> LoadRun {
    let n_items = (k * 3).max(2_000);
    let data = blobs(n_items, k, dim, settings.seed);
    let model = fit_model(&data, k, settings.seed);

    let v1_path = dir.join(format!("model-k{k}.v1.json"));
    let v2_path = dir.join(format!("model-k{k}.v2.bin"));
    model.save(&v1_path).expect("v1 save");
    model.save_v2(&v2_path).expect("v2 save");
    let v1_bytes = std::fs::metadata(&v1_path).expect("v1 metadata").len() as usize;
    let v2_bytes = std::fs::metadata(&v2_path).expect("v2 metadata").len() as usize;

    let (v1_load_ms, v1_model) = best_ms(settings.load_reps, || {
        FittedModel::load(&v1_path).expect("v1 load")
    });
    let (v2_load_ms, v2_model) = best_ms(settings.load_reps, || {
        FittedModel::load(&v2_path).expect("v2 load")
    });

    // Probe with a batch the fit never saw: same generator, shifted seed.
    let probe = blobs(1_000.min(n_items), k, dim, settings.seed ^ 0x9e37_79b9);
    let from_v1 = v1_model.predict(&probe).expect("v1 predict");
    let from_v2 = v2_model.predict(&probe).expect("v2 predict");

    LoadRun {
        k,
        v1_bytes,
        v2_bytes,
        v1_load_ms,
        v2_load_ms,
        speedup: v1_load_ms / v2_load_ms.max(1e-9),
        predictions_identical: from_v1 == from_v2,
    }
}

/// Hot-reloads the v2 artifact `reloads` times while `callers` threads keep
/// the server answering queries; returns latency percentiles.
fn reload_under_load(settings: &ArtifactSettings, k: usize, dim: usize, dir: &Path) -> ReloadRun {
    let callers = 2;
    let data = blobs((k * 3).max(2_000), k, dim, settings.seed);
    let model = fit_model(&data, k, settings.seed);
    let v2_path = dir.join(format!("reload-k{k}.v2.bin"));
    model.save_v2(&v2_path).expect("v2 save");

    let server = ModelServer::start(model, ServerConfig::default().workers(2).queue_depth(1024));
    let handle = server.handle();
    let stop = AtomicBool::new(false);
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(settings.reloads);

    std::thread::scope(|scope| {
        for caller in 0..callers {
            let server = &server;
            let stop = &stop;
            let probe = data.row(caller * 7 % data.n_items()).to_vec();
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    server
                        .predict_point(probe.clone())
                        .expect("bench queries are well-formed");
                }
            });
        }
        for _ in 0..settings.reloads {
            let start = Instant::now();
            handle
                .reload_from_path(&v2_path)
                .expect("v2 artifact reloads");
            latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
        }
        stop.store(true, Ordering::Relaxed);
    });
    server.shutdown();

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| {
        let idx = ((latencies_ms.len() as f64 - 1.0) * p).round() as usize;
        latencies_ms[idx]
    };
    ReloadRun {
        k,
        reloads: settings.reloads,
        callers,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
    }
}

/// Two identical `fit_or_get` calls: a paid fit, then a store hit.
fn cache_point(settings: &ArtifactSettings, k: usize, dim: usize, dir: &Path) -> CacheRun {
    let data = blobs((k * 3).max(2_000), k, dim, settings.seed);
    let store = ArtifactStore::open(dir.join("store")).expect("store opens");
    let spec = cache_spec(k, settings.seed);

    let start = Instant::now();
    let first = store.fit_or_get(&spec, &data).expect("first fit_or_get");
    let miss_secs = start.elapsed().as_secs_f64();
    assert!(!first.hit, "a fresh store cannot hit");

    let start = Instant::now();
    let second = store.fit_or_get(&spec, &data).expect("second fit_or_get");
    let hit_secs = start.elapsed().as_secs_f64();
    assert!(second.hit, "the identical refit must be a store hit");

    CacheRun {
        k,
        miss_secs,
        hit_secs,
        speedup: miss_secs / hit_secs.max(1e-9),
        hit_byte_identical: first.model.to_bytes() == second.model.to_bytes(),
    }
}

/// Runs the full experiment and returns the report.
pub fn run(settings: &ArtifactSettings) -> ArtifactReport {
    let (ks, dim) = if settings.quick {
        (vec![50, 200, 1_000], 8)
    } else {
        (settings.ks.clone(), 16)
    };
    let settings = ArtifactSettings {
        ks: ks.clone(),
        ..settings.clone()
    };

    let dir = scratch_dir();
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let mut loads = Vec::new();
    for &k in &ks {
        eprintln!("# artifact: load v1 vs v2 (k={k}, dim={dim})");
        loads.push(load_point(&settings, k, dim, &dir));
    }

    let mid_k = ks[ks.len() / 2];
    eprintln!("# artifact: reload under load (k={mid_k})");
    let reload = reload_under_load(&settings, mid_k, dim, &dir);

    eprintln!("# artifact: cache hit vs refit (k={mid_k})");
    let cache = cache_point(&settings, mid_k, dim, &dir);

    let _ = std::fs::remove_dir_all(&dir);

    ArtifactReport {
        experiment: "artifact-persistence".into(),
        env: BenchEnv::capture(settings.quick, settings.seed),
        dim,
        ks,
        loads,
        reload,
        cache,
    }
}

impl ArtifactReport {
    /// Writes the report as pretty JSON to `path`.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        crate::env::write_report(self, path)
    }

    /// `true` iff every load point predicted identically and the cache hit
    /// returned the byte-identical envelope — the driver's exit condition.
    pub fn byte_identical(&self) -> bool {
        self.loads.iter().all(|l| l.predictions_identical) && self.cache.hit_byte_identical
    }

    /// Renders an aligned text summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "model persistence  ({}, dim {})",
            self.env.banner(),
            self.dim
        );
        let _ = writeln!(
            out,
            "\n[load] v1 JSON (re-hash) vs v2 flat binary (copy buffers)"
        );
        let _ = writeln!(
            out,
            "{:>8}  {:>12}  {:>12}  {:>10}  {:>10}  {:>9}  {:>10}",
            "k", "v1 bytes", "v2 bytes", "v1 ms", "v2 ms", "speedup", "identical"
        );
        for l in &self.loads {
            let _ = writeln!(
                out,
                "{:>8}  {:>12}  {:>12}  {:>10.2}  {:>10.2}  {:>8.2}x  {:>10}",
                l.k,
                l.v1_bytes,
                l.v2_bytes,
                l.v1_load_ms,
                l.v2_load_ms,
                l.speedup,
                if l.predictions_identical { "yes" } else { "NO" }
            );
        }
        let _ = writeln!(
            out,
            "\n[reload] {} hot reloads under {} callers (k={}): p50 {:.2} ms, p99 {:.2} ms",
            self.reload.reloads,
            self.reload.callers,
            self.reload.k,
            self.reload.p50_ms,
            self.reload.p99_ms
        );
        let _ = writeln!(
            out,
            "[cache]  refit {:.3} s vs hit {:.3} s ({:.0}x, byte-identical: {}) at k={}",
            self.cache.miss_secs,
            self.cache.hit_secs,
            self.cache.speedup,
            if self.cache.hit_byte_identical {
                "yes"
            } else {
                "NO"
            },
            self.cache.k
        );
        out
    }
}
