//! Workspace-local stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides a
//! value-tree serialization framework with the same *spelling* at use sites
//! (`use serde::{Serialize, Deserialize}`, `serde_json::to_string`,
//! `serde_json::from_str`) but a much smaller core: types convert to and from
//! a [`Value`] tree, and `serde_json` (the sibling shim) renders that tree as
//! JSON. Derive macros are replaced by the declarative
//! [`impl_serde_struct!`] / [`impl_serde_unit_enum!`] macros; enums with data
//! carry hand-written impls using serde's external tagging convention.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Duration;

/// A JSON-shaped value tree — the interchange format between [`Serialize`]
/// implementations and the `serde_json` shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved when rendering.
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept wide enough to round-trip `u64` seeds exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            Value::Number(Number::NegInt(n)) => u64::try_from(*n).ok(),
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The number as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            Value::Number(Number::Float(f)) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// The number as `f64` (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Serialization / deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// "expected X while reading Y" constructor.
    pub fn expected(what: &str, context: &str) -> Self {
        Error(format!("expected {what} while reading {context}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Reads a required object field (helper used by [`impl_serde_struct!`]).
pub fn field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    context: &str,
) -> Result<T, Error> {
    let v = entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field `{key}` in {context}")))?;
    T::from_value(v).map_err(|e| Error(format!("field `{key}` of {context}: {}", e.0)))
}

// --- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", "bool"))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("number", "f32"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_owned(), self.as_secs().to_value()),
            ("nanos".to_owned(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| Error::expected("object", "Duration"))?;
        let secs: u64 = field(entries, "secs", "Duration")?;
        let nanos: u32 = field(entries, "nanos", "Duration")?;
        Ok(Duration::new(secs, nanos))
    }
}

// --- impl macros (the shim's replacement for `#[derive(...)]`) -------------

/// Implements [`Serialize`] and [`Deserialize`] for a plain struct by listing
/// its fields: `impl_serde_struct!(StopPolicy { max_iterations, ... });`.
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_owned(), $crate::Serialize::to_value(&self.$field))),+
                ])
            }
        }

        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                let entries = v
                    .as_object()
                    .ok_or_else(|| $crate::Error::expected("object", stringify!($ty)))?;
                Ok(Self {
                    $($field: $crate::field(entries, stringify!($field), stringify!($ty))?),+
                })
            }
        }
    };
}

/// Implements [`Serialize`] and [`Deserialize`] for a fieldless enum as a
/// JSON string of the variant name (serde's unit-variant convention).
#[macro_export]
macro_rules! impl_serde_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::String(
                    match self { $($ty::$variant => stringify!($variant)),+ }.to_owned(),
                )
            }
        }

        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                match v.as_str() {
                    $(Some(stringify!($variant)) => Ok($ty::$variant),)+
                    Some(other) => Err($crate::Error(format!(
                        "unknown {} variant `{other}`", stringify!($ty),
                    ))),
                    None => Err($crate::Error::expected("string", stringify!($ty))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u64,
        b: f64,
        c: Option<u32>,
        d: Vec<bool>,
    }
    impl_serde_struct!(Demo { a, b, c, d });

    #[derive(Debug, PartialEq)]
    enum Mode {
        Fast,
        Slow,
    }
    impl_serde_unit_enum!(Mode { Fast, Slow });

    #[test]
    fn struct_round_trip() {
        let demo = Demo {
            a: u64::MAX,
            b: -1.25,
            c: None,
            d: vec![true, false],
        };
        let v = demo.to_value();
        assert_eq!(Demo::from_value(&v).unwrap(), demo);
    }

    #[test]
    fn unit_enum_round_trip() {
        let v = Mode::Slow.to_value();
        assert_eq!(v, Value::String("Slow".to_owned()));
        assert_eq!(Mode::from_value(&v).unwrap(), Mode::Slow);
        assert!(Mode::from_value(&Value::String("Other".into())).is_err());
    }

    #[test]
    fn missing_field_is_reported_by_name() {
        let v = Value::Object(vec![("a".into(), 1u64.to_value())]);
        let err = Demo::from_value(&v).unwrap_err();
        assert!(err.0.contains('b'), "{err}");
    }

    #[test]
    fn duration_round_trip() {
        let d = Duration::new(3, 456_789);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }
}
