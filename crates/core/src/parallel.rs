//! The provider-agnostic parallel assignment engine (crossbeam scoped
//! threads).
//!
//! The paper's implementation is single-threaded ("our implementation was
//! single threaded and thus only used one of the available twelve cores");
//! this module exists to show the shortlist's gains compose with thread-level
//! parallelism, for **every** algorithm family. A family plugs in by
//! implementing [`SyncShortlistProvider`] — a read-only per-thread view of
//! its LSH index — and reusing the same [`parallel_fit`] entry point; the
//! MinHash, SimHash and union providers all do.
//!
//! Semantics differ slightly from the serial driver: the serial pass is
//! Gauss–Seidel (an item's move is visible to later items *within* the same
//! pass via the cluster references), whereas the parallel pass is Jacobi
//! (all shortlists are computed against the references as of the start of
//! the pass, then moves are applied at once). Both converge on the paper's
//! workloads; convergence behaviour may differ by an iteration or two.
//! Because each item's Jacobi decision depends only on the frozen start-of-
//! pass state — and the centroid update recomputes cluster by cluster — the
//! fit output is **bit-identical at any thread count > 1**.
//!
//! Iteration accounting and stop logic are *not* duplicated here: both the
//! serial and the parallel path run through `framework::drive`.

use crate::framework::{
    self, AcceleratedRun, ActivitySet, AssignOutcome, CentroidModel, ShortlistCache,
    ShortlistProvider, StopPolicy,
};
use lshclust_categorical::{ClusterId, Dataset, PresentElements};
use lshclust_minhash::hashfn::MixHashFamily;
use lshclust_minhash::index::{LshIndex, LshIndexBuilder};
use lshclust_minhash::signature::SignatureGenerator;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A shortlist provider whose index can be probed from many threads at once:
/// shortlist queries are **read-only** (`&self`) and all mutable query state
/// lives in a per-thread [`Self::Scratch`].
///
/// Implementations must return exactly the candidates the serial
/// [`ShortlistProvider::shortlist`] would, so the Jacobi pass differs from
/// the Gauss–Seidel pass only in *when* reference updates become visible.
pub trait SyncShortlistProvider: ShortlistProvider + Sync {
    /// Per-thread query scratch (dedup stamps, hashing buffers, …).
    type Scratch: Send;

    /// Creates one scratch; the engine calls this once per worker thread.
    fn make_scratch(&self) -> Self::Scratch;

    /// Read-only shortlist query for `item` into `out` (cleared first).
    fn shortlist_into(&self, item: u32, scratch: &mut Self::Scratch, out: &mut Vec<ClusterId>);
}

/// Like [`crate::framework::fit`], but each assignment pass is a Jacobi pass
/// fanned over `threads` scoped threads, and centroid updates go through
/// [`CentroidModel::update_centroids_parallel`]. Works with any
/// [`SyncShortlistProvider`] — MinHash, SimHash, or the mixed-data union.
///
/// `closures` enables the cluster-closure active-set engine
/// ([`jacobi_assign_closures`]); `interleaved` picks the strided worker
/// schedule over the contiguous one (same output either way). Both default
/// paths are byte-identical to each other and to the closure-free pass.
///
/// `threads` is clamped to at least 1; with 1 thread the pass is still
/// Jacobi (computed inline, no spawning), so results at any `threads >= 1`
/// through this entry point are identical.
#[allow(clippy::too_many_arguments)]
pub fn parallel_fit<M, P>(
    model: &mut M,
    provider: &mut P,
    assignments: Vec<ClusterId>,
    setup: std::time::Duration,
    config: &StopPolicy,
    threads: usize,
    closures: bool,
    interleaved: bool,
) -> AcceleratedRun
where
    M: CentroidModel + Sync,
    P: SyncShortlistProvider,
{
    let threads = threads.max(1);
    let mut cache = ShortlistCache::new(model.n_items());
    framework::drive(
        model,
        assignments,
        setup,
        config,
        |model, assignments, activity| {
            let (new_assignments, shortlist_total, skipped) = if closures {
                jacobi_assign_closures(
                    model,
                    &*provider,
                    assignments,
                    activity,
                    &mut cache,
                    threads,
                    interleaved,
                )
            } else if interleaved {
                let (a, total) = jacobi_assign_interleaved(model, &*provider, assignments, threads);
                (a, total, 0)
            } else {
                let (a, total) = jacobi_assign(model, &*provider, assignments, threads);
                (a, total, 0)
            };
            let mut moves = 0usize;
            for (item, (&old, &new)) in assignments.iter().zip(&new_assignments).enumerate() {
                if old != new {
                    moves += 1;
                    provider.record_assignment(item as u32, new);
                }
            }
            *assignments = new_assignments;
            AssignOutcome {
                moves,
                shortlist_total,
                skipped,
            }
        },
        |model, assignments| model.update_centroids_parallel(assignments, threads),
    )
}

/// One Jacobi-style pass: shortlists and best-cluster searches run in
/// parallel against the frozen start-of-pass index state (through
/// [`chunked_map`], one provider scratch per worker); returns the new
/// assignment vector and the summed shortlist sizes. Items whose shortlist
/// comes back empty keep their current assignment.
///
/// The per-item result depends only on the frozen state, so the output is
/// independent of the thread count (and of the chunking).
pub fn jacobi_assign<M, P>(
    model: &M,
    provider: &P,
    assignments: &[ClusterId],
    threads: usize,
) -> (Vec<ClusterId>, usize)
where
    M: CentroidModel + Sync,
    P: SyncShortlistProvider,
{
    let per_item: Vec<(u32, u32)> = chunked_map(
        assignments.len(),
        threads,
        || (provider.make_scratch(), Vec::new()),
        |item, (scratch, shortlist)| {
            provider.shortlist_into(item, scratch, shortlist);
            let chosen = match model.best_among(item, shortlist) {
                Some((c, _)) => c,
                None => assignments[item as usize],
            };
            // Per-item shortlists are at most k clusters, so u32 suffices.
            (chosen.0, shortlist.len() as u32)
        },
    );
    let shortlist_total = per_item.iter().map(|&(_, len)| len as usize).sum();
    let new_assignments = per_item.into_iter().map(|(c, _)| ClusterId(c)).collect();
    (new_assignments, shortlist_total)
}

/// One Jacobi pass under the **cluster-closure active set**: items whose
/// cached shortlist touches no active cluster keep their assignment without
/// a fresh query; the rest are re-shortlisted (their fresh lists written
/// straight into the cache) and re-scored in parallel. Returns
/// `(new assignments, shortlist_total, skipped)`.
///
/// Why identity holds for the Jacobi pass: every per-item decision reads the
/// index state frozen at pass start (reference updates land *after* the
/// pass), so unlike the Gauss–Seidel pass no within-pass marking is needed —
/// the incoming `activity` (centroid changes ∪ both endpoints of the
/// previous pass's moves, per `framework::drive`) already covers everything
/// that could change a cached item's fresh shortlist or its distances.
/// Skipped items contribute their cached shortlist length to the total, so
/// `avg_candidates` is byte-identical with closures on or off.
///
/// The output is independent of the thread count *and* of the schedule
/// (`interleaved` strides the re-evaluated items over the workers the way
/// [`chunked_map_interleaved`] strides all items; contiguous chunks
/// otherwise) — each re-evaluated item's result is pure in the frozen state.
pub fn jacobi_assign_closures<M, P>(
    model: &M,
    provider: &P,
    assignments: &[ClusterId],
    activity: &ActivitySet,
    cache: &mut ShortlistCache,
    threads: usize,
    interleaved: bool,
) -> (Vec<ClusterId>, usize, usize)
where
    M: CentroidModel + Sync,
    P: SyncShortlistProvider,
{
    let n = assignments.len();
    assert_eq!(cache.len(), n, "one cache entry per item");
    let framework::ShortlistCache { lists, valid } = cache;
    let mut new_assignments = assignments.to_vec();
    let mut shortlist_total = 0usize;
    let mut skipped = 0usize;
    // Split items into skipped (cached answer provably unchanged) and todo.
    let mut todo: Vec<u32> = Vec::new();
    for item in 0..n {
        if valid[item] && !activity.any_active_in(&lists[item]) {
            shortlist_total += lists[item].len();
            skipped += 1;
        } else {
            todo.push(item as u32);
        }
    }
    if todo.is_empty() {
        return (new_assignments, shortlist_total, skipped);
    }
    // Disjoint `&mut` cache entries for the todo items (ascending order), so
    // workers write fresh shortlists straight into the cache without copies.
    let mut entries: Vec<&mut Vec<ClusterId>> = Vec::with_capacity(todo.len());
    let mut rest: &mut [Vec<ClusterId>] = lists;
    let mut base = 0usize;
    for &item in &todo {
        let (_, tail) = rest.split_at_mut(item as usize - base);
        let (slot, tail) = tail.split_first_mut().expect("todo item in range");
        entries.push(slot);
        rest = tail;
        base = item as usize + 1;
    }
    let threads = threads.max(1).min(todo.len());
    let results: Vec<(u32, u32)> = if threads <= 1 {
        let mut scratch = provider.make_scratch();
        todo.iter()
            .zip(entries)
            .map(|(&item, out)| {
                provider.shortlist_into(item, &mut scratch, out);
                let chosen = match model.best_among(item, out) {
                    Some((c, _)) => c,
                    None => assignments[item as usize],
                };
                (chosen.0, out.len() as u32)
            })
            .collect()
    } else {
        // Deal the todo items to worker buckets — contiguous runs, or
        // round-robin under the interleaved schedule — remembering each
        // item's position in `todo` so results scatter back in item order.
        let chunk = todo.len().div_ceil(threads);
        let worker_of = |pos: usize| {
            if interleaved {
                pos % threads
            } else {
                pos / chunk
            }
        };
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); threads];
        let mut items: Vec<Vec<u32>> = vec![Vec::new(); threads];
        let mut buckets: Vec<Vec<&mut Vec<ClusterId>>> = (0..threads).map(|_| Vec::new()).collect();
        for (pos, (&item, entry)) in todo.iter().zip(entries).enumerate() {
            let w = worker_of(pos);
            positions[w].push(pos);
            items[w].push(item);
            buckets[w].push(entry);
        }
        let per_worker: Vec<Vec<(u32, u32)>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = items
                .iter()
                .zip(buckets)
                .map(|(worker_items, worker_entries)| {
                    scope.spawn(move |_| {
                        let mut scratch = provider.make_scratch();
                        worker_items
                            .iter()
                            .zip(worker_entries)
                            .map(|(&item, out)| {
                                provider.shortlist_into(item, &mut scratch, out);
                                let chosen = match model.best_among(item, out) {
                                    Some((c, _)) => c,
                                    None => assignments[item as usize],
                                };
                                (chosen.0, out.len() as u32)
                            })
                            .collect::<Vec<(u32, u32)>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("jacobi_assign_closures worker panicked");
        let mut results = vec![(0u32, 0u32); todo.len()];
        for (worker_positions, worker_results) in positions.iter().zip(per_worker) {
            for (&pos, value) in worker_positions.iter().zip(worker_results) {
                results[pos] = value;
            }
        }
        results
    };
    for (&item, (c, len)) in todo.iter().zip(results) {
        new_assignments[item as usize] = ClusterId(c);
        shortlist_total += len as usize;
        valid[item as usize] = true;
    }
    (new_assignments, shortlist_total, skipped)
}

/// One **full-search assignment pass** fanned over `threads` workers — the
/// parallel twin of [`framework::assign_full`], used for the setup phase
/// (the paper's step 2: the initial assignment over all `k` clusters before
/// the index exists). Each item's best cluster depends only on the frozen
/// centroids, so the result is **byte-identical** to the serial pass at any
/// thread count; `threads <= 1` delegates to the serial pass outright.
pub fn assign_full_parallel<M: CentroidModel + Sync>(
    model: &M,
    assignments: &mut [ClusterId],
    threads: usize,
) -> AssignOutcome {
    if threads <= 1 {
        return framework::assign_full(model, assignments);
    }
    assert_eq!(
        assignments.len(),
        model.n_items(),
        "one starting assignment per item"
    );
    let chosen: Vec<u32> = chunked_map(
        assignments.len(),
        threads,
        || (),
        |item, _| model.best_full(item).0 .0,
    );
    let mut moves = 0usize;
    for (slot, c) in assignments.iter_mut().zip(chosen) {
        let c = ClusterId(c);
        if *slot != c {
            *slot = c;
            moves += 1;
        }
    }
    AssignOutcome {
        moves,
        shortlist_total: assignments.len() * model.k(),
        skipped: 0,
    }
}

/// Builds the fit-time **item index** with the per-item hashing (signature +
/// band keys) fanned over `threads` workers — the parallel twin of
/// [`LshIndexBuilder::build`], covering the other half of the setup phase
/// (the paper's step 3: MinHash every item). Hashing is per-item
/// deterministic and the bucket fill
/// ([`LshIndexBuilder::build_from_band_keys`]) walks items in ascending
/// order, so the index is **byte-identical** to a serial build; `threads <=
/// 1` delegates to the serial builder outright.
pub fn build_lsh_index_parallel(
    builder: &LshIndexBuilder,
    dataset: &Dataset,
    initial: &[ClusterId],
    threads: usize,
) -> LshIndex {
    let n = dataset.n_items();
    let n_bands = builder.params().banding.bands() as usize;
    if threads <= 1 || n <= 1 || n_bands == 0 {
        return builder.build(dataset, initial);
    }
    builder.build_from_band_keys(hash_band_keys_parallel(builder, dataset, threads), initial)
}

/// The hashing half of [`build_lsh_index_parallel`] on its own: every item's
/// MinHash band keys, item-major (`n_items × bands`), hashed with the
/// builder's banding and seed and fanned over `threads` workers. The buffer
/// is exactly what the serial [`LshIndexBuilder::build`] pass 1 emits, so
/// feeding it back through [`LshIndexBuilder::build_from_band_keys`] is
/// byte-identical to a serial build — and the shard coordinator
/// (`crate::shard`) uses the same buffer to deal each shard its items' keys.
pub fn hash_band_keys_parallel(
    builder: &LshIndexBuilder,
    dataset: &Dataset,
    threads: usize,
) -> Vec<u64> {
    let n = dataset.n_items();
    let params = builder.params();
    let banding = params.banding;
    let n_bands = banding.bands() as usize;
    let schema = dataset.schema();
    // Per-item hashing writes straight into the flat item-major key buffer
    // (one contiguous slice per worker — no per-item allocation, no second
    // copy).
    let mut band_keys = vec![0u64; n * n_bands];
    fill_chunks(&mut band_keys, n, n_bands, threads, |start, slice| {
        let generator =
            SignatureGenerator::new(MixHashFamily::new(banding.signature_len(), params.seed));
        let mut sig = Vec::new();
        let mut keys = Vec::new();
        for (offset, out) in slice.chunks_mut(n_bands).enumerate() {
            generator.signature_into(
                PresentElements::new(schema, dataset.row(start + offset)),
                &mut sig,
            );
            banding.band_keys_into(&sig, &mut keys);
            out.copy_from_slice(&keys);
        }
    });
    band_keys
}

/// Fills a flat item-major `n × width` buffer by chunking the items over
/// `threads` scoped workers: `fill(first_item, slice)` writes the rows for
/// `slice.len() / width` consecutive items starting at `first_item`. Runs
/// inline (no spawning) when `threads <= 1` or there is at most one item —
/// the shared scaffolding of the parallel index builds (MinHash here,
/// SimHash in `crate::mhkmeans`), whose only difference is the per-item
/// hashing closure.
pub fn fill_chunks<F>(buf: &mut [u64], n: usize, width: usize, threads: usize, fill: F)
where
    F: Fn(usize, &mut [u64]) + Sync,
{
    if buf.is_empty() || width == 0 {
        return;
    }
    assert_eq!(buf.len(), n * width, "buffer is not item-major n × width");
    if threads <= 1 || n <= 1 {
        fill(0, buf);
        return;
    }
    let chunk_items = n.div_ceil(threads).max(1);
    crossbeam::thread::scope(|scope| {
        for (tid, slice) in buf.chunks_mut(chunk_items * width).enumerate() {
            let fill = &fill;
            scope.spawn(move |_| fill(tid * chunk_items, slice));
        }
    })
    .expect("fill_chunks worker panicked");
}

/// Fans an item-indexed map over `threads` crossbeam scoped threads, with
/// one `scratch` (built by `init`) per thread — the batched-assignment
/// primitive shared by the fit-time parallel pass, the parallel centroid
/// update (mapped over *clusters*), and the serving-time
/// `FittedModel::predict` path in `lshclust`.
///
/// Returns `f(0), f(1), …, f(n-1)` in item order. With `threads <= 1` the
/// map runs inline on the calling thread, spawning nothing. The output never
/// depends on the thread count: each slot is computed independently and
/// written in place.
pub fn chunked_map<T, S, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send + Clone + Default,
    I: Fn() -> S + Sync,
    F: Fn(u32, &mut S) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        let mut scratch = init();
        return (0..n as u32).map(|item| f(item, &mut scratch)).collect();
    }
    let chunk = n.div_ceil(threads).max(1);
    let mut out = vec![T::default(); n];
    crossbeam::thread::scope(|scope| {
        for (tid, slice) in out.chunks_mut(chunk).enumerate() {
            let start = tid * chunk;
            let (init, f) = (&init, &f);
            scope.spawn(move |_| {
                let mut scratch = init();
                for (offset, slot) in slice.iter_mut().enumerate() {
                    *slot = f((start + offset) as u32, &mut scratch);
                }
            });
        }
    })
    .expect("chunked_map worker panicked");
    out
}

/// Like [`chunked_map`], but with **interleaved** (strided) scheduling:
/// worker `t` of `T` computes items `t, t+T, t+2T, …` instead of one
/// contiguous block. When per-item cost is skewed — one shard's bucket
/// distribution putting all the hot, high-collision items in one contiguous
/// range — contiguous chunking serializes on the worker that drew the hot
/// block; striding deals every worker an even mix.
///
/// The contract is identical to [`chunked_map`]: `f(0), …, f(n-1)` in item
/// order, one `init()` scratch per worker, output independent of the thread
/// count and of the schedule. Each worker collects its stride into a private
/// buffer and the caller's thread scatters the buffers back into item order
/// (no `unsafe`, no sharing of the output between workers).
pub fn chunked_map_interleaved<T, S, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send + Clone + Default,
    I: Fn() -> S + Sync,
    F: Fn(u32, &mut S) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        let mut scratch = init();
        return (0..n as u32).map(|item| f(item, &mut scratch)).collect();
    }
    let threads = threads.min(n);
    let per_worker: Vec<Vec<T>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let (init, f) = (&init, &f);
                scope.spawn(move |_| {
                    let mut scratch = init();
                    ((tid as u32)..n as u32)
                        .step_by(threads)
                        .map(|item| f(item, &mut scratch))
                        .collect::<Vec<T>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("chunked_map_interleaved worker panicked");
    let mut out = vec![T::default(); n];
    for (tid, results) in per_worker.into_iter().enumerate() {
        for (j, value) in results.into_iter().enumerate() {
            out[tid + j * threads] = value;
        }
    }
    out
}

/// [`jacobi_assign`] under the interleaved schedule of
/// [`chunked_map_interleaved`] — same frozen-state pass, same output (each
/// item's decision is pure in the start-of-pass state), but skew-resistant
/// scheduling. The shard workers of `crate::shard` use this for their local
/// passes, where bucket skew concentrates in contiguous item ranges.
pub fn jacobi_assign_interleaved<M, P>(
    model: &M,
    provider: &P,
    assignments: &[ClusterId],
    threads: usize,
) -> (Vec<ClusterId>, usize)
where
    M: CentroidModel + Sync,
    P: SyncShortlistProvider,
{
    let per_item: Vec<(u32, u32)> = chunked_map_interleaved(
        assignments.len(),
        threads,
        || (provider.make_scratch(), Vec::new()),
        |item, (scratch, shortlist)| {
            provider.shortlist_into(item, scratch, shortlist);
            let chosen = match model.best_among(item, shortlist) {
                Some((c, _)) => c,
                None => assignments[item as usize],
            };
            (chosen.0, shortlist.len() as u32)
        },
    );
    let shortlist_total = per_item.iter().map(|&(_, len)| len as usize).sum();
    let new_assignments = per_item.into_iter().map(|(c, _)| ClusterId(c)).collect();
    (new_assignments, shortlist_total)
}

// ---------------------------------------------------------------------------
// Micro-batching request queue — the serving-side plumbing.
// ---------------------------------------------------------------------------

/// Why a [`MicroBatchQueue::push`] was refused. The rejected item is handed
/// back so callers can surface it (or retry) without cloning.
#[derive(Debug)]
pub enum QueuePushError<T> {
    /// The queue is at capacity (`queue_depth` pending items).
    Full(T),
    /// The queue was closed; no further work is accepted.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer queue whose consumers pop **coalesced batches**:
/// a pop blocks until at least one item is pending, then keeps the window
/// open up to `flush_latency` so concurrent producers' single items merge
/// into one batch (up to `max_batch`). Items stay queued during the window,
/// so the depth bound keeps back-pressuring producers the whole time.
///
/// This is the serving-side twin of [`chunked_map`]: `chunked_map` fans one
/// caller's batch over threads, the queue turns many callers' single
/// requests *into* batches. `lshclust`'s `ModelServer` feeds one of these to
/// a worker pool; the queue lives here so the primitive is reusable (and
/// testable) without the serving layer. Plain `Mutex` + `Condvar`, no
/// external dependencies.
pub struct MicroBatchQueue<T> {
    inner: Mutex<QueueState<T>>,
    not_empty: Condvar,
    depth: usize,
}

impl<T> MicroBatchQueue<T> {
    /// An empty open queue holding at most `depth` pending items (clamped to
    /// at least 1).
    pub fn new(depth: usize) -> Self {
        Self {
            inner: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// The configured capacity.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Items currently pending (monitoring; racy by nature).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty (racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }

    /// Enqueues `item`, failing fast when the queue is full or closed —
    /// submission never blocks, so a saturated server sheds load with a
    /// typed error instead of stalling its callers.
    pub fn push(&self, item: T) -> Result<(), QueuePushError<T>> {
        let mut state = self.inner.lock().expect("queue lock");
        if state.closed {
            return Err(QueuePushError::Closed(item));
        }
        if state.items.len() >= self.depth {
            return Err(QueuePushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Closes the queue: pending items remain poppable (consumers drain),
    /// further pushes fail with [`QueuePushError::Closed`], and blocked
    /// `pop_batch` calls wake up.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }

    /// Pops one coalesced **non-empty** batch into `out` (cleared first) and
    /// returns `true`, or returns `false` when the queue is closed **and**
    /// fully drained (the consumer's signal to exit).
    ///
    /// Blocks until at least one item is pending; once one is, waits up to
    /// `flush_latency` for the pending count to reach `max_batch` (clamped
    /// to at least 1) before draining up to `max_batch` items in FIFO order.
    /// With `max_batch == 1` or a zero latency the window never opens, which
    /// is exactly the "no coalescing" serving mode.
    ///
    /// Multiple consumers may race: another consumer can drain the queue
    /// while this one sits in its flush window, in which case this call goes
    /// back to waiting rather than returning an empty batch — `true` always
    /// means at least one item.
    pub fn pop_batch(&self, out: &mut Vec<T>, max_batch: usize, flush_latency: Duration) -> bool {
        let max_batch = max_batch.max(1);
        out.clear();
        let mut state = self.inner.lock().expect("queue lock");
        loop {
            while state.items.is_empty() {
                if state.closed {
                    return false;
                }
                state = self.not_empty.wait(state).expect("queue lock");
            }
            if flush_latency > Duration::ZERO && state.items.len() < max_batch && !state.closed {
                let deadline = Instant::now() + flush_latency;
                while !state.items.is_empty() && state.items.len() < max_batch && !state.closed {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (next, timeout) = self
                        .not_empty
                        .wait_timeout(state, deadline - now)
                        .expect("queue lock");
                    state = next;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            let take = state.items.len().min(max_batch);
            if take == 0 {
                // A competing consumer drained the queue during our flush
                // window; go back to waiting instead of handing the caller
                // an empty batch.
                continue;
            }
            out.extend(state.items.drain(..take));
            if !state.items.is_empty() {
                // Leftovers beyond max_batch: hand them to another consumer.
                self.not_empty.notify_one();
            }
            return true;
        }
    }
}

/// Consumer-side controller that scales a [`MicroBatchQueue`] flush window
/// with observed load: the window **shrinks toward zero when the queue is
/// shallow** (a lone request should not sit out a fixed coalescing delay)
/// and **grows toward the configured maximum under load** (full batches are
/// evidence that waiting buys real coalescing).
///
/// The signal is an exponential moving average of the *fill ratio* of the
/// batches this consumer pops: `batch_len / max_batch`. Each pop feeds
/// [`Self::observe`]; the next pop asks [`Self::window`] for the window to
/// wait. A consumer that keeps popping full batches converges on the full
/// window; one that keeps popping singletons converges on an immediate
/// flush. The controller is deterministic in its observation sequence and
/// holds no clock of its own, so it is unit-testable without sleeping.
///
/// This lives next to the queue (rather than inside it) because the window
/// is a per-*consumer* policy: `pop_batch` takes whatever window the caller
/// chose, and a fixed window — just passing `flush_latency` every time —
/// remains available as the escape hatch.
#[derive(Clone, Debug)]
pub struct AdaptiveWindow {
    /// EMA of observed batch fill in `0.0..=1.0`; starts empty-handed (0) so
    /// the first requests after an idle stretch flush immediately.
    fill: f64,
}

/// EMA weight of the newest observation. High enough that a load spike opens
/// the window within a few batches; low enough that one straggler batch does
/// not slam it shut.
const ADAPTIVE_GAIN: f64 = 0.25;

/// Fill levels below this round the window down to an immediate flush —
/// `Duration::mul_f64` would otherwise produce sub-microsecond windows that
/// cost a timed wait without buying any coalescing.
const ADAPTIVE_FLOOR: f64 = 1.0 / 64.0;

impl AdaptiveWindow {
    /// A fresh controller (window starts at zero: shallow until proven
    /// loaded).
    pub fn new() -> Self {
        Self { fill: 0.0 }
    }

    /// The flush window to pass to the next `pop_batch`, given the
    /// configured maximum: `max` scaled by the load estimate, rounded down
    /// to zero below the 1/64 fill floor.
    pub fn window(&self, max: Duration) -> Duration {
        if self.fill < ADAPTIVE_FLOOR {
            Duration::ZERO
        } else {
            max.mul_f64(self.fill)
        }
    }

    /// Feeds one popped batch into the load estimate. A singleton batch
    /// counts as fill 0, not `1/max_batch`: one request means the window
    /// bought no coalescing at all, so sustained singletons must converge
    /// on an immediate flush rather than hover at the floor.
    pub fn observe(&mut self, batch_len: usize, max_batch: usize) {
        let ratio = if batch_len <= 1 {
            0.0
        } else {
            (batch_len as f64 / max_batch.max(1) as f64).clamp(0.0, 1.0)
        };
        self.fill += ADAPTIVE_GAIN * (ratio - self.fill);
    }

    /// The current load estimate in `0.0..=1.0` (monitoring).
    pub fn fill(&self) -> f64 {
        self.fill
    }
}

impl Default for AdaptiveWindow {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mhkmodes::{MhKModes, MhKModesConfig};
    use lshclust_categorical::{Dataset, DatasetBuilder};
    use lshclust_minhash::Banding;

    fn blob_dataset(groups: usize, per_group: usize, n_attrs: usize) -> Dataset {
        let mut b = DatasetBuilder::anonymous(n_attrs);
        for g in 0..groups {
            for i in 0..per_group {
                let row: Vec<String> = (0..n_attrs)
                    .map(|a| {
                        if a == n_attrs - 1 {
                            format!("g{g}-n{i}")
                        } else {
                            format!("g{g}-a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn parallel_matches_serial_partition() {
        let ds = blob_dataset(4, 6, 8);
        let serial = MhKModes::new(MhKModesConfig::new(4, Banding::new(16, 2)).seed(3)).fit(&ds);
        let parallel = MhKModes::new(
            MhKModesConfig::new(4, Banding::new(16, 2))
                .seed(3)
                .threads(4),
        )
        .fit(&ds);
        // Co-membership must agree on clearly separated data.
        for i in 0..ds.n_items() {
            for j in (i + 1)..ds.n_items() {
                assert_eq!(
                    serial.assignments[i] == serial.assignments[j],
                    parallel.assignments[i] == parallel.assignments[j],
                    "items {i},{j}"
                );
            }
        }
    }

    #[test]
    fn parallel_with_one_thread_matches_framework_results() {
        let ds = blob_dataset(3, 5, 8);
        let a = MhKModes::new(MhKModesConfig::new(3, Banding::new(12, 2)).seed(1)).fit(&ds);
        let b = MhKModes::new(
            MhKModesConfig::new(3, Banding::new(12, 2))
                .seed(1)
                .threads(2),
        )
        .fit(&ds);
        // Jacobi vs Gauss–Seidel may differ mid-run but the final partitions
        // on separated blobs must coincide.
        for i in 0..ds.n_items() {
            for j in (i + 1)..ds.n_items() {
                assert_eq!(
                    a.assignments[i] == a.assignments[j],
                    b.assignments[i] == b.assignments[j],
                );
            }
        }
    }

    #[test]
    fn thread_count_larger_than_items_is_fine() {
        let ds = blob_dataset(2, 3, 5);
        let result = MhKModes::new(
            MhKModesConfig::new(2, Banding::new(8, 1))
                .seed(2)
                .threads(64),
        )
        .fit(&ds);
        assert_eq!(result.assignments.len(), 6);
    }

    #[test]
    fn parallel_converges() {
        let ds = blob_dataset(5, 4, 10);
        let result = MhKModes::new(
            MhKModesConfig::new(5, Banding::new(10, 2))
                .seed(4)
                .threads(3),
        )
        .fit(&ds);
        assert!(result.summary.converged);
        assert_eq!(result.summary.iterations.last().unwrap().moves, 0);
    }

    #[test]
    fn fit_output_is_identical_at_any_parallel_thread_count() {
        let ds = blob_dataset(6, 5, 10);
        let run = |threads: usize| {
            MhKModes::new(
                MhKModesConfig::new(6, Banding::new(12, 2))
                    .seed(9)
                    .threads(threads),
            )
            .fit(&ds)
        };
        let two = run(2);
        for threads in [3, 4, 8, 64] {
            let other = run(threads);
            assert_eq!(two.assignments, other.assignments, "threads={threads}");
            assert_eq!(two.modes, other.modes, "threads={threads}");
        }
    }

    // ---- chunked_map edge cases -------------------------------------------

    #[test]
    fn chunked_map_empty_input() {
        let out: Vec<u64> = chunked_map(0, 4, || (), |i, _| u64::from(i));
        assert!(out.is_empty());
    }

    #[test]
    fn chunked_map_fewer_items_than_threads() {
        let out: Vec<u64> = chunked_map(3, 16, || (), |i, _| u64::from(i) * 10);
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn chunked_map_preserves_item_order() {
        for threads in [1usize, 2, 3, 7, 64] {
            let out: Vec<u64> = chunked_map(1000, threads, || (), |i, _| u64::from(i) * 3 + 1);
            let expected: Vec<u64> = (0..1000u64).map(|i| i * 3 + 1).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn chunked_map_scratch_is_isolated_per_thread() {
        // Each worker counts its own calls into its scratch; a slot records
        // the scratch value *at its call*, so within each chunk the recorded
        // sequence must be 1, 2, 3, … regardless of what other threads do.
        let threads = 4usize;
        let n = 64usize;
        let out: Vec<u64> = chunked_map(
            n,
            threads,
            || 0u64,
            |_, calls| {
                *calls += 1;
                *calls
            },
        );
        let chunk = n.div_ceil(threads);
        for (slice_idx, slice) in out.chunks(chunk).enumerate() {
            for (offset, &v) in slice.iter().enumerate() {
                assert_eq!(v, offset as u64 + 1, "chunk {slice_idx} offset {offset}");
            }
        }
    }

    // ---- interleaved (strided) scheduling ---------------------------------

    #[test]
    fn chunked_map_interleaved_matches_chunked_map() {
        for (n, threads) in [
            (0usize, 4usize),
            (1, 4),
            (3, 16),
            (64, 1),
            (1000, 7),
            (97, 3),
        ] {
            let contiguous: Vec<u64> = chunked_map(n, threads, || (), |i, _| u64::from(i) * 3 + 1);
            let strided: Vec<u64> =
                chunked_map_interleaved(n, threads, || (), |i, _| u64::from(i) * 3 + 1);
            assert_eq!(strided, contiguous, "n={n} threads={threads}");
        }
    }

    #[test]
    fn chunked_map_interleaved_scratch_is_isolated_per_worker() {
        // Worker `t` computes items t, t+T, t+2T, …; its scratch counts its
        // own calls, so slot `t + j·T` must record call number `j + 1` — any
        // scratch sharing or schedule deviation breaks the arithmetic.
        let threads = 4usize;
        let n = 61usize; // deliberately not a multiple of the thread count
        let out: Vec<u64> = chunked_map_interleaved(
            n,
            threads,
            || 0u64,
            |_, calls| {
                *calls += 1;
                *calls
            },
        );
        for (item, &v) in out.iter().enumerate() {
            assert_eq!(v, (item / threads) as u64 + 1, "item {item}");
        }
    }

    #[test]
    fn jacobi_assign_interleaved_matches_contiguous() {
        use crate::mhkmodes::{KModesModel, MinHashProvider};
        use lshclust_kmodes::init::{initial_modes, InitMethod};
        let ds = blob_dataset(4, 7, 8);
        let modes = initial_modes(&ds, 4, InitMethod::RandomItems, 5);
        let model = KModesModel::new(&ds, modes);
        let initial: Vec<ClusterId> = (0..ds.n_items() as u32).map(|i| ClusterId(i % 4)).collect();
        let index = LshIndexBuilder::new(Banding::new(10, 2))
            .seed(11)
            .build(&ds, &initial);
        let provider = MinHashProvider::new(index, 4, true);
        let reference = jacobi_assign(&model, &provider, &initial, 2);
        for threads in [1usize, 2, 3, 8, 64] {
            let strided = jacobi_assign_interleaved(&model, &provider, &initial, threads);
            assert_eq!(strided, reference, "threads={threads}");
        }
    }

    #[test]
    fn jacobi_closures_match_full_reevaluation_pass_for_pass() {
        use crate::framework::{ActivitySet, CentroidModel, ShortlistCache};
        use crate::mhkmodes::{KModesModel, MinHashProvider};
        use lshclust_kmodes::init::{initial_modes, InitMethod};
        let ds = blob_dataset(5, 8, 8);
        let k = 5usize;
        let modes = initial_modes(&ds, k, InitMethod::RandomItems, 5);
        let initial: Vec<ClusterId> = (0..ds.n_items() as u32)
            .map(|i| ClusterId(i % k as u32))
            .collect();
        let index = LshIndexBuilder::new(Banding::new(10, 2))
            .seed(11)
            .build(&ds, &initial);
        let provider = MinHashProvider::new(index, k, true);
        for threads in [1usize, 2, 3, 8] {
            for interleaved in [false, true] {
                let mut model = KModesModel::new(&ds, modes.clone());
                let mut assignments = initial.clone();
                let mut cache = ShortlistCache::new(ds.n_items());
                let mut activity = ActivitySet::all(k);
                let mut total_skipped = 0usize;
                for pass in 0..6 {
                    let (on, on_total, skipped) = jacobi_assign_closures(
                        &model,
                        &provider,
                        &assignments,
                        &activity,
                        &mut cache,
                        threads,
                        interleaved,
                    );
                    let (off, off_total) = jacobi_assign(&model, &provider, &assignments, 2);
                    assert_eq!(
                        on, off,
                        "threads={threads} interleaved={interleaved} pass={pass}"
                    );
                    assert_eq!(
                        on_total, off_total,
                        "threads={threads} interleaved={interleaved} pass={pass}"
                    );
                    total_skipped += skipped;
                    // Rebuild the drive loop's activity: update-changed
                    // clusters plus both endpoints of every move.
                    let mut next = model.update_centroids(&on);
                    for (old, new) in assignments.iter().zip(&on) {
                        if old != new {
                            next.mark(*old);
                            next.mark(*new);
                        }
                    }
                    activity = next;
                    assignments = on;
                }
                assert!(
                    total_skipped > 0,
                    "closure path never skipped (threads={threads} interleaved={interleaved})"
                );
            }
        }
    }

    // ---- parallel setup phase ---------------------------------------------

    #[test]
    fn assign_full_parallel_is_byte_identical_to_serial() {
        use crate::mhkmodes::KModesModel;
        use lshclust_kmodes::init::{initial_modes, InitMethod};
        let ds = blob_dataset(5, 7, 9);
        let modes = initial_modes(&ds, 5, InitMethod::RandomItems, 3);
        let model = KModesModel::new(&ds, modes);
        let mut serial = vec![ClusterId(0); ds.n_items()];
        let serial_outcome = framework::assign_full(&model, &mut serial);
        for threads in [2usize, 3, 8, 64] {
            let mut parallel = vec![ClusterId(0); ds.n_items()];
            let outcome = assign_full_parallel(&model, &mut parallel, threads);
            assert_eq!(parallel, serial, "threads={threads}");
            assert_eq!(outcome.moves, serial_outcome.moves, "threads={threads}");
            assert_eq!(outcome.shortlist_total, serial_outcome.shortlist_total);
        }
    }

    #[test]
    fn build_lsh_index_parallel_is_byte_identical_to_serial() {
        let ds = blob_dataset(4, 6, 8);
        let initial: Vec<ClusterId> = (0..ds.n_items() as u32).map(|i| ClusterId(i % 4)).collect();
        let builder = LshIndexBuilder::new(Banding::new(10, 2)).seed(17);
        let serial = builder.build(&ds, &initial);
        for threads in [2usize, 3, 16] {
            let parallel = build_lsh_index_parallel(&builder, &ds, &initial, threads);
            assert_eq!(parallel.stats(), serial.stats(), "threads={threads}");
            let mut s1 = serial.make_scratch(4);
            let mut s2 = parallel.make_scratch(4);
            for item in 0..ds.n_items() as u32 {
                serial.shortlist(item, &mut s1, false);
                parallel.shortlist(item, &mut s2, false);
                assert_eq!(s1.clusters, s2.clusters, "threads={threads} item {item}");
            }
        }
    }

    #[test]
    fn simhash_build_parallel_is_byte_identical_to_serial() {
        use crate::mhkmeans::SimHashIndex;
        use lshclust_kmodes::kmeans::NumericDataset;
        let data = NumericDataset::new(3, (0..60).map(|i| (i as f64 * 0.83).sin() * 5.0).collect());
        let initial: Vec<ClusterId> = (0..20).map(|i| ClusterId(i % 3)).collect();
        let serial = SimHashIndex::build(&data, 6, 4, 7, &initial);
        for threads in [2usize, 5, 32] {
            let parallel = SimHashIndex::build_parallel(&data, 6, 4, 7, &initial, threads);
            let mut out_a = Vec::new();
            let mut out_b = Vec::new();
            let mut seen = lshclust_minhash::hashfn::FastSet::default();
            for item in 0..20u32 {
                serial.shortlist_into(item, &mut out_a, &mut seen);
                parallel.shortlist_into(item, &mut out_b, &mut seen);
                assert_eq!(out_a, out_b, "threads={threads} item {item}");
            }
        }
    }

    // ---- micro-batch queue ------------------------------------------------

    #[test]
    fn queue_push_pop_fifo() {
        let q = MicroBatchQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(&mut out, 10, Duration::ZERO));
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn queue_full_is_deterministic_without_a_consumer() {
        let q = MicroBatchQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        match q.push(3) {
            Err(QueuePushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn queue_close_rejects_pushes_but_drains_pops() {
        let q = MicroBatchQueue::new(4);
        q.push("a").unwrap();
        q.push("b").unwrap();
        q.close();
        match q.push("c") {
            Err(QueuePushError::Closed("c")) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        let mut out = Vec::new();
        // Pending items survive the close (shutdown drains)...
        assert!(q.pop_batch(&mut out, 1, Duration::ZERO));
        assert_eq!(out, vec!["a"]);
        assert!(q.pop_batch(&mut out, 1, Duration::ZERO));
        assert_eq!(out, vec!["b"]);
        // ...and a drained closed queue signals the consumer to exit.
        assert!(!q.pop_batch(&mut out, 1, Duration::ZERO));
    }

    #[test]
    fn queue_max_batch_splits_and_leftovers_wake_the_next_pop() {
        let q = MicroBatchQueue::new(16);
        for i in 0..7 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(&mut out, 4, Duration::ZERO));
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(q.pop_batch(&mut out, 4, Duration::ZERO));
        assert_eq!(out, vec![4, 5, 6]);
    }

    #[test]
    fn queue_coalesces_concurrent_producers_into_one_batch() {
        let q = MicroBatchQueue::new(64);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..6 {
                    q.push(i).unwrap();
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
            let mut out = Vec::new();
            let mut total = 0usize;
            let mut pops = 0usize;
            while total < 6 {
                assert!(q.pop_batch(&mut out, 16, Duration::from_millis(200)));
                total += out.len();
                pops += 1;
            }
            // The 200ms window must have merged the 2ms-apart pushes into
            // far fewer pops than items (normally exactly one).
            assert!(pops < 6, "no coalescing happened: {pops} pops for 6 items");
        });
    }

    #[test]
    fn queue_competing_consumers_never_receive_an_empty_true_batch() {
        // Two consumers both in flush windows, one producer: `true` must
        // always come with at least one item even when the other consumer
        // drained the queue mid-window, and nothing is lost or duplicated.
        let q = MicroBatchQueue::new(256);
        let n_items = 200u32;
        let collected: Vec<Vec<u32>> = std::thread::scope(|scope| {
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        let mut mine = Vec::new();
                        while q.pop_batch(&mut out, 8, Duration::from_millis(5)) {
                            assert!(!out.is_empty(), "true must mean a non-empty batch");
                            mine.extend_from_slice(&out);
                        }
                        mine
                    })
                })
                .collect();
            for i in 0..n_items {
                q.push(i).unwrap();
                if i % 16 == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            // Give the windows a moment to drain, then close.
            std::thread::sleep(Duration::from_millis(20));
            q.close();
            consumers.into_iter().map(|c| c.join().unwrap()).collect()
        });
        let mut all: Vec<u32> = collected.into_iter().flatten().collect();
        all.sort_unstable();
        let expected: Vec<u32> = (0..n_items).collect();
        assert_eq!(all, expected, "every item served exactly once");
    }

    #[test]
    fn adaptive_window_starts_at_zero_and_grows_under_full_batches() {
        let mut w = AdaptiveWindow::new();
        let max = Duration::from_micros(200);
        assert_eq!(w.window(max), Duration::ZERO, "idle start flushes at once");
        for _ in 0..32 {
            w.observe(64, 64); // full batches: sustained load
        }
        assert!(
            w.window(max) > max.mul_f64(0.95),
            "sustained full batches must open the window toward the max, got {:?}",
            w.window(max)
        );
    }

    #[test]
    fn adaptive_window_decays_back_to_an_immediate_flush_when_shallow() {
        let mut w = AdaptiveWindow::new();
        for _ in 0..32 {
            w.observe(64, 64);
        }
        for _ in 0..64 {
            w.observe(1, 64); // singleton batches: the queue went shallow
        }
        assert_eq!(
            w.window(Duration::from_micros(200)),
            Duration::ZERO,
            "sustained singletons must shrink the window to zero"
        );
    }

    #[test]
    fn adaptive_window_is_deterministic_in_its_observation_sequence() {
        let mut a = AdaptiveWindow::new();
        let mut b = AdaptiveWindow::new();
        for i in 0..100 {
            a.observe(i % 17, 16);
            b.observe(i % 17, 16);
        }
        assert_eq!(a.fill(), b.fill());
        assert_eq!(
            a.window(Duration::from_micros(500)),
            b.window(Duration::from_micros(500))
        );
    }

    #[test]
    fn queue_blocking_pop_wakes_on_push() {
        let q = std::sync::Arc::new(MicroBatchQueue::new(4));
        let q2 = q.clone();
        let handle = std::thread::spawn(move || {
            let mut out = Vec::new();
            assert!(q2.pop_batch(&mut out, 1, Duration::ZERO));
            out[0]
        });
        std::thread::sleep(Duration::from_millis(20));
        q.push(42u32).unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }
}
