//! The serving artifact: [`FittedModel`] — frozen centroids plus an LSH
//! index built **over the centroids**, ready to answer `predict` queries.
//!
//! Training (`Clusterer::fit`) uses the paper's index over the *items* to
//! accelerate the assignment loop; serving inverts the construction. The
//! trained centroids themselves are hashed into a frozen index, so an unseen
//! item is assigned by MinHashing/SimHashing it once, probing the centroid
//! buckets for a shortlist of candidate clusters, and searching only that
//! shortlist — per-query cost independent of `k`, exactly the property the
//! paper establishes for the fit loop (and the reusable-centroid-index view
//! taken by the cluster-closures line of work). An empty shortlist falls
//! back to full search, so `predict` is total.
//!
//! The artifact round-trips through two **versioned envelopes**, sniffed
//! apart by their leading bytes at every load site:
//!
//! - **v1 JSON** ([`FittedModel::save`] / [`FittedModel::to_json`]) — the
//!   pinned default: human-readable, stores only the spec and the
//!   centroids, and rebuilds the index by re-hashing every centroid on
//!   load.
//! - **v2 flat binary** ([`FittedModel::save_v2`] / [`FittedModel::to_bytes`])
//!   — a little-endian sectioned layout that additionally persists the flat
//!   item-major band-key buffers, so load refills the index buckets by
//!   *copying* instead of re-hashing — the difference that matters at
//!   large `k` (see `BENCH_artifact.json`).
//!
//! Either way a reloaded model answers every query identically.
//!
//! ```
//! use lshclust::{ClusterSpec, Clusterer, DatasetBuilder, Lsh};
//!
//! let mut b = DatasetBuilder::anonymous(3);
//! for row in [["a", "b", "c"], ["a", "b", "d"], ["x", "y", "z"], ["x", "y", "w"]] {
//!     b.push_str_row(&row, None).unwrap();
//! }
//! let dataset = b.finish();
//! let spec = ClusterSpec::new(2).lsh(Lsh::MinHash { bands: 8, rows: 2 }).seed(1);
//! let run = Clusterer::new(spec).fit(&dataset).unwrap();
//!
//! // The run owns a servable model: persist, reload, answer queries.
//! let json = run.model.to_json();
//! let model = lshclust::FittedModel::from_json(&json).unwrap();
//! let fresh = model.predict_str_row(&["a", "b", "q"]).unwrap();
//! assert_eq!(fresh, run.assignments[0]);
//! ```

use crate::envelope::{self, corrupt};
use crate::spec::{ClusterSpec, Lsh, StreamOptions};
use lshclust_categorical::dissimilarity::matching;
use lshclust_categorical::{
    AttrId, ClusterId, Dataset, PresentElements, Schema, ValueId, NOT_PRESENT,
};
use lshclust_core::mhkmeans::{SimHashIndex, VectorQueryScratch};
use lshclust_core::parallel::chunked_map;
use lshclust_core::streaming::StreamingMhKModes;
use lshclust_kmodes::assign::{best_cluster_among, best_cluster_full};
use lshclust_kmodes::kmeans::{sq_euclidean, NumericDataset};
use lshclust_kmodes::kprototypes::{MixedDataset, Prototypes};
use lshclust_kmodes::modes::Modes;
use lshclust_minhash::hashfn::{FastSet, MixHashFamily};
use lshclust_minhash::index::{LshIndex, LshIndexBuilder, ShortlistScratch};
use lshclust_minhash::signature::SignatureGenerator;
use lshclust_minhash::Banding;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::fmt;
use std::path::Path;

/// Envelope marker of the JSON model artifact.
pub const MODEL_FORMAT: &str = "lshclust-model";
/// Version of the JSON envelope ([`FittedModel::save`] /
/// [`FittedModel::to_json`] — the pinned default format).
pub const MODEL_VERSION: u64 = 1;
/// Version of the flat binary envelope ([`FittedModel::save_v2`] /
/// [`FittedModel::to_bytes`]).
pub const MODEL_VERSION_V2: u64 = 2;

// Centroid indexes decorrelate their hash families from the fit-time item
// index (which already decorrelates from init sampling).
const CAT_INDEX_SALT: u64 = 0x6d6f_6465_6c6d; // "modelm"
const NUM_INDEX_SALT: u64 = 0x6d6f_6465_6c73; // "models"

/// Why a serving operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// Reading or writing the artifact file failed.
    Io(String),
    /// The artifact is not parseable JSON (or violates the payload schema).
    Json(String),
    /// The artifact parsed but its envelope is not one this build accepts
    /// (wrong `format` marker or unsupported `version`).
    Envelope(String),
    /// A v2 binary artifact is structurally damaged: truncated, bit-flipped,
    /// or internally inconsistent (a section length disagreeing with its own
    /// shape header, a band-key buffer disagreeing with the spec, …).
    Corrupt(String),
    /// The query modality does not match the model (e.g. numeric points
    /// against a categorical model).
    WrongModality {
        /// The model's modality.
        expected: &'static str,
        /// The query's modality.
        got: &'static str,
    },
    /// A query row/point has the wrong arity or dimensionality.
    ShapeMismatch {
        /// What was being validated ("attributes", "dimensions").
        what: &'static str,
        /// The model's shape.
        expected: usize,
        /// The query's shape.
        got: usize,
    },
    /// The input dataset was interned under dictionaries that disagree
    /// with the model's training schema, so its `ValueId`s do not align.
    IncompatibleEncoding {
        /// Name of the first attribute whose dictionaries disagree.
        attr: String,
    },
    /// A streaming hand-off was attempted before any cluster existed.
    EmptyModel,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Io(e) => write!(f, "model artifact I/O failed: {e}"),
            ModelError::Json(e) => write!(f, "model artifact is not valid JSON: {e}"),
            ModelError::Envelope(e) => write!(f, "model envelope rejected: {e}"),
            ModelError::Corrupt(e) => write!(f, "model artifact is corrupt: {e}"),
            ModelError::WrongModality { expected, got } => {
                write!(f, "{expected} model cannot serve {got} queries")
            }
            ModelError::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(f, "query has {got} {what}, model expects {expected}"),
            ModelError::IncompatibleEncoding { attr } => write!(
                f,
                "input encoding disagrees with the training schema on attribute `{attr}`; \
                 re-encode rows with FittedModel::encode_row"
            ),
            ModelError::EmptyModel => write!(f, "cannot build a model with zero clusters"),
        }
    }
}

impl std::error::Error for ModelError {}

/// A trained, persistable, servable clustering model: the originating
/// [`ClusterSpec`], the frozen centroids, and an LSH index over those
/// centroids for shortlisted assignment of unseen items.
///
/// Obtained from [`crate::ClusterRun::model`] after a fit, from
/// [`FittedModel::from_streaming`] as a streaming hand-off, or from
/// [`FittedModel::load`] / [`FittedModel::from_json`].
#[derive(Clone)]
pub struct FittedModel {
    spec: ClusterSpec,
    kind: ModelKind,
}

#[derive(Clone)]
enum ModelKind {
    Categorical(CategoricalServer),
    Numeric(NumericServer),
    Mixed(MixedServer),
}

/// Frozen modes plus an optional MinHash index over them.
#[derive(Clone)]
struct CategoricalServer {
    schema: Schema,
    modes: Modes,
    index: Option<CatIndex>,
}

#[derive(Clone)]
struct CatIndex {
    banding: Banding,
    generator: SignatureGenerator<MixHashFamily>,
    index: LshIndex,
}

impl CatIndex {
    fn build(banding: Banding, seed: u64, schema: &Schema, modes: &Modes) -> Self {
        let generator = SignatureGenerator::new(MixHashFamily::new(banding.signature_len(), seed));
        let index = LshIndexBuilder::new(banding).seed(seed).build_centroids(
            schema,
            (0..modes.k()).map(|c| modes.mode(c)),
            modes.k(),
        );
        Self {
            banding,
            generator,
            index,
        }
    }

    /// The copy-instead-of-hash load path: refills the bucket maps from a
    /// persisted flat band-key buffer (`k × bands`, item-major) instead of
    /// re-MinHashing every centroid. The query-side hash family still
    /// regenerates deterministically from the seed — only the per-centroid
    /// hashing (the dominant load cost) is skipped. The caller has already
    /// validated `band_keys.len() == k × bands`.
    fn from_band_keys(banding: Banding, seed: u64, band_keys: Vec<u64>, k: usize) -> Self {
        let generator = SignatureGenerator::new(MixHashFamily::new(banding.signature_len(), seed));
        let identity: Vec<ClusterId> = (0..k as u32).map(ClusterId).collect();
        let index = LshIndexBuilder::new(banding)
            .seed(seed)
            .build_from_band_keys(band_keys, &identity);
        Self {
            banding,
            generator,
            index,
        }
    }
}

/// Per-query scratch for the categorical path (reused across a batch).
pub(crate) struct CatScratch {
    sig: Vec<u64>,
    keys: Vec<u64>,
    shortlist: ShortlistScratch,
}

impl CategoricalServer {
    fn new(spec: &ClusterSpec, schema: Schema, modes: Modes) -> Self {
        let index = match spec.lsh {
            Lsh::MinHash { bands, rows } | Lsh::Union { bands, rows, .. } => Some(CatIndex::build(
                Banding::new(bands, rows),
                spec.seed ^ CAT_INDEX_SALT,
                &schema,
                &modes,
            )),
            _ => None,
        };
        Self {
            schema,
            modes,
            index,
        }
    }

    fn scratch(&self) -> CatScratch {
        CatScratch {
            sig: Vec::new(),
            keys: Vec::new(),
            shortlist: ShortlistScratch::new(self.modes.k(), self.modes.k()),
        }
    }

    /// Shortlist the candidate clusters for `row` into `scratch.shortlist`.
    /// Returns `false` when the model has no index (full search applies).
    fn shortlist(&self, row: &[ValueId], scratch: &mut CatScratch) -> bool {
        let Some(ci) = &self.index else { return false };
        ci.generator
            .signature_into(PresentElements::new(&self.schema, row), &mut scratch.sig);
        ci.banding.band_keys_into(&scratch.sig, &mut scratch.keys);
        ci.index
            .shortlist_for_band_keys(&scratch.keys, &mut scratch.shortlist);
        true
    }

    fn predict_row(&self, row: &[ValueId], scratch: &mut CatScratch) -> ClusterId {
        if self.shortlist(row, scratch) {
            if let Some((c, _)) = best_cluster_among(row, &self.modes, &scratch.shortlist.clusters)
            {
                return c;
            }
            // Empty shortlist: the query collided with no centroid — fall
            // through to exhaustive search (predict is total).
        }
        best_cluster_full(row, &self.modes).0
    }
}

/// Frozen means plus an optional SimHash index over them.
#[derive(Clone)]
struct NumericServer {
    dim: usize,
    /// `k × dim` centroid matrix, row-major.
    centroids: Vec<f64>,
    index: Option<SimHashIndex>,
}

/// Per-query scratch for the numeric path.
pub(crate) struct NumScratch {
    out: Vec<ClusterId>,
    seen: FastSet<u32>,
    query: VectorQueryScratch,
}

impl NumericServer {
    fn new(spec: &ClusterSpec, dim: usize, centroids: Vec<f64>) -> Self {
        let k = centroids.len() / dim.max(1);
        let index = match spec.lsh {
            Lsh::SimHash { bands, rows } => Some((bands, rows)),
            Lsh::Union {
                sim_bands,
                sim_rows,
                ..
            } => Some((sim_bands, sim_rows)),
            _ => None,
        }
        .map(|(bands, rows)| {
            let identity: Vec<ClusterId> = (0..k as u32).map(ClusterId).collect();
            SimHashIndex::build(
                &NumericDataset::new(dim, centroids.clone()),
                bands,
                rows,
                spec.seed ^ NUM_INDEX_SALT,
                &identity,
            )
        });
        Self {
            dim,
            centroids,
            index,
        }
    }

    fn k(&self) -> usize {
        self.centroids.len() / self.dim
    }

    #[inline]
    fn centroid(&self, c: usize) -> &[f64] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    fn scratch(&self) -> NumScratch {
        NumScratch {
            out: Vec::new(),
            seen: FastSet::default(),
            query: VectorQueryScratch::default(),
        }
    }

    fn best_among(&self, point: &[f64], candidates: &[ClusterId]) -> Option<ClusterId> {
        argmin_among(candidates, |c| sq_euclidean(point, self.centroid(c)))
    }

    fn best_full(&self, point: &[f64]) -> ClusterId {
        argmin_full(self.k(), |c| sq_euclidean(point, self.centroid(c)))
    }

    fn predict_point(&self, point: &[f64], scratch: &mut NumScratch) -> ClusterId {
        if let Some(index) = &self.index {
            index.shortlist_for_vector_with(
                point,
                &mut scratch.query,
                &mut scratch.out,
                &mut scratch.seen,
            );
            if let Some(c) = self.best_among(point, &scratch.out) {
                return c;
            }
        }
        self.best_full(point)
    }
}

/// Mixed serving: both part-servers plus the resolved mixing weight γ.
#[derive(Clone)]
struct MixedServer {
    cat: CategoricalServer,
    num: NumericServer,
    gamma: f64,
}

pub(crate) struct MixedScratch {
    cat: CatScratch,
    num: NumScratch,
    union: Vec<ClusterId>,
}

impl MixedServer {
    fn scratch(&self) -> MixedScratch {
        MixedScratch {
            cat: self.cat.scratch(),
            num: self.num.scratch(),
            union: Vec::new(),
        }
    }

    #[inline]
    fn distance(&self, row: &[ValueId], point: &[f64], c: usize) -> f64 {
        f64::from(matching(row, self.cat.modes.mode(c)))
            + self.gamma * sq_euclidean(point, self.num.centroid(c))
    }

    fn best_among(
        &self,
        row: &[ValueId],
        point: &[f64],
        candidates: &[ClusterId],
    ) -> Option<ClusterId> {
        argmin_among(candidates, |c| self.distance(row, point, c))
    }

    fn best_full(&self, row: &[ValueId], point: &[f64]) -> ClusterId {
        argmin_full(self.cat.modes.k(), |c| self.distance(row, point, c))
    }

    fn predict_row(&self, row: &[ValueId], point: &[f64], scratch: &mut MixedScratch) -> ClusterId {
        // Union shortlist: candidates close in *either* modality, mirroring
        // the fit-time UnionProvider.
        scratch.union.clear();
        if self.cat.shortlist(row, &mut scratch.cat) {
            scratch
                .union
                .extend_from_slice(&scratch.cat.shortlist.clusters);
        }
        if let Some(index) = &self.num.index {
            index.shortlist_for_vector_with(
                point,
                &mut scratch.num.query,
                &mut scratch.num.out,
                &mut scratch.num.seen,
            );
            for &c in &scratch.num.out {
                if !scratch.union.contains(&c) {
                    scratch.union.push(c);
                }
            }
        }
        if let Some(c) = self.best_among(row, point, &scratch.union) {
            return c;
        }
        self.best_full(row, point)
    }
}

/// Argmin over candidate clusters, ties to the lowest cluster id — the
/// exact tie-break rule of every fit path; `predict == assignments` on
/// converged runs depends on all modalities sharing it.
fn argmin_among(
    candidates: &[ClusterId],
    mut distance: impl FnMut(usize) -> f64,
) -> Option<ClusterId> {
    let mut best: Option<(ClusterId, f64)> = None;
    for &c in candidates {
        let d = distance(c.idx());
        let replace = match best {
            None => true,
            Some((bc, bd)) => d < bd || (d == bd && c < bc),
        };
        if replace {
            best = Some((c, d));
        }
    }
    best.map(|(c, _)| c)
}

/// Full-search argmin over `0..k` (id order, only strictly better replaces —
/// the same lowest-id tie-break as [`argmin_among`]).
fn argmin_full(k: usize, mut distance: impl FnMut(usize) -> f64) -> ClusterId {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for c in 0..k {
        let d = distance(c);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    ClusterId(best as u32)
}

impl FittedModel {
    // ---- construction (fit side) ------------------------------------------

    pub(crate) fn categorical(spec: ClusterSpec, schema: Schema, modes: Modes) -> Self {
        let kind = ModelKind::Categorical(CategoricalServer::new(&spec, schema, modes));
        Self { spec, kind }
    }

    pub(crate) fn numeric(spec: ClusterSpec, dim: usize, centroids: Vec<f64>) -> Self {
        let kind = ModelKind::Numeric(NumericServer::new(&spec, dim, centroids));
        Self { spec, kind }
    }

    pub(crate) fn mixed(
        spec: ClusterSpec,
        schema: Schema,
        prototypes: &Prototypes,
        gamma: f64,
    ) -> Self {
        let kind = ModelKind::Mixed(MixedServer {
            cat: CategoricalServer::new(&spec, schema, prototypes.modes.clone()),
            num: NumericServer::new(&spec, prototypes.dim(), prototypes.means.clone()),
            gamma,
        });
        Self { spec, kind }
    }

    /// Streaming hand-off: snapshots the clusters a [`StreamingMhKModes`]
    /// has discovered so far into a frozen, servable categorical model. The
    /// stream keeps running independently; call again for a fresher model.
    pub fn from_streaming(stream: &StreamingMhKModes) -> Result<Self, ModelError> {
        if stream.n_clusters() == 0 {
            return Err(ModelError::EmptyModel);
        }
        let config = stream.config();
        let spec = ClusterSpec::new(stream.n_clusters())
            .lsh(Lsh::MinHash {
                bands: config.banding.bands(),
                rows: config.banding.rows(),
            })
            .seed(config.seed)
            .stream(StreamOptions {
                distance_threshold: Some(config.distance_threshold),
                max_clusters: config.max_clusters,
            });
        Ok(Self::categorical(
            spec,
            stream.schema().clone(),
            stream.snapshot_modes(),
        ))
    }

    // ---- inspection -------------------------------------------------------

    /// The spec the model was trained under.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Number of clusters served.
    pub fn k(&self) -> usize {
        match &self.kind {
            ModelKind::Categorical(s) => s.modes.k(),
            ModelKind::Numeric(s) => s.k(),
            ModelKind::Mixed(s) => s.cat.modes.k(),
        }
    }

    /// The model's input modality: `"categorical"`, `"numeric"` or
    /// `"mixed"`.
    pub fn modality(&self) -> &'static str {
        match &self.kind {
            ModelKind::Categorical(_) => "categorical",
            ModelKind::Numeric(_) => "numeric",
            ModelKind::Mixed(_) => "mixed",
        }
    }

    /// The training schema (categorical and mixed models).
    pub fn schema(&self) -> Option<&Schema> {
        match &self.kind {
            ModelKind::Categorical(s) => Some(&s.schema),
            ModelKind::Mixed(s) => Some(&s.cat.schema),
            ModelKind::Numeric(_) => None,
        }
    }

    /// Numeric dimensionality (numeric and mixed models).
    pub fn dim(&self) -> Option<usize> {
        match &self.kind {
            ModelKind::Numeric(s) => Some(s.dim),
            ModelKind::Mixed(s) => Some(s.num.dim),
            ModelKind::Categorical(_) => None,
        }
    }

    /// Whether a centroid LSH index is serving shortlists (false ⇒ every
    /// `predict` is a full search).
    pub fn has_index(&self) -> bool {
        match &self.kind {
            ModelKind::Categorical(s) => s.index.is_some(),
            ModelKind::Numeric(s) => s.index.is_some(),
            ModelKind::Mixed(s) => s.cat.index.is_some() || s.num.index.is_some(),
        }
    }

    /// The resolved mixing weight γ (mixed models).
    pub fn gamma(&self) -> Option<f64> {
        match &self.kind {
            ModelKind::Mixed(s) => Some(s.gamma),
            _ => None,
        }
    }

    /// Overrides the serving thread count ([`Self::predict`] fans batches
    /// over it) without retraining — serving hardware rarely matches the
    /// training box. `0` clamps to `1`, matching the spec-boundary rule.
    /// Persisted with the model on a subsequent [`Self::save`].
    pub fn set_threads(&mut self, threads: usize) {
        self.spec.threads = threads.max(1);
    }

    // ---- warm-start accessors (crate) -------------------------------------

    pub(crate) fn warm_modes(&self) -> Option<&Modes> {
        match &self.kind {
            ModelKind::Categorical(s) => Some(&s.modes),
            _ => None,
        }
    }

    pub(crate) fn warm_means(&self) -> Option<(usize, &[f64])> {
        match &self.kind {
            ModelKind::Numeric(s) => Some((s.dim, &s.centroids)),
            _ => None,
        }
    }

    pub(crate) fn warm_prototypes(&self) -> Option<(Prototypes, f64)> {
        match &self.kind {
            ModelKind::Mixed(s) => Some((
                Prototypes::from_parts(s.cat.modes.clone(), s.num.centroids.clone(), s.num.dim),
                s.gamma,
            )),
            _ => None,
        }
    }

    // ---- predict ----------------------------------------------------------

    /// Batched assignment of any supported input — a categorical
    /// [`Dataset`], a [`NumericDataset`], or a [`MixedDataset`] — fanned
    /// over the spec's `threads` (1 ⇒ inline, no spawning).
    ///
    /// ```
    /// use lshclust::{ClusterSpec, Clusterer, Lsh, NumericDataset};
    ///
    /// let train = NumericDataset::new(1, vec![0.0, 0.2, 0.4, 9.0, 9.2, 9.4]);
    /// let spec = ClusterSpec::new(2).lsh(Lsh::SimHash { bands: 8, rows: 2 });
    /// let run = Clusterer::new(spec).fit(&train).unwrap();
    ///
    /// // A fresh batch is assigned by probing the centroid index; the
    /// // result lines up with the training partition.
    /// let batch = NumericDataset::new(1, vec![0.1, 9.1]);
    /// let clusters = run.model.predict(&batch).unwrap();
    /// assert_eq!(clusters[0], run.assignments[0]);
    /// assert_eq!(clusters[1], run.assignments[3]);
    /// ```
    pub fn predict<I: PredictInput>(&self, input: I) -> Result<Vec<ClusterId>, ModelError> {
        input.predict_with(self)
    }

    /// Assigns one encoded categorical row. Values must be encoded under
    /// the model's schema (see [`Self::encode_row`] for raw strings).
    pub fn predict_one(&self, row: &[ValueId]) -> Result<ClusterId, ModelError> {
        let server = self.categorical_server("categorical")?;
        check_shape("attributes", server.schema.n_attrs(), row.len())?;
        Ok(server.predict_row(row, &mut server.scratch()))
    }

    /// Assigns one numeric point.
    pub fn predict_point(&self, point: &[f64]) -> Result<ClusterId, ModelError> {
        let ModelKind::Numeric(server) = &self.kind else {
            return Err(ModelError::WrongModality {
                expected: self.modality(),
                got: "numeric",
            });
        };
        check_shape("dimensions", server.dim, point.len())?;
        Ok(server.predict_point(point, &mut server.scratch()))
    }

    /// Assigns one mixed item (encoded categorical part + numeric part).
    pub fn predict_mixed_one(
        &self,
        row: &[ValueId],
        point: &[f64],
    ) -> Result<ClusterId, ModelError> {
        let ModelKind::Mixed(server) = &self.kind else {
            return Err(ModelError::WrongModality {
                expected: self.modality(),
                got: "mixed",
            });
        };
        check_shape("attributes", server.cat.schema.n_attrs(), row.len())?;
        check_shape("dimensions", server.num.dim, point.len())?;
        Ok(server.predict_row(row, point, &mut server.scratch()))
    }

    /// Encodes a raw string row under the model's training schema. Values
    /// never seen during training encode as [`NOT_PRESENT`], which matches
    /// no mode value (one mismatch per unseen cell).
    pub fn encode_row(&self, row: &[&str]) -> Result<Vec<ValueId>, ModelError> {
        let schema = self.schema().ok_or(ModelError::WrongModality {
            expected: self.modality(),
            got: "categorical",
        })?;
        check_shape("attributes", schema.n_attrs(), row.len())?;
        Ok(row
            .iter()
            .enumerate()
            .map(|(a, s)| {
                schema
                    .dictionary(AttrId(a as u32))
                    .get(s)
                    .unwrap_or(NOT_PRESENT)
            })
            .collect())
    }

    /// Assigns one raw string row (categorical models): encodes under the
    /// training schema, then [`Self::predict_one`].
    pub fn predict_str_row(&self, row: &[&str]) -> Result<ClusterId, ModelError> {
        let encoded = self.encode_row(row)?;
        self.predict_one(&encoded)
    }

    // ---- single-item serving with reusable scratch (crate) ----------------
    //
    // The `serve::ModelServer` worker pool coalesces many callers' single
    // requests into micro-batches; these entry points let one worker reuse
    // one scratch across a whole batch instead of allocating per request
    // (the public `predict_one`/`predict_point`/`predict_mixed_one` wrappers
    // pay that allocation, which is fine for one-off calls).

    /// One per-worker scratch, matching this model's modality.
    pub(crate) fn serve_scratch(&self) -> ServeScratch {
        match &self.kind {
            ModelKind::Categorical(s) => ServeScratch::Cat(s.scratch()),
            ModelKind::Numeric(s) => ServeScratch::Num(s.scratch()),
            ModelKind::Mixed(s) => ServeScratch::Mixed(s.scratch()),
        }
    }

    /// [`Self::predict_one`] against caller-held scratch.
    pub(crate) fn predict_row_with(
        &self,
        row: &[ValueId],
        scratch: &mut ServeScratch,
    ) -> Result<ClusterId, ModelError> {
        let (ModelKind::Categorical(server), ServeScratch::Cat(scratch)) = (&self.kind, scratch)
        else {
            return Err(ModelError::WrongModality {
                expected: self.modality(),
                got: "categorical",
            });
        };
        check_shape("attributes", server.schema.n_attrs(), row.len())?;
        Ok(server.predict_row(row, scratch))
    }

    /// [`Self::predict_point`] against caller-held scratch.
    pub(crate) fn predict_point_with(
        &self,
        point: &[f64],
        scratch: &mut ServeScratch,
    ) -> Result<ClusterId, ModelError> {
        let (ModelKind::Numeric(server), ServeScratch::Num(scratch)) = (&self.kind, scratch) else {
            return Err(ModelError::WrongModality {
                expected: self.modality(),
                got: "numeric",
            });
        };
        check_shape("dimensions", server.dim, point.len())?;
        Ok(server.predict_point(point, scratch))
    }

    /// [`Self::predict_mixed_one`] against caller-held scratch.
    pub(crate) fn predict_mixed_with(
        &self,
        row: &[ValueId],
        point: &[f64],
        scratch: &mut ServeScratch,
    ) -> Result<ClusterId, ModelError> {
        let (ModelKind::Mixed(server), ServeScratch::Mixed(scratch)) = (&self.kind, scratch) else {
            return Err(ModelError::WrongModality {
                expected: self.modality(),
                got: "mixed",
            });
        };
        check_shape("attributes", server.cat.schema.n_attrs(), row.len())?;
        check_shape("dimensions", server.num.dim, point.len())?;
        Ok(server.predict_row(row, point, scratch))
    }

    fn categorical_server(&self, got: &'static str) -> Result<&CategoricalServer, ModelError> {
        match &self.kind {
            ModelKind::Categorical(s) => Ok(s),
            _ => Err(ModelError::WrongModality {
                expected: self.modality(),
                got,
            }),
        }
    }

    // ---- persistence ------------------------------------------------------

    /// Serializes the model as its versioned JSON envelope (pretty-printed;
    /// stable byte-for-byte across save → load → save).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("model envelope serializes")
    }

    /// Parses a model from its JSON envelope, rebuilding the centroid index
    /// deterministically (a reloaded model answers every query identically).
    pub fn from_json(text: &str) -> Result<Self, ModelError> {
        let value = serde_json::parse(text).map_err(|e| ModelError::Json(e.to_string()))?;
        let format = value.get("format").and_then(Value::as_str).unwrap_or("?");
        if format != MODEL_FORMAT {
            return Err(ModelError::Envelope(format!(
                "format is `{format}`, expected `{MODEL_FORMAT}`"
            )));
        }
        let version = value.get("version").and_then(Value::as_u64).unwrap_or(0);
        if version != MODEL_VERSION {
            return Err(ModelError::Envelope(format!(
                "version {version} is not supported (this build reads version {MODEL_VERSION})"
            )));
        }
        FittedModel::from_value(&value).map_err(|e| ModelError::Json(e.to_string()))
    }

    /// Writes the **v1 JSON** envelope to `path` — the pinned default
    /// format: human-readable, diff-friendly, and accepted by every build
    /// since version 1. Reach for [`Self::save_v2`] when load latency
    /// matters more than readability.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), ModelError> {
        std::fs::write(path, self.to_json()).map_err(|e| ModelError::Io(e.to_string()))
    }

    /// Writes the **v2 flat binary** envelope to `path` (see
    /// [`Self::to_bytes`]). [`Self::load`] sniffs the format, so v1 and v2
    /// artifacts are interchangeable at every load site.
    pub fn save_v2<P: AsRef<Path>>(&self, path: P) -> Result<(), ModelError> {
        std::fs::write(path, self.to_bytes()).map_err(|e| ModelError::Io(e.to_string()))
    }

    /// Reads a model back from `path`, accepting both envelope formats
    /// (sniffed via [`Self::from_bytes`]).
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, ModelError> {
        let bytes = std::fs::read(path).map_err(|e| ModelError::Io(e.to_string()))?;
        Self::from_bytes(&bytes)
    }

    /// Serializes the model as the **v2 flat binary envelope**: a
    /// little-endian sectioned layout carrying the spec, the centroid
    /// buffers, and — unlike v1 — the centroid index's flat item-major
    /// band-key buffers. [`Self::from_bytes`] rebuilds the index by
    /// *copying* those buffers into buckets instead of re-hashing every
    /// centroid, which is what makes v2 loads fast at large `k`; the
    /// query-side hash families regenerate deterministically from the seed,
    /// so a v2-loaded model answers every query byte-identically to the
    /// model that was saved (and to a v1 round-trip of the same model).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = envelope::Writer::new();
        w.push(
            envelope::SEC_SPEC,
            serde_json::to_string(&self.spec)
                .expect("spec serializes")
                .into_bytes(),
        );
        match &self.kind {
            ModelKind::Categorical(s) => {
                w.push(envelope::SEC_MODALITY, vec![0]);
                push_categorical(&mut w, s);
            }
            ModelKind::Numeric(s) => {
                w.push(envelope::SEC_MODALITY, vec![1]);
                push_numeric(&mut w, s);
            }
            ModelKind::Mixed(s) => {
                w.push(envelope::SEC_MODALITY, vec![2]);
                push_categorical(&mut w, &s.cat);
                push_numeric(&mut w, &s.num);
                let mut gamma = Vec::with_capacity(8);
                envelope::put_f64(&mut gamma, s.gamma);
                w.push(envelope::SEC_GAMMA, gamma);
            }
        }
        w.finish()
    }

    /// Parses a model from either envelope format, sniffing the leading
    /// bytes: the v2 binary magic routes to the sectioned reader, anything
    /// else is treated as v1 JSON text. Hostile input — truncated,
    /// bit-flipped, or version-skewed — yields a typed [`ModelError`]
    /// ([`ModelError::Corrupt`] / [`ModelError::Envelope`] /
    /// [`ModelError::Json`]); it never panics, and every allocation is
    /// bounded by the buffer size (length fields are validated first).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ModelError> {
        if bytes.starts_with(&envelope::MAGIC) {
            return decode_v2(bytes);
        }
        let text = std::str::from_utf8(bytes).map_err(|_| {
            ModelError::Json("artifact is neither a v2 binary envelope nor UTF-8 JSON".to_owned())
        })?;
        Self::from_json(text)
    }

    /// The envelope version a byte buffer claims to carry, without decoding
    /// the payload: `Some(2)` for the v2 binary magic, `Some(version)` for
    /// parseable v1-style JSON with the right `format` marker, `None` for
    /// anything else. `cluster inspect` uses this to describe artifacts it
    /// may not even be able to load.
    pub fn sniff_version(bytes: &[u8]) -> Option<u64> {
        if bytes.starts_with(&envelope::MAGIC) {
            let raw = bytes.get(8..12)?;
            return Some(u64::from(u32::from_le_bytes(
                raw.try_into().expect("4 bytes"),
            )));
        }
        let text = std::str::from_utf8(bytes).ok()?;
        let value = serde_json::parse(text).ok()?;
        if value.get("format").and_then(Value::as_str) != Some(MODEL_FORMAT) {
            return None;
        }
        value.get("version").and_then(Value::as_u64)
    }
}

// --- v2 binary envelope: encode --------------------------------------------

fn push_categorical(w: &mut envelope::Writer, s: &CategoricalServer) {
    w.push(
        envelope::SEC_SCHEMA,
        serde_json::to_string(&s.schema)
            .expect("schema serializes")
            .into_bytes(),
    );
    let mut modes = Vec::with_capacity(16 + s.modes.values().len() * 4);
    envelope::put_u64(&mut modes, s.modes.k() as u64);
    envelope::put_u64(&mut modes, s.modes.n_attrs() as u64);
    for v in s.modes.values() {
        envelope::put_u32(&mut modes, v.0);
    }
    w.push(envelope::SEC_MODES, modes);
    if let Some(ci) = &s.index {
        w.push(
            envelope::SEC_CAT_KEYS,
            keys_section(s.modes.k(), ci.banding.bands(), ci.index.band_keys()),
        );
    }
}

fn push_numeric(w: &mut envelope::Writer, s: &NumericServer) {
    let k = s.k();
    let mut means = Vec::with_capacity(16 + s.centroids.len() * 8);
    envelope::put_u64(&mut means, k as u64);
    envelope::put_u64(&mut means, s.dim as u64);
    for &v in &s.centroids {
        envelope::put_f64(&mut means, v);
    }
    w.push(envelope::SEC_MEANS, means);
    if let Some(ix) = &s.index {
        let bands = (ix.band_keys().len() / k.max(1)) as u32;
        w.push(
            envelope::SEC_NUM_KEYS,
            keys_section(k, bands, ix.band_keys()),
        );
        let mut mean = Vec::with_capacity(16 + ix.mean().len() * 8);
        envelope::put_u64(&mut mean, 1);
        envelope::put_u64(&mut mean, ix.mean().len() as u64);
        for &v in ix.mean() {
            envelope::put_f64(&mut mean, v);
        }
        w.push(envelope::SEC_NUM_MEAN, mean);
    }
}

/// `u64 k, u64 bands`, then the item-major `k × bands` key buffer.
fn keys_section(k: usize, bands: u32, keys: &[u64]) -> Vec<u8> {
    debug_assert_eq!(keys.len(), k * bands as usize);
    let mut out = Vec::with_capacity(16 + keys.len() * 8);
    envelope::put_u64(&mut out, k as u64);
    envelope::put_u64(&mut out, u64::from(bands));
    for &key in keys {
        envelope::put_u64(&mut out, key);
    }
    out
}

// --- v2 binary envelope: decode --------------------------------------------

fn decode_v2(bytes: &[u8]) -> Result<FittedModel, ModelError> {
    let sections = envelope::Sections::parse(bytes)?;
    let spec_text = std::str::from_utf8(sections.require(envelope::SEC_SPEC)?)
        .map_err(|_| corrupt("spec section is not UTF-8"))?;
    let spec: ClusterSpec =
        serde_json::from_str(spec_text).map_err(|e| ModelError::Json(e.to_string()))?;
    let modality = sections.require(envelope::SEC_MODALITY)?;
    let kind = match modality {
        [0] => ModelKind::Categorical(decode_categorical(&sections, &spec)?),
        [1] => ModelKind::Numeric(decode_numeric(&sections, &spec)?),
        [2] => {
            let cat = decode_categorical(&sections, &spec)?;
            let num = decode_numeric(&sections, &spec)?;
            let gamma_bytes = sections.require(envelope::SEC_GAMMA)?;
            let gamma = <[u8; 8]>::try_from(gamma_bytes)
                .map(f64::from_le_bytes)
                .map_err(|_| corrupt("gamma section is not exactly 8 bytes"))?;
            ModelKind::Mixed(MixedServer { cat, num, gamma })
        }
        other => {
            return Err(corrupt(format!(
                "modality section is not one known byte ({} bytes)",
                other.len()
            )))
        }
    };
    Ok(FittedModel { spec, kind })
}

fn decode_categorical(
    sections: &envelope::Sections<'_>,
    spec: &ClusterSpec,
) -> Result<CategoricalServer, ModelError> {
    let schema_text = std::str::from_utf8(sections.require(envelope::SEC_SCHEMA)?)
        .map_err(|_| corrupt("schema section is not UTF-8"))?;
    let schema: Schema =
        serde_json::from_str(schema_text).map_err(|e| ModelError::Json(e.to_string()))?;
    let (k, n_attrs, cells) =
        envelope::matrix_frame(sections.require(envelope::SEC_MODES)?, 4, "modes")?;
    let values: Vec<ValueId> = cells
        .chunks_exact(4)
        .map(|c| ValueId(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
        .collect();
    let modes = Modes::from_parts(k, n_attrs, values);
    check_mode_arity(&schema, &modes).map_err(|e| corrupt(e.0))?;
    check_cluster_count(modes.k(), spec.k).map_err(|e| corrupt(e.0))?;
    let index = match spec.lsh {
        Lsh::MinHash { bands, rows } | Lsh::Union { bands, rows, .. } => {
            let banding = banding_of(bands, rows)?;
            let keys = decode_band_keys(
                sections.require(envelope::SEC_CAT_KEYS)?,
                k,
                bands,
                "cat-band-keys",
            )?;
            Some(CatIndex::from_band_keys(
                banding,
                spec.seed ^ CAT_INDEX_SALT,
                keys,
                k,
            ))
        }
        _ => None,
    };
    Ok(CategoricalServer {
        schema,
        modes,
        index,
    })
}

fn decode_numeric(
    sections: &envelope::Sections<'_>,
    spec: &ClusterSpec,
) -> Result<NumericServer, ModelError> {
    let (k, dim, cells) =
        envelope::matrix_frame(sections.require(envelope::SEC_MEANS)?, 8, "means")?;
    if dim == 0 {
        return Err(corrupt("means section declares dim 0"));
    }
    check_cluster_count(k, spec.k).map_err(|e| corrupt(e.0))?;
    let centroids = f64_cells(cells);
    let banding = match spec.lsh {
        Lsh::SimHash { bands, rows } => Some((bands, rows)),
        Lsh::Union {
            sim_bands,
            sim_rows,
            ..
        } => Some((sim_bands, sim_rows)),
        _ => None,
    };
    let index = match banding {
        Some((bands, rows)) => {
            banding_of(bands, rows)?;
            let keys = decode_band_keys(
                sections.require(envelope::SEC_NUM_KEYS)?,
                k,
                bands,
                "num-band-keys",
            )?;
            let (one, mdim, mean_cells) = envelope::matrix_frame(
                sections.require(envelope::SEC_NUM_MEAN)?,
                8,
                "num-index-mean",
            )?;
            if one != 1 || mdim != dim {
                return Err(corrupt(format!(
                    "num-index-mean section is {one}×{mdim}, model expects 1×{dim}"
                )));
            }
            let identity: Vec<ClusterId> = (0..k as u32).map(ClusterId).collect();
            Some(SimHashIndex::from_band_keys(
                dim,
                bands,
                rows,
                spec.seed ^ NUM_INDEX_SALT,
                f64_cells(mean_cells),
                keys,
                &identity,
            ))
        }
        None => None,
    };
    Ok(NumericServer {
        dim,
        centroids,
        index,
    })
}

/// Spec-level banding values come from parsed JSON, so they are validated
/// (not asserted) before [`Banding::new`] — hostile input must error, never
/// panic.
fn banding_of(bands: u32, rows: u32) -> Result<Banding, ModelError> {
    if bands == 0 || rows == 0 {
        return Err(corrupt(format!(
            "spec banding {bands}×{rows} is not positive"
        )));
    }
    Ok(Banding::new(bands, rows))
}

/// Decodes a band-key section, cross-checking its own `k × bands` header
/// against the shape the spec demands before any key is copied.
fn decode_band_keys(
    bytes: &[u8],
    k: usize,
    bands: u32,
    what: &str,
) -> Result<Vec<u64>, ModelError> {
    let (rows, cols, cells) = envelope::matrix_frame(bytes, 8, what)?;
    if rows != k || cols != bands as usize {
        return Err(corrupt(format!(
            "{what} section is {rows}×{cols}, spec expects {k}×{bands}"
        )));
    }
    Ok(cells
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

fn f64_cells(cells: &[u8]) -> Vec<f64> {
    cells
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Per-worker scratch for the crate-internal serving path
/// ([`crate::serve::ModelServer`]): one variant per modality, created
/// against a model snapshot and reused across a whole micro-batch.
pub(crate) enum ServeScratch {
    Cat(CatScratch),
    Num(NumScratch),
    Mixed(MixedScratch),
}

/// A batch dataset's `ValueId`s only mean what the model thinks they mean if
/// the input dictionaries agree with the training schema's, id for id.
/// Prefix relationships are fine in either direction: a shorter input
/// dictionary saw fewer values, and input ids beyond the model's domain
/// match no centroid value (unseen-value semantics). Anything else is a
/// silent-garbage hazard, so it is rejected.
fn check_encoding(model: &Schema, input: &Schema) -> Result<(), ModelError> {
    for a in 0..model.n_attrs() {
        let attr = AttrId(a as u32);
        let aligned = model
            .dictionary(attr)
            .iter()
            .zip(input.dictionary(attr).iter())
            .all(|((_, m), (_, i))| m == i);
        if !aligned {
            return Err(ModelError::IncompatibleEncoding {
                attr: model.attr_name(attr).to_owned(),
            });
        }
    }
    Ok(())
}

fn check_shape(what: &'static str, expected: usize, got: usize) -> Result<(), ModelError> {
    if expected != got {
        return Err(ModelError::ShapeMismatch {
            what,
            expected,
            got,
        });
    }
    Ok(())
}

impl fmt::Debug for FittedModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FittedModel")
            .field("modality", &self.modality())
            .field("k", &self.k())
            .field("lsh", &self.spec.lsh)
            .field("has_index", &self.has_index())
            .finish()
    }
}

// The envelope: `{"format": "lshclust-model", "version": 1, "spec": {…},
// "centroids": {"Categorical": {…}} | {"Numeric": {…}} | {"Mixed": {…}}}`.
// Only spec + centroids are stored; indexes rebuild on load.
impl Serialize for FittedModel {
    fn to_value(&self) -> Value {
        let payload = match &self.kind {
            ModelKind::Categorical(s) => tagged(
                "Categorical",
                vec![
                    ("schema".to_owned(), s.schema.to_value()),
                    ("modes".to_owned(), s.modes.to_value()),
                ],
            ),
            ModelKind::Numeric(s) => tagged(
                "Numeric",
                vec![
                    ("dim".to_owned(), s.dim.to_value()),
                    ("centroids".to_owned(), s.centroids.to_value()),
                ],
            ),
            ModelKind::Mixed(s) => tagged(
                "Mixed",
                vec![
                    ("schema".to_owned(), s.cat.schema.to_value()),
                    (
                        "prototypes".to_owned(),
                        Prototypes::from_parts(
                            s.cat.modes.clone(),
                            s.num.centroids.clone(),
                            s.num.dim,
                        )
                        .to_value(),
                    ),
                    ("gamma".to_owned(), s.gamma.to_value()),
                ],
            ),
        };
        Value::Object(vec![
            ("format".to_owned(), Value::String(MODEL_FORMAT.to_owned())),
            ("version".to_owned(), MODEL_VERSION.to_value()),
            ("spec".to_owned(), self.spec.to_value()),
            ("centroids".to_owned(), payload),
        ])
    }
}

fn tagged(tag: &str, fields: Vec<(String, Value)>) -> Value {
    Value::Object(vec![(tag.to_owned(), Value::Object(fields))])
}

impl Deserialize for FittedModel {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let spec: ClusterSpec = match v.get("spec") {
            Some(s) => Deserialize::from_value(s)?,
            None => return Err(SerdeError::expected("`spec` field", "FittedModel")),
        };
        let payload = v
            .get("centroids")
            .and_then(Value::as_object)
            .ok_or_else(|| SerdeError::expected("`centroids` object", "FittedModel"))?;
        let [(tag, body)] = payload else {
            return Err(SerdeError::expected(
                "single-variant centroid object",
                "FittedModel",
            ));
        };
        match tag.as_str() {
            "Categorical" => {
                let schema: Schema = field_of(body, "schema")?;
                let modes: Modes = field_of(body, "modes")?;
                check_mode_arity(&schema, &modes)?;
                check_cluster_count(modes.k(), spec.k)?;
                Ok(FittedModel::categorical(spec, schema, modes))
            }
            "Numeric" => {
                let dim: usize = field_of(body, "dim")?;
                let centroids: Vec<f64> = field_of(body, "centroids")?;
                if dim == 0 || !centroids.len().is_multiple_of(dim) {
                    return Err(SerdeError(format!(
                        "centroid buffer of {} values is not k×dim with dim {dim}",
                        centroids.len()
                    )));
                }
                check_cluster_count(centroids.len() / dim, spec.k)?;
                Ok(FittedModel::numeric(spec, dim, centroids))
            }
            "Mixed" => {
                let schema: Schema = field_of(body, "schema")?;
                let prototypes: Prototypes = field_of(body, "prototypes")?;
                let gamma: f64 = field_of(body, "gamma")?;
                check_mode_arity(&schema, &prototypes.modes)?;
                check_cluster_count(prototypes.k(), spec.k)?;
                Ok(FittedModel::mixed(spec, schema, &prototypes, gamma))
            }
            other => Err(SerdeError(format!("unknown centroid family `{other}`"))),
        }
    }
}

/// Centroid payloads must carry at least one cluster and exactly as many as
/// the stored spec says; a truncated artifact would otherwise load into a
/// model that "predicts" out-of-range cluster ids.
fn check_cluster_count(k: usize, spec_k: usize) -> Result<(), SerdeError> {
    if k == 0 {
        return Err(SerdeError(
            "centroid payload holds zero clusters".to_owned(),
        ));
    }
    if k != spec_k {
        return Err(SerdeError(format!(
            "centroid payload holds {k} clusters but the spec says k={spec_k}"
        )));
    }
    Ok(())
}

/// Payloads carry the schema and the modes independently; reject artifacts
/// whose arities disagree instead of misindexing rows downstream.
fn check_mode_arity(schema: &Schema, modes: &Modes) -> Result<(), SerdeError> {
    if modes.n_attrs() != schema.n_attrs() {
        return Err(SerdeError(format!(
            "modes carry {} attributes but the schema declares {}",
            modes.n_attrs(),
            schema.n_attrs()
        )));
    }
    Ok(())
}

fn field_of<T: Deserialize>(body: &Value, key: &str) -> Result<T, SerdeError> {
    let entries = body
        .as_object()
        .ok_or_else(|| SerdeError::expected("object", "FittedModel payload"))?;
    serde::field(entries, key, "FittedModel payload")
}

/// An input modality [`FittedModel::predict`] can serve. Implemented for
/// `&Dataset` (categorical), `&NumericDataset`, and `&MixedDataset`.
pub trait PredictInput {
    /// Assigns every item of this input under `model`.
    fn predict_with(self, model: &FittedModel) -> Result<Vec<ClusterId>, ModelError>;
}

impl PredictInput for &Dataset {
    fn predict_with(self, model: &FittedModel) -> Result<Vec<ClusterId>, ModelError> {
        let server = model.categorical_server("categorical")?;
        check_shape("attributes", server.schema.n_attrs(), self.n_attrs())?;
        check_encoding(&server.schema, self.schema())?;
        Ok(chunked_map(
            self.n_items(),
            model.spec.threads,
            || server.scratch(),
            |item, scratch| server.predict_row(self.row(item as usize), scratch),
        ))
    }
}

impl PredictInput for &NumericDataset {
    fn predict_with(self, model: &FittedModel) -> Result<Vec<ClusterId>, ModelError> {
        let ModelKind::Numeric(server) = &model.kind else {
            return Err(ModelError::WrongModality {
                expected: model.modality(),
                got: "numeric",
            });
        };
        check_shape("dimensions", server.dim, self.dim())?;
        Ok(chunked_map(
            self.n_items(),
            model.spec.threads,
            || server.scratch(),
            |item, scratch| server.predict_point(self.row(item as usize), scratch),
        ))
    }
}

impl PredictInput for &MixedDataset<'_> {
    fn predict_with(self, model: &FittedModel) -> Result<Vec<ClusterId>, ModelError> {
        let ModelKind::Mixed(server) = &model.kind else {
            return Err(ModelError::WrongModality {
                expected: model.modality(),
                got: "mixed",
            });
        };
        check_shape(
            "attributes",
            server.cat.schema.n_attrs(),
            self.categorical.n_attrs(),
        )?;
        check_encoding(&server.cat.schema, self.categorical.schema())?;
        check_shape("dimensions", server.num.dim, self.numeric.dim())?;
        Ok(chunked_map(
            self.n_items(),
            model.spec.threads,
            || server.scratch(),
            |item, scratch| {
                server.predict_row(
                    self.categorical.row(item as usize),
                    self.numeric.row(item as usize),
                    scratch,
                )
            },
        ))
    }
}
