//! The LSH index of Algorithm 2.
//!
//! The index is built **once** after the initial assignment pass: every item
//! is MinHashed, its signature is split into bands, and the item id is
//! appended to one bucket per band. Each bucket entry carries (indirectly) a
//! *cluster reference* — here a flat `cluster_of: Vec<ClusterId>` array — so
//! that a query can turn colliding items into a shortlist of candidate
//! clusters. Moving an item between clusters is the O(1)
//! [`LshIndex::set_cluster`] store the paper highlights ("a fast operation as
//! we merely update the item's cluster that is stored via a reference").
//!
//! Because signatures never change, an item's colliding-item set is static;
//! [`QueryMode::Precomputed`] materialises it per item (CSR layout) at build
//! time, while [`QueryMode::ScanBuckets`] re-scans the buckets on every query
//! exactly as the paper's Algorithm 2 describes. Both return identical
//! shortlists; the ablation bench `bench_index` compares them.

use crate::banding::Banding;
use crate::hashfn::{FastMap, MixHashFamily};
use crate::signature::SignatureGenerator;
use lshclust_categorical::{ClusterId, Dataset, PresentElements, Schema, ValueId};

/// How shortlist queries locate colliding items.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Walk the item's `b` buckets on every query (paper-faithful).
    #[default]
    ScanBuckets,
    /// Use a per-item candidate list precomputed at build time
    /// (memory-for-time trade; identical results).
    Precomputed,
}

serde::impl_serde_unit_enum!(QueryMode {
    ScanBuckets,
    Precomputed
});

/// The serializable construction parameters of an [`LshIndex`]. Hashing is
/// fully deterministic in these three fields, so an index rebuilt from equal
/// parameters over equal rows answers every query identically — which is how
/// saved models (`lshclust::FittedModel`) ship an index as a few bytes of
/// JSON instead of a bucket dump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexParams {
    /// Banding scheme (`b` bands × `r` rows).
    pub banding: Banding,
    /// Hash-family seed.
    pub seed: u64,
    /// Query mode.
    pub mode: QueryMode,
}

serde::impl_serde_struct!(IndexParams {
    banding,
    seed,
    mode
});

/// Configuration for [`LshIndex`] construction.
#[derive(Clone, Debug)]
pub struct LshIndexBuilder {
    banding: Banding,
    seed: u64,
    mode: QueryMode,
}

impl LshIndexBuilder {
    /// Starts a builder for the given banding scheme.
    pub fn new(banding: Banding) -> Self {
        Self {
            banding,
            seed: 0,
            mode: QueryMode::default(),
        }
    }

    /// Sets the hash-family seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the query mode (default [`QueryMode::ScanBuckets`]).
    pub fn mode(mut self, mode: QueryMode) -> Self {
        self.mode = mode;
        self
    }

    /// Restores a builder from serialized [`IndexParams`].
    pub fn from_params(params: IndexParams) -> Self {
        Self {
            banding: params.banding,
            seed: params.seed,
            mode: params.mode,
        }
    }

    /// The builder's parameters in serializable form.
    pub fn params(&self) -> IndexParams {
        IndexParams {
            banding: self.banding,
            seed: self.seed,
            mode: self.mode,
        }
    }

    /// Hashes every item of `dataset` and builds the index. `initial`
    /// supplies the cluster reference stored for each item (Algorithm 2
    /// stores "a reference to the cluster that the item has been assigned to
    /// by K-Modes").
    pub fn build(&self, dataset: &Dataset, initial: &[ClusterId]) -> LshIndex {
        self.build_rows(dataset.schema(), dataset.rows(), initial)
    }

    /// Like [`Self::build`], but over raw value rows under an explicit
    /// schema — the constructor serving paths use to index things that are
    /// not a `Dataset` (most importantly, a trained model's *centroids*).
    pub fn build_rows<'r>(
        &self,
        schema: &Schema,
        rows: impl IntoIterator<Item = &'r [ValueId]>,
        initial: &[ClusterId],
    ) -> LshIndex {
        let banding = self.banding;
        let n_bands = banding.bands() as usize;

        let family = MixHashFamily::new(banding.signature_len(), self.seed);
        let generator = SignatureGenerator::new(family);

        // Pass 1: signatures → band keys (flattened item-major). Dataset
        // rows come from an exact-size iterator, so the hint preallocates
        // the full buffer on the fit path.
        let rows = rows.into_iter();
        let mut band_keys = Vec::with_capacity(rows.size_hint().0.saturating_mul(n_bands));
        let mut sig = Vec::with_capacity(banding.signature_len());
        let mut keys = Vec::with_capacity(n_bands);
        for row in rows {
            generator.signature_into(PresentElements::new(schema, row), &mut sig);
            banding.band_keys_into(&sig, &mut keys);
            band_keys.extend_from_slice(&keys);
        }
        self.build_from_band_keys(band_keys, initial)
    }

    /// Builds the index from **precomputed** item band keys (item-major,
    /// `n_items × bands`, hashed with this builder's banding and seed — see
    /// `SignatureGenerator`/`Banding::band_keys_into`). This is the bucket
    /// fill of [`Self::build_rows`] on its own: callers that can hash items
    /// in parallel (the setup phase of `lshclust_core::parallel`) compute
    /// the keys themselves and feed them here, and because the bucket fill
    /// walks items in ascending order either way, the resulting index is
    /// **byte-identical** to a serial [`Self::build_rows`] over the same
    /// rows.
    pub fn build_from_band_keys(&self, band_keys: Vec<u64>, initial: &[ClusterId]) -> LshIndex {
        let banding = self.banding;
        let n_bands = banding.bands() as usize;
        assert!(
            band_keys.len().is_multiple_of(n_bands.max(1)),
            "band-key buffer is not item-major n_items × bands"
        );
        let n_items = band_keys.len() / n_bands.max(1);
        assert_eq!(
            initial.len(),
            n_items,
            "one initial cluster per item required"
        );

        // Pass 2: fill one bucket map per band.
        let mut buckets: Vec<FastMap<u64, Vec<u32>>> =
            (0..n_bands).map(|_| FastMap::default()).collect();
        for item in 0..n_items {
            for (band, map) in buckets.iter_mut().enumerate() {
                let key = band_keys[item * n_bands + band];
                map.entry(key).or_default().push(item as u32);
            }
        }

        let mut index = LshIndex {
            banding,
            band_keys,
            buckets,
            cluster_of: initial.to_vec(),
            candidates: None,
            candidate_offsets: None,
        };
        if self.mode == QueryMode::Precomputed {
            index.precompute_candidates();
        }
        index
    }

    /// Builds a **centroid index**: each row is one centroid, indexed under
    /// its own [`ClusterId`] (row `i` → cluster `i`). A shortlist query then
    /// returns exactly the candidate clusters whose centroids collide with
    /// the query — the frozen serving structure of a trained model.
    pub fn build_centroids<'r>(
        &self,
        schema: &Schema,
        centroids: impl IntoIterator<Item = &'r [ValueId]>,
        k: usize,
    ) -> LshIndex {
        let identity: Vec<ClusterId> = (0..k as u32).map(ClusterId).collect();
        self.build_rows(schema, centroids, &identity)
    }
}

/// The MinHash/LSH index with per-item cluster references.
#[derive(Clone)]
pub struct LshIndex {
    banding: Banding,
    /// `n_items × b` band keys, item-major.
    band_keys: Vec<u64>,
    /// One bucket map per band: band key → colliding item ids.
    buckets: Vec<FastMap<u64, Vec<u32>>>,
    /// Current cluster reference per item (mutated by [`Self::set_cluster`]).
    cluster_of: Vec<ClusterId>,
    /// CSR candidate lists when [`QueryMode::Precomputed`] is active.
    candidates: Option<Vec<u32>>,
    candidate_offsets: Option<Vec<usize>>,
}

impl LshIndex {
    /// The banding scheme the index was built with.
    pub fn banding(&self) -> Banding {
        self.banding
    }

    /// The flat item-major band-key buffer (`n_items × bands`) the index was
    /// built from. This **is** the index's serialized form: feeding the
    /// buffer back through [`LshIndexBuilder::build_from_band_keys`] refills
    /// the buckets byte-identically without re-hashing a single row — the
    /// copy-instead-of-hash load path of `lshclust`'s v2 binary model
    /// envelope.
    pub fn band_keys(&self) -> &[u64] {
        &self.band_keys
    }

    /// Number of indexed items.
    pub fn n_items(&self) -> usize {
        self.cluster_of.len()
    }

    /// Current cluster reference of `item`.
    #[inline]
    pub fn cluster_of(&self, item: u32) -> ClusterId {
        self.cluster_of[item as usize]
    }

    /// Updates the cluster reference of `item` — the paper's O(1) index
    /// maintenance after a move.
    #[inline]
    pub fn set_cluster(&mut self, item: u32, cluster: ClusterId) {
        self.cluster_of[item as usize] = cluster;
    }

    /// Overwrites all cluster references at once (used after a fresh batch
    /// assignment pass).
    pub fn set_all_clusters(&mut self, clusters: &[ClusterId]) {
        assert_eq!(clusters.len(), self.cluster_of.len());
        self.cluster_of.copy_from_slice(clusters);
    }

    /// Whether candidate lists are precomputed.
    pub fn is_precomputed(&self) -> bool {
        self.candidates.is_some()
    }

    /// Materialises per-item candidate lists (switches to
    /// [`QueryMode::Precomputed`] behaviour).
    pub fn precompute_candidates(&mut self) {
        if self.candidates.is_some() {
            return;
        }
        let n_items = self.n_items();
        let mut scratch = ItemScratch::new(n_items);
        let mut flat = Vec::new();
        let mut offsets = Vec::with_capacity(n_items + 1);
        offsets.push(0usize);
        for item in 0..n_items as u32 {
            scratch.begin();
            self.for_each_colliding_item_scan(item, |other| {
                if scratch.mark(other) {
                    flat.push(other);
                }
            });
            offsets.push(flat.len());
        }
        flat.shrink_to_fit();
        self.candidates = Some(flat);
        self.candidate_offsets = Some(offsets);
    }

    /// Calls `f` for every item sharing at least one band bucket with `item`
    /// (including `item` itself, possibly multiple times in scan mode).
    #[inline]
    fn for_each_colliding_item_scan<F: FnMut(u32)>(&self, item: u32, mut f: F) {
        let n_bands = self.banding.bands() as usize;
        let keys = &self.band_keys[item as usize * n_bands..(item as usize + 1) * n_bands];
        for (band, key) in keys.iter().enumerate() {
            if let Some(members) = self.buckets[band].get(key) {
                for &other in members {
                    f(other);
                }
            }
        }
    }

    /// Calls `f` exactly once per distinct colliding item.
    pub fn for_each_candidate_item<F: FnMut(u32)>(
        &self,
        item: u32,
        scratch: &mut ItemScratch,
        mut f: F,
    ) {
        if let (Some(flat), Some(offsets)) = (&self.candidates, &self.candidate_offsets) {
            let range = offsets[item as usize]..offsets[item as usize + 1];
            for &other in &flat[range] {
                f(other);
            }
        } else {
            scratch.begin();
            self.for_each_colliding_item_scan(item, |other| {
                if scratch.mark(other) {
                    f(other);
                }
            });
        }
    }

    /// Builds the candidate-cluster shortlist for `item` (Algorithm 2 lines
    /// 10–12): the set of clusters currently containing any colliding item.
    ///
    /// The result is appended to `shortlist.clusters` (cleared first). Since
    /// `item` collides with itself, its current cluster is always present —
    /// unless `exclude_self` is set (used by the error-bound experiments to
    /// measure how much work self-collision does).
    pub fn shortlist(&self, item: u32, scratch: &mut ShortlistScratch, exclude_self: bool) {
        scratch.clusters.clear();
        scratch.items.begin();
        scratch.begin_clusters();
        if let (Some(flat), Some(offsets)) = (&self.candidates, &self.candidate_offsets) {
            let range = offsets[item as usize]..offsets[item as usize + 1];
            for &other in &flat[range] {
                if exclude_self && other == item {
                    continue;
                }
                let c = self.cluster_of[other as usize];
                if scratch.mark_cluster(c) {
                    scratch.clusters.push(c);
                }
            }
        } else {
            // Scan mode dedups items on the fly; clusters are deduped by the
            // cluster stamp regardless.
            self.for_each_colliding_item_scan(item, |other| {
                if exclude_self && other == item {
                    return;
                }
                if scratch.items.mark(other) {
                    let c = self.cluster_of[other as usize];
                    if scratch.mark_cluster(c) {
                        scratch.clusters.push(c);
                    }
                }
            });
        }
    }

    /// Builds the candidate-cluster shortlist for an **external query** whose
    /// band keys were computed by the caller (same banding, same hash
    /// family). This is the serving-time entry point: unseen items are
    /// MinHashed outside the index and probed against the frozen buckets.
    ///
    /// The result lands in `scratch.clusters` (cleared first), exactly as
    /// with [`Self::shortlist`].
    pub fn shortlist_for_band_keys(&self, band_keys: &[u64], scratch: &mut ShortlistScratch) {
        assert_eq!(
            band_keys.len(),
            self.banding.bands() as usize,
            "query band keys disagree with the index banding"
        );
        scratch.clusters.clear();
        scratch.items.begin();
        scratch.begin_clusters();
        for (band, key) in band_keys.iter().enumerate() {
            if let Some(members) = self.buckets[band].get(key) {
                for &other in members {
                    if scratch.items.mark(other) {
                        let c = self.cluster_of[other as usize];
                        if scratch.mark_cluster(c) {
                            scratch.clusters.push(c);
                        }
                    }
                }
            }
        }
    }

    /// Number of distinct candidate items for `item` (diagnostics).
    pub fn candidate_count(&self, item: u32, scratch: &mut ItemScratch) -> usize {
        let mut n = 0;
        self.for_each_candidate_item(item, scratch, |_| n += 1);
        n
    }

    /// Calls `f` once per bucket: `(band, band key, member item ids)`.
    /// Members appear in ascending item order (the fill order); the bucket
    /// order within a band is unspecified. This is the raw view shard
    /// workers digest into per-key cluster sets (`lshclust_core::shard`).
    pub fn for_each_bucket<F: FnMut(usize, u64, &[u32])>(&self, mut f: F) {
        for (band, map) in self.buckets.iter().enumerate() {
            for (&key, members) in map {
                f(band, key, members);
            }
        }
    }

    /// Index-level statistics for diagnostics and EXPERIMENTS.md.
    pub fn stats(&self) -> IndexStats {
        let mut n_buckets = 0usize;
        let mut largest = 0usize;
        let mut total_entries = 0usize;
        for map in &self.buckets {
            n_buckets += map.len();
            for v in map.values() {
                largest = largest.max(v.len());
                total_entries += v.len();
            }
        }
        IndexStats {
            n_items: self.n_items(),
            n_bands: self.banding.bands(),
            n_buckets,
            total_entries,
            largest_bucket: largest,
        }
    }

    /// Creates a cluster-shortlist scratch sized for `n_clusters` clusters.
    pub fn make_scratch(&self, n_clusters: usize) -> ShortlistScratch {
        ShortlistScratch::new(self.n_items(), n_clusters)
    }
}

/// Bucket-level statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexStats {
    /// Items indexed.
    pub n_items: usize,
    /// Bands in the scheme.
    pub n_bands: u32,
    /// Total non-empty buckets across all bands.
    pub n_buckets: usize,
    /// Total bucket entries (= items × bands).
    pub total_entries: usize,
    /// Size of the largest bucket.
    pub largest_bucket: usize,
}

serde::impl_serde_struct!(IndexStats {
    n_items,
    n_bands,
    n_buckets,
    total_entries,
    largest_bucket
});

/// Generation-stamped "seen items" set; O(1) reset between queries.
pub struct ItemScratch {
    stamps: Vec<u32>,
    generation: u32,
}

impl ItemScratch {
    /// Creates scratch space for `n_items` items.
    pub fn new(n_items: usize) -> Self {
        Self {
            stamps: vec![0; n_items],
            generation: 0,
        }
    }

    /// Starts a new query (invalidates previous marks).
    #[inline]
    pub fn begin(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Extremely rare wrap-around: hard reset to stay sound.
            self.stamps.fill(0);
            self.generation = 1;
        }
    }

    /// Marks `item`; returns `true` iff it was not yet marked this query.
    #[inline]
    pub fn mark(&mut self, item: u32) -> bool {
        let slot = &mut self.stamps[item as usize];
        if *slot == self.generation {
            false
        } else {
            *slot = self.generation;
            true
        }
    }
}

/// Scratch space for shortlist queries: item marks, cluster marks and the
/// output shortlist buffer.
pub struct ShortlistScratch {
    items: ItemScratch,
    cluster_stamps: Vec<u32>,
    cluster_generation: u32,
    /// The shortlist produced by the latest [`LshIndex::shortlist`] call.
    pub clusters: Vec<ClusterId>,
}

impl ShortlistScratch {
    /// Creates scratch for `n_items` items and `n_clusters` clusters.
    pub fn new(n_items: usize, n_clusters: usize) -> Self {
        Self {
            items: ItemScratch::new(n_items),
            cluster_stamps: vec![0; n_clusters],
            cluster_generation: 0,
            clusters: Vec::new(),
        }
    }

    #[inline]
    fn begin_clusters(&mut self) {
        self.cluster_generation = self.cluster_generation.wrapping_add(1);
        if self.cluster_generation == 0 {
            self.cluster_stamps.fill(0);
            self.cluster_generation = 1;
        }
    }

    #[inline]
    fn mark_cluster(&mut self, c: ClusterId) -> bool {
        let slot = &mut self.cluster_stamps[c.idx()];
        if *slot == self.cluster_generation {
            false
        } else {
            *slot = self.cluster_generation;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;

    /// Three near-duplicate items and one far item.
    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::anonymous(8);
        b.push_str_row(&["a", "b", "c", "d", "e", "f", "g", "h"], None)
            .unwrap();
        b.push_str_row(&["a", "b", "c", "d", "e", "f", "g", "X"], None)
            .unwrap();
        b.push_str_row(&["a", "b", "c", "d", "e", "f", "Y", "h"], None)
            .unwrap();
        b.push_str_row(&["p", "q", "r", "s", "t", "u", "v", "w"], None)
            .unwrap();
        b.finish()
    }

    fn clusters(xs: &[u32]) -> Vec<ClusterId> {
        xs.iter().map(|&x| ClusterId(x)).collect()
    }

    fn build(mode: QueryMode) -> LshIndex {
        LshIndexBuilder::new(Banding::new(16, 2))
            .seed(7)
            .mode(mode)
            .build(&dataset(), &clusters(&[0, 1, 2, 3]))
    }

    #[test]
    fn self_cluster_always_in_shortlist() {
        let index = build(QueryMode::ScanBuckets);
        let mut scratch = index.make_scratch(4);
        for item in 0..4 {
            index.shortlist(item, &mut scratch, false);
            assert!(
                scratch.clusters.contains(&index.cluster_of(item)),
                "item {item} shortlist {:?} misses own cluster",
                scratch.clusters
            );
        }
    }

    #[test]
    fn similar_items_shortlist_each_other() {
        let index = build(QueryMode::ScanBuckets);
        let mut scratch = index.make_scratch(4);
        index.shortlist(0, &mut scratch, false);
        // Items 1 and 2 are 7/8 identical to item 0 → Jaccard ≈ 0.78; with
        // 16 bands of 2 rows P[collide] ≈ 1 − (1 − 0.6)^16 ≈ 1.
        assert!(scratch.clusters.contains(&ClusterId(1)));
        assert!(scratch.clusters.contains(&ClusterId(2)));
    }

    #[test]
    fn dissimilar_item_rarely_shortlisted() {
        let index = build(QueryMode::ScanBuckets);
        let mut scratch = index.make_scratch(4);
        index.shortlist(0, &mut scratch, false);
        assert!(
            !scratch.clusters.contains(&ClusterId(3)),
            "disjoint item collided: {:?}",
            scratch.clusters
        );
    }

    #[test]
    fn precomputed_and_scan_agree() {
        let scan = build(QueryMode::ScanBuckets);
        let pre = build(QueryMode::Precomputed);
        assert!(pre.is_precomputed());
        let mut s1 = scan.make_scratch(4);
        let mut s2 = pre.make_scratch(4);
        for item in 0..4 {
            scan.shortlist(item, &mut s1, false);
            pre.shortlist(item, &mut s2, false);
            let mut a = s1.clusters.clone();
            let mut b = s2.clusters.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "modes disagree on item {item}");
        }
    }

    #[test]
    fn exclude_self_drops_own_cluster_for_isolated_item() {
        let index = build(QueryMode::ScanBuckets);
        let mut scratch = index.make_scratch(4);
        // Item 3 collides with nothing else.
        index.shortlist(3, &mut scratch, true);
        assert!(scratch.clusters.is_empty(), "got {:?}", scratch.clusters);
    }

    #[test]
    fn set_cluster_updates_shortlists() {
        let mut index = build(QueryMode::ScanBuckets);
        let mut scratch = index.make_scratch(5);
        index.set_cluster(1, ClusterId(4));
        assert_eq!(index.cluster_of(1), ClusterId(4));
        index.shortlist(0, &mut scratch, false);
        assert!(scratch.clusters.contains(&ClusterId(4)));
        assert!(!scratch.clusters.contains(&ClusterId(1)));
    }

    #[test]
    fn set_all_clusters_replaces_references() {
        let mut index = build(QueryMode::ScanBuckets);
        index.set_all_clusters(&clusters(&[9, 9, 9, 9]));
        let mut scratch = index.make_scratch(10);
        index.shortlist(0, &mut scratch, false);
        assert_eq!(scratch.clusters, vec![ClusterId(9)]);
    }

    #[test]
    fn shortlist_has_no_duplicates() {
        // Items in the same cluster collide in many bands; the cluster must
        // still appear once.
        let index = LshIndexBuilder::new(Banding::new(16, 2))
            .seed(7)
            .build(&dataset(), &clusters(&[0, 0, 0, 0]));
        let mut scratch = index.make_scratch(1);
        index.shortlist(0, &mut scratch, false);
        assert_eq!(scratch.clusters, vec![ClusterId(0)]);
    }

    #[test]
    fn candidate_count_includes_self() {
        let index = build(QueryMode::ScanBuckets);
        let mut scratch = ItemScratch::new(4);
        let n = index.candidate_count(3, &mut scratch);
        assert_eq!(n, 1); // only itself
        assert!(index.candidate_count(0, &mut scratch) >= 3);
    }

    #[test]
    fn stats_account_for_all_entries() {
        let index = build(QueryMode::ScanBuckets);
        let stats = index.stats();
        assert_eq!(stats.n_items, 4);
        assert_eq!(stats.n_bands, 16);
        assert_eq!(stats.total_entries, 4 * 16);
        assert!(stats.largest_bucket >= 1);
        assert!(stats.n_buckets <= stats.total_entries);
    }

    #[test]
    fn external_band_keys_reproduce_internal_shortlists() {
        // Hash item 0's row externally (same schema, seed, banding) and probe
        // with shortlist_for_band_keys: the shortlist must match the
        // by-item-id query exactly.
        use crate::hashfn::MixHashFamily;
        use crate::signature::SignatureGenerator;
        let ds = dataset();
        let banding = Banding::new(16, 2);
        let index = LshIndexBuilder::new(banding)
            .seed(7)
            .build(&ds, &clusters(&[0, 1, 2, 3]));
        let generator = SignatureGenerator::new(MixHashFamily::new(banding.signature_len(), 7));
        let mut s1 = index.make_scratch(4);
        let mut s2 = index.make_scratch(4);
        for item in 0..4usize {
            let sig = generator.signature(PresentElements::of_item(&ds, item));
            let keys = banding.band_keys(&sig);
            index.shortlist_for_band_keys(&keys, &mut s1);
            index.shortlist(item as u32, &mut s2, false);
            let (mut a, mut b) = (s1.clusters.clone(), s2.clusters.clone());
            a.sort();
            b.sort();
            assert_eq!(a, b, "item {item}");
        }
    }

    #[test]
    fn build_from_band_keys_is_byte_identical_to_build_rows() {
        use crate::hashfn::MixHashFamily;
        use crate::signature::SignatureGenerator;
        let ds = dataset();
        let banding = Banding::new(12, 2);
        let initial = clusters(&[0, 1, 2, 3]);
        let builder = LshIndexBuilder::new(banding).seed(5);
        let serial = builder.build(&ds, &initial);
        // Hash externally (any order/parallelism would do — keys are
        // per-item) and feed the bucket fill directly.
        let generator = SignatureGenerator::new(MixHashFamily::new(banding.signature_len(), 5));
        let mut band_keys = Vec::new();
        for item in 0..ds.n_items() {
            let sig = generator.signature(PresentElements::of_item(&ds, item));
            band_keys.extend_from_slice(&banding.band_keys(&sig));
        }
        let fed = builder.build_from_band_keys(band_keys, &initial);
        assert_eq!(fed.band_keys, serial.band_keys);
        assert_eq!(fed.stats(), serial.stats());
        let mut s1 = serial.make_scratch(4);
        let mut s2 = fed.make_scratch(4);
        for item in 0..4u32 {
            serial.shortlist(item, &mut s1, false);
            fed.shortlist(item, &mut s2, false);
            assert_eq!(s1.clusters, s2.clusters, "item {item}");
        }
    }

    #[test]
    fn centroid_index_shortlists_identity_clusters() {
        let ds = dataset();
        let index = LshIndexBuilder::new(Banding::new(16, 2))
            .seed(7)
            .build_centroids(ds.schema(), ds.rows(), ds.n_items());
        for item in 0..4u32 {
            assert_eq!(index.cluster_of(item), ClusterId(item));
        }
        let mut scratch = index.make_scratch(4);
        index.shortlist(0, &mut scratch, false);
        assert!(scratch.clusters.contains(&ClusterId(0)));
        assert!(scratch.clusters.contains(&ClusterId(1)));
    }

    #[test]
    fn index_params_round_trip_rebuilds_identically() {
        let ds = dataset();
        let builder = LshIndexBuilder::new(Banding::new(8, 2))
            .seed(99)
            .mode(QueryMode::Precomputed);
        let json = serde_json::to_string(&builder.params()).unwrap();
        let params: IndexParams = serde_json::from_str(&json).unwrap();
        let a = builder.build(&ds, &clusters(&[0, 1, 2, 3]));
        let b = LshIndexBuilder::from_params(params).build(&ds, &clusters(&[0, 1, 2, 3]));
        let mut s1 = a.make_scratch(4);
        let mut s2 = b.make_scratch(4);
        for item in 0..4u32 {
            a.shortlist(item, &mut s1, false);
            b.shortlist(item, &mut s2, false);
            assert_eq!(s1.clusters, s2.clusters);
        }
    }

    #[test]
    fn item_scratch_generation_reset() {
        let mut s = ItemScratch::new(3);
        s.begin();
        assert!(s.mark(1));
        assert!(!s.mark(1));
        s.begin();
        assert!(s.mark(1), "mark must reset across generations");
    }

    #[test]
    fn empty_dataset_index() {
        let b = DatasetBuilder::anonymous(2);
        let ds = b.finish();
        let index = LshIndexBuilder::new(Banding::new(4, 1)).build(&ds, &[]);
        assert_eq!(index.n_items(), 0);
        assert_eq!(index.stats().total_entries, 0);
    }

    #[test]
    fn builder_rejects_wrong_initial_length() {
        let ds = dataset();
        let result = std::panic::catch_unwind(|| {
            LshIndexBuilder::new(Banding::new(2, 1)).build(&ds, &clusters(&[0]))
        });
        assert!(result.is_err());
    }
}
