//! End-to-end bench: full K-Modes vs MH-K-Modes runs on a miniature of the
//! paper's Fig. 2 dataset, plus ablations (batch vs online updates,
//! serial vs parallel assignment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lshclust_bench::scale::{Settings, SHAPE_FIG2};
use lshclust_bench::synthetic::dataset_for;
use lshclust_core::mhkmodes::{MhKModes, MhKModesConfig};
use lshclust_kmodes::{KModes, KModesConfig, UpdateRule};
use lshclust_minhash::Banding;
use std::hint::black_box;

fn bench_clustering(c: &mut Criterion) {
    let settings = Settings {
        scale: 0.005,
        seed: 42,
        out_dir: None,
    };
    let shape = SHAPE_FIG2.scaled(settings.scale); // 450 items, 100 clusters
    let dataset = dataset_for(shape, &settings);
    let k = shape.n_clusters;

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    group.bench_function("kmodes_full", |b| {
        b.iter(|| {
            black_box(KModes::new(KModesConfig::new(k).seed(42).max_iterations(20)).fit(&dataset))
                .summary
                .n_iterations()
        });
    });

    for label in ["1b1r", "20b2r", "20b5r", "50b5r"] {
        let banding = lshclust_bench::scale::banding_by_label(label).unwrap();
        group.bench_with_input(
            BenchmarkId::new("mh_kmodes", label),
            &banding,
            |b, &banding| {
                b.iter(|| {
                    black_box(
                        MhKModes::new(MhKModesConfig::new(k, banding).seed(42).max_iterations(20))
                            .fit(&dataset),
                    )
                    .summary
                    .n_iterations()
                });
            },
        );
    }

    // Ablation: online (Huang) vs batch (Lloyd) mode updates, baseline side.
    group.bench_function("kmodes_online_updates", |b| {
        b.iter(|| {
            black_box(
                KModes::new(
                    KModesConfig::new(k)
                        .seed(42)
                        .max_iterations(20)
                        .update(UpdateRule::Online),
                )
                .fit(&dataset),
            )
            .summary
            .n_iterations()
        });
    });

    // Ablation: parallel assignment (2 threads).
    group.bench_function("mh_kmodes_20b5r_2threads", |b| {
        b.iter(|| {
            black_box(
                MhKModes::new(
                    MhKModesConfig::new(k, Banding::new(20, 5))
                        .seed(42)
                        .max_iterations(20)
                        .threads(2),
                )
                .fit(&dataset),
            )
            .summary
            .n_iterations()
        });
    });

    // Extension: streaming insert throughput (per 450-item stream).
    group.bench_function("streaming_one_pass", |b| {
        use lshclust_core::streaming::{StreamingConfig, StreamingMhKModes};
        let mut config = StreamingConfig::new(Banding::new(16, 2), dataset.n_attrs());
        config.distance_threshold = (dataset.n_attrs() as u32) * 7 / 10;
        b.iter(|| {
            let mut s = StreamingMhKModes::new(config.clone(), dataset.schema().clone());
            for i in 0..dataset.n_items() {
                s.insert(dataset.row(i));
            }
            black_box(s.n_clusters())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
