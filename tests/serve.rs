//! Concurrent-serving contract of `lshclust::serve::ModelServer`:
//!
//! * **determinism** — coalesced, multi-caller serving returns byte-identical
//!   assignments to the serial `FittedModel::predict` path, for all three
//!   modalities and any batching the queue happens to form;
//! * **hot reload** — the model swaps without dropping in-flight requests,
//!   generations are monotone in serving order, and post-reload answers come
//!   from the new model;
//! * **lifecycle** — queue-full sheds load with a typed error, shutdown
//!   drains every accepted request, and submits after shutdown fail.

use lshclust::serve::{ModelServer, ServeError, ServerConfig};
use lshclust::{
    ClusterId, ClusterSpec, Clusterer, DatasetBuilder, FittedModel, Lsh, NumericDataset,
};
use lshclust_kmodes::kprototypes::MixedDataset;
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

fn categorical_blobs(groups: usize, per_group: usize, n_attrs: usize) -> lshclust::Dataset {
    let mut b = DatasetBuilder::anonymous(n_attrs);
    for g in 0..groups {
        for i in 0..per_group {
            let row: Vec<String> = (0..n_attrs)
                .map(|a| {
                    if a == n_attrs - 1 {
                        format!("g{g}-n{i}")
                    } else {
                        format!("g{g}-a{a}")
                    }
                })
                .collect();
            let refs: Vec<&str> = row.iter().map(String::as_str).collect();
            b.push_str_row(&refs, Some(g as u32)).unwrap();
        }
    }
    b.finish()
}

fn numeric_blobs(groups: usize, per_group: usize, dim: usize) -> NumericDataset {
    let mut data = Vec::new();
    for g in 0..groups {
        for i in 0..per_group {
            for d in 0..dim {
                let jitter = ((i * 7 + d * 3) as f64 * 0.31).sin() * 0.2;
                data.push(g as f64 * 12.0 + jitter);
            }
        }
    }
    NumericDataset::new(dim, data)
}

/// A config that forces real coalescing: one worker, wide batches, a window
/// long enough that concurrent submissions genuinely merge.
fn coalescing_config() -> ServerConfig {
    ServerConfig::default()
        .workers(2)
        .max_batch(8)
        .flush_latency(Duration::from_millis(2))
        .queue_depth(4096)
}

/// Submits every row of `expected`'s index space from `callers` threads and
/// checks each served answer against the serial expectation.
fn assert_concurrent_matches_serial<F>(callers: usize, n: usize, submit_and_check: F)
where
    F: Fn(usize) + Sync,
{
    std::thread::scope(|scope| {
        for caller in 0..callers {
            let submit_and_check = &submit_and_check;
            scope.spawn(move || {
                for i in (caller..n).step_by(callers) {
                    submit_and_check(i);
                }
            });
        }
    });
}

#[test]
fn categorical_serving_is_byte_identical_to_serial_predict() {
    let ds = categorical_blobs(4, 8, 6);
    let spec = ClusterSpec::new(4)
        .lsh(Lsh::MinHash { bands: 10, rows: 2 })
        .seed(5);
    let run = Clusterer::new(spec).fit(&ds).unwrap();
    let expected = run.model.predict(&ds).unwrap();
    let server = ModelServer::start(run.model.clone(), coalescing_config());
    assert_concurrent_matches_serial(4, ds.n_items(), |i| {
        let served = server.predict_row(ds.row(i).to_vec()).unwrap();
        assert_eq!(served.cluster, expected[i], "row {i}");
        assert_eq!(served.generation, 0);
    });
    server.shutdown();
}

#[test]
fn numeric_serving_is_byte_identical_to_serial_predict() {
    let data = numeric_blobs(3, 10, 4);
    let spec = ClusterSpec::new(3)
        .lsh(Lsh::SimHash { bands: 6, rows: 4 })
        .seed(2);
    let run = Clusterer::new(spec).fit(&data).unwrap();
    let expected = run.model.predict(&data).unwrap();
    let server = ModelServer::start(run.model.clone(), coalescing_config());
    assert_concurrent_matches_serial(4, data.n_items(), |i| {
        let served = server.predict_point(data.row(i).to_vec()).unwrap();
        assert_eq!(served.cluster, expected[i], "point {i}");
    });
    server.shutdown();
}

#[test]
fn mixed_serving_is_byte_identical_to_serial_predict() {
    let cat = categorical_blobs(3, 8, 4);
    let num = numeric_blobs(3, 8, 3);
    let data = MixedDataset::new(&cat, &num);
    let spec = ClusterSpec::new(3)
        .lsh(Lsh::Union {
            bands: 10,
            rows: 2,
            sim_bands: 4,
            sim_rows: 8,
        })
        .seed(3);
    let run = Clusterer::new(spec).fit(&data).unwrap();
    let expected = run.model.predict(&data).unwrap();
    let server = ModelServer::start(run.model.clone(), coalescing_config());
    assert_concurrent_matches_serial(3, data.n_items(), |i| {
        let served = server
            .predict_mixed(cat.row(i).to_vec(), num.row(i).to_vec())
            .unwrap();
        assert_eq!(served.cluster, expected[i], "item {i}");
    });
    server.shutdown();
}

#[test]
fn str_mixed_serving_encodes_at_serve_time_and_matches_the_library_call() {
    let cat = categorical_blobs(3, 6, 4);
    let num = numeric_blobs(3, 6, 2);
    let data = MixedDataset::new(&cat, &num);
    let spec = ClusterSpec::new(3)
        .lsh(Lsh::Union {
            bands: 8,
            rows: 2,
            sim_bands: 4,
            sim_rows: 8,
        })
        .seed(7);
    let run = Clusterer::new(spec).fit(&data).unwrap();
    let server = ModelServer::start(run.model.clone(), coalescing_config());
    // Raw strings (incl. an unseen value) + numeric part; the served answer
    // must equal encode-then-predict through the library.
    let rows: [[&str; 4]; 3] = [
        ["g0-a0", "g0-a1", "g0-a2", "unseen"],
        ["g1-a0", "g1-a1", "g1-a2", "g1-n0"],
        ["g2-a0", "g2-a1", "g2-a2", "g2-n3"],
    ];
    for (i, row) in rows.iter().enumerate() {
        let point = num.row(i * 6).to_vec();
        let served = server.predict_str_mixed(row, point.clone()).unwrap();
        let encoded = run.model.encode_row(row).unwrap();
        assert_eq!(
            served.cluster,
            run.model.predict_mixed_one(&encoded, &point).unwrap(),
            "row {i}"
        );
    }
    server.shutdown();
}

#[test]
fn str_row_serving_matches_the_library_call_under_concurrency() {
    let ds = categorical_blobs(3, 6, 5);
    let spec = ClusterSpec::new(3)
        .lsh(Lsh::MinHash { bands: 8, rows: 2 })
        .seed(9);
    let run = Clusterer::new(spec).fit(&ds).unwrap();
    let server = ModelServer::start(run.model.clone(), coalescing_config());
    // Raw strings, including values the training schema never saw.
    let rows: Vec<Vec<String>> = (0..12)
        .map(|i| {
            (0..5)
                .map(|a| {
                    if a == 4 {
                        format!("unseen-{i}")
                    } else {
                        format!("g{}-a{a}", i % 3)
                    }
                })
                .collect()
        })
        .collect();
    assert_concurrent_matches_serial(4, rows.len(), |i| {
        let refs: Vec<&str> = rows[i].iter().map(String::as_str).collect();
        let served = server.predict_str_row(&refs).unwrap();
        assert_eq!(
            served.cluster,
            run.model.predict_str_row(&refs).unwrap(),
            "row {i}"
        );
    });
    server.shutdown();
}

#[test]
fn coalescing_on_and_off_serve_identical_answers() {
    // Same requests through a maximally-coalescing server and a strictly
    // one-row-per-call server: byte-identical clusters either way.
    let ds = categorical_blobs(4, 6, 6);
    let spec = ClusterSpec::new(4)
        .lsh(Lsh::MinHash { bands: 8, rows: 2 })
        .seed(11);
    let run = Clusterer::new(spec).fit(&ds).unwrap();
    let coalesced = ModelServer::start(run.model.clone(), coalescing_config());
    let single = ModelServer::start(
        run.model.clone(),
        ServerConfig::default()
            .workers(1)
            .max_batch(1)
            .flush_latency(Duration::ZERO),
    );
    for i in 0..ds.n_items() {
        let a = coalesced.predict_row(ds.row(i).to_vec()).unwrap();
        let b = single.predict_row(ds.row(i).to_vec()).unwrap();
        assert_eq!(a.cluster, b.cluster, "row {i}");
    }
    coalesced.shutdown();
    single.shutdown();
}

#[test]
fn reload_under_load_keeps_generations_monotone_and_drops_nothing() {
    let ds = categorical_blobs(3, 8, 5);
    let spec = ClusterSpec::new(3)
        .lsh(Lsh::MinHash { bands: 8, rows: 2 })
        .seed(1);
    let v1 = Clusterer::new(spec.clone()).fit(&ds).unwrap();
    let v2 = Clusterer::new(spec.seed(2)).fit(&ds).unwrap();

    // One worker ⇒ batches pop FIFO and each batch snapshots at pop time,
    // so generations are non-decreasing in submission order.
    let server = ModelServer::start(
        v1.model.clone(),
        ServerConfig::default()
            .workers(1)
            .max_batch(4)
            .flush_latency(Duration::from_micros(500))
            .queue_depth(4096),
    );
    let handle = server.handle();
    let rounds = 120;
    let predictions = std::thread::scope(|scope| {
        let caller = scope.spawn(|| {
            let mut tickets = Vec::with_capacity(rounds);
            for i in 0..rounds {
                tickets.push(
                    server
                        .submit_row(ds.row(i % ds.n_items()).to_vec())
                        .unwrap(),
                );
            }
            tickets
                .into_iter()
                .map(|t| t.wait().expect("no request dropped across the reload"))
                .collect::<Vec<_>>()
        });
        std::thread::sleep(Duration::from_millis(1));
        let generation = handle.reload(v2.model.clone());
        assert_eq!(generation, 1);
        caller.join().unwrap()
    });

    assert_eq!(predictions.len(), rounds, "every ticket resolved");
    let mut last = 0u64;
    for (i, p) in predictions.iter().enumerate() {
        assert!(
            p.generation >= last,
            "generation ran backwards at request {i}: {} < {last}",
            p.generation
        );
        last = p.generation;
        // Every answer matches the library predict of the generation that
        // served it — reload swaps models, never mixes them.
        let model = if p.generation == 0 {
            &v1.model
        } else {
            &v2.model
        };
        assert_eq!(
            p.cluster,
            model.predict_one(ds.row(i % ds.n_items())).unwrap(),
            "request {i} (generation {})",
            p.generation
        );
    }
    // A request submitted after the reload must see the new generation.
    let after = server.predict_row(ds.row(0).to_vec()).unwrap();
    assert_eq!(after.generation, 1);
    server.shutdown();
}

#[test]
fn reload_from_json_round_trips_and_rejects_garbage() {
    let ds = categorical_blobs(2, 6, 4);
    let spec = ClusterSpec::new(2)
        .lsh(Lsh::MinHash { bands: 8, rows: 2 })
        .seed(4);
    let run = Clusterer::new(spec).fit(&ds).unwrap();
    let server = ModelServer::start(run.model.clone(), ServerConfig::default());
    let handle = server.handle();
    // A bad envelope must not swap anything.
    assert!(handle.reload_from_json("{\"format\":\"nope\"}").is_err());
    assert_eq!(server.generation(), 0);
    // The model's own envelope reloads cleanly.
    assert_eq!(handle.reload_from_json(&run.model.to_json()).unwrap(), 1);
    let served = server.predict_row(ds.row(0).to_vec()).unwrap();
    assert_eq!(served.generation, 1);
    assert_eq!(served.cluster, run.assignments[0]);
    server.shutdown();
}

#[test]
fn queue_full_sheds_load_with_a_typed_error() {
    let ds = categorical_blobs(2, 4, 4);
    let run = Clusterer::new(ClusterSpec::new(2).lsh(Lsh::MinHash { bands: 4, rows: 2 }))
        .fit(&ds)
        .unwrap();
    // depth 4, one worker whose coalescing window (max_batch above the
    // depth, long flush) leaves items *in* the queue while it waits — so
    // filling the queue within the window is deterministic.
    let server = ModelServer::start(
        run.model.clone(),
        ServerConfig::default()
            .workers(1)
            .max_batch(64)
            .flush_latency(Duration::from_millis(500))
            .queue_depth(4),
    );
    let mut tickets = Vec::new();
    let mut shed = 0usize;
    for i in 0..32 {
        match server.submit_row(ds.row(i % ds.n_items()).to_vec()) {
            Ok(t) => tickets.push(t),
            Err(ServeError::QueueFull) => shed += 1,
            Err(other) => panic!("expected QueueFull, got {other:?}"),
        }
    }
    assert!(shed > 0, "an overfilled bounded queue must shed load");
    assert!(tickets.len() >= 4, "the queue accepted up to its depth");
    // Every accepted request still resolves.
    for t in tickets {
        t.wait().expect("accepted requests are served");
    }
    server.shutdown();
}

#[test]
fn shutdown_drains_accepted_requests_then_rejects_new_ones() {
    let ds = categorical_blobs(3, 5, 5);
    let spec = ClusterSpec::new(3)
        .lsh(Lsh::MinHash { bands: 8, rows: 2 })
        .seed(6);
    let run = Clusterer::new(spec).fit(&ds).unwrap();
    let server = ModelServer::start(
        run.model.clone(),
        ServerConfig::default()
            .workers(1)
            .max_batch(4)
            .flush_latency(Duration::from_millis(20))
            .queue_depth(256),
    );
    let tickets: Vec<_> = (0..ds.n_items())
        .map(|i| server.submit_row(ds.row(i).to_vec()).unwrap())
        .collect();
    let handle = server.handle();
    server.shutdown();
    // Drained: every pre-shutdown ticket resolves with the right answer.
    for (i, t) in tickets.into_iter().enumerate() {
        let served = t.wait().expect("shutdown drains the queue");
        assert_eq!(served.cluster, run.model.predict_one(ds.row(i)).unwrap());
    }
    // The handle outlives the server, but the server itself is gone; a new
    // server on the same handle-model still works (models are plain data).
    let revived = ModelServer::start((*handle.model()).clone(), ServerConfig::default());
    let again = revived.predict_row(ds.row(0).to_vec()).unwrap();
    assert_eq!(again.cluster, run.model.predict_one(ds.row(0)).unwrap());
    revived.shutdown();
}

#[test]
fn submits_after_shutdown_fail_with_shutdown_error() {
    // `shutdown` consumes the server, so "submit after shutdown" is only
    // reachable through a clone of the intake side — model the daemon case:
    // the queue closes while a caller still holds the server reference.
    let ds = categorical_blobs(2, 4, 4);
    let run = Clusterer::new(ClusterSpec::new(2).lsh(Lsh::MinHash { bands: 4, rows: 2 }))
        .fit(&ds)
        .unwrap();
    let server = ModelServer::start(run.model.clone(), ServerConfig::default());
    std::thread::scope(|scope| {
        let server_ref = &server;
        let row = ds.row(0).to_vec();
        scope.spawn(move || {
            // Wait until the main thread has closed intake.
            loop {
                match server_ref.submit_row(row.clone()) {
                    Err(ServeError::ShutDown) => break,
                    Ok(ticket) => {
                        let _ = ticket.wait();
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(other) => panic!("unexpected {other:?}"),
                }
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        server.close_intake();
    });
    server.shutdown();
}

#[test]
fn set_threads_zero_clamps_to_one_like_every_other_boundary() {
    // The spec-boundary rule (`threads(0)` ⇒ serial) must hold at serve
    // time too: a zero override may not reach `chunked_map`.
    let ds = categorical_blobs(2, 5, 4);
    let run = Clusterer::new(ClusterSpec::new(2).lsh(Lsh::MinHash { bands: 8, rows: 2 }))
        .fit(&ds)
        .unwrap();
    let mut model = run.model.clone();
    model.set_threads(0);
    assert_eq!(model.spec().threads, 1, "set_threads(0) must clamp to 1");
    // The clamped model still predicts (and through a server too).
    assert_eq!(model.predict(&ds).unwrap(), run.assignments);
    let server = ModelServer::start(model, ServerConfig::default());
    assert_eq!(
        server.predict_row(ds.row(0).to_vec()).unwrap().cluster,
        run.assignments[0]
    );
    server.shutdown();
    // And a non-zero override round-trips through the envelope.
    let mut model = run.model.clone();
    model.set_threads(3);
    let reloaded = lshclust::FittedModel::from_json(&model.to_json()).unwrap();
    assert_eq!(reloaded.spec().threads, 3);
}

// ---------------------------------------------------------------------------
// Deadline semantics
// ---------------------------------------------------------------------------

#[test]
fn expired_on_arrival_requests_are_never_scored() {
    let ds = categorical_blobs(2, 6, 4);
    let run = Clusterer::new(ClusterSpec::new(2).lsh(Lsh::MinHash { bands: 8, rows: 2 }))
        .fit(&ds)
        .unwrap();
    // Cache enabled so the hit/miss counters witness every trip through the
    // scoring path; a long fixed flush guarantees the deadline has passed by
    // the time the worker pops the batch.
    let server = ModelServer::start(
        run.model.clone(),
        ServerConfig::default()
            .workers(1)
            .max_batch(64)
            .flush_latency(Duration::from_millis(30))
            .adaptive_flush(false)
            .hot_keys(64),
    );
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            server
                .submit_row_deadline(ds.row(i).to_vec(), Some(Duration::ZERO))
                .unwrap()
        })
        .collect();
    for t in tickets {
        match t.wait() {
            Err(ServeError::DeadlineExceeded) => {}
            other => panic!("expired-on-arrival must resolve DeadlineExceeded, got {other:?}"),
        }
    }
    // An expired request replies before the cache lookup, so neither counter
    // moved: nothing was scored, nothing was cached.
    let cache = server.hot_key_stats();
    assert_eq!((cache.hits, cache.misses, cache.entries), (0, 0, 0));
    let tickets = server.ticket_stats();
    assert_eq!(
        (tickets.submitted, tickets.resolved),
        (6, 6),
        "deadline skips still resolve their tickets"
    );
    server.shutdown();
}

#[test]
fn default_deadline_covers_plain_submits_and_explicit_none_overrides_it() {
    let ds = categorical_blobs(2, 5, 4);
    let run = Clusterer::new(ClusterSpec::new(2).lsh(Lsh::MinHash { bands: 8, rows: 2 }))
        .fit(&ds)
        .unwrap();
    let server = ModelServer::start(
        run.model.clone(),
        ServerConfig::default()
            .workers(1)
            .max_batch(16)
            .flush_latency(Duration::from_millis(10))
            .adaptive_flush(false)
            .default_deadline(Some(Duration::ZERO)),
    );
    // Plain submits inherit the (instantly-expired) config default...
    match server.predict_row(ds.row(0).to_vec()) {
        Err(ServeError::DeadlineExceeded) => {}
        other => panic!("config default deadline must apply, got {other:?}"),
    }
    // ...and an explicit `None` opts a single request out of it entirely.
    let served = server
        .submit_row_deadline(ds.row(0).to_vec(), None)
        .unwrap()
        .wait()
        .expect("deadline-exempt request is served");
    assert_eq!(served.cluster, run.model.predict_one(ds.row(0)).unwrap());
    server.shutdown();
}

#[test]
fn saturated_queue_resolves_deadlined_tickets_promptly() {
    let ds = categorical_blobs(2, 6, 4);
    let run = Clusterer::new(ClusterSpec::new(2).lsh(Lsh::MinHash { bands: 8, rows: 2 }))
        .fit(&ds)
        .unwrap();
    // One worker parked in a long fixed flush window while the queue fills:
    // deadlined requests sit in the queue past their deadline, and the pop
    // must resolve them as DeadlineExceeded instead of scoring stale work.
    let server = ModelServer::start(
        run.model.clone(),
        ServerConfig::default()
            .workers(1)
            .max_batch(64)
            .flush_latency(Duration::from_millis(150))
            .adaptive_flush(false)
            .queue_depth(256),
    );
    let started = Instant::now();
    let deadlined: Vec<_> = (0..24)
        .map(|i| {
            server
                .submit_row_deadline(
                    ds.row(i % ds.n_items()).to_vec(),
                    Some(Duration::from_millis(2)),
                )
                .unwrap()
        })
        .collect();
    let exempt = server
        .submit_row_deadline(ds.row(0).to_vec(), None)
        .unwrap();
    let mut expired = 0usize;
    for t in deadlined {
        match t.wait() {
            Err(ServeError::DeadlineExceeded) => expired += 1,
            Ok(_) => {}
            Err(other) => panic!("unexpected {other:?}"),
        }
    }
    assert!(
        expired > 0,
        "a 2ms deadline under a 150ms flush must expire"
    );
    // Deadlined tickets resolve at the same pop as the rest of the batch —
    // nothing hangs for anything like the wait-cap timescale.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadlined tickets must resolve promptly, took {:?}",
        started.elapsed()
    );
    // The same batch still serves requests that carried no deadline.
    let served = exempt.wait().expect("deadline-free request is served");
    assert_eq!(served.cluster, run.model.predict_one(ds.row(0)).unwrap());
    let tickets = server.ticket_stats();
    assert_eq!(tickets.submitted, tickets.resolved);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Hot-key cache: byte-identity properties
// ---------------------------------------------------------------------------

/// Fixtures are fitted once per process: proptest cases then only pay for
/// server startup and queries, not refits.
struct CatFixture {
    ds: lshclust::Dataset,
    model: FittedModel,
    expected: Vec<ClusterId>,
}

fn cat_fixture() -> &'static CatFixture {
    static FIX: OnceLock<CatFixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = categorical_blobs(4, 8, 6);
        let spec = ClusterSpec::new(4)
            .lsh(Lsh::MinHash { bands: 10, rows: 2 })
            .seed(5);
        let run = Clusterer::new(spec).fit(&ds).unwrap();
        let expected = run.model.predict(&ds).unwrap();
        CatFixture {
            ds,
            model: run.model,
            expected,
        }
    })
}

struct NumFixture {
    data: NumericDataset,
    model: FittedModel,
    expected: Vec<ClusterId>,
}

fn num_fixture() -> &'static NumFixture {
    static FIX: OnceLock<NumFixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let data = numeric_blobs(3, 10, 4);
        let spec = ClusterSpec::new(3)
            .lsh(Lsh::SimHash { bands: 6, rows: 4 })
            .seed(2);
        let run = Clusterer::new(spec).fit(&data).unwrap();
        let expected = run.model.predict(&data).unwrap();
        NumFixture {
            data,
            model: run.model,
            expected,
        }
    })
}

struct MixedFixture {
    cat: lshclust::Dataset,
    num: NumericDataset,
    model: FittedModel,
    expected: Vec<ClusterId>,
}

fn mixed_fixture() -> &'static MixedFixture {
    static FIX: OnceLock<MixedFixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let cat = categorical_blobs(3, 8, 4);
        let num = numeric_blobs(3, 8, 3);
        let data = MixedDataset::new(&cat, &num);
        let spec = ClusterSpec::new(3)
            .lsh(Lsh::Union {
                bands: 10,
                rows: 2,
                sim_bands: 4,
                sim_rows: 8,
            })
            .seed(3);
        let run = Clusterer::new(spec).fit(&data).unwrap();
        let expected = run.model.predict(&data).unwrap();
        MixedFixture {
            cat,
            num,
            model: run.model,
            expected,
        }
    })
}

fn cached_pair(model: &FittedModel) -> (ModelServer, ModelServer) {
    let cached = ModelServer::start(model.clone(), coalescing_config().hot_keys(512));
    let uncached = ModelServer::start(model.clone(), coalescing_config().hot_keys(0));
    (cached, uncached)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any query sequence (replayed twice so every key repeats), the
    /// cached server, the uncached server, and serial `predict` agree
    /// byte-for-byte — and the second pass is answered from the cache.
    #[test]
    fn cached_and_uncached_categorical_serving_agree(
        indices in prop::collection::vec(0usize..32, 8..40),
    ) {
        let fix = cat_fixture();
        let (cached, uncached) = cached_pair(&fix.model);
        for pass in 0..2 {
            for &i in &indices {
                let a = cached.predict_row(fix.ds.row(i).to_vec()).unwrap();
                let b = uncached.predict_row(fix.ds.row(i).to_vec()).unwrap();
                prop_assert_eq!(a.cluster, fix.expected[i], "pass {} row {}", pass, i);
                prop_assert_eq!(b.cluster, fix.expected[i], "pass {} row {}", pass, i);
            }
        }
        let stats = cached.hot_key_stats();
        prop_assert!(
            stats.hits >= indices.len() as u64,
            "second pass must be cache hits: {} hits for {} repeats",
            stats.hits, indices.len()
        );
        prop_assert_eq!(uncached.hot_key_stats(), Default::default(), "hot_keys(0) disables");
        cached.shutdown();
        uncached.shutdown();
    }

    #[test]
    fn cached_and_uncached_numeric_serving_agree(
        indices in prop::collection::vec(0usize..30, 8..40),
    ) {
        let fix = num_fixture();
        let (cached, uncached) = cached_pair(&fix.model);
        for pass in 0..2 {
            for &i in &indices {
                let a = cached.predict_point(fix.data.row(i).to_vec()).unwrap();
                let b = uncached.predict_point(fix.data.row(i).to_vec()).unwrap();
                prop_assert_eq!(a.cluster, fix.expected[i], "pass {} point {}", pass, i);
                prop_assert_eq!(b.cluster, fix.expected[i], "pass {} point {}", pass, i);
            }
        }
        prop_assert!(cached.hot_key_stats().hits >= indices.len() as u64);
        cached.shutdown();
        uncached.shutdown();
    }

    #[test]
    fn cached_and_uncached_mixed_serving_agree(
        indices in prop::collection::vec(0usize..24, 8..40),
    ) {
        let fix = mixed_fixture();
        let (cached, uncached) = cached_pair(&fix.model);
        for pass in 0..2 {
            for &i in &indices {
                let a = cached
                    .predict_mixed(fix.cat.row(i).to_vec(), fix.num.row(i).to_vec())
                    .unwrap();
                let b = uncached
                    .predict_mixed(fix.cat.row(i).to_vec(), fix.num.row(i).to_vec())
                    .unwrap();
                prop_assert_eq!(a.cluster, fix.expected[i], "pass {} item {}", pass, i);
                prop_assert_eq!(b.cluster, fix.expected[i], "pass {} item {}", pass, i);
            }
        }
        prop_assert!(cached.hot_key_stats().hits >= indices.len() as u64);
        cached.shutdown();
        uncached.shutdown();
    }

    /// A reload must invalidate the cache: after the generation bump, every
    /// answer matches the *new* model's serial predict even for keys the old
    /// generation had cached.
    #[test]
    fn reload_invalidates_the_hot_key_cache(
        indices in prop::collection::vec(0usize..24, 8..30),
    ) {
        static V2: OnceLock<(FittedModel, Vec<ClusterId>)> = OnceLock::new();
        let fix = cat_fixture();
        let (v2, v2_expected) = V2.get_or_init(|| {
            let spec = ClusterSpec::new(4)
                .lsh(Lsh::MinHash { bands: 10, rows: 2 })
                .seed(17);
            let run = Clusterer::new(spec).fit(&fix.ds).unwrap();
            let expected = run.model.predict(&fix.ds).unwrap();
            (run.model, expected)
        });
        let server = ModelServer::start(fix.model.clone(), coalescing_config().hot_keys(512));
        // Populate the cache with generation-0 answers for these exact keys.
        for &i in &indices {
            let served = server.predict_row(fix.ds.row(i).to_vec()).unwrap();
            prop_assert_eq!(served.cluster, fix.expected[i]);
        }
        prop_assert_eq!(server.reload(v2.clone()), 1);
        // The same keys must now answer from the new model — a stale hit
        // would surface wherever the two fits disagree.
        for &i in &indices {
            let served = server.predict_row(fix.ds.row(i).to_vec()).unwrap();
            prop_assert_eq!(served.generation, 1u64);
            prop_assert_eq!(
                served.cluster, v2_expected[i],
                "stale cache hit at row {} after reload", i
            );
        }
        server.shutdown();
    }
}
