//! Mixed categorical + numeric clustering — the paper's "combinations of
//! both" further-work item, through the unified facade: `Lsh::None` runs
//! full-search K-Prototypes, `Lsh::Union` runs MH-K-Prototypes (MinHash over
//! the categorical part ∪ SimHash over the numeric part feeding the same
//! framework driver).
//!
//! ```text
//! cargo run --release -p lshclust --example mixed_data
//! ```

use lshclust::{ClusterSpec, Clusterer, Lsh, MixedDataset, NumericDataset};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_metrics::purity;

fn main() {
    // Categorical part: rule-generated, 10 000 items over 1 000 clusters.
    let cat_config = DatgenConfig::new(10_000, 1_000, 30).seed(21);
    let categorical = generate(&cat_config);
    let labels = categorical.labels().unwrap().to_vec();

    // Numeric part: each latent cluster sits at its own pseudo-random point
    // in 16-D (angle-based LSH needs dimensionality: random directions in
    // high-D are near-orthogonal, so distinct clusters rarely collide), with
    // deterministic jitter per item.
    const DIM: usize = 16;
    let numeric_data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..DIM).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 32));
                let centre = (h % 1000) as f64 / 50.0; // 0..20 per axis
                let jitter = ((i * 31 + d * 7) as f64 * 0.61).sin() * 0.2;
                centre + jitter
            })
        })
        .collect();
    let numeric = NumericDataset::new(DIM, numeric_data);
    let data = MixedDataset::new(&categorical, &numeric);
    let k = cat_config.n_clusters;
    println!(
        "{} items: {} categorical attrs + {} numeric dims, k = {k}\n",
        data.n_items(),
        categorical.n_attrs(),
        numeric.dim(),
    );

    // γ is left unset: the facade fills in Huang's variance heuristic
    // (`suggest_gamma`) for both runs.
    println!("K-Prototypes (full search over k={k})...");
    let full = Clusterer::new(ClusterSpec::new(k).seed(21))
        .fit(&data)
        .unwrap();
    println!(
        "  {} iterations, {:.2}s, purity {:.3}",
        full.n_iterations(),
        full.summary.total_time().as_secs_f64(),
        purity(&full.labels(), &labels)
    );

    println!("MH-K-Prototypes (MinHash ∪ SimHash shortlists)...");
    let lsh = Lsh::Union {
        bands: 20,
        rows: 5,
        sim_bands: 8,
        sim_rows: 16,
    };
    let accel = Clusterer::new(ClusterSpec::new(k).lsh(lsh).seed(21))
        .fit(&data)
        .unwrap();
    println!(
        "  {} iterations, {:.2}s, purity {:.3}, avg shortlist {:.1} of {k}",
        accel.summary.n_iterations(),
        accel.summary.total_time().as_secs_f64(),
        purity(&accel.labels(), &labels),
        accel
            .summary
            .iterations
            .last()
            .map_or(0.0, |s| s.avg_candidates)
    );

    let speedup =
        full.summary.total_time().as_secs_f64() / accel.summary.total_time().as_secs_f64();
    println!("\nspeedup: {speedup:.2}x — the unchanged framework driver, two indexes");
}
