//! The "present element set" view of an item.
//!
//! MinHash treats an item as a *set*. For categorical data the natural set is
//! the collection of attribute–value pairs, with absent features filtered out
//! (Algorithm 2, lines 2–4 of the paper). This module packs each pair into a
//! single `u64` key — `(attr << 32) | value` — so hash functions consume one
//! integer per element.

use crate::dataset::Dataset;
use crate::dictionary::Schema;
use crate::types::{AttrId, ValueId};

/// Packs an attribute–value pair into one `u64` element key.
#[inline(always)]
pub fn element_key(attr: AttrId, value: ValueId) -> u64 {
    (u64::from(attr.0) << 32) | u64::from(value.0)
}

/// Splits an element key back into its attribute–value pair.
#[inline(always)]
pub fn split_element_key(key: u64) -> (AttrId, ValueId) {
    (AttrId((key >> 32) as u32), ValueId(key as u32))
}

/// Iterator over the present element keys of one item row.
///
/// ```
/// use lshclust_categorical::{PresentElements, Schema, ValueId, NOT_PRESENT};
///
/// let schema = Schema::anonymous(3);
/// let row = [ValueId(5), NOT_PRESENT, ValueId(7)];
/// let keys: Vec<u64> = PresentElements::new(&schema, &row).collect();
/// assert_eq!(keys.len(), 2); // the NOT_PRESENT cell is filtered out
/// ```
pub struct PresentElements<'a> {
    schema: &'a Schema,
    row: &'a [ValueId],
    next_attr: usize,
}

impl<'a> PresentElements<'a> {
    /// Creates the iterator for `row` under `schema`'s absence rules.
    pub fn new(schema: &'a Schema, row: &'a [ValueId]) -> Self {
        debug_assert_eq!(schema.n_attrs(), row.len());
        Self {
            schema,
            row,
            next_attr: 0,
        }
    }

    /// Convenience constructor for dataset rows.
    pub fn of_item(dataset: &'a Dataset, item: usize) -> Self {
        Self::new(dataset.schema(), dataset.row(item))
    }
}

impl Iterator for PresentElements<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        while self.next_attr < self.row.len() {
            let a = self.next_attr;
            let v = self.row[a];
            self.next_attr += 1;
            let attr = AttrId(a as u32);
            if !self.schema.is_absent(attr, v) {
                return Some(element_key(attr, v));
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.row.len() - self.next_attr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NOT_PRESENT;

    #[test]
    fn key_round_trips() {
        let k = element_key(AttrId(42), ValueId(7));
        assert_eq!(split_element_key(k), (AttrId(42), ValueId(7)));
    }

    #[test]
    fn keys_are_distinct_across_attributes() {
        // Same value in different columns must be a different set element —
        // this is what makes the padded `zoo-0`/`zoo-1` trick unnecessary at
        // the encoded level.
        assert_ne!(
            element_key(AttrId(0), ValueId(3)),
            element_key(AttrId(1), ValueId(3))
        );
    }

    #[test]
    fn extreme_ids_round_trip() {
        let k = element_key(AttrId(u32::MAX), ValueId(u32::MAX - 1));
        assert_eq!(
            split_element_key(k),
            (AttrId(u32::MAX), ValueId(u32::MAX - 1))
        );
    }

    #[test]
    fn iterator_yields_all_when_everything_present() {
        let schema = Schema::anonymous(3);
        let row = [ValueId(1), ValueId(2), ValueId(3)];
        let keys: Vec<u64> = PresentElements::new(&schema, &row).collect();
        assert_eq!(keys.len(), 3);
        assert_eq!(split_element_key(keys[1]), (AttrId(1), ValueId(2)));
    }

    #[test]
    fn iterator_skips_not_present_sentinel() {
        let schema = Schema::anonymous(3);
        let row = [NOT_PRESENT, ValueId(2), NOT_PRESENT];
        let keys: Vec<u64> = PresentElements::new(&schema, &row).collect();
        assert_eq!(keys, vec![element_key(AttrId(1), ValueId(2))]);
    }

    #[test]
    fn iterator_skips_registered_absent_values() {
        let mut schema = Schema::anonymous(2);
        let no = schema.dictionary_mut(AttrId(0)).intern("word-0");
        let yes = schema.dictionary_mut(AttrId(0)).intern("word-1");
        schema.set_absent_value(AttrId(0), no);
        let row = [no, ValueId(9)];
        let keys: Vec<u64> = PresentElements::new(&schema, &row).collect();
        assert_eq!(keys, vec![element_key(AttrId(1), ValueId(9))]);
        let row2 = [yes, ValueId(9)];
        assert_eq!(PresentElements::new(&schema, &row2).count(), 2);
    }

    #[test]
    fn empty_row_yields_nothing() {
        let schema = Schema::anonymous(0);
        assert_eq!(PresentElements::new(&schema, &[]).count(), 0);
    }

    #[test]
    fn size_hint_upper_bound_holds() {
        let schema = Schema::anonymous(4);
        let row = [ValueId(1), NOT_PRESENT, ValueId(3), ValueId(4)];
        let it = PresentElements::new(&schema, &row);
        let (_, hi) = it.size_hint();
        assert_eq!(hi, Some(4));
        assert!(it.count() <= 4);
    }
}
