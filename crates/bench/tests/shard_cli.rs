//! The multi-process sharded path, end to end through the real binary:
//! `cluster fit --shards 2 --worker-cmd "cluster shard-worker"` must spawn
//! actual worker processes, speak the NDJSON protocol over their pipes, and
//! write assignments identical to the unsharded fit — the process-level
//! counterpart of the in-process loopback test in `tests/shard.rs`.

use std::path::Path;
use std::process::Command;

fn write_csv(path: &Path) {
    let mut csv = String::from("c1,c2,c3\n");
    for group in ["a", "b", "c"] {
        for i in 0..40 {
            csv.push_str(&format!("{group},{group}{},v{}\n", i % 5, i % 7));
        }
    }
    std::fs::write(path, csv).unwrap();
}

fn fit(input: &Path, output: &Path, shards: &[&str]) {
    let exe = env!("CARGO_BIN_EXE_cluster");
    let status = Command::new(exe)
        .args(["fit", "--input"])
        .arg(input)
        .args(["--k", "3", "--seed", "7", "--threads", "2", "--quiet"])
        .args(shards)
        .arg("--output")
        .arg(output)
        .status()
        .expect("cluster binary runs");
    assert!(status.success(), "fit {shards:?} failed");
}

#[test]
fn multi_process_sharded_fit_matches_the_unsharded_fit() {
    let exe = env!("CARGO_BIN_EXE_cluster");
    let dir = std::env::temp_dir().join(format!("lshclust-shard-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("input.csv");
    write_csv(&input);

    let unsharded = dir.join("unsharded.csv");
    fit(&input, &unsharded, &["--shards", "1"]);

    let in_process = dir.join("in-process.csv");
    fit(&input, &in_process, &["--shards", "2"]);

    let worker_cmd = format!("{exe} shard-worker");
    let multi_process = dir.join("multi-process.csv");
    fit(
        &input,
        &multi_process,
        &["--shards", "2", "--worker-cmd", &worker_cmd],
    );

    let reference = std::fs::read_to_string(&unsharded).unwrap();
    assert!(!reference.is_empty());
    assert_eq!(
        reference,
        std::fs::read_to_string(&in_process).unwrap(),
        "in-process sharded assignments diverge"
    );
    assert_eq!(
        reference,
        std::fs::read_to_string(&multi_process).unwrap(),
        "multi-process sharded assignments diverge"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker fed garbage must reply with an `Error` line and survive — the
/// coordinator depends on workers not dying mid-protocol.
#[test]
fn shard_worker_survives_malformed_input() {
    use std::io::{BufRead, BufReader, Write};

    let exe = env!("CARGO_BIN_EXE_cluster");
    let mut child = Command::new(exe)
        .arg("shard-worker")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("worker spawns");
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());

    writeln!(stdin, "{{not json").unwrap();
    writeln!(stdin, "\"Shutdown\"").unwrap();
    stdin.flush().unwrap();

    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    assert!(line.contains("Error"), "{line}");
    line.clear();
    stdout.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "\"Done\"");
    assert!(child.wait().unwrap().success());
}
