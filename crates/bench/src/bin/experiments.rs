//! The table/figure reproduction harness.
//!
//! ```text
//! experiments <id>... [--scale S] [--seed N] [--out DIR]
//!
//!   ids: table1 table2 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 bound all
//!   --scale S   item/cluster scale factor in (0, 1] (default 0.05;
//!               1.0 = the paper's exact sizes)
//!   --seed N    master seed (default 42)
//!   --out DIR   also write each table as CSV under DIR
//! ```

use lshclust_bench::figures::{self, Report, Suite};
use lshclust_bench::scale::Settings;
use std::process::ExitCode;

const ALL_IDS: &[&str] = &[
    "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "bound", "ablate", "sweep",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments <id>... [--scale S] [--seed N] [--out DIR]\n  ids: {} all",
        ALL_IDS.join(" ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut ids: Vec<String> = Vec::new();
    let mut settings = Settings::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s > 0.0 && s <= 1.0 => settings.scale = s,
                _ => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => settings.seed = s,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(dir) => settings.out_dir = Some(dir.into()),
                None => return usage(),
            },
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            id if ALL_IDS.contains(&id) => ids.push(id.to_owned()),
            _ => return usage(),
        }
    }
    if ids.is_empty() {
        return usage();
    }

    eprintln!(
        "# lshclust experiments: scale={} seed={} (paper sizes = --scale 1.0)",
        settings.scale, settings.seed
    );
    // Warm-up: a throwaway paired run so one-time process costs (allocator,
    // page faults, lazy relocations) don't land in the first timed series.
    {
        use lshclust_datagen::datgen::{generate, DatgenConfig};
        let ds = generate(&DatgenConfig::new(400, 50, 50).seed(1));
        let _ = lshclust_core::mhkmodes::paired_run(
            &ds,
            50,
            lshclust_minhash::Banding::new(20, 5),
            1,
            10,
        );
    }
    let mut suite = Suite::new(settings.clone());
    for id in &ids {
        let start = std::time::Instant::now();
        let report: Report = match id.as_str() {
            "table1" => figures::table1(&settings),
            "table2" => figures::table2(&settings),
            "fig2" => figures::fig2(&mut suite),
            "fig3" => figures::fig3(&mut suite),
            "fig4" => figures::fig4(&mut suite),
            "fig5" => figures::fig5(&mut suite),
            "fig6" => figures::fig6(&mut suite),
            "fig7" => figures::fig7(&mut suite),
            "fig8" => figures::fig8(&mut suite),
            "fig9" => figures::fig9(&settings),
            "fig10" => figures::fig10(&settings),
            "bound" => figures::bound(&settings),
            "ablate" => lshclust_bench::ablate::run(&settings),
            "sweep" => lshclust_bench::ablate::sweep(&settings),
            _ => unreachable!("validated above"),
        };
        println!("{}", report.render());
        eprintln!("# {id} done in {:.1}s", start.elapsed().as_secs_f64());
        if let Some(dir) = &settings.out_dir {
            if let Err(e) = report.write_csvs(dir, id) {
                eprintln!("# warning: failed to write CSVs for {id}: {e}");
            }
        }
    }
    ExitCode::SUCCESS
}
